"""Shared benchmark fixtures.

Every paper artefact gets one benchmark that (a) times the computation
and (b) writes the regenerated table to ``benchmarks/results/<id>.txt``
so the numbers can be inspected and diffed against EXPERIMENTS.md.

Scale: by default the industrial-configuration benches run the **full
published scale** (~1000 VLs / >6000 paths; the dual analysis takes
tens of seconds and is timed with a single round).  Set
``AFDX_BENCH_VLS=<n>`` to shrink the configuration for quick runs.

Perf trajectory: an autouse fixture records each benchmark's wall time
in a session :class:`~repro.obs.metrics.MetricsRegistry`; at session
end the snapshot is *appended* to ``benchmarks/results/BENCH_obs.json``
(one record per session, oldest first), so successive runs accumulate
a comparable timing history.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.configs.industrial import IndustrialConfigSpec
from repro.obs.metrics import MetricsRegistry

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_OBS_PATH = RESULTS_DIR / "BENCH_obs.json"

#: Session-wide registry of per-benchmark wall times.
_BENCH_METRICS = MetricsRegistry()


@pytest.fixture(scope="session")
def industrial_spec() -> IndustrialConfigSpec:
    """Industrial spec honoring the AFDX_BENCH_VLS override."""
    n_vls = int(os.environ.get("AFDX_BENCH_VLS", "1000"))
    return IndustrialConfigSpec(n_virtual_links=n_vls)


@pytest.fixture(scope="session")
def persist():
    """Write an ExperimentResult's rendering to benchmarks/results/."""

    def write(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")
        return result

    return write


@pytest.fixture(autouse=True)
def _record_bench_walltime(request):
    """Time every benchmark test into the session registry."""
    with _BENCH_METRICS.timer(f"bench.{request.node.name}"):
        yield


def pytest_sessionfinish(session, exitstatus):
    """Append this session's timing snapshot to BENCH_obs.json."""
    snapshot = _BENCH_METRICS.to_dict()
    if not snapshot["timers"]:
        return  # nothing collected (collection-only run, -k filtered out...)
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if BENCH_OBS_PATH.exists():
        try:
            history = json.loads(BENCH_OBS_PATH.read_text())
        except ValueError:
            history = []
    if not isinstance(history, list):
        history = []
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "exitstatus": int(exitstatus),
            "bench_vls": int(os.environ.get("AFDX_BENCH_VLS", "1000")),
            "metrics": snapshot,
        }
    )
    BENCH_OBS_PATH.write_text(json.dumps(history, indent=2) + "\n")
