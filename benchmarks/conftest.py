"""Shared benchmark fixtures.

Every paper artefact gets one benchmark that (a) times the computation
and (b) writes the regenerated table to ``benchmarks/results/<id>.txt``
so the numbers can be inspected and diffed against EXPERIMENTS.md.

Scale: by default the industrial-configuration benches run the **full
published scale** (~1000 VLs / >6000 paths; the dual analysis takes
tens of seconds and is timed with a single round).  Set
``AFDX_BENCH_VLS=<n>`` to shrink the configuration for quick runs.

Perf trajectory: an autouse fixture records each benchmark's wall time
in a session :class:`~repro.obs.metrics.MetricsRegistry`; at session
end the snapshot is *appended* to ``benchmarks/results/BENCH_obs.json``
through :mod:`benchmarks._telemetry` — schema-versioned, git-rev
stamped, and rotated to the last ``--keep N`` records (default 50,
``AFDX_BENCH_KEEP`` overrides) so the history stays bounded.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _telemetry import append_record  # noqa: E402

from repro.configs.industrial import IndustrialConfigSpec  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_OBS_PATH = RESULTS_DIR / "BENCH_obs.json"

#: Session-wide registry of per-benchmark wall times.
_BENCH_METRICS = MetricsRegistry()


def pytest_addoption(parser):
    parser.addoption(
        "--keep",
        type=int,
        default=None,
        help="BENCH_*.json records to retain per file (default: "
        "AFDX_BENCH_KEEP or 50)",
    )


@pytest.fixture(scope="session")
def industrial_spec() -> IndustrialConfigSpec:
    """Industrial spec honoring the AFDX_BENCH_VLS override."""
    n_vls = int(os.environ.get("AFDX_BENCH_VLS", "1000"))
    return IndustrialConfigSpec(n_virtual_links=n_vls)


@pytest.fixture(scope="session")
def persist():
    """Write an ExperimentResult's rendering to benchmarks/results/."""

    def write(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")
        return result

    return write


@pytest.fixture(autouse=True)
def _record_bench_walltime(request):
    """Time every benchmark test into the session registry."""
    with _BENCH_METRICS.timer(f"bench.{request.node.name}"):
        yield


def pytest_sessionfinish(session, exitstatus):
    """Append this session's timing snapshot to BENCH_obs.json."""
    snapshot = _BENCH_METRICS.to_dict()
    if not snapshot["timers"]:
        return  # nothing collected (collection-only run, -k filtered out...)
    try:
        keep = session.config.getoption("--keep")
    except ValueError:
        keep = None
    append_record(
        BENCH_OBS_PATH,
        {
            "exitstatus": int(exitstatus),
            "bench_vls": int(os.environ.get("AFDX_BENCH_VLS", "1000")),
            "metrics": snapshot,
        },
        keep=keep,
    )
