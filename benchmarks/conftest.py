"""Shared benchmark fixtures.

Every paper artefact gets one benchmark that (a) times the computation
and (b) writes the regenerated table to ``benchmarks/results/<id>.txt``
so the numbers can be inspected and diffed against EXPERIMENTS.md.

Scale: by default the industrial-configuration benches run the **full
published scale** (~1000 VLs / >6000 paths; the dual analysis takes
tens of seconds and is timed with a single round).  Set
``AFDX_BENCH_VLS=<n>`` to shrink the configuration for quick runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.configs.industrial import IndustrialConfigSpec

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def industrial_spec() -> IndustrialConfigSpec:
    """Industrial spec honoring the AFDX_BENCH_VLS override."""
    n_vls = int(os.environ.get("AFDX_BENCH_VLS", "1000"))
    return IndustrialConfigSpec(n_virtual_links=n_vls)


@pytest.fixture(scope="session")
def persist():
    """Write an ExperimentResult's rendering to benchmarks/results/."""

    def write(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")
        return result

    return write
