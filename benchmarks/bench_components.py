"""Micro-benchmarks of the core substrates.

These keep the pytest-benchmark statistics meaningful (many rounds) and
catch performance regressions in the inner loops the full analyses are
built from.
"""

import random

from repro.curves import (
    LeakyBucket,
    PiecewiseCurve,
    RateLatency,
    horizontal_deviation,
    min_curves,
    sum_curves,
)
from repro.configs.fig2 import fig2_network
from repro.netcalc.analyzer import NetworkCalculusAnalyzer
from repro.sim.scenarios import TrafficScenario, simulate
from repro.trajectory.analyzer import TrajectoryAnalyzer
from repro.trajectory.busy_period import busy_period_bound


def test_curve_aggregation(benchmark):
    rng = random.Random(0)
    curves = [
        PiecewiseCurve.affine(rng.uniform(0.1, 2.0), rng.uniform(512, 12144))
        for _ in range(64)
    ]

    def aggregate():
        total = sum_curves(curves)
        return min_curves(total, PiecewiseCurve.affine(100.0, 12144.0))

    result = benchmark(aggregate)
    assert result.is_concave()


def test_horizontal_deviation_speed(benchmark):
    rng = random.Random(1)
    alpha = sum_curves(
        min_curves(
            PiecewiseCurve.affine(rng.uniform(0.1, 2.0), rng.uniform(512, 12144)),
            PiecewiseCurve.affine(100.0, 12144.0),
        )
        for _ in range(16)
    )
    beta = RateLatency(100.0, 16.0).curve()
    delay = benchmark(horizontal_deviation, alpha, beta)
    assert delay > 16.0


def test_busy_period_speed(benchmark):
    rng = random.Random(2)
    flows = [
        (rng.uniform(5, 120), rng.choice([1000, 2000, 4000, 8000]), rng.uniform(0, 500))
        for _ in range(100)
    ]
    # keep utilization < 1
    utilization = sum(c / t for c, t, _ in flows)
    flows = [(c / (utilization * 1.3), t, a) for c, t, a in flows]
    value = benchmark(busy_period_bound, flows)
    assert value > 0


def test_netcalc_fig2_speed(benchmark):
    network = fig2_network()
    result = benchmark(lambda: NetworkCalculusAnalyzer(network).analyze())
    assert result.paths


def test_trajectory_fig2_speed(benchmark):
    network = fig2_network()
    result = benchmark(lambda: TrajectoryAnalyzer(network).analyze())
    assert result.paths


def test_simulator_throughput(benchmark):
    network = fig2_network()
    result = benchmark.pedantic(
        lambda: simulate(network, TrafficScenario(duration_ms=200)),
        rounds=3,
        iterations=1,
    )
    assert result.paths


def test_leaky_bucket_propagation(benchmark):
    bucket = LeakyBucket(rate=1.0, burst=4000.0)

    def propagate():
        current = bucket
        for _ in range(1000):
            current = current.delayed(40.0)
        return current

    final = benchmark(propagate)
    assert final.burst > bucket.burst
