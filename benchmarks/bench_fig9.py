"""Fig. 9 — (BAG x s_max) bound-difference surface for v1."""

from repro.experiments.fig9 import run_fig9


def test_fig9_surface(benchmark, persist):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    cells = [cell for row in result.rows for cell in row[1:]]
    assert any(c < 0 for c in cells)  # WCNC wins somewhere (small frames)
    assert any(c > 0 for c in cells)  # Trajectory wins somewhere
    persist(result)
