"""Pessimism evaluation of the combined bounds on the Fig. 1 network.

Runs the simulation scenario portfolio and reports how much of each
analytic bound is actually reachable — the tightness methodology of the
companion ECRTS 2006 work.
"""

from repro.configs.fig1 import fig1_network
from repro.core.comparison import compare_methods
from repro.sim.search import evaluate_tightness


def test_tightness_fig1(benchmark):
    network = fig1_network()
    bounds = {k: p.best_us for k, p in compare_methods(network).paths.items()}

    report = benchmark.pedantic(
        lambda: evaluate_tightness(network, bounds, duration_ms=100, random_seeds=4),
        rounds=1,
        iterations=1,
    )
    assert report.violations() == []
    print(
        f"\ntightness on fig1: mean coverage {report.mean_coverage * 100:.1f}%, "
        f"min {report.min_coverage * 100:.1f}%, "
        f"{len(report.attained())} of {len(report.paths)} bounds attained"
    )
