"""Fig. 5 — mean Trajectory benefit per BAG value.

The per-path bounds are shared with the Table I run (cached), so this
times the per-BAG aggregation plus the (amortized) analysis.
"""

from repro.experiments.fig5 import run_fig5


def test_fig5_benefit_by_bag(benchmark, industrial_spec, persist):
    result = benchmark.pedantic(
        lambda: run_fig5(spec=industrial_spec), rounds=1, iterations=1
    )
    assert result.rows, "no BAG buckets produced"
    if industrial_spec.n_virtual_links >= 1000:
        # paper shape (emerges at scale): positive benefit per BAG class
        assert all(row[1] > 0 for row in result.rows)
    persist(result)
