"""Scaling of both analyses with configuration size.

Times the two analyzers on industrial configurations of growing VL
count — the practical question for a certification tool ("can it turn
around an A380-class configuration interactively?").
"""

import pytest

from repro.configs.industrial import IndustrialConfigSpec, industrial_network
from repro.netcalc.analyzer import NetworkCalculusAnalyzer
from repro.trajectory.analyzer import TrajectoryAnalyzer

SIZES = [100, 300, 1000]


@pytest.fixture(scope="module")
def networks():
    return {
        n: industrial_network(IndustrialConfigSpec(n_virtual_links=n)) for n in SIZES
    }


@pytest.mark.parametrize("n_vls", SIZES)
def test_netcalc_scaling(benchmark, networks, n_vls):
    network = networks[n_vls]
    result = benchmark.pedantic(
        lambda: NetworkCalculusAnalyzer(network).analyze(), rounds=1, iterations=1
    )
    assert len(result.paths) == len(network.flow_paths())


@pytest.mark.parametrize("n_vls", SIZES)
def test_trajectory_scaling(benchmark, networks, n_vls):
    network = networks[n_vls]
    result = benchmark.pedantic(
        lambda: TrajectoryAnalyzer(network).analyze(), rounds=1, iterations=1
    )
    assert len(result.paths) == len(network.flow_paths())
