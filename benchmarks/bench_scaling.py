"""Scaling of both analyses with configuration size.

Times the two analyzers on industrial configurations of growing VL
count — the practical question for a certification tool ("can it turn
around an A380-class configuration interactively?").

Two entry points:

* ``make bench`` / ``pytest benchmarks/ --benchmark-only`` — the
  pytest-benchmark harness below;
* ``make bench-scaling`` / ``python benchmarks/bench_scaling.py`` —
  standalone runs that *append* machine-readable wall times to
  ``benchmarks/results/BENCH_scaling.json`` so scaling is tracked
  across machines and revisions (``cpu_count`` is recorded).
"""

import argparse
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

import pytest  # noqa: E402

from _telemetry import append_record  # noqa: E402

from repro.configs.industrial import (  # noqa: E402
    IndustrialConfigSpec,
    industrial_network,
)
from repro.netcalc.analyzer import NetworkCalculusAnalyzer  # noqa: E402
from repro.obs.costmodel import (  # noqa: E402
    netcalc_cost_ledger,
    trajectory_result_work,
)
from repro.trajectory.analyzer import TrajectoryAnalyzer  # noqa: E402

SIZES = [100, 300, 1000]

RESULTS_PATH = REPO / "benchmarks" / "results" / "BENCH_scaling.json"


@pytest.fixture(scope="module")
def networks():
    return {
        n: industrial_network(IndustrialConfigSpec(n_virtual_links=n)) for n in SIZES
    }


@pytest.mark.parametrize("n_vls", SIZES)
def test_netcalc_scaling(benchmark, networks, n_vls):
    network = networks[n_vls]
    result = benchmark.pedantic(
        lambda: NetworkCalculusAnalyzer(network).analyze(), rounds=1, iterations=1
    )
    assert len(result.paths) == len(network.flow_paths())


@pytest.mark.parametrize("n_vls", SIZES)
def test_trajectory_scaling(benchmark, networks, n_vls):
    network = networks[n_vls]
    result = benchmark.pedantic(
        lambda: TrajectoryAnalyzer(network).analyze(), rounds=1, iterations=1
    )
    assert len(result.paths) == len(network.flow_paths())


def _best_of(fn, runs):
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=SIZES,
                        help=f"industrial VL counts to time (default {SIZES})")
    parser.add_argument("--runs", type=int, default=1,
                        help="timed repetitions per size; best-of is recorded")
    args = parser.parse_args(argv)

    record = {
        "cpu_count": os.cpu_count(),
        "runs": args.runs,
        "points": [],
    }
    for n_vls in args.sizes:
        network = industrial_network(IndustrialConfigSpec(n_virtual_links=n_vls))
        nc_result = NetworkCalculusAnalyzer(network).analyze()  # warm reference
        netcalc_s = _best_of(
            lambda: NetworkCalculusAnalyzer(network).analyze(), args.runs
        )
        traj_result = TrajectoryAnalyzer(network).analyze()
        trajectory_s = _best_of(
            lambda: TrajectoryAnalyzer(network).analyze(), args.runs
        )
        point = {
            "n_virtual_links": n_vls,
            "n_paths": len(network.flow_paths()),
            "netcalc_s": round(netcalc_s, 4),
            "trajectory_s": round(trajectory_s, 4),
            # deterministic cost-ledger summary: exact per revision,
            # compared bit-for-bit by scripts/bench_gate.py
            "work": {
                "network_calculus": netcalc_cost_ledger(nc_result).work,
                "trajectory": trajectory_result_work(traj_result),
            },
        }
        record["points"].append(point)
        print(
            f"industrial({n_vls} VLs, {point['n_paths']} paths): "
            f"netcalc {netcalc_s:.3f}s, trajectory {trajectory_s:.3f}s"
        )

    append_record(RESULTS_PATH, record)
    print(f"-> {RESULTS_PATH.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
