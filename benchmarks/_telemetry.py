"""Shared benchmark record plumbing: schema, git rev, rotation.

Every ``benchmarks/results/BENCH_*.json`` file is a JSON list of
records, oldest first.  :func:`append_record` is the single write
path; it

* stamps each record with ``bench_schema`` (so downstream tooling can
  evolve the shape), an UTC ``timestamp`` and the current ``git_rev``
  (best-effort — absent outside a git checkout), which ties every
  timing and work-counter sample to the code that produced it;
* stamps ``jobs`` (default 1, kept when the record already carries it):
  wall times measured at different worker counts are not comparable,
  so ``scripts/bench_gate.py`` only compares a record against a
  baseline recorded at the same ``jobs``;
* **rotates** the history to the last ``keep`` records, so the files
  stop growing without bound (the pre-schema behaviour appended
  forever).  ``keep`` comes from, in order: the explicit argument, the
  ``AFDX_BENCH_KEEP`` environment variable, the default of 50.

Schema history:

* (unversioned) — timings only, no provenance, unbounded growth;
* 2 — ``bench_schema`` / ``git_rev`` stamps, rotation, and a ``work``
  section of deterministic cost-ledger counters
  (:mod:`repro.obs.costmodel`) that ``scripts/bench_gate.py`` compares
  exactly;
* 3 — a top-level ``jobs`` stamp on every record (same-``jobs``
  baseline comparison in the bench gate).
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

REPO = Path(__file__).resolve().parent.parent

#: Current record schema (see module docstring for the history).
BENCH_SCHEMA_VERSION = 3

#: Records kept per BENCH_*.json file when no override is given.
DEFAULT_KEEP = 50


def git_rev(repo: Path = REPO) -> Optional[str]:
    """The short git revision of ``repo``, or None (best-effort)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def utc_timestamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S+0000")


def resolve_keep(keep: Optional[int] = None) -> int:
    """The rotation depth: argument > AFDX_BENCH_KEEP > default."""
    if keep is None:
        try:
            keep = int(os.environ.get("AFDX_BENCH_KEEP", DEFAULT_KEEP))
        except ValueError:
            keep = DEFAULT_KEEP
    return max(1, keep)


def load_history(path: Path) -> List[Dict[str, object]]:
    """The record list at ``path`` ([] for missing/corrupt files)."""
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text())
    except ValueError:
        return []
    return history if isinstance(history, list) else []


def record_history(
    command: str,
    *,
    config: Optional[Dict[str, object]] = None,
    config_digest: Optional[str] = None,
    bounds_digest: Optional[str] = None,
    work: Optional[Dict[str, Dict[str, int]]] = None,
    execution: Optional[Dict[str, object]] = None,
    options: Optional[Dict[str, object]] = None,
    wall_ms: float = 0.0,
) -> Optional[Dict[str, object]]:
    """Mirror a bench record into the persistent run history.

    No-op unless ``AFDX_HISTORY_DIR`` (or an explicit history root via
    :func:`repro.obs.history.resolve_history_dir`) is set — bench runs
    then land in the same store ``afdx obs drift`` scans, so a bench
    regression and a CLI-run drift show up in one query.  Best-effort:
    a failed append never fails the benchmark.
    """
    from repro.obs.history import (
        RunHistory,
        build_run_record,
        git_revision,
        resolve_history_dir,
    )

    root = resolve_history_dir(None)
    if root is None:
        return None
    record = build_run_record(
        command=command,
        config=config,
        config_digest=config_digest,
        bounds_digest=bounds_digest,
        work=work,
        execution=execution,
        options=options,
        wall_ms=wall_ms,
        git_rev=git_revision(),
    )
    try:
        RunHistory(root).append(record)
    except (OSError, ValueError):
        return None
    return record


def append_record(
    path: Path, record: Dict[str, object], keep: Optional[int] = None
) -> Dict[str, object]:
    """Stamp ``record``, append it to ``path``, rotate, and write.

    Returns the stamped record.  Explicit ``bench_schema`` /
    ``timestamp`` / ``git_rev`` keys in ``record`` win over the stamps
    (tests pin them for reproducibility).
    """
    stamped: Dict[str, object] = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "timestamp": utc_timestamp(),
        "git_rev": git_rev(),
        "jobs": 1,
    }
    stamped.update(record)
    history = load_history(path)
    history.append(stamped)
    history = history[-resolve_keep(keep):]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return stamped
