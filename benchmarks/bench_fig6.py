"""Fig. 6 — share of VL paths where WCNC beats the Trajectory approach."""

from repro.experiments.fig6 import run_fig6


def test_fig6_wcnc_wins_by_smax(benchmark, industrial_spec, persist):
    result = benchmark.pedantic(
        lambda: run_fig6(spec=industrial_spec), rounds=1, iterations=1
    )
    shares = [row[1] for row in result.rows]
    assert all(0.0 <= s <= 100.0 for s in shares)
    if industrial_spec.n_virtual_links >= 1000:
        # paper shape: the large-frame end of the axis belongs to Trajectory
        assert shares[-1] == 0.0
    persist(result)
