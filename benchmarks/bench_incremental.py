"""Cold full analysis vs warm incremental re-analysis of one edit.

Standalone script (not a pytest-benchmark module): it retimes a single
Virtual Link of an industrial configuration and times two ways of
getting the new bounds:

* **cold** — a full combined run (Network Calculus + Trajectory) of the
  edited configuration, as a non-incremental tool would do;
* **incremental (warm cache)** — ``DeltaAnalyzer.apply()`` against a
  bound cache that has seen this analysis before (the admission loop
  re-querying a what-if, a second ``afdx whatif`` against the same
  ``--cache-dir``): the whole-result tier answers from two lookups.

The record also keeps ``first_whatif_s`` — the *first* application of
the edit, when only the base configuration is cached.  On the dense
industrial topology a single retiming genuinely changes almost every
bound (the dirty closure covers most VLs), so that first query saves
little; it is reported honestly rather than hidden.

All results are verified *bit-identical* to the cold run before the
record is appended to ``benchmarks/results/BENCH_incremental.json``
(``cpu_count`` is recorded alongside the timings).

Usage::

    make bench-incremental
    python benchmarks/bench_incremental.py [--vls N] [--runs N]
"""

import argparse
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from _telemetry import append_record  # noqa: E402

from repro.configs.industrial import (  # noqa: E402
    IndustrialConfigSpec,
    industrial_network,
)
from repro.incremental import RetimeVL  # noqa: E402
from repro.incremental.delta import DeltaAnalyzer  # noqa: E402
from repro.netcalc.analyzer import analyze_network_calculus  # noqa: E402
from repro.obs.costmodel import (  # noqa: E402
    netcalc_cost_ledger,
    trajectory_result_work,
)
from repro.trajectory.analyzer import analyze_trajectory  # noqa: E402

RESULTS_PATH = REPO / "benchmarks" / "results" / "BENCH_incremental.json"


def _retime_edit(network):
    """Retiming of the first VL (doubled BAG, halved at the 128 ms cap)."""
    name = sorted(network.virtual_links)[0]
    bag = network.vl(name).bag_ms
    return RetimeVL(name=name, bag_ms=bag / 2 if bag >= 128 else bag * 2)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vls", type=int, default=1000,
                        help="industrial configuration size (default 1000)")
    parser.add_argument("--runs", type=int, default=1,
                        help="timed repetitions; best-of is recorded")
    args = parser.parse_args(argv)

    network = industrial_network(IndustrialConfigSpec(n_virtual_links=args.vls))
    edit = _retime_edit(network)

    # One untimed cold run warms the cache with the base configuration.
    engine = DeltaAnalyzer(network)
    engine.analyze_base()

    # First what-if: only the base is cached; the dirty region (and
    # every walk whose inputs truly changed) recomputes.
    start = time.perf_counter()
    delta = engine.apply([edit])
    first_s = time.perf_counter() - start

    # Warm what-if: the cache has seen this exact analysis; the
    # whole-result tier serves it.  Best-of `--runs`.
    best_inc = None
    for _ in range(args.runs):
        warm = DeltaAnalyzer(network, cache=engine.cache)
        warm.analyze_base()
        start = time.perf_counter()
        delta = warm.apply([edit])
        elapsed = time.perf_counter() - start
        best_inc = elapsed if best_inc is None else min(best_inc, elapsed)

    # Cold reference: full combined analysis of the edited network.
    edited = delta.network
    best_cold = None
    cold_nc = cold_tr = None
    for _ in range(args.runs):
        start = time.perf_counter()
        cold_nc = analyze_network_calculus(edited)
        cold_tr = analyze_trajectory(edited)
        elapsed = time.perf_counter() - start
        best_cold = elapsed if best_cold is None else min(best_cold, elapsed)

    assert set(cold_nc.paths) == set(delta.netcalc.paths)
    for key in cold_nc.paths:
        assert cold_nc.paths[key].total_us == delta.netcalc.paths[key].total_us, key
        assert cold_tr.paths[key].total_us == delta.trajectory.paths[key].total_us, key

    record = {
        "n_virtual_links": args.vls,
        "n_paths": len(cold_nc.paths),
        "cpu_count": os.cpu_count(),
        "runs": args.runs,
        "edit": edit.describe(),
        "n_dirty_ports": delta.stats["n_dirty_ports"],
        "n_ports": delta.stats["n_ports"],
        "n_dirty_vls": delta.stats["n_dirty_vls"],
        "n_vls": delta.stats["n_vls"],
        "cold_s": round(best_cold, 4),
        "first_whatif_s": round(first_s, 4),
        "incremental_s": round(best_inc, 4),
        "first_whatif_speedup": round(best_cold / first_s, 3),
        "speedup": round(best_cold / best_inc, 3),
        "bit_identical": True,
        # deterministic cost-ledger summary of the edited network's
        # analysis: exact across runs, compared bit-for-bit by the gate
        "work": {
            "network_calculus": netcalc_cost_ledger(cold_nc).work,
            "trajectory": trajectory_result_work(cold_tr),
        },
    }

    record = append_record(RESULTS_PATH, record)

    print(
        f"industrial({args.vls} VLs, {record['n_paths']} paths) on "
        f"{record['cpu_count']} CPU(s): '{record['edit']}' dirtied "
        f"{record['n_dirty_ports']}/{record['n_ports']} ports, "
        f"{record['n_dirty_vls']}/{record['n_vls']} VLs; "
        f"cold {best_cold:.3f}s, first what-if {first_s:.3f}s "
        f"({record['first_whatif_speedup']:.2f}x), warm {best_inc:.3f}s "
        f"({record['speedup']:.2f}x, bit-identical) -> "
        f"{RESULTS_PATH.relative_to(REPO)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
