"""Table I — full dual analysis of the industrial configuration.

Times one complete certification run: generate nothing (the cached
configuration is reused), analyze every VL path with Network Calculus
*and* the Trajectory approach, and aggregate the benefit statistics the
paper prints in Table I.
"""

from repro.core.combined import build_comparison
from repro.core.comparison import summarize
from repro.experiments.runner import industrial_config
from repro.experiments.table1 import run_table1
from repro.netcalc.analyzer import NetworkCalculusAnalyzer
from repro.trajectory.analyzer import TrajectoryAnalyzer


def test_table1_dual_analysis(benchmark, industrial_spec, persist):
    network = industrial_config(industrial_spec)

    def dual_analysis():
        nc = NetworkCalculusAnalyzer(network, grouping=True).analyze()
        trajectory = TrajectoryAnalyzer(network, serialization=True).analyze()
        comparison = build_comparison(nc, trajectory)
        return summarize(comparison.paths.values())

    stats = benchmark.pedantic(dual_analysis, rounds=1, iterations=1)

    # the combined column can never lose by construction
    assert stats.min_benefit_best_pct == 0.0
    if industrial_spec.n_virtual_links >= 1000:
        # the paper's Table I shape emerges at the published scale
        assert stats.mean_benefit_trajectory_pct > 0
        assert stats.trajectory_wins_share > 0.5

    persist(run_table1(spec=industrial_spec))
