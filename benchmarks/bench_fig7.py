"""Fig. 7 — s_max sweep of v1 on the sample configuration."""

from repro.experiments.fig7 import run_fig7


def test_fig7_smax_sweep(benchmark, persist):
    result = benchmark(run_fig7)
    diffs = [row[3] for row in result.rows]
    assert diffs[0] < 0 < diffs[-1]  # WCNC wins small frames, loses large
    persist(result)
