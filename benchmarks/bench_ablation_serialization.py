"""Ablation: the three Trajectory serialization modes.

Quantifies, on the industrial configuration, how far apart the sound
('safe'), reconstructed ('windowed', default) and literal historical
('paper') serialization credits land — the spread this library's
simulation cross-check showed to matter for soundness.
"""

import statistics

from repro.experiments.runner import industrial_config
from repro.trajectory.analyzer import TrajectoryAnalyzer


def test_serialization_mode_ablation(benchmark, industrial_spec):
    network = industrial_config(industrial_spec)

    windowed = benchmark.pedantic(
        lambda: TrajectoryAnalyzer(network, serialization="windowed").analyze(),
        rounds=1,
        iterations=1,
    )
    safe = TrajectoryAnalyzer(network, serialization="safe").analyze()
    paper = TrajectoryAnalyzer(network, serialization="paper").analyze()

    def mean_bound(result):
        return statistics.mean(p.total_us for p in result.paths.values())

    safe_mean, windowed_mean, paper_mean = (
        mean_bound(safe),
        mean_bound(windowed),
        mean_bound(paper),
    )
    assert paper_mean <= windowed_mean <= safe_mean
    print(
        f"\nserialization ablation (mean bound, us): "
        f"safe {safe_mean:.1f} >= windowed {windowed_mean:.1f} "
        f">= paper {paper_mean:.1f}"
    )
