"""Figs. 3-4 — the worked Trajectory scenario on the Fig. 2 network."""

from repro.experiments.fig3_4 import run_fig3_4


def test_fig3_4_worked_scenario(benchmark, persist):
    result = benchmark(run_fig3_4)
    v1 = next(row for row in result.rows if row[0] == "v1")
    assert v1[3] == 40.0  # the one-frame serialization gain
    persist(result)
