"""Sequential vs parallel wall time of the batch-analysis engine.

Standalone script (not a pytest-benchmark module): it times
``BatchAnalyzer.combined()`` on an industrial configuration with
``jobs=1`` (the sequential delegate) and with a worker pool, verifies
the two results are bit-identical, and *appends* a record to
``benchmarks/results/BENCH_batch.json`` so speedups are tracked across
machines and revisions.

The record keeps ``cpu_count`` alongside the timings: on a single-core
box the pool cannot beat the sequential path and the honest speedup is
<= 1.0 (pure fork/pickle overhead) — see docs/BATCH.md.

Usage::

    make bench-batch
    python benchmarks/bench_batch.py [--vls N] [--jobs N] [--runs N]
"""

import argparse
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from _telemetry import append_record  # noqa: E402

from repro.batch import BatchAnalyzer  # noqa: E402
from repro.batch.pool import resolve_jobs  # noqa: E402
from repro.configs.industrial import (  # noqa: E402
    IndustrialConfigSpec,
    industrial_network,
)
from repro.netcalc.analyzer import analyze_network_calculus  # noqa: E402
from repro.obs.costmodel import (  # noqa: E402
    netcalc_cost_ledger,
    trajectory_result_work,
)
from repro.trajectory.analyzer import analyze_trajectory  # noqa: E402

RESULTS_PATH = REPO / "benchmarks" / "results" / "BENCH_batch.json"


def _best_of(fn, runs):
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vls", type=int, default=120,
                        help="industrial configuration size (default 120)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker count for the parallel run "
                             "(0 = all cores, floored at 2)")
    parser.add_argument("--runs", type=int, default=2,
                        help="timed repetitions; best-of is recorded")
    args = parser.parse_args(argv)

    network = industrial_network(IndustrialConfigSpec(n_virtual_links=args.vls))
    # Always exercise the pool path, even on a single-core machine —
    # the point of the record is the honest overhead/speedup number.
    jobs = max(2, resolve_jobs(args.jobs))

    seq, seq_s = _best_of(BatchAnalyzer(network, jobs=1).combined, args.runs)
    par, par_s = _best_of(BatchAnalyzer(network, jobs=jobs).combined, args.runs)

    assert list(seq.paths) == list(par.paths)
    for key in seq.paths:
        assert seq.paths[key] == par.paths[key], key

    # One untimed direct run per method supplies the deterministic
    # work signature (sequential and pooled runs are bit-identical,
    # so either side describes both).
    nc_result = analyze_network_calculus(network)
    traj_result = analyze_trajectory(network)

    record = {
        "n_virtual_links": args.vls,
        "n_paths": len(seq.paths),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "runs": args.runs,
        "sequential_s": round(seq_s, 4),
        "parallel_s": round(par_s, 4),
        "speedup": round(seq_s / par_s, 3),
        "bit_identical": True,
        "work": {
            "network_calculus": netcalc_cost_ledger(nc_result).work,
            "trajectory": trajectory_result_work(traj_result),
        },
    }

    append_record(RESULTS_PATH, record)

    print(
        f"industrial({args.vls} VLs, {record['n_paths']} paths) on "
        f"{record['cpu_count']} CPU(s): sequential {seq_s:.3f}s, "
        f"jobs={jobs} {par_s:.3f}s, speedup {record['speedup']:.2f}x "
        f"(bit-identical) -> {RESULTS_PATH.relative_to(REPO)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
