"""Fig. 8 — BAG sweep of v1 on the sample configuration."""

from repro.experiments.fig8 import run_fig8


def test_fig8_bag_sweep(benchmark, persist):
    result = benchmark(run_fig8)
    trajectories = [row[1] for row in result.rows]
    ncs = [row[2] for row in result.rows]
    assert max(trajectories) - min(trajectories) < 1e-9  # Trajectory flat
    assert ncs == sorted(ncs, reverse=True)  # WCNC decreasing in BAG
    persist(result)
