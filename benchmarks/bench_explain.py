"""Provenance-recording overhead: plain analysis vs ``explain=True``.

Standalone script (not a pytest-benchmark module): it analyzes an
industrial configuration twice —

* **plain** — the combined run every other benchmark times
  (``explain=False``: the default, allocation-free path);
* **explained** — the same run with per-path provenance ledgers
  attached (what ``afdx explain`` executes), including the cross-method
  attribution pass.

Before the record is appended the script asserts that the explained
bounds are *bit-identical* to the plain ones (recording must never
perturb the analysis) and that every ledger conserves — the tentpole
invariants, timed at scale.

Appends to ``benchmarks/results/BENCH_explain.json``.

Usage::

    make bench-explain
    python benchmarks/bench_explain.py [--vls N] [--runs N]
"""

import argparse
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from _telemetry import append_record  # noqa: E402

from repro.configs.industrial import (  # noqa: E402
    IndustrialConfigSpec,
    industrial_network,
)
from repro.explain import explain_network  # noqa: E402
from repro.netcalc.analyzer import analyze_network_calculus  # noqa: E402
from repro.obs.costmodel import (  # noqa: E402
    netcalc_cost_ledger,
    trajectory_result_work,
)
from repro.trajectory.analyzer import analyze_trajectory  # noqa: E402

RESULTS_PATH = REPO / "benchmarks" / "results" / "BENCH_explain.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vls", type=int, default=100)
    parser.add_argument("--runs", type=int, default=1)
    args = parser.parse_args(argv)

    network = industrial_network(IndustrialConfigSpec(n_virtual_links=args.vls))

    best_plain = None
    plain_nc = plain_tr = None
    for _ in range(args.runs):
        start = time.perf_counter()
        plain_nc = analyze_network_calculus(network)
        plain_tr = analyze_trajectory(network)
        elapsed = time.perf_counter() - start
        best_plain = elapsed if best_plain is None else min(best_plain, elapsed)

    best_explained = None
    explanation = None
    for _ in range(args.runs):
        start = time.perf_counter()
        explanation = explain_network(network)
        elapsed = time.perf_counter() - start
        best_explained = (
            elapsed if best_explained is None else min(best_explained, elapsed)
        )

    # Recording must not perturb the analysis: bit-identical bounds.
    assert set(plain_nc.paths) == set(explanation.netcalc.paths)
    for key in plain_nc.paths:
        assert (
            plain_nc.paths[key].total_us == explanation.netcalc.paths[key].total_us
        ), key
        assert (
            plain_tr.paths[key].total_us == explanation.trajectory.paths[key].total_us
        ), key
    assert explanation.summary.conservation_failures == 0

    record = {
        "n_virtual_links": args.vls,
        "n_paths": len(plain_nc.paths),
        "cpu_count": os.cpu_count(),
        "runs": args.runs,
        "plain_s": round(best_plain, 4),
        "explained_s": round(best_explained, 4),
        "overhead_ratio": round(best_explained / best_plain, 3),
        "max_abs_residual_us": explanation.summary.max_abs_residual_us,
        "bit_identical": True,
        "conserved": True,
        # explained bounds are bit-identical to plain ones, so the
        # plain results' work signature describes both runs
        "work": {
            "network_calculus": netcalc_cost_ledger(plain_nc).work,
            "trajectory": trajectory_result_work(plain_tr),
        },
    }

    append_record(RESULTS_PATH, record)

    print(
        f"industrial({args.vls} VLs, {record['n_paths']} paths) on "
        f"{record['cpu_count']} CPU(s): plain {best_plain:.3f}s, "
        f"explained {best_explained:.3f}s "
        f"({record['overhead_ratio']:.2f}x, bit-identical, all ledgers "
        f"conserve) -> {RESULTS_PATH.relative_to(REPO)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
