"""Static-priority extension: cost and effect at industrial scale.

Promotes the shortest-BAG decile of the industrial configuration's VLs
to ARINC-664 high priority, runs the SPQ analysis, and reports what the
promotion buys the high class and costs the low class relative to FIFO.
"""

import statistics

from repro.experiments.runner import industrial_config
from repro.netcalc.analyzer import NetworkCalculusAnalyzer
from repro.netcalc.priority import StaticPriorityAnalyzer


def test_spq_industrial(benchmark, industrial_spec):
    base = industrial_config(industrial_spec)
    network = base.copy()
    ranked = sorted(
        network.virtual_links, key=lambda name: network.vl(name).bag_ms
    )
    promoted = set(ranked[: max(1, len(ranked) // 10)])
    for name in promoted:
        network.replace_virtual_link(network.vl(name).with_priority(1))

    spq = benchmark.pedantic(
        lambda: StaticPriorityAnalyzer(network).analyze(), rounds=1, iterations=1
    )
    fifo = NetworkCalculusAnalyzer(network).analyze()

    high_gain = [
        100.0 * (fifo.paths[key].total_us - spq.paths[key].total_us)
        / fifo.paths[key].total_us
        for key in spq.paths
        if key[0] in promoted
    ]
    low_cost = [
        100.0 * (spq.paths[key].total_us - fifo.paths[key].total_us)
        / fifo.paths[key].total_us
        for key in spq.paths
        if key[0] not in promoted
    ]
    print(
        f"\nSPQ at scale: high class mean gain {statistics.mean(high_gain):.1f}% "
        f"({len(high_gain)} paths); low class mean cost "
        f"{statistics.mean(low_cost):.1f}% ({len(low_cost)} paths)"
    )
    assert statistics.mean(high_gain) > 0
