"""The serialization-optimism finding as a reproducible bench."""

from repro.experiments.optimism import run_optimism


def test_optimism_finding(benchmark, persist):
    result = benchmark.pedantic(run_optimism, rounds=1, iterations=1)
    verdicts = {row[0]: row[3] for row in result.rows}
    assert verdicts["paper"] == "VIOLATED"
    assert verdicts["safe"] == "holds"
    persist(result)
