"""Ablation: how much does the grouping technique buy Network Calculus?

The paper credits the grouping refinement with a significant average
improvement on the industrial configuration.  This bench runs the NC
analysis with and without grouping and reports the mean per-path
tightening.
"""

import statistics

from repro.experiments.runner import industrial_config
from repro.netcalc.analyzer import NetworkCalculusAnalyzer


def test_nc_grouping_ablation(benchmark, industrial_spec):
    network = industrial_config(industrial_spec)

    grouped = benchmark.pedantic(
        lambda: NetworkCalculusAnalyzer(network, grouping=True).analyze(),
        rounds=1,
        iterations=1,
    )
    plain = NetworkCalculusAnalyzer(network, grouping=False).analyze()

    improvements = [
        100.0 * (plain.paths[key].total_us - grouped.paths[key].total_us)
        / plain.paths[key].total_us
        for key in grouped.paths
    ]
    mean_improvement = statistics.mean(improvements)
    assert min(improvements) >= -1e-9  # grouping never loosens a bound
    assert mean_improvement > 0  # and helps on average
    print(
        f"\ngrouping ablation: mean NC tightening "
        f"{mean_improvement:.2f}% (max {max(improvements):.2f}%) over "
        f"{len(improvements)} VL paths"
    )
