"""Fleet throughput: configs/sec over a seeded scenario corpus.

Standalone script (not a pytest-benchmark module): it analyzes the
same 200-configuration corpus (``repro.batch.corpus``) three ways —

* **cold** — no cache, pool (when ``jobs >= 2``) created inside the
  timed region, exactly what a first-ever fleet run costs;
* **warm-pool** — a pre-warmed :class:`~repro.batch.pool.WorkerPool`
  reused across the corpus (payload epochs), still no cache;
* **warm-pool+cache** — the warm pool plus a primed shared
  ``cache_dir``, the engine's peak-throughput mode (whole-result and
  ``traj.node`` cross-config hits) —

verifies all three produce bit-identical bounds (one digest over every
path bound of every config), and appends a record to
``benchmarks/results/BENCH_throughput.json``.

The record keeps ``cpu_count`` and ``jobs`` honestly: on a single-core
runner the pool modes degrade to sequential analysis and the
warm-vs-cold ratio is carried by the cache tier alone.

Usage::

    make bench-throughput
    python benchmarks/bench_throughput.py [--configs N] [--vls N] [--jobs N]
"""

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from _telemetry import append_record, record_history  # noqa: E402

from repro.batch.corpus import CorpusSpec, analyze_corpus  # noqa: E402
from repro.batch.pool import WorkerPool, resolve_jobs  # noqa: E402
from repro.batch import shm  # noqa: E402

RESULTS_PATH = REPO / "benchmarks" / "results" / "BENCH_throughput.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--configs", type=int, default=200,
                        help="corpus size (default 200)")
    parser.add_argument("--vls", type=int, default=24,
                        help="virtual links in the base topology (default 24)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker count (0 = all cores; 1 = sequential)")
    args = parser.parse_args(argv)

    spec = CorpusSpec(configs=args.configs, n_virtual_links=args.vls)
    jobs = resolve_jobs(args.jobs)

    start = time.perf_counter()
    cold = analyze_corpus(spec, jobs=jobs)
    cold_s = time.perf_counter() - start

    pool = WorkerPool(jobs, None) if jobs >= 2 else None
    try:
        start = time.perf_counter()
        warm = analyze_corpus(spec, jobs=jobs, pool=pool)
        warm_pool_s = time.perf_counter() - start

        with tempfile.TemporaryDirectory() as cache_dir:
            # prime: one untimed pass fills the shared cache tier
            primed = analyze_corpus(
                spec, jobs=jobs, pool=pool, cache_dir=cache_dir
            )
            start = time.perf_counter()
            cached = analyze_corpus(
                spec, jobs=jobs, pool=pool, cache_dir=cache_dir
            )
            warm_cache_s = time.perf_counter() - start
    finally:
        if pool is not None:
            pool.close()

    digests = {cold.digest, warm.digest, primed.digest, cached.digest}
    assert len(digests) == 1, f"bounds diverged across modes: {digests}"
    assert shm.active_owned() == [], (
        f"leaked shared-memory segments: {shm.active_owned()}"
    )

    record = {
        "configs": spec.configs,
        "n_virtual_links": spec.n_virtual_links,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "cold_s": round(cold_s, 4),
        "warm_pool_s": round(warm_pool_s, 4),
        "warm_cache_s": round(warm_cache_s, 4),
        "cold_cps": round(spec.configs / cold_s, 3),
        "warm_pool_cps": round(spec.configs / warm_pool_s, 3),
        "warm_cache_cps": round(spec.configs / warm_cache_s, 3),
        "warm_over_cold": round(cold_s / warm_cache_s, 3),
        "bit_identical": True,
        "bounds_digest": cold.digest,
        "work": {
            "corpus": {
                "configs_analyzed": len(cold.records),
                "paths_bound": cold.paths_bound,
            },
        },
    }

    append_record(RESULTS_PATH, record)
    import hashlib

    record_history(
        "bench-throughput",
        config={
            "configs": spec.configs,
            "n_virtual_links": spec.n_virtual_links,
        },
        config_digest=hashlib.sha256(repr(spec).encode()).hexdigest(),
        bounds_digest=cold.digest,
        work=record["work"],
        execution={"jobs": jobs, "cpu_count": record["cpu_count"]},
        wall_ms=round((cold_s + warm_pool_s + warm_cache_s) * 1e3, 3),
    )

    print(
        f"corpus({spec.configs} configs, {spec.n_virtual_links} VLs, "
        f"{cold.paths_bound} paths) on {record['cpu_count']} CPU(s), "
        f"jobs={jobs}: cold {record['cold_cps']} cfg/s, "
        f"warm-pool {record['warm_pool_cps']} cfg/s, "
        f"warm-pool+cache {record['warm_cache_cps']} cfg/s "
        f"({record['warm_over_cold']:.1f}x vs cold, bit-identical) "
        f"-> {RESULTS_PATH.relative_to(REPO)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
