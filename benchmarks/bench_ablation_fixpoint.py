"""Ablation: Smax fixed-point refinement in the Trajectory analyzer.

The arrival-jitter terms ``A_ij`` use upper bounds on upstream delays
(``Smax``).  The analyzer seeds them from Network Calculus and then
tightens them with trajectory prefix bounds; this bench quantifies the
tightening and its cost relative to the single-pass variant.
"""

import statistics

from repro.experiments.runner import industrial_config
from repro.trajectory.analyzer import TrajectoryAnalyzer


def test_trajectory_fixpoint_ablation(benchmark, industrial_spec):
    network = industrial_config(industrial_spec)

    refined = benchmark.pedantic(
        lambda: TrajectoryAnalyzer(network, refine_smax=True).analyze(),
        rounds=1,
        iterations=1,
    )
    single = TrajectoryAnalyzer(network, refine_smax=False).analyze()

    improvements = [
        100.0 * (single.paths[key].total_us - refined.paths[key].total_us)
        / single.paths[key].total_us
        for key in refined.paths
    ]
    assert min(improvements) >= -1e-6  # refinement never loosens
    print(
        f"\nfixpoint ablation: {refined.refinement_iterations} sweeps, "
        f"mean tightening {statistics.mean(improvements):.3f}% "
        f"(max {max(improvements):.2f}%)"
    )
