"""``afdx whatif`` end to end: output, manifest wiring, failure modes."""

import json

import pytest

from repro.cli import EXIT_CONFIG_ERROR, main
from repro.configs import fig2_network
from repro.network import network_to_json


@pytest.fixture()
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    network_to_json(fig2_network(), path)
    return str(path)


def _script(tmp_path, edits):
    path = tmp_path / "edits.json"
    path.write_text(json.dumps({"edits": edits}))
    return str(path)


def test_whatif_prints_changed_bounds(fig2_json, tmp_path, capsys):
    script = _script(tmp_path, [{"op": "retime", "vl": "v1", "bag_ms": 8}])
    assert main(["whatif", fig2_json, script]) == 0
    out = capsys.readouterr().out
    assert out.startswith("whatif: 1 edit(s), dirty ")
    assert "path bound(s) changed" in out
    assert "v1[0]" in out
    assert "changed" in out
    assert "->" in out


def test_whatif_remove_prints_removed_kind(fig2_json, tmp_path, capsys):
    script = _script(tmp_path, [{"op": "remove", "vl": "v1"}])
    assert main(["whatif", fig2_json, script]) == 0
    out = capsys.readouterr().out
    assert "removed" in out
    assert "-" in out  # absent bounds render as "-"


def test_whatif_matches_cold_analysis_of_edited_network(fig2_json, tmp_path, capsys):
    """The printed after-bounds are the cold bounds of the edited network."""
    from repro.configs import fig2_network
    from repro.incremental.edits import RetimeVL, apply_edits
    from repro.trajectory.analyzer import analyze_trajectory

    script = _script(tmp_path, [{"op": "retime", "vl": "v1", "bag_ms": 8}])
    assert main(["whatif", fig2_json, script]) == 0
    out = capsys.readouterr().out
    edited, _ = apply_edits(fig2_network(), [RetimeVL(name="v1", bag_ms=8)])
    cold = analyze_trajectory(edited, serialization="windowed")
    expected = f"{cold.paths[('v1', 0)].total_us:.1f}"
    v1_line = next(line for line in out.splitlines() if line.startswith("v1[0]"))
    assert v1_line.rstrip().endswith(expected)


def test_whatif_manifest_records_dirty_region_and_cache(fig2_json, tmp_path, capsys):
    from repro.obs import validate_manifest

    script = _script(tmp_path, [{"op": "retime", "vl": "v1", "bag_ms": 8}])
    out = tmp_path / "manifest.json"
    assert main(["whatif", fig2_json, script, "--metrics-json", str(out)]) == 0
    manifest = json.loads(out.read_text())
    validate_manifest(manifest)
    assert manifest["command"] == "whatif"
    gauges = manifest["metrics"]["gauges"]
    assert gauges["whatif.dirty_ports"] > 0
    assert gauges["whatif.dirty_vls"] > 0
    assert gauges["whatif.changed_paths"] > 0
    assert gauges["whatif.cache_entries"] > 0
    counters = manifest["metrics"]["counters"]
    assert counters["whatif.cache_hits"] > 0  # clean region reused
    assert counters["whatif.cache_misses"] > 0  # dirty region recomputed
    # both analyzers' incremental stats ride along
    assert "network_calculus" in manifest["analyzers"]
    assert "trajectory" in manifest["analyzers"]


def test_whatif_cache_dir_persists_across_invocations(fig2_json, tmp_path, capsys):
    script = _script(tmp_path, [{"op": "retime", "vl": "v1", "bag_ms": 8}])
    cache_dir = str(tmp_path / "cache")
    assert main(["whatif", fig2_json, script, "--cache-dir", cache_dir]) == 0
    first = capsys.readouterr().out
    assert main(["whatif", fig2_json, script, "--cache-dir", cache_dir]) == 0
    second = capsys.readouterr().out
    assert first == second  # warm run prints identical bounds


def test_whatif_malformed_script_exits_with_config_code(fig2_json, tmp_path, capsys):
    script = _script(tmp_path, [{"op": "retime", "vl": "v1"}])  # bag_ms missing
    assert main(["whatif", fig2_json, script]) == EXIT_CONFIG_ERROR
    err = capsys.readouterr().err
    assert err.startswith("afdx: error:")
    assert "edit #1" in err


def test_whatif_unknown_vl_exits_with_config_code(fig2_json, tmp_path, capsys):
    script = _script(tmp_path, [{"op": "retime", "vl": "ghost", "bag_ms": 8}])
    assert main(["whatif", fig2_json, script]) == EXIT_CONFIG_ERROR
    assert "ghost" in capsys.readouterr().err
