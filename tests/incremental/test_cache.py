"""BoundCache: LRU behaviour, disk persistence, codec round trips."""

import json

import pytest

from repro.configs.random_topology import random_network
from repro.incremental.cache import BoundCache, _decode, _encode
from repro.netcalc.analyzer import analyze_network_calculus
from repro.netcalc.results import PortAnalysis
from repro.trajectory.analyzer import analyze_trajectory


def _port(delay=1.25):
    return PortAnalysis(
        port_id=("a", "b"),
        delay_us=delay,
        backlog_bits=1000.5,
        utilization=0.25,
        n_flows=3,
        n_groups=2,
    )


class TestMemoryLayer:
    def test_get_put_and_counters(self):
        cache = BoundCache()
        assert cache.get("nc.port", "f1") is None
        cache.put("nc.port", "f1", _port())
        assert cache.get("nc.port", "f1") == _port()
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "disk_hits": 0,
            "evictions": 0,
            "invalidations": 0,
            "stores": 1,
        }
        assert cache.hit_rate == 0.5

    def test_lru_evicts_least_recently_used(self):
        cache = BoundCache(max_entries=2)
        cache.put("nc.port", "a", _port(1.0))
        cache.put("nc.port", "b", _port(2.0))
        cache.get("nc.port", "a")  # refresh a; b becomes LRU
        cache.put("nc.port", "c", _port(3.0))
        assert cache.get("nc.port", "b") is None
        assert cache.get("nc.port", "a") is not None
        assert cache.stats()["evictions"] == 1

    def test_invalidate(self):
        cache = BoundCache()
        cache.put("nc.port", "a", _port())
        assert cache.invalidate("nc.port", "a") is True
        assert cache.invalidate("nc.port", "a") is False
        assert cache.get("nc.port", "a") is None
        assert cache.stats()["invalidations"] == 1

    def test_namespaces_do_not_collide(self):
        cache = BoundCache()
        cache.put("nc.port", "same-fp", _port())
        assert cache.get("traj.walk", "same-fp") is None

    def test_max_entries_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            BoundCache(max_entries=0)


class TestDiskLayer:
    def test_round_trip_across_instances(self, tmp_path):
        first = BoundCache(cache_dir=tmp_path)
        first.put("nc.port", "abcd", _port())
        second = BoundCache(cache_dir=tmp_path)
        value = second.get("nc.port", "abcd")
        assert value == _port()
        assert second.stats()["disk_hits"] == 1

    def test_floats_survive_json_exactly(self, tmp_path):
        ugly = _port(delay=0.1 + 0.2)  # 0.30000000000000004
        first = BoundCache(cache_dir=tmp_path)
        first.put("nc.port", "f", ugly)
        second = BoundCache(cache_dir=tmp_path)
        assert second.get("nc.port", "f").delay_us == ugly.delay_us

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = BoundCache(cache_dir=tmp_path)
        cache.put("nc.port", "dead", _port())
        path = cache._entry_path("nc.port", "dead")
        path.write_text("{ torn")
        fresh = BoundCache(cache_dir=tmp_path)
        assert fresh.get("nc.port", "dead") is None

    def test_invalidate_removes_disk_entry(self, tmp_path):
        cache = BoundCache(cache_dir=tmp_path)
        cache.put("nc.port", "gone", _port())
        cache.invalidate("nc.port", "gone")
        fresh = BoundCache(cache_dir=tmp_path)
        assert fresh.get("nc.port", "gone") is None


class TestResultCodec:
    @pytest.fixture(scope="class")
    def network(self):
        return random_network(5, n_switches=3, n_end_systems=6, n_virtual_links=8)

    def test_nc_result_round_trip(self, network):
        result = analyze_network_calculus(network)
        decoded = _decode(json.loads(json.dumps(_encode(result))))
        assert decoded.grouping == result.grouping
        assert decoded.ports == result.ports
        assert decoded.paths == result.paths

    def test_trajectory_result_round_trip(self, network):
        result = analyze_trajectory(network)
        decoded = _decode(json.loads(json.dumps(_encode(result))))
        assert decoded.serialization == result.serialization
        assert decoded.refinement_iterations == result.refinement_iterations
        assert decoded.paths == result.paths

    def test_cached_results_exclude_stats(self, network):
        # run-specific observability must not be served from the cache
        cache = BoundCache()
        result = analyze_trajectory(network, cache=cache, collect_stats=True)
        assert result.stats is not None
        repeat = analyze_trajectory(network, cache=cache, collect_stats=True)
        assert repeat.stats is not None
        assert repeat.stats["counters"].get("trajectory.result_cache_hit") == 1
        assert repeat.paths == result.paths

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            _encode(object())
        with pytest.raises(ValueError):
            _decode({"kind": "mystery"})

    def test_node_fold_round_trip(self, tmp_path):
        """The ``traj.node`` fold value survives the JSON disk tier
        exactly (repr round-trips every float)."""
        fold = (
            (1.25, 3.0000000000000004, 7.1e-300),
            (-0.5, 0.0),
            ((12.5, 1500.0), (25.0, 64.0)),
        )
        decoded = _decode(json.loads(json.dumps(_encode(fold))))
        assert decoded == fold
        assert isinstance(decoded, tuple)
        assert all(isinstance(part, tuple) for part in decoded)

        cache = BoundCache(cache_dir=tmp_path)
        cache.put("traj.node", "aa" + "0" * 62, fold)
        fresh = BoundCache(cache_dir=tmp_path)
        assert fresh.get("traj.node", "aa" + "0" * 62) == fold
