"""DeltaAnalyzer: incremental bounds == cold bounds, bit for bit."""

import random

import pytest

from repro.configs.random_topology import random_network
from repro.incremental import DeltaAnalyzer
from repro.incremental.edits import (
    AddVL,
    RemoveVL,
    RerouteVL,
    ResizeVL,
    RetimeVL,
    apply_edits,
)
from repro.netcalc.analyzer import analyze_network_calculus
from repro.trajectory.analyzer import analyze_trajectory


def _cold(network):
    return analyze_network_calculus(network), analyze_trajectory(network)


def _random_edit(rng, network, removed):
    """One valid, load-non-increasing edit against the current network."""
    live = sorted(network.virtual_links)
    ops = ["retime", "resize", "reroute"]
    if removed:
        ops.append("add")
    if len(live) > 2:
        ops.append("remove")
    op = rng.choice(ops)
    if op == "add":
        name = rng.choice(sorted(removed))
        return AddVL(vl=removed.pop(name))
    name = rng.choice(live)
    vl = network.vl(name)
    if op == "remove":
        removed[name] = vl
        return RemoveVL(name=name)
    if op == "resize":
        return ResizeVL(name=name, s_max_bytes=max(64, vl.s_max_bytes // 2))
    if op == "reroute":
        return RerouteVL(name=name, paths=vl.paths[:1])
    return RetimeVL(name=name, bag_ms=vl.bag_ms * 2)


class TestEquivalence:
    """The acceptance gate: incremental results are exact, not approximate."""

    def test_randomized_edit_sequence_matches_cold(self):
        rng = random.Random(20260805)
        network = random_network(17, n_switches=3, n_end_systems=6, n_virtual_links=10)
        engine = DeltaAnalyzer(network)
        engine.analyze_base()
        removed = {}
        for _ in range(8):
            edit = _random_edit(rng, engine.network, removed)
            delta = engine.apply([edit])
            nc, tr = _cold(engine.network)
            assert delta.netcalc.ports == nc.ports
            assert delta.netcalc.paths == nc.paths
            assert delta.trajectory.paths == tr.paths
            assert delta.trajectory.refinement_iterations == tr.refinement_iterations

    def test_multi_edit_batch_matches_cold(self):
        network = random_network(5, n_switches=3, n_end_systems=6, n_virtual_links=9)
        names = sorted(network.virtual_links)
        edits = [
            RetimeVL(name=names[0], bag_ms=network.vl(names[0]).bag_ms * 2),
            ResizeVL(name=names[1], s_max_bytes=64),
            RemoveVL(name=names[2]),
        ]
        engine = DeltaAnalyzer(network)
        delta = engine.apply(edits)  # analyze_base runs implicitly
        nc, tr = _cold(engine.network)
        assert delta.netcalc.paths == nc.paths
        assert delta.trajectory.paths == tr.paths


class TestChaining:
    def test_apply_chains_onto_previous_network(self):
        network = random_network(9, n_switches=3, n_end_systems=6, n_virtual_links=8)
        name = sorted(network.virtual_links)[0]
        bag = network.vl(name).bag_ms
        engine = DeltaAnalyzer(network)
        engine.apply([RetimeVL(name=name, bag_ms=bag * 2)])
        engine.apply([RetimeVL(name=name, bag_ms=bag * 4)])
        assert engine.network.vl(name).bag_ms == bag * 4
        # the original network object is never touched
        assert network.vl(name).bag_ms == bag

    def test_analyze_base_is_idempotent(self):
        network = random_network(9, n_switches=3, n_end_systems=6, n_virtual_links=8)
        engine = DeltaAnalyzer(network)
        first = engine.analyze_base()
        assert engine.analyze_base() is first


class TestChangeReporting:
    @pytest.fixture()
    def network(self):
        return random_network(13, n_switches=3, n_end_systems=6, n_virtual_links=8)

    def test_retime_reports_changed_kind(self, network):
        name = sorted(network.virtual_links)[0]
        engine = DeltaAnalyzer(network)
        delta = engine.apply(
            [RetimeVL(name=name, bag_ms=network.vl(name).bag_ms * 2)]
        )
        assert delta.changed  # a slower BAG relaxes some bound somewhere
        kinds = {change.kind for change in delta.changed.values()}
        assert kinds == {"changed"}

    def test_remove_reports_removed_paths(self, network):
        name = sorted(network.virtual_links)[0]
        engine = DeltaAnalyzer(network)
        delta = engine.apply([RemoveVL(name=name)])
        removed = [c for c in delta.changed.values() if c.kind == "removed"]
        assert len(removed) == len(network.vl(name).paths)
        assert all(c.flow[0] == name for c in removed)
        assert all(c.nc_after_us is None for c in removed)

    def test_add_reports_added_paths(self, network):
        name = sorted(network.virtual_links)[0]
        vl = network.vl(name)
        base, _ = apply_edits(network, [RemoveVL(name=name)])
        engine = DeltaAnalyzer(base)
        delta = engine.apply([AddVL(vl=vl)])
        added = [c for c in delta.changed.values() if c.kind == "added"]
        assert {c.flow for c in added} >= {(name, i) for i in range(len(vl.paths))}
        assert all(c.nc_before_us is None for c in added)

    def test_dirty_region_recorded_in_stats(self, network):
        name = sorted(network.virtual_links)[0]
        engine = DeltaAnalyzer(network)
        delta = engine.apply(
            [RetimeVL(name=name, bag_ms=network.vl(name).bag_ms * 2)]
        )
        stats = delta.stats
        assert 0 < stats["n_dirty_ports"] <= stats["n_ports"]
        assert 0 < stats["n_dirty_vls"] <= stats["n_vls"]
        assert delta.dirty_ports and delta.dirty_vl_names
        assert name in delta.dirty_vl_names


class TestCacheSharing:
    def test_warm_repeat_is_served_from_the_result_tier(self):
        network = random_network(21, n_switches=3, n_end_systems=6, n_virtual_links=8)
        name = sorted(network.virtual_links)[0]
        edit = RetimeVL(name=name, bag_ms=network.vl(name).bag_ms * 2)
        engine = DeltaAnalyzer(network)
        engine.analyze_base()
        first = engine.apply([edit])

        repeat = DeltaAnalyzer(network, cache=engine.cache)
        repeat.analyze_base()
        second = repeat.apply([edit])
        assert second.netcalc.paths == first.netcalc.paths
        assert second.trajectory.paths == first.trajectory.paths
        # the repeat round never recomputes: both analyses are whole-result hits
        assert second.stats["cache"]["misses"] == 0
        assert second.stats["cache"]["hits"] >= 2

    def test_disk_cache_round_trip(self, tmp_path):
        network = random_network(23, n_switches=3, n_end_systems=6, n_virtual_links=8)
        name = sorted(network.virtual_links)[0]
        edit = RetimeVL(name=name, bag_ms=network.vl(name).bag_ms * 2)
        first = DeltaAnalyzer(network, cache_dir=tmp_path)
        warm = first.apply([edit])

        # a fresh engine (fresh in-memory LRU) on the same directory
        second = DeltaAnalyzer(network, cache_dir=tmp_path)
        repeat = second.apply([edit])
        assert repeat.netcalc.paths == warm.netcalc.paths
        assert repeat.trajectory.paths == warm.trajectory.paths
        assert repeat.stats["cache"]["misses"] == 0
        assert second.cache.stats()["disk_hits"] > 0

    def test_cache_or_cache_dir_not_both(self, tmp_path):
        from repro.incremental.cache import BoundCache

        with pytest.raises(ValueError, match="not both"):
            DeltaAnalyzer(
                random_network(3, n_switches=3, n_end_systems=6, n_virtual_links=4),
                cache=BoundCache(),
                cache_dir=tmp_path,
            )


class TestInsertionOrderCanonicalization:
    """Remove + re-add restores a *set-equal* network whose dicts/sets
    have a different insertion history.  The result-tier cache treats it
    as identical (sorted fingerprints), so the analyzers must be
    insertion-order-insensitive down to float-summation order — the
    regression here was ``port_utilization`` summing rates in frozenset
    iteration order, which varies with insertion history under hash
    seeds that collide."""

    def test_readded_network_analyzes_bit_identical_to_base(self):
        network = random_network(30, n_switches=3, n_end_systems=6,
                                 n_virtual_links=10)
        name = sorted(network.virtual_links)[3]
        vl = network.vl(name)
        removed, _ = apply_edits(network, [RemoveVL(name=name)])
        restored, _ = apply_edits(removed, [AddVL(vl=vl)])
        base_nc, base_tr = _cold(network)
        re_nc, re_tr = _cold(restored)
        assert re_nc.ports == base_nc.ports
        assert re_nc.paths == base_nc.paths
        assert re_tr.paths == base_tr.paths
        for port in network.used_ports():
            assert network.port_utilization(port) == restored.port_utilization(port)
