"""Fingerprints: stability, sensitivity, and the Merkle dirty property."""

import subprocess
import sys

from repro.configs.random_topology import random_network
from repro.incremental.delta import dirty_closure
from repro.incremental.edits import RetimeVL, apply_edits
from repro.incremental.fingerprint import (
    netcalc_port_fingerprints,
    network_fingerprint,
    pack_floats,
    stable_digest,
    vl_fingerprint,
)


class TestStableDigest:
    def test_deterministic(self):
        assert stable_digest("a", 1.5, ("x", 2)) == stable_digest("a", 1.5, ("x", 2))

    def test_type_sensitive(self):
        # "1.0" the string and 1.0 the float must not collide
        assert stable_digest("1.0") != stable_digest(1.0)

    def test_float_exactness(self):
        assert stable_digest(0.1 + 0.2) != stable_digest(0.3)

    def test_structure_sensitive(self):
        assert stable_digest(("a", "b"), "c") != stable_digest(("a",), ("b", "c"))

    def test_hash_seed_independence(self):
        # digests must agree across interpreters with different hash seeds
        code = (
            "from repro.incremental.fingerprint import stable_digest;"
            "print(stable_digest('x', 1.25, ('y', 3)))"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            ).stdout
            for seed in ("0", "12345")
        }
        assert len(outs) == 1

    def test_pack_floats_is_lossless(self):
        values = [0.1 + 0.2, 1e-308, -0.0, 3.5]
        assert pack_floats(values) == pack_floats(list(values))
        assert pack_floats([0.3]) != pack_floats([0.1 + 0.2])


class TestNetworkFingerprints:
    def setup_method(self):
        self.network = random_network(
            11, n_switches=3, n_end_systems=6, n_virtual_links=8
        )

    def test_copy_has_same_fingerprint(self):
        assert network_fingerprint(self.network) == network_fingerprint(
            self.network.copy()
        )

    def test_edit_changes_network_fingerprint(self):
        name = sorted(self.network.virtual_links)[0]
        edited, _ = apply_edits(
            self.network, [RetimeVL(name=name, bag_ms=self.network.vl(name).bag_ms * 2)]
        )
        assert network_fingerprint(edited) != network_fingerprint(self.network)

    def test_vl_fingerprint_sensitivity(self):
        name = sorted(self.network.virtual_links)[0]
        vl = self.network.vl(name)
        assert vl_fingerprint(vl) == vl_fingerprint(vl)
        assert vl_fingerprint(vl.with_bag_ms(vl.bag_ms * 2)) != vl_fingerprint(vl)
        assert vl_fingerprint(vl.with_s_max_bytes(65)) != vl_fingerprint(vl)

    def test_merkle_port_fingerprints_dirty_exactly_the_closure(self):
        """The content-addressed and closure views of dirtiness agree.

        A port's NC fingerprint changes iff the port is in the
        downstream closure of the edit — the Merkle fold over upstream
        digests IS the closure computation, done by hashing.
        """
        name = sorted(self.network.virtual_links)[0]
        edited, impact = apply_edits(
            self.network, [RetimeVL(name=name, bag_ms=self.network.vl(name).bag_ms * 2)]
        )
        before = netcalc_port_fingerprints(self.network, True, 0.0)
        after = netcalc_port_fingerprints(edited, True, 0.0)
        assert set(before) == set(after)  # same used ports
        changed = {pid for pid in before if before[pid] != after[pid]}
        assert changed == set(dirty_closure(edited, impact.dirty_ports))
