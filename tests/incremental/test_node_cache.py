"""The ``traj.node`` namespace: cross-config fold memoization.

The fast kernel's batched busy-period folds are content-addressed by a
chained per-port structural digest plus the sweep-varying floats and
the port's packed ``Smax`` slice, so a structurally identical subpath
in a *different* configuration (or process) hits through the disk
tier.  These tests pin that: a sibling config produced by an edit
re-uses folds on the untouched subtrees and still lands bit-identical
bounds.
"""

import pytest

from repro.configs import random_network
from repro.incremental.cache import BoundCache
from repro.incremental.edits import RetimeVL, apply_edits
from repro.trajectory.analyzer import TrajectoryAnalyzer, analyze_trajectory


def _network():
    # wide enough that the vectorized fold path (and with it the node
    # cache) engages, small enough to stay cheap
    return random_network(11, n_switches=2, n_end_systems=4, n_virtual_links=40)


def _variant(network):
    vl0 = sorted(network.virtual_links)[0]
    edited, _impact = apply_edits(
        network, [RetimeVL(name=vl0, bag_ms=network.vl(vl0).bag_us * 2 / 1000)]
    )
    return edited


def _analyze(network, cache):
    analyzer = TrajectoryAnalyzer(
        network, serialization="safe", kernel="fast", cache=cache
    )
    return analyzer, analyzer.analyze()


class TestNodeNamespace:
    def test_cold_run_stores_folds(self, tmp_path):
        analyzer, _ = _analyze(_network(), BoundCache(cache_dir=tmp_path))
        hits, misses = analyzer.cache_stats()["node"]
        assert hits == 0
        assert misses > 0
        assert list((tmp_path / "traj.node").rglob("*.json")), (
            "misses were not persisted to the disk tier"
        )

    def test_cross_config_hits_with_identical_bounds(self, tmp_path):
        base = _network()
        sibling = _variant(base)
        _analyze(base, BoundCache(cache_dir=tmp_path))

        # fresh cache object, same disk tier: only the disk entries
        # written by the base config can satisfy these probes
        analyzer, cached = _analyze(sibling, BoundCache(cache_dir=tmp_path))
        hits, _misses = analyzer.cache_stats()["node"]
        assert hits > 0, "no cross-config fold reuse on untouched subtrees"

        plain = analyze_trajectory(sibling, serialization="safe", kernel="fast")
        assert set(plain.paths) == set(cached.paths)
        for key in plain.paths:
            assert plain.paths[key].total_us == cached.paths[key].total_us, key

    def test_not_engaged_outside_incremental_mode(self):
        analyzer = TrajectoryAnalyzer(_network(), serialization="safe", kernel="fast")
        analyzer.analyze()
        assert "node" not in analyzer.cache_stats()
