"""Edit model: pure application, impact seeds, script parsing."""

import pytest

from repro.configs.random_topology import random_network
from repro.errors import ConfigurationError
from repro.incremental.edits import (
    AddVL,
    RemoveVL,
    ResizeVL,
    RetimeVL,
    RerouteVL,
    apply_edits,
    parse_edit_script,
)


@pytest.fixture()
def network():
    return random_network(3, n_switches=3, n_end_systems=6, n_virtual_links=8)


class TestApplyEdits:
    def test_input_network_is_not_mutated(self, network):
        name = sorted(network.virtual_links)[0]
        before = network.vl(name).bag_ms
        edited, _ = apply_edits(network, [RetimeVL(name=name, bag_ms=before * 2)])
        assert network.vl(name).bag_ms == before
        assert edited.vl(name).bag_ms == before * 2

    def test_retime_impact_covers_path_ports(self, network):
        name = sorted(network.virtual_links)[0]
        vl = network.vl(name)
        _, impact = apply_edits(network, [RetimeVL(name=name, bag_ms=vl.bag_ms * 2)])
        expected = {
            (a, b) for path in vl.paths for a, b in zip(path, path[1:])
        }
        assert impact.dirty_ports == frozenset(expected)
        assert impact.changed_vls == frozenset({name})

    def test_remove_then_readd_round_trips(self, network):
        name = sorted(network.virtual_links)[0]
        vl = network.vl(name)
        removed, _ = apply_edits(network, [RemoveVL(name=name)])
        assert name not in removed.virtual_links
        readded, impact = apply_edits(removed, [AddVL(vl=vl)])
        assert readded.vl(name) == vl
        assert name in impact.changed_vls

    def test_remove_drops_unused_ports_from_impact(self, network):
        # a removed VL's exclusive ports carry no traffic afterwards, so
        # they have no analysis to redo and must not seed the closure
        name = sorted(network.virtual_links)[0]
        edited, impact = apply_edits(network, [RemoveVL(name=name)])
        assert impact.dirty_ports <= frozenset(edited.used_ports())

    def test_resize_and_reroute(self, network):
        name = sorted(network.virtual_links)[0]
        vl = network.vl(name)
        edited, _ = apply_edits(
            network,
            [
                ResizeVL(name=name, s_max_bytes=64),
                RerouteVL(name=name, paths=vl.paths[:1]),
            ],
        )
        assert edited.vl(name).s_max_bytes == 64
        assert edited.vl(name).paths == vl.paths[:1]

    def test_unknown_vl_raises_configuration_error(self, network):
        with pytest.raises(ConfigurationError, match="retime nope"):
            apply_edits(network, [RetimeVL(name="nope", bag_ms=8)])

    def test_duplicate_add_raises(self, network):
        name = sorted(network.virtual_links)[0]
        with pytest.raises(ConfigurationError):
            apply_edits(network, [AddVL(vl=network.vl(name))])


class TestParseEditScript:
    def test_all_ops_parse(self):
        edits = parse_edit_script(
            {
                "edits": [
                    {"op": "retime", "vl": "a", "bag_ms": 8},
                    {"op": "resize", "vl": "b", "s_max_bytes": 300},
                    {"op": "reroute", "vl": "c", "paths": [["e1", "S1", "e2"]]},
                    {"op": "remove", "vl": "d"},
                    {
                        "op": "add",
                        "vl": {
                            "name": "n",
                            "source": "e1",
                            "bag_ms": 16,
                            "s_max_bytes": 200,
                            "paths": [["e1", "S1", "e2"]],
                        },
                    },
                ]
            }
        )
        assert [type(e).__name__ for e in edits] == [
            "RetimeVL",
            "ResizeVL",
            "RerouteVL",
            "RemoveVL",
            "AddVL",
        ]
        assert edits[2].paths == (("e1", "S1", "e2"),)
        assert edits[4].vl.s_min_bytes == 64  # default

    def test_missing_edits_array(self):
        with pytest.raises(ConfigurationError, match="'edits' array"):
            parse_edit_script({})

    def test_unknown_op_reports_position(self):
        with pytest.raises(ConfigurationError, match="edit #1"):
            parse_edit_script({"edits": [{"op": "frobnicate", "vl": "a"}]})

    def test_missing_field_reports_position(self):
        with pytest.raises(ConfigurationError, match="edit #2"):
            parse_edit_script(
                {"edits": [{"op": "remove", "vl": "a"}, {"op": "retime", "vl": "b"}]}
            )
