"""Shared sweep machinery and the optimism experiment."""

import pytest

from repro.experiments.optimism import optimism_network, run_optimism
from repro.experiments.sweeps import (
    DEFAULT_BAG_SWEEP_MS,
    DEFAULT_S_MAX_SWEEP_BYTES,
    bounds_for_v1,
)


class TestSweeps:
    def test_default_grids_match_paper_axes(self):
        assert DEFAULT_S_MAX_SWEEP_BYTES[0] == 100
        assert DEFAULT_S_MAX_SWEEP_BYTES[-1] == 1500
        assert DEFAULT_BAG_SWEEP_MS == (1, 2, 4, 8, 16, 32, 64, 128)

    def test_default_point_matches_fig2(self):
        nc, trajectory = bounds_for_v1()
        assert trajectory == pytest.approx(232.0)
        assert nc == pytest.approx(276.0, abs=0.1)

    def test_sweep_does_not_leak_between_calls(self):
        before = bounds_for_v1()
        bounds_for_v1(s_max_bytes=1500, bag_ms=1)
        after = bounds_for_v1()
        assert before == after

    def test_other_flows_unchanged(self):
        # changing v1 must not change the sample configuration defaults
        from repro.configs.fig2 import fig2_network

        net = fig2_network()
        assert net.vl("v3").s_max_bytes == 500.0


class TestOptimismExperiment:
    def test_rows_cover_all_modes(self):
        result = run_optimism(duration_ms=30)
        assert [row[0] for row in result.rows] == ["paper", "windowed", "safe"]

    def test_paper_mode_flagged(self):
        result = run_optimism(duration_ms=30)
        verdicts = {row[0]: row[3] for row in result.rows}
        assert verdicts["paper"] == "VIOLATED"
        assert verdicts["safe"] == "holds"

    def test_network_structure(self):
        net = optimism_network()
        assert len(net.virtual_links) == 10
        assert len(net.switches()) == 1
