"""Experiment registry and result rendering."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult, get_experiment, run_experiment


def test_all_paper_artifacts_registered():
    assert set(EXPERIMENTS) == {
        "table1",
        "fig3_4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "optimism",
    }


def test_get_unknown_experiment():
    with pytest.raises(KeyError, match="known:"):
        get_experiment("fig99")


def test_run_experiment_dispatches():
    result = run_experiment("fig3_4")
    assert result.experiment_id == "fig3_4"


def test_render_aligns_columns():
    result = ExperimentResult(
        experiment_id="x",
        title="demo",
        headers=("a", "bbbb"),
        rows=[(1, 2.5), ("long", 3)],
        notes=["hello"],
    )
    text = result.render()
    lines = text.splitlines()
    assert lines[0] == "== x: demo =="
    assert "note: hello" in text
    # header separator present
    assert set(lines[2]) <= {"-", " "}


def test_render_formats_floats():
    result = ExperimentResult("x", "t", ("v",), rows=[(1.23456,)])
    assert "1.23" in result.render()
