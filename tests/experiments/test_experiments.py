"""Experiment drivers produce well-formed artefacts (reduced scale)."""

import pytest

from repro.configs import IndustrialConfigSpec
from repro.experiments import (
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
)

SPEC = IndustrialConfigSpec(n_virtual_links=120, end_systems_per_switch=5)


class TestTable1:
    def test_rows(self):
        result = run_table1(spec=SPEC)
        assert [row[0] for row in result.rows] == ["Mean", "Maximum", "Minimum"]
        assert all(len(row) == 3 for row in result.rows)

    def test_percent_formatting(self):
        result = run_table1(spec=SPEC)
        assert all(cell.endswith("%") for row in result.rows for cell in row[1:])


class TestFig5:
    def test_one_row_per_bag(self):
        result = run_fig5(spec=SPEC)
        bags = [row[0] for row in result.rows]
        assert bags == sorted(bags)
        assert set(bags) <= {1, 2, 4, 8, 16, 32, 64, 128}

    def test_populations_sum_to_path_count(self):
        result = run_fig5(spec=SPEC)
        from repro.experiments.runner import industrial_config

        total = sum(row[2] for row in result.rows)
        assert total == len(industrial_config(SPEC).flow_paths())


class TestFig6:
    def test_bins_cover_ethernet_range(self):
        result = run_fig6(spec=SPEC)
        first_bin = result.rows[0][0]
        assert first_bin.startswith("0") or first_bin.startswith("6") or "-" in first_bin
        assert all(0.0 <= row[1] <= 100.0 for row in result.rows)

    def test_custom_bin_size(self):
        coarse = run_fig6(spec=SPEC, bin_bytes=500)
        fine = run_fig6(spec=SPEC, bin_bytes=100)
        assert len(coarse.rows) < len(fine.rows)


class TestFig7:
    def test_sweep_grid(self):
        result = run_fig7(s_max_values=(100, 500, 1000))
        assert [row[0] for row in result.rows] == [100, 500, 1000]
        assert all(row[1] > 0 and row[2] > 0 for row in result.rows)

    def test_diff_column_consistent(self):
        result = run_fig7(s_max_values=(100, 1000))
        for row in result.rows:
            assert row[3] == pytest.approx(row[2] - row[1])


class TestFig8:
    def test_sweep_grid(self):
        result = run_fig8(bag_values=(1, 8, 128))
        assert [row[0] for row in result.rows] == [1, 8, 128]

    def test_notes_mention_flatness(self):
        result = run_fig8(bag_values=(1, 128))
        assert any("flat" in note for note in result.notes)


class TestFig9:
    def test_grid_dimensions(self):
        result = run_fig9(bag_values=(1, 4), s_max_values=(100.0, 500.0, 1500.0))
        assert len(result.rows) == 2
        assert len(result.rows[0]) == 4  # label + 3 cells

    def test_sign_structure(self):
        result = run_fig9(bag_values=(4,), s_max_values=(100.0, 1500.0))
        row = result.rows[0]
        assert row[1] < 0  # small frame: WCNC wins
        assert row[-1] > 0  # large frame: Trajectory wins
