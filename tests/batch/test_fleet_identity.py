"""Execution-shape identity: the fleet engine's central contract.

Every way of running an analysis — ``jobs`` in {1, 2, 4}, either
trajectory kernel, cold, through a warm reused :class:`WorkerPool`, or
against a cold/warm incremental cache — must produce *bit-identical*
per-path bounds and a *byte-identical* deterministic
:class:`CostLedger` section.  The committed-scenario sweep lives in
``scripts/kernel_gate.py``; here the same contract is exercised on the
full shape cross product (fig1) and property-tested on randomized
topologies under hypothesis, sharing one warm pool across every
example so payload epochs get hammered too.
"""

import json

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.batch import BatchAnalyzer, shm
from repro.batch.pool import WorkerPool
from repro.configs import fig1_network, random_network
from repro.obs.costmodel import deterministic_section

FLOAT_FIELDS = (
    "total_us",
    "critical_instant_us",
    "busy_period_us",
    "workload_us",
    "transition_us",
    "latency_us",
    "serialization_gain_us",
)

KERNELS = ("fast", "reference")
MODES = ("paper", "windowed", "safe")


def _bounds(result):
    return {
        key: tuple(getattr(bound, name) for name in FLOAT_FIELDS)
        for key, bound in result.paths.items()
    }


def _ledger_bytes(result):
    assert result.stats is not None
    return json.dumps(
        deterministic_section(result.stats["cost"]), sort_keys=True
    ).encode()


def _trajectory(network, mode, kernel, **kwargs):
    return BatchAnalyzer(
        network,
        serialization=mode,
        collect_stats=True,
        trajectory_kernel=kernel,
        **kwargs,
    ).trajectory()


class TestShapeCrossProduct:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_every_shape_bit_identical(self, kernel, tmp_path):
        network = fig1_network()
        baseline = _trajectory(network, "safe", kernel, jobs=1)
        bounds, ledger = _bounds(baseline), _ledger_bytes(baseline)

        shaped = []
        for jobs in (2, 4):
            shaped.append((f"jobs={jobs}", _trajectory(network, "safe", kernel, jobs=jobs)))
        with WorkerPool(2, None) as pool:
            for round_ in (1, 2):
                shaped.append(
                    (
                        f"warm pool round {round_}",
                        _trajectory(network, "safe", kernel, jobs=2, pool=pool),
                    )
                )
        shaped.append(
            (
                "cold cache",
                _trajectory(
                    network, "safe", kernel, jobs=1,
                    incremental=True, cache_dir=str(tmp_path),
                ),
            )
        )
        shaped.append(
            (
                "warm cache",
                _trajectory(
                    network, "safe", kernel, jobs=1,
                    incremental=True, cache_dir=str(tmp_path),
                ),
            )
        )

        for label, result in shaped:
            assert _bounds(result) == bounds, f"{kernel}: bounds drifted under {label}"
            assert _ledger_bytes(result) == ledger, (
                f"{kernel}: ledger section not byte-identical under {label}"
            )
        assert shm.active_owned() == []


#: One warm pool shared by every hypothesis example below — each
#: example swaps a new payload in (an epoch), which is exactly the
#: fleet usage pattern the engine must keep bit-exact.
_SHARED_POOL = None


def _shared_pool():
    global _SHARED_POOL
    if _SHARED_POOL is None:
        _SHARED_POOL = WorkerPool(2, None)
    return _SHARED_POOL


@pytest.fixture(scope="module", autouse=True)
def _close_shared_pool():
    yield
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.close()
        _SHARED_POOL = None
    assert shm.active_owned() == []


class TestRandomizedShapes:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mode=st.sampled_from(MODES),
    )
    @example(seed=589, mode="safe")
    @example(seed=7, mode="windowed")
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_shapes_agree(self, seed, mode):
        network = random_network(
            seed, n_switches=3, n_end_systems=6, n_virtual_links=6
        )
        sequential = _trajectory(network, mode, "fast", jobs=1)
        pooled = _trajectory(
            network, mode, "fast", jobs=2, pool=_shared_pool()
        )
        reference = _trajectory(network, mode, "reference", jobs=1)

        assert _bounds(pooled) == _bounds(sequential)
        assert _ledger_bytes(pooled) == _ledger_bytes(sequential)
        # cross-kernel: bounds exact; ledgers agree modulo the
        # prune-dependent candidate counters (dropped by the scrub)
        assert _bounds(reference) == _bounds(sequential)
