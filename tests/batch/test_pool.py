"""Unit tests for the worker-pool plumbing."""

import pytest

from repro.batch.pool import WorkerPool, chunked, resolve_jobs
from repro.errors import AnalysisError, ConfigurationError, UnstableNetworkError


class TestChunked:
    def test_concatenation_reproduces_items(self):
        items = list(range(17))
        for n in (1, 2, 3, 5, 17, 40):
            chunks = chunked(items, n)
            assert [x for chunk in chunks for x in chunk] == items

    def test_balanced_sizes(self):
        chunks = chunked(list(range(10)), 3)
        sizes = [len(chunk) for chunk in chunks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_items(self):
        assert len(chunked([1, 2], 8)) == 2

    def test_empty_items(self):
        assert chunked([], 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


def _double(x):
    return 2 * x


def _raise_payload_error(_x):
    raise _ERRORS[_x]


_ERRORS = {
    "config": ConfigurationError("bad config"),
    "unstable": UnstableNetworkError("overloaded"),
    "analysis": AnalysisError("generic analysis failure"),
}


class TestWorkerPool:
    def test_requires_two_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(1, payload=None)

    def test_map_preserves_task_order(self):
        with WorkerPool(2, payload=None) as pool:
            assert pool.map(_double, list(range(20))) == [2 * x for x in range(20)]

    @pytest.mark.parametrize("kind", ["config", "unstable", "analysis"])
    def test_analysis_errors_propagate_with_type(self, kind):
        """Worker-raised repro.errors surface unchanged in the coordinator.

        The CLI's existing exception handler then maps them to exit
        codes 3/4/5 — covered end-to-end in test_batch_analyzer.py.
        """
        with pytest.raises(type(_ERRORS[kind]), match=str(_ERRORS[kind])):
            with WorkerPool(2, payload=None) as pool:
                pool.map(_raise_payload_error, [kind])


def _lane(_x):
    from repro.batch.pool import worker_lane

    return worker_lane()


def _emit_and_report(x):
    from repro.batch.pool import telemetry_active, worker_emit, worker_lane

    worker_emit("config", n=1, index=x)
    return (worker_lane(), telemetry_active())


class TestWorkerLanes:
    def test_lanes_cover_the_slot_range(self):
        from repro.batch.pool import LANE_BASE

        with WorkerPool(2, payload=None) as pool:
            lanes = set(pool.map(_lane, list(range(16))))
        assert lanes <= {LANE_BASE, LANE_BASE + 1}
        assert lanes  # at least one worker answered

    def test_lanes_stable_across_payload_epochs(self):
        from repro.batch.pool import LANE_BASE

        with WorkerPool(2, payload="a") as pool:
            before = set(pool.map(_lane, list(range(16))))
            pool.set_payload("b")
            after = set(pool.map(_lane, list(range(16))))
        assert before <= {LANE_BASE, LANE_BASE + 1}
        assert after <= {LANE_BASE, LANE_BASE + 1}


class TestTelemetry:
    def test_off_by_default(self):
        with WorkerPool(2, payload=None) as pool:
            assert pool.telemetry_queue is None
            results = pool.map(_emit_and_report, [0, 1, 2])
            assert pool.drain_telemetry() == []
        assert all(active is False for _lane_id, active in results)

    def test_events_carry_lane_and_fields(self):
        from repro.batch.pool import LANE_BASE

        with WorkerPool(2, payload=None, telemetry=True) as pool:
            results = pool.map(_emit_and_report, [0, 1, 2, 3])
            events = pool.drain_telemetry()
        assert all(active is True for _lane_id, active in results)
        assert len(events) == 4
        assert sorted(e["index"] for e in events) == [0, 1, 2, 3]
        for event in events:
            assert event["kind"] == "config"
            assert event["lane"] in (LANE_BASE, LANE_BASE + 1)
            assert event["n"] == 1
