"""Unit tests for the worker-pool plumbing."""

import pytest

from repro.batch.pool import WorkerPool, chunked, resolve_jobs
from repro.errors import AnalysisError, ConfigurationError, UnstableNetworkError


class TestChunked:
    def test_concatenation_reproduces_items(self):
        items = list(range(17))
        for n in (1, 2, 3, 5, 17, 40):
            chunks = chunked(items, n)
            assert [x for chunk in chunks for x in chunk] == items

    def test_balanced_sizes(self):
        chunks = chunked(list(range(10)), 3)
        sizes = [len(chunk) for chunk in chunks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_items(self):
        assert len(chunked([1, 2], 8)) == 2

    def test_empty_items(self):
        assert chunked([], 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


def _double(x):
    return 2 * x


def _raise_payload_error(_x):
    raise _ERRORS[_x]


_ERRORS = {
    "config": ConfigurationError("bad config"),
    "unstable": UnstableNetworkError("overloaded"),
    "analysis": AnalysisError("generic analysis failure"),
}


class TestWorkerPool:
    def test_requires_two_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(1, payload=None)

    def test_map_preserves_task_order(self):
        with WorkerPool(2, payload=None) as pool:
            assert pool.map(_double, list(range(20))) == [2 * x for x in range(20)]

    @pytest.mark.parametrize("kind", ["config", "unstable", "analysis"])
    def test_analysis_errors_propagate_with_type(self, kind):
        """Worker-raised repro.errors surface unchanged in the coordinator.

        The CLI's existing exception handler then maps them to exit
        codes 3/4/5 — covered end-to-end in test_batch_analyzer.py.
        """
        with pytest.raises(type(_ERRORS[kind]), match=str(_ERRORS[kind])):
            with WorkerPool(2, payload=None) as pool:
                pool.map(_raise_payload_error, [kind])
