"""The batch-sweep soundness fuzzer."""

import pytest

from repro.batch import SweepSpec, batch_sweep
from repro.cli import main

FAST = SweepSpec(configs=4, base_seed=586, duration_ms=2.0, scenarios_per_config=1)


class TestSweep:
    def test_sequential_sweep_clean(self):
        report = batch_sweep(FAST, jobs=1)
        assert len(report.records) == 4
        assert [record.config_seed for record in report.records] == [586, 587, 588, 589]
        assert report.paths_checked > 0
        assert report.violations == []
        assert report.n_errors == 0

    def test_parallel_matches_sequential(self):
        seq = batch_sweep(FAST, jobs=1)
        par = batch_sweep(FAST, jobs=2)
        assert [record.config_seed for record in par.records] == [
            record.config_seed for record in seq.records
        ]
        for a, b in zip(seq.records, par.records):
            assert a.n_paths == b.n_paths
            assert a.min_margin_us == b.min_margin_us  # bit-identical
            assert a.violations == b.violations

    def test_covers_the_589_regression_seed(self):
        """The sweep regenerates the known counterexample region."""
        spec = SweepSpec(configs=1, base_seed=589, duration_ms=25.0,
                         scenarios_per_config=2)
        report = batch_sweep(spec, jobs=1)
        assert report.records[0].n_paths == 13
        assert report.violations == []

    def test_stats_collected(self):
        report = batch_sweep(FAST, jobs=2, collect_stats=True)
        counters = report.stats["counters"]
        assert counters["batch.sweep.configs"] == 4
        assert counters["batch.sweep.violations"] == 0
        assert report.stats["gauges"]["batch.sweep.jobs"] == 2

    def test_render_mentions_violations_count(self):
        report = batch_sweep(FAST, jobs=1)
        assert "0 bound violations" in report.render()


class TestSweepCli:
    def test_exit_zero_when_clean(self, capsys):
        code = main(
            ["batch-sweep", "--configs", "2", "--base-seed", "588",
             "--scenarios", "1", "--duration-ms", "2", "--jobs", "2"]
        )
        assert code == 0
        assert "0 bound violations" in capsys.readouterr().out


@pytest.mark.slow
class TestSweepAtScale:
    def test_fifty_configs_no_violations(self):
        """CI-sized slice of the 500-config soundness sweep.

        The full ``afdx batch-sweep --configs 500`` run is part of the
        release checklist; this keeps a fast representative slab in CI.
        """
        report = batch_sweep(
            SweepSpec(configs=50, base_seed=560, duration_ms=5.0), jobs=0
        )
        assert len(report.records) == 50
        assert report.n_errors == 0
        assert report.violations == []


class TestFleetTelemetry:
    def test_progress_run_attaches_a_fleet_snapshot(self):
        from repro.obs.trace import ProgressHook

        progress = ProgressHook(lambda phase, done, total: None)
        report = batch_sweep(FAST, jobs=2, progress=progress)
        fleet = report.stats["fleet"]
        assert fleet["configs_total"] == 4
        assert fleet["configs_done"] == 4
        assert fleet["events"] >= 4  # one config event per seed
        assert all(int(lane) >= 100 for lane in fleet["lanes"])
        assert sum(fleet["lanes"].values()) == 4
        assert report.violations == []

    def test_no_progress_means_no_fleet_section(self):
        report = batch_sweep(FAST, jobs=2, collect_stats=True)
        assert "fleet" not in report.stats
