"""BatchAnalyzer: parallel results must be bit-identical to sequential.

The batch engine's contract is not "approximately equal" — the worker
decomposition replays the exact floating-point operations of the
sequential analyzers, so every field of every result compares equal
with ``==``, no tolerance.
"""

import json

import pytest

from repro.batch import BatchAnalyzer
from repro.cli import main
from repro.configs import fig2_network
from repro.configs.industrial import IndustrialConfigSpec, industrial_network
from repro.core.combined import analyze_network
from repro.errors import UnstableNetworkError
from repro.netcalc import analyze_network_calculus
from repro.network import NetworkBuilder
from repro.network.serialization import network_to_json
from repro.trajectory import analyze_trajectory

JOBS = 4


@pytest.fixture(scope="module")
def industrial():
    return industrial_network(
        IndustrialConfigSpec(n_virtual_links=60, end_systems_per_switch=4)
    )


def unstable_network():
    builder = NetworkBuilder("u").switches("SW").end_systems(
        *(f"e{i}" for i in range(11)), "d"
    )
    for i in range(11):
        builder.link(f"e{i}", "SW")
    builder.link("SW", "d")
    for i in range(11):
        builder.virtual_link(
            f"v{i}", source=f"e{i}", destinations=["d"], bag_ms=1, s_max_bytes=1518
        )
    return builder.build(validate=False)


def marginally_stable_network():
    """Passes validation (utilization < 1) but tips over with overhead.

    ``check_network`` runs on the coordinator, so the unstable-network
    error for this configuration can only originate inside a worker's
    ``analyze_port`` once per-frame wire overhead is added.
    """
    builder = NetworkBuilder("m").switches("SW").end_systems(
        *(f"e{i}" for i in range(8)), "d"
    )
    for i in range(8):
        builder.link(f"e{i}", "SW")
    builder.link("SW", "d")
    for i in range(8):
        builder.virtual_link(
            f"v{i}", source=f"e{i}", destinations=["d"], bag_ms=1, s_max_bytes=1518
        )
    return builder.build()


def assert_nc_identical(seq, par):
    assert list(seq.ports) == list(par.ports)  # same insertion order too
    for port_id in seq.ports:
        assert seq.ports[port_id] == par.ports[port_id], port_id
    assert list(seq.paths) == list(par.paths)
    for key in seq.paths:
        assert seq.paths[key] == par.paths[key], key


def assert_trajectory_identical(seq, par):
    assert seq.refinement_iterations == par.refinement_iterations
    assert seq.serialization == par.serialization
    assert list(seq.paths) == list(par.paths)
    for key in seq.paths:
        assert seq.paths[key] == par.paths[key], key


class TestBitIdenticalFig2:
    @pytest.mark.parametrize("serialization", ["paper", "windowed", "safe"])
    def test_all_three_methods(self, fig2, serialization):
        batch = BatchAnalyzer(fig2, jobs=JOBS, serialization=serialization)
        assert_nc_identical(analyze_network_calculus(fig2), batch.network_calculus())
        assert_trajectory_identical(
            analyze_trajectory(fig2, serialization=serialization), batch.trajectory()
        )
        seq = analyze_network(fig2, serialization=serialization)
        par = batch.combined()
        assert list(seq.paths) == list(par.paths)
        for key in seq.paths:
            assert seq.paths[key] == par.paths[key], key


class TestBitIdenticalIndustrial:
    def test_network_calculus(self, industrial):
        batch = BatchAnalyzer(industrial, jobs=JOBS)
        assert_nc_identical(
            analyze_network_calculus(industrial), batch.network_calculus()
        )

    def test_trajectory(self, industrial):
        batch = BatchAnalyzer(industrial, jobs=JOBS, serialization=True)
        assert_trajectory_identical(
            analyze_trajectory(industrial, serialization=True), batch.trajectory()
        )

    def test_no_grouping_combined(self, industrial):
        batch = BatchAnalyzer(industrial, jobs=2, grouping=False)
        seq = analyze_network(industrial, grouping=False)
        par = batch.combined()
        for key in seq.paths:
            assert seq.paths[key] == par.paths[key], key


class TestJobsOne:
    def test_delegates_to_sequential(self, fig2):
        """jobs=1 is the sequential path, not a one-worker pool."""
        batch = BatchAnalyzer(fig2, jobs=1, serialization="safe")
        assert_trajectory_identical(
            analyze_trajectory(fig2, serialization="safe"), batch.trajectory()
        )

    def test_jobs_zero_means_all_cores(self, fig2):
        batch = BatchAnalyzer(fig2, jobs=0)
        assert batch.jobs >= 1


class TestStats:
    def test_worker_metrics_collected(self, fig2):
        batch = BatchAnalyzer(fig2, jobs=2, serialization="safe", collect_stats=True)
        result = batch.trajectory()
        counters = result.stats["counters"]
        gauges = result.stats["gauges"]
        assert counters["batch.trajectory.tasks"] >= 1
        assert counters["trajectory.horizon_cache_misses"] >= 1
        assert gauges["batch.trajectory.jobs"] == 2
        assert 0.0 <= gauges["batch.trajectory.worker_utilization"] <= 1.0
        assert any(span["name"] == "batch.trajectory" for span in result.stats["spans"])


class TestErrorPropagation:
    def test_unstable_network_raises(self):
        batch = BatchAnalyzer(unstable_network(), jobs=2)
        with pytest.raises(UnstableNetworkError):
            batch.network_calculus()

    def test_worker_raised_instability_propagates(self):
        """An error born inside a worker's analyze_port surfaces intact.

        The 8-flow configuration validates fine on the coordinator; the
        per-frame wire overhead only tips the aggregate rate over the
        link rate inside the workers' port analysis.
        """
        network = marginally_stable_network()
        # sanity: without overhead the parallel analysis succeeds
        BatchAnalyzer(network, jobs=2).network_calculus()
        batch = BatchAnalyzer(network, jobs=2, frame_overhead_bytes=400)
        with pytest.raises(UnstableNetworkError, match="no finite delay bound"):
            batch.network_calculus()

    def test_cli_exit_code_unstable(self, tmp_path, capsys):
        """Batch-mode instability maps to the existing exit 4."""
        config = tmp_path / "unstable.json"
        network_to_json(unstable_network(), config)
        assert main(["analyze", str(config), "--jobs", "2"]) == 4
        assert "overloaded" in capsys.readouterr().err

    def test_cli_exit_code_config_error(self, tmp_path, capsys):
        config = tmp_path / "broken.json"
        config.write_text(json.dumps({"name": "x"}))
        assert main(["analyze", str(config), "--jobs", "2"]) == 3
