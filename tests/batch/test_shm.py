"""Shared-memory lifecycle: ownership, attach semantics, crash safety.

The coordinator owns every segment it creates (``shm._OWNED``); workers
attach without registering with the resource tracker.  These tests pin
the lifecycle contract the batch engine and the REPRO401 lint rule are
built on: nothing leaks after a normal close, and nothing leaks after a
worker is SIGKILLed mid-task.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.batch import shm
from repro.batch.pool import WorkerPool, worker_payload


class TestShmArena:
    def test_roundtrip_and_read_only_views(self):
        arrays = {
            "c": np.arange(6, dtype=np.float64),
            "t": np.array([1.0, 2.5], dtype=np.float64),
        }
        arena = shm.ShmArena(arrays)
        try:
            assert arena.spec.name in shm.active_owned()
            attached, segment = shm.attach(arena.spec)
            try:
                assert sorted(attached) == ["c", "t"]
                np.testing.assert_array_equal(attached["c"], arrays["c"])
                np.testing.assert_array_equal(attached["t"], arrays["t"])
                assert not attached["c"].flags.writeable
            finally:
                segment.close()
        finally:
            arena.close_and_unlink()
        assert arena.spec.name not in shm.active_owned()

    def test_close_and_unlink_is_idempotent(self):
        arena = shm.ShmArena({"x": np.zeros(3)})
        arena.close_and_unlink()
        arena.close_and_unlink()
        assert shm.active_owned() == []


class TestPickledSpec:
    def test_roundtrip_and_unlink(self):
        payload = {"tables": [1, 2, 3], "mode": "safe"}
        spec = shm.put_pickled(payload)
        try:
            assert spec.name in shm.active_owned()
            assert shm.get_pickled(spec) == payload
        finally:
            shm.unlink_spec(spec)
        assert spec.name not in shm.active_owned()


def _pid(_task):
    return os.getpid()


def _echo_payload(_task):
    return worker_payload()


def _kill_self(_task):
    os.kill(os.getpid(), signal.SIGKILL)


class TestPoolShmLifecycle:
    def test_no_leak_after_normal_exit(self):
        pool = WorkerPool(2, {"epoch": 0})
        try:
            pool.set_payload({"epoch": 1})  # creates the shm payload spec
            assert pool.map(_echo_payload, [0, 1]) == [{"epoch": 1}] * 2
        finally:
            pool.close()
        assert shm.active_owned() == []

    def test_payload_epochs_swap_without_leaking(self):
        with WorkerPool(2, None) as pool:
            for epoch in range(3):
                pool.set_payload({"epoch": epoch})
                assert pool.map(_echo_payload, [0])[0] == {"epoch": epoch}
            # exactly one live segment per pool: the current epoch's spec
            assert len(shm.active_owned()) <= 1
        assert shm.active_owned() == []

    def test_no_leak_after_worker_sigkill(self):
        """A SIGKILLed worker hangs the in-flight map; terminate() must
        still release every owned segment."""
        pool = WorkerPool(2, None)
        try:
            pool.set_payload({"epoch": 0})
            assert pool.map(_pid, [0])  # payload spec live, workers warm
            with pytest.raises(multiprocessing.TimeoutError):
                pool.map(_kill_self, [0], timeout=15.0)
        finally:
            pool.terminate()
        assert shm.active_owned() == []
