"""The seeded scenario corpus: determinism and cross-mode identity."""

import pytest

from repro.batch import analyze_corpus, shm
from repro.batch.corpus import CorpusSpec, corpus_edits, corpus_network
from repro.batch.pool import WorkerPool

SPEC = CorpusSpec(configs=5, n_virtual_links=8, n_end_systems=4)


class TestCorpusGeneration:
    def test_index_zero_is_the_unedited_base(self):
        assert corpus_edits(SPEC, 0) == []

    def test_edits_are_deterministic(self):
        for index in range(SPEC.configs):
            assert corpus_edits(SPEC, index) == corpus_edits(SPEC, index)

    def test_variants_differ_from_base(self):
        base = corpus_network(SPEC, 0)
        variant = corpus_network(SPEC, 1)
        changed = [
            name
            for name in sorted(base.virtual_links)
            if (base.vl(name).bag_us, base.vl(name).s_max_bytes)
            != (variant.vl(name).bag_us, variant.vl(name).s_max_bytes)
        ]
        assert changed, "variant 1 applied no edit"

    def test_network_regeneration_is_stable(self):
        one = corpus_network(SPEC, 2)
        two = corpus_network(SPEC, 2)
        for name in sorted(one.virtual_links):
            vl, other = one.vl(name), two.vl(name)
            assert (vl.bag_us, vl.s_max_bytes, vl.s_min_bytes) == (
                other.bag_us,
                other.s_max_bytes,
                other.s_min_bytes,
            )


class TestCorpusIdentity:
    def test_all_modes_bit_identical_and_leak_free(self, tmp_path):
        sequential = analyze_corpus(SPEC, jobs=1)
        assert len(sequential.records) == SPEC.configs
        assert sequential.configs_per_s > 0.0

        with WorkerPool(2, None) as pool:
            pooled = analyze_corpus(SPEC, jobs=2, pool=pool)
            primed = analyze_corpus(
                SPEC, jobs=2, pool=pool, cache_dir=str(tmp_path)
            )
            cached = analyze_corpus(
                SPEC, jobs=2, pool=pool, cache_dir=str(tmp_path)
            )

        digests = {
            sequential.digest,
            pooled.digest,
            primed.digest,
            cached.digest,
        }
        assert len(digests) == 1, digests
        assert shm.active_owned() == []

    def test_sequential_cache_matches_uncached(self, tmp_path):
        cold = analyze_corpus(SPEC, jobs=1)
        warm = analyze_corpus(SPEC, jobs=1, cache_dir=str(tmp_path))
        again = analyze_corpus(SPEC, jobs=1, cache_dir=str(tmp_path))
        assert cold.digest == warm.digest == again.digest


class TestCorpusStats:
    def test_collect_stats_exports_metrics(self):
        report = analyze_corpus(SPEC, jobs=1, collect_stats=True)
        assert report.stats["counters"]["batch.corpus.configs"] == SPEC.configs
        assert report.stats["gauges"]["batch.corpus.jobs"] == 1
        assert report.paths_bound == sum(r.n_paths for r in report.records)


class TestFleetTelemetry:
    def test_progress_run_attaches_fleet_snapshot_with_cache_rates(
        self, tmp_path
    ):
        from repro.obs.trace import ProgressHook

        progress = ProgressHook(lambda phase, done, total: None)
        baseline = analyze_corpus(SPEC, jobs=1)
        report = analyze_corpus(
            SPEC, jobs=2, progress=progress, cache_dir=str(tmp_path)
        )
        assert report.digest == baseline.digest  # telemetry never perturbs
        fleet = report.stats["fleet"]
        assert fleet["configs_done"] == SPEC.configs
        assert fleet["configs_total"] == SPEC.configs
        assert sum(fleet["lanes"].values()) == SPEC.configs
        assert all(int(lane) >= 100 for lane in fleet["lanes"])
        # a cold cache dir still produces lookups: misses count too
        assert fleet["cache_hits"] + fleet["cache_misses"] > 0

    def test_borrowed_pool_without_telemetry_stays_silent(self, tmp_path):
        from repro.obs.trace import ProgressHook

        progress = ProgressHook(lambda phase, done, total: None)
        with WorkerPool(2, None) as pool:
            report = analyze_corpus(SPEC, jobs=2, pool=pool, progress=progress)
        # the owner opened no telemetry queue -> no fleet view, no stats
        assert report.stats is None or "fleet" not in report.stats
