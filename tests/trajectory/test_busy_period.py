"""Busy-period fixed points and candidate instants."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnstableNetworkError
from repro.trajectory.busy_period import (
    busy_period_bound,
    candidate_instants,
    interference_count,
)


def _exact_count(t: float, offset: float, period: float) -> int:
    """Ground-truth counter via exact rational arithmetic."""
    shifted = t + offset  # the float the counter is defined on
    if shifted < 0:
        return 0
    return 1 + math.floor(Fraction(shifted) / Fraction(period))


class TestInterferenceCount:
    def test_single_frame_at_zero(self):
        assert interference_count(0.0, 0.0, 4000.0) == 1

    def test_counts_periodic_releases(self):
        assert interference_count(4000.0, 0.0, 4000.0) == 2
        assert interference_count(8000.0, 0.0, 4000.0) == 3

    def test_positive_offset_adds_frames(self):
        # a competitor with arrival jitter 4500 us can land two frames
        assert interference_count(0.0, 4500.0, 4000.0) == 2

    def test_negative_offset_blocks_interference(self):
        assert interference_count(10.0, -100.0, 4000.0) == 0

    def test_boundary_is_inclusive(self):
        # exactly at the period boundary the next frame counts
        assert interference_count(0.0, 4000.0, 4000.0) == 2


class TestInterferenceCountBoundaries:
    """The counter is exact on float boundaries — no epsilon fudge.

    The historical ``floor(shifted / period + 1e-9)`` over-counted one
    frame whenever ``t + A`` landed within 1e-9 quotient units *below*
    a multiple of ``T``, and under-protected once the quotient grew
    large enough that the true division error exceeded 1e-9.
    """

    def test_one_ulp_below_boundary_does_not_count(self):
        # shifted one ulp below an exactly-representable multiple: the
        # old fudge rounded the quotient up and over-counted a frame
        period = 4000.0
        for k in (1, 3, 7, 1001):
            boundary = k * period  # exactly representable
            shifted = math.nextafter(boundary, 0.0)
            assert interference_count(shifted, 0.0, period) == k  # not k + 1
            assert interference_count(shifted, 0.0, period) == _exact_count(
                shifted, 0.0, period
            )

    def test_one_ulp_above_boundary_counts(self):
        period = 4000.0
        shifted = math.nextafter(3 * period, math.inf)
        assert interference_count(shifted, 0.0, period) == 4

    def test_offset_places_shifted_on_boundary(self):
        # t + A exactly on a multiple through the *sum* rounding
        t, offset, period = 1500.0, 2500.0, 4000.0
        assert interference_count(t, offset, period) == 2

    def test_large_quotient_exceeds_old_epsilon(self):
        # quotient ~ 6.4e9: one ulp of the quotient (~1.5e-6) dwarfs the
        # old 1e-9 guard, so only the exact comparison gets this right
        period = math.pi * 2.0 ** -20
        shifted = 19175.5
        assert interference_count(shifted, 0.0, period) == _exact_count(
            shifted, 0.0, period
        )

    def test_non_representable_period_boundary(self):
        # 0.1 is not a dyadic rational; k * fl(0.1) boundaries must be
        # decided on the floats' exact values, not on a re-rounded product
        period = 0.1
        for k in (3, 7, 1000003):
            product = k * period
            for shifted in (
                math.nextafter(product, 0.0),
                product,
                math.nextafter(product, math.inf),
            ):
                assert interference_count(shifted, 0.0, period) == _exact_count(
                    shifted, 0.0, period
                )

    @given(
        t=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        offset=st.floats(min_value=-1e6, max_value=1e9, allow_nan=False),
        period=st.floats(min_value=1e-6, max_value=1e8, allow_nan=False),
    )
    @settings(max_examples=300, deadline=None)
    def test_property_matches_exact_rational(self, t, offset, period):
        assert interference_count(t, offset, period) == _exact_count(
            t, offset, period
        )


class TestBusyPeriod:
    def test_single_flow(self):
        assert busy_period_bound([(40.0, 4000.0, 0.0)]) == pytest.approx(40.0)

    def test_two_flows(self):
        assert busy_period_bound(
            [(40.0, 4000.0, 0.0), (40.0, 4000.0, 0.0)]
        ) == pytest.approx(80.0)

    def test_empty_is_zero(self):
        assert busy_period_bound([]) == 0.0

    def test_period_recursion(self):
        # C=30, T=50: utilization 0.6; with two flows C=30,T=100 (0.3):
        # total 0.9 -> busy period spans several periods
        value = busy_period_bound([(30.0, 50.0, 0.0), (30.0, 100.0, 0.0)])
        # fixed point: b = 30*ceil-ish(b/50) + 30*ceil(b/100) -> 270
        assert value >= 90.0
        # consistency: applying the workload once more does not grow it
        total = (
            interference_count(value, 0.0, 50.0) * 30.0
            + interference_count(value, 0.0, 100.0) * 30.0
        )
        assert total <= value + 1e-6

    def test_unstable_raises(self):
        with pytest.raises(UnstableNetworkError):
            busy_period_bound([(60.0, 100.0, 0.0), (50.0, 100.0, 0.0)])

    def test_exactly_full_raises(self):
        with pytest.raises(UnstableNetworkError):
            busy_period_bound([(100.0, 100.0, 0.0)])

    def test_jitter_extends_busy_period(self):
        base = busy_period_bound([(40.0, 4000.0, 0.0), (40.0, 4000.0, 0.0)])
        jittered = busy_period_bound([(40.0, 4000.0, 0.0), (40.0, 4000.0, 4500.0)])
        assert jittered > base


class TestCandidates:
    def test_zero_always_candidate(self):
        assert candidate_instants({}, 100.0) == [0.0]

    def test_jump_points_inside_horizon(self):
        competitors = {"v": (40.0, 50.0, 0.0)}
        instants = candidate_instants(competitors, 120.0)
        assert instants == [0.0, 50.0, 100.0]

    def test_offset_shifts_jumps(self):
        competitors = {"v": (40.0, 100.0, 30.0)}
        assert candidate_instants(competitors, 200.0) == [0.0, 70.0, 170.0]

    def test_negative_offset(self):
        competitors = {"v": (40.0, 100.0, -30.0)}
        # counter jumps from 0 to 1 at t = 30
        assert candidate_instants(competitors, 100.0) == [0.0, 30.0]

    def test_horizon_excludes_boundary(self):
        competitors = {"v": (40.0, 100.0, 0.0)}
        assert candidate_instants(competitors, 100.0) == [0.0]

    def test_deduplication(self):
        competitors = {"a": (1.0, 50.0, 0.0), "b": (2.0, 50.0, 0.0)}
        assert candidate_instants(competitors, 60.0) == [0.0, 50.0]


class TestCandidateInstantsExactness:
    """Emitted instants are canonical jump floats, deduped exactly."""

    def test_float_noise_duplicates_collapse(self):
        # same exact jump instants reached through different roundings:
        # period 0.1 with offset 0 vs offset 0.1 * k shifted by one
        # period — in real arithmetic the instants coincide, and after
        # canonicalization the floats do too
        competitors = {
            "a": (1.0, 0.1, 0.0),
            "b": (1.0, 0.1, 0.1),
        }
        instants = candidate_instants(competitors, 1.0)
        assert len(instants) == len(set(instants))
        for earlier, later in zip(instants, instants[1:]):
            # no two instants within one ulp of each other
            assert math.nextafter(earlier, math.inf) <= later

    @given(
        flows=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),   # C
                st.floats(min_value=1.0, max_value=500.0),   # T
                st.floats(min_value=-50.0, max_value=500.0), # A
            ),
            min_size=1,
            max_size=5,
        ),
        horizon=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_instants_are_true_counter_jumps(self, flows, horizon):
        competitors = {f"v{i}": flow for i, flow in enumerate(flows)}
        instants = candidate_instants(competitors, horizon)
        assert instants[0] == 0.0
        assert instants == sorted(set(instants))  # exact-dedup, sorted
        for t in instants[1:]:
            assert 0.0 < t < horizon
            below = math.nextafter(t, -math.inf)
            total_at = sum(
                interference_count(t, a, period)
                for _c, period, a in competitors.values()
            )
            total_below = sum(
                interference_count(below, a, period)
                for _c, period, a in competitors.values()
            )
            # t is a jump instant of the aggregate counter, and it is
            # canonical: one float earlier the jump has not happened
            assert total_at > total_below
