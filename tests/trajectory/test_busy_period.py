"""Busy-period fixed points and candidate instants."""

import pytest

from repro.errors import UnstableNetworkError
from repro.trajectory.busy_period import (
    busy_period_bound,
    candidate_instants,
    interference_count,
)


class TestInterferenceCount:
    def test_single_frame_at_zero(self):
        assert interference_count(0.0, 0.0, 4000.0) == 1

    def test_counts_periodic_releases(self):
        assert interference_count(4000.0, 0.0, 4000.0) == 2
        assert interference_count(8000.0, 0.0, 4000.0) == 3

    def test_positive_offset_adds_frames(self):
        # a competitor with arrival jitter 4500 us can land two frames
        assert interference_count(0.0, 4500.0, 4000.0) == 2

    def test_negative_offset_blocks_interference(self):
        assert interference_count(10.0, -100.0, 4000.0) == 0

    def test_boundary_is_inclusive(self):
        # exactly at the period boundary the next frame counts
        assert interference_count(0.0, 4000.0, 4000.0) == 2


class TestBusyPeriod:
    def test_single_flow(self):
        assert busy_period_bound([(40.0, 4000.0, 0.0)]) == pytest.approx(40.0)

    def test_two_flows(self):
        assert busy_period_bound(
            [(40.0, 4000.0, 0.0), (40.0, 4000.0, 0.0)]
        ) == pytest.approx(80.0)

    def test_empty_is_zero(self):
        assert busy_period_bound([]) == 0.0

    def test_period_recursion(self):
        # C=30, T=50: utilization 0.6; with two flows C=30,T=100 (0.3):
        # total 0.9 -> busy period spans several periods
        value = busy_period_bound([(30.0, 50.0, 0.0), (30.0, 100.0, 0.0)])
        # fixed point: b = 30*ceil-ish(b/50) + 30*ceil(b/100) -> 270
        assert value >= 90.0
        # consistency: applying the workload once more does not grow it
        total = (
            interference_count(value, 0.0, 50.0) * 30.0
            + interference_count(value, 0.0, 100.0) * 30.0
        )
        assert total <= value + 1e-6

    def test_unstable_raises(self):
        with pytest.raises(UnstableNetworkError):
            busy_period_bound([(60.0, 100.0, 0.0), (50.0, 100.0, 0.0)])

    def test_exactly_full_raises(self):
        with pytest.raises(UnstableNetworkError):
            busy_period_bound([(100.0, 100.0, 0.0)])

    def test_jitter_extends_busy_period(self):
        base = busy_period_bound([(40.0, 4000.0, 0.0), (40.0, 4000.0, 0.0)])
        jittered = busy_period_bound([(40.0, 4000.0, 0.0), (40.0, 4000.0, 4500.0)])
        assert jittered > base


class TestCandidates:
    def test_zero_always_candidate(self):
        assert candidate_instants({}, 100.0) == [0.0]

    def test_jump_points_inside_horizon(self):
        competitors = {"v": (40.0, 50.0, 0.0)}
        instants = candidate_instants(competitors, 120.0)
        assert instants == [0.0, 50.0, 100.0]

    def test_offset_shifts_jumps(self):
        competitors = {"v": (40.0, 100.0, 30.0)}
        assert candidate_instants(competitors, 200.0) == [0.0, 70.0, 170.0]

    def test_negative_offset(self):
        competitors = {"v": (40.0, 100.0, -30.0)}
        # counter jumps from 0 to 1 at t = 30
        assert candidate_instants(competitors, 100.0) == [0.0, 30.0]

    def test_horizon_excludes_boundary(self):
        competitors = {"v": (40.0, 100.0, 0.0)}
        assert candidate_instants(competitors, 100.0) == [0.0]

    def test_deduplication(self):
        competitors = {"a": (1.0, 50.0, 0.0), "b": (2.0, 50.0, 0.0)}
        assert candidate_instants(competitors, 60.0) == [0.0, 50.0]
