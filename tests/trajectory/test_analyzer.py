"""Trajectory analyzer end-to-end behaviour."""

import pytest

from repro.errors import UnstableNetworkError
from repro.network import NetworkBuilder
from repro.trajectory import TrajectoryAnalyzer, analyze_trajectory


class TestLoneFlow:
    @pytest.fixture
    def lone(self):
        return (
            NetworkBuilder("lone")
            .switches("S1", "S2")
            .end_systems("a", "d")
            .link("a", "S1")
            .link("S1", "S2")
            .link("S2", "d")
            .virtual_link(
                "v", source="a", destinations=["d"], bag_ms=4,
                s_max_bytes=500, s_min_bytes=500,
            )
            .build()
        )

    def test_exact_pipeline_delay(self, lone):
        # 3 transmissions of 40 us + 2 switch latencies of 16 us
        result = analyze_trajectory(lone)
        assert result.bound_us("v") == pytest.approx(3 * 40.0 + 2 * 16.0)

    def test_decomposition_adds_up(self, lone):
        path = analyze_trajectory(lone).paths[("v", 0)]
        assert path.total_us == pytest.approx(
            path.workload_us
            + path.transition_us
            + path.latency_us
            - path.serialization_gain_us
            - path.critical_instant_us
        )
        assert path.n_competitors == 0
        assert path.critical_instant_us == 0.0


class TestFig2:
    def test_paper_worked_example(self, fig2):
        enhanced = analyze_trajectory(fig2)
        plain = analyze_trajectory(fig2, serialization=False)
        # the numbers this library reproduces for the Sec. II-B scenario
        assert plain.bound_us("v1") == pytest.approx(272.0)
        assert enhanced.bound_us("v1") == pytest.approx(232.0)

    def test_symmetry(self, fig2):
        result = analyze_trajectory(fig2)
        assert result.bound_us("v1") == pytest.approx(result.bound_us("v2"))
        assert result.bound_us("v3") == pytest.approx(result.bound_us("v4"))

    def test_workload_counts_all_sharing_flows(self, fig2):
        path = analyze_trajectory(fig2).paths[("v1", 0)]
        assert path.n_competitors == 3  # v2, v3, v4 (v5 exits at e7)

    def test_transition_terms(self, fig2):
        path = analyze_trajectory(fig2).paths[("v1", 0)]
        # two transitions, each bounded by the biggest met frame (40 us)
        assert path.transition_us == pytest.approx(80.0)
        assert path.latency_us == pytest.approx(32.0)

    def test_own_bag_does_not_matter(self, fig2):
        # Fig. 8's flat trajectory: same bound for any BAG of v1
        baseline = analyze_trajectory(fig2).bound_us("v1")
        for bag in (1, 2, 16, 128):
            net = fig2.copy()
            net.replace_virtual_link(net.vl("v1").with_bag_ms(bag))
            assert analyze_trajectory(net).bound_us("v1") == pytest.approx(baseline)

    def test_result_cached(self, fig2):
        analyzer = TrajectoryAnalyzer(fig2)
        assert analyzer.analyze() is analyzer.analyze()


class TestRefinement:
    def test_refinement_never_loosens(self, fig1):
        refined = analyze_trajectory(fig1, refine_smax=True)
        single = analyze_trajectory(fig1, refine_smax=False)
        for key in refined.paths:
            assert refined.paths[key].total_us <= single.paths[key].total_us + 1e-6

    def test_iteration_count_reported(self, fig1):
        refined = analyze_trajectory(fig1, refine_smax=True)
        single = analyze_trajectory(fig1, refine_smax=False)
        assert single.refinement_iterations == 1
        assert refined.refinement_iterations >= 1

    def test_max_refinements_validated(self, fig1):
        with pytest.raises(ValueError):
            TrajectoryAnalyzer(fig1, max_refinements=0)


class TestStability:
    def test_unstable_raises(self):
        builder = NetworkBuilder("u").switches("SW").end_systems(
            *(f"e{i}" for i in range(11)), "d"
        )
        for i in range(11):
            builder.link(f"e{i}", "SW")
        builder.link("SW", "d")
        for i in range(11):
            builder.virtual_link(
                f"v{i}", source=f"e{i}", destinations=["d"], bag_ms=1, s_max_bytes=1518
            )
        with pytest.raises(UnstableNetworkError):
            analyze_trajectory(builder.build(validate=False))


class TestMulticast:
    def test_each_path_bounded(self, fig1):
        result = analyze_trajectory(fig1)
        assert ("v6", 0) in result.paths and ("v6", 1) in result.paths

    def test_worst_path_accessor(self, fig1):
        result = analyze_trajectory(fig1)
        assert result.worst_path().total_us == max(
            p.total_us for p in result.paths.values()
        )


class TestMeshReMeeting:
    """A competitor that leaves the studied path and rejoins downstream.

    The Martin & Minet tree formulation counts each competitor once —
    sound on trees, where a frame ahead in a FIFO queue stays ahead for
    the whole shared segment.  On this meshed topology v2 meets v1 at
    (S1, S2), detours via S4 while v1 goes straight to S3, and re-meets
    v1 at (S3, d); its frames can overtake v1 off-path and delay it a
    second time, so ``safe`` mode charges the re-meeting as an
    additional competitor while the reproduction modes keep the
    historical counted-once treatment.
    """

    @pytest.fixture
    def mesh(self):
        return (
            NetworkBuilder("mesh")
            .switches("S1", "S2", "S3", "S4")
            .end_systems("a", "b", "d")
            .links(
                [("a", "S1"), ("b", "S1"), ("S1", "S2"), ("S2", "S3"),
                 ("S2", "S4"), ("S4", "S3"), ("S3", "d")]
            )
            .virtual_link(
                "v1", source="a", destinations=["d"], bag_ms=1,
                s_max_bytes=1518, paths=[["a", "S1", "S2", "S3", "d"]],
            )
            .virtual_link(
                "v2", source="b", destinations=["d"], bag_ms=1,
                s_max_bytes=1518,
                paths=[["b", "S1", "S2", "S4", "S3", "d"]],
            )
            .build()
        )

    def test_re_meeting_discovered_at_rejoin_port(self, mesh):
        analyzer = TrajectoryAnalyzer(mesh, serialization="safe")
        analyzer.analyze()
        added, readded, _gain = analyzer._meeting_cache[("v1", ("S3", "d"))]
        assert readded == ("v2",)
        assert "v2" not in added

    def test_safe_charges_one_extra_competitor(self, mesh):
        safe = analyze_trajectory(mesh, serialization="safe")
        paper = analyze_trajectory(mesh, serialization="paper")
        assert paper.paths[("v1", 0)].n_competitors == 1
        assert safe.paths[("v1", 0)].n_competitors == 2
        assert safe.paths[("v1", 0)].total_us > paper.paths[("v1", 0)].total_us

    def test_safe_bound_covers_simulation(self, mesh):
        from repro.sim import TrafficScenario, simulate

        safe = analyze_trajectory(mesh, serialization="safe")
        for seed in range(4):
            observed = simulate(
                mesh,
                TrafficScenario(duration_ms=10, synchronized=(seed % 2 == 0),
                                seed=seed),
            )
            for key, stats in observed.paths.items():
                assert stats.max_us <= safe.paths[key].total_us + 1e-9, key


class TestEventMemoEquivalence:
    """The per-sweep candidate-event memo must not change any bound."""

    def test_memo_off_gives_identical_results(self):
        from repro.configs.random_topology import random_network

        network = random_network(31, n_switches=3, n_end_systems=6,
                                 n_virtual_links=10)
        plain = TrajectoryAnalyzer(network, serialization="safe")
        unmemoized = TrajectoryAnalyzer(network, serialization="safe")
        unmemoized._event_memo_enabled = False  # test hook
        with_memo = plain.analyze()
        without_memo = unmemoized.analyze()
        assert with_memo.paths == without_memo.paths
        assert with_memo.refinement_iterations == without_memo.refinement_iterations
        hits, misses = plain._cache_counters["events"]
        assert hits > 0  # the memo actually engaged on this topology
        assert unmemoized._cache_counters["events"] == [0, 0]
