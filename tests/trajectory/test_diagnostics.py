"""Trajectory result diagnostics are coherent."""

import pytest

from repro.trajectory import analyze_trajectory


@pytest.fixture(scope="module")
def result(request):
    from repro.configs import fig1_network

    return analyze_trajectory(fig1_network())


def test_busy_period_positive(result):
    for path in result.paths.values():
        assert path.busy_period_us > 0


def test_candidates_at_least_one(result):
    for path in result.paths.values():
        assert path.n_candidates >= 1


def test_critical_instant_inside_busy_period(result):
    for path in result.paths.values():
        assert 0.0 <= path.critical_instant_us < path.busy_period_us


def test_decomposition_identity(result):
    for path in result.paths.values():
        assert path.total_us == pytest.approx(
            path.workload_us
            + path.transition_us
            + path.latency_us
            - path.serialization_gain_us
            - path.critical_instant_us
        )


def test_workload_includes_own_frame(result):
    from repro.configs import fig1_network

    network = fig1_network()
    for (vl_name, _idx), path in result.paths.items():
        own_c = network.vl(vl_name).c_max_us(network.default_rate)
        assert path.workload_us >= own_c - 1e-9


def test_latency_counts_crossed_switches(result):
    for path in result.paths.values():
        n_switches = len(path.node_path) - 2
        assert path.latency_us == pytest.approx(16.0 * n_switches)


def test_competitors_nonnegative(result):
    for path in result.paths.values():
        assert path.n_competitors >= 0


def test_path_bounds_sorted_accessor(result):
    listed = result.path_bounds()
    assert [(p.vl_name, p.path_index) for p in listed] == sorted(result.paths)
