"""Smin / Smax arrival-time maps."""

import pytest

from repro.netcalc import analyze_network_calculus
from repro.trajectory.timing import compute_smin, seed_smax_from_netcalc, tree_prefixes


def test_tree_prefixes_fig2(fig2):
    prefixes = tree_prefixes(fig2)
    assert prefixes[("v1", ("e1", "S1"))] == (("e1", "S1"),)
    assert prefixes[("v1", ("S3", "e6"))] == (
        ("e1", "S1"),
        ("S1", "S3"),
        ("S3", "e6"),
    )


def test_tree_prefixes_multicast_unique(fig1):
    prefixes = tree_prefixes(fig1)
    # v6 paths share e1->S1; the prefix at the shared port is unique
    assert prefixes[("v6", ("e1", "S1"))] == (("e1", "S1"),)


def test_smin_first_port_is_zero(fig2):
    smin = compute_smin(fig2)
    for name in fig2.virtual_links:
        first = fig2.port_path(name)[0]
        assert smin[(name, first)] == 0.0


def test_smin_accumulates_transmission_and_latency(fig2):
    smin = compute_smin(fig2)
    # v1 at S1->S3: one 40 us transmission + 16 us switch latency
    assert smin[("v1", ("S1", "S3"))] == pytest.approx(56.0)
    # v1 at S3->e6: two transmissions + two latencies
    assert smin[("v1", ("S3", "e6"))] == pytest.approx(112.0)


def test_smin_uses_minimum_frame_size(single_switch):
    smin = compute_smin(single_switch)
    # va has s_min 64 B = 512 bits -> 5.12 us, plus 16 us latency
    assert smin[("va", ("SW", "d"))] == pytest.approx(5.12 + 16.0)


def test_smax_seed_zero_at_first_port(fig2):
    nc = analyze_network_calculus(fig2)
    smax = seed_smax_from_netcalc(fig2, nc)
    assert smax[("v1", ("e1", "S1"))] == 0.0


def test_smax_seed_accumulates_port_delays(fig2):
    nc = analyze_network_calculus(fig2)
    smax = seed_smax_from_netcalc(fig2, nc)
    expected = nc.ports[("e1", "S1")].delay_us + 16.0
    assert smax[("v1", ("S1", "S3"))] == pytest.approx(expected)


def test_smax_dominates_smin_everywhere(fig1):
    nc = analyze_network_calculus(fig1)
    smax = seed_smax_from_netcalc(fig1, nc)
    smin = compute_smin(fig1)
    for key in smin:
        assert smax[key] >= smin[key] - 1e-9
