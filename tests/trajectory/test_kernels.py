"""Fast-kernel equivalence: bit-identical bounds vs the reference walk.

The ``fast`` trajectory kernel (flat competitor tables, batched folds,
shared-subpath memoization, dominance pruning — docs/PERFORMANCE.md)
promises *exactly* the reference kernel's floats, not merely close
ones.  These tests enforce that promise on randomized topologies under
hypothesis and on a seeded 1000-VL industrial configuration; the
committed-scenario sweep (including ``--jobs`` and incremental-cache
shapes) lives in ``scripts/kernel_gate.py``.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.configs import fig1_network, fig2_network, random_network
from repro.trajectory import analyze_trajectory

FLOAT_FIELDS = (
    "total_us",
    "critical_instant_us",
    "busy_period_us",
    "workload_us",
    "transition_us",
    "latency_us",
    "serialization_gain_us",
)

MODES = ("paper", "windowed", "safe")


def assert_kernels_identical(network, serialization):
    reference = analyze_trajectory(
        network, serialization=serialization, kernel="reference"
    )
    fast = analyze_trajectory(network, serialization=serialization, kernel="fast")
    assert set(reference.paths) == set(fast.paths)
    for key in reference.paths:
        ref, got = reference.paths[key], fast.paths[key]
        for name in FLOAT_FIELDS:
            assert getattr(ref, name) == getattr(got, name), (key, name)
        assert ref.n_competitors == got.n_competitors, key
        # the dominance prune may only ever *skip* candidates
        assert got.n_candidates <= ref.n_candidates, key
    return reference, fast


class TestPaperConfigs:
    @pytest.mark.parametrize("mode", MODES)
    def test_fig1(self, mode):
        assert_kernels_identical(fig1_network(), mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_fig2(self, mode):
        assert_kernels_identical(fig2_network(), mode)


class TestRandomConfigs:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mode=st.sampled_from(MODES),
    )
    # pin the float-boundary regression seeds so they replay on every
    # clone without a local .hypothesis/ example cache
    @example(seed=589, mode="safe")
    @example(seed=7, mode="windowed")
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_bit_identical(self, seed, mode):
        network = random_network(
            seed, n_switches=3, n_end_systems=8, n_virtual_links=8
        )
        assert_kernels_identical(network, mode)

    def test_refinement_disabled(self):
        """Kernels must also agree on the unrefined single sweep."""
        network = random_network(42, n_virtual_links=8)
        for mode in MODES:
            reference = analyze_trajectory(
                network, serialization=mode, refine_smax=False, kernel="reference"
            )
            fast = analyze_trajectory(
                network, serialization=mode, refine_smax=False, kernel="fast"
            )
            for key in reference.paths:
                assert (
                    reference.paths[key].total_us == fast.paths[key].total_us
                ), (key, mode)


@pytest.mark.slow
class TestAtScale:
    def test_thousand_vl_smoke(self):
        """Seeded 1000-VL industrial configuration, fast kernel.

        Reference-kernel bit-identity at this size is covered (slowly)
        by the benchmark equivalence run; here we assert the fast
        kernel completes with sound-looking bounds for every path, and
        that the ``--jobs 4`` warm-pool execution shape reproduces the
        sequential floats exactly (the fleet engine's contract at the
        scale the paper targets).
        """
        from repro.batch import BatchAnalyzer, shm
        from repro.batch.pool import WorkerPool
        from repro.configs.industrial import (
            IndustrialConfigSpec,
            industrial_network,
        )

        network = industrial_network(IndustrialConfigSpec(n_virtual_links=1000))
        result = analyze_trajectory(network, serialization="windowed", kernel="fast")
        assert len(result.paths) == len(network.flow_paths())
        for key, bound in result.paths.items():
            assert bound.total_us > 0.0, key
            assert bound.busy_period_us >= 0.0, key

        with WorkerPool(4, None) as pool:
            parallel = BatchAnalyzer(
                network, jobs=4, serialization="windowed",
                trajectory_kernel="fast", pool=pool,
            ).trajectory()
        assert set(parallel.paths) == set(result.paths)
        for key in result.paths:
            for name in FLOAT_FIELDS:
                assert getattr(parallel.paths[key], name) == getattr(
                    result.paths[key], name
                ), (key, name)
        assert shm.active_owned() == []
