"""Serialization credits — including the optimism regression.

The 'paper' per-group credit reproduces the paper's Fig. 3 -> Fig. 4
improvement, but this library's simulation cross-check rediscovered that
it can undershoot the true worst case (consistent with the later
literature on the trajectory approach's serialization optimism).  The
scenario is kept here as a permanent regression artifact.
"""

import pytest

from repro.sim import TrafficScenario, simulate
from repro.trajectory import analyze_trajectory
from repro.trajectory.serialization import normalize_mode


class TestModeNormalization:
    def test_true_is_windowed(self):
        assert normalize_mode(True) == "windowed"

    def test_false_is_safe(self):
        assert normalize_mode(False) == "safe"

    def test_strings_pass_through(self):
        for mode in ("paper", "windowed", "safe"):
            assert normalize_mode(mode) == mode

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            normalize_mode("turbo")


class TestFig34Reproduction:
    def test_gain_is_exactly_one_frame_time(self, fig2):
        plain = analyze_trajectory(fig2, serialization="safe")
        enhanced = analyze_trajectory(fig2, serialization="paper")
        frame_time = fig2.vl("v3").c_max_us(fig2.default_rate)
        assert plain.bound_us("v1") - enhanced.bound_us("v1") == pytest.approx(
            frame_time
        )

    def test_windowed_equals_paper_on_single_group(self, fig2):
        # only one serialized group ({v3, v4}) per port on this config
        paper = analyze_trajectory(fig2, serialization="paper")
        windowed = analyze_trajectory(fig2, serialization="windowed")
        for key in paper.paths:
            assert paper.paths[key].total_us == pytest.approx(
                windowed.paths[key].total_us
            )

    def test_v5_has_no_gain(self, fig2):
        # v5 shares no port with a serialized competitor group
        enhanced = analyze_trajectory(fig2, serialization="paper")
        assert enhanced.paths[("v5", 0)].serialization_gain_us == 0.0


class TestModeOrdering:
    def test_safe_dominates_windowed_dominates_paper(self, fig1):
        paper = analyze_trajectory(fig1, serialization="paper")
        windowed = analyze_trajectory(fig1, serialization="windowed")
        safe = analyze_trajectory(fig1, serialization="safe")
        for key in safe.paths:
            assert safe.paths[key].total_us >= windowed.paths[key].total_us - 1e-6
            assert windowed.paths[key].total_us >= paper.paths[key].total_us - 1e-6


class TestOptimismRegression:
    def test_paper_credit_is_optimistic_here(self, optimism_network):
        """Simulation exceeds the 'paper' bound — the documented flaw."""
        paper = analyze_trajectory(optimism_network, serialization="paper")
        observed = simulate(optimism_network, TrafficScenario(duration_ms=40))
        worst = observed.worst_observed()
        key = (worst.vl_name, worst.path_index)
        assert worst.max_us > paper.paths[key].total_us

    def test_safe_bound_holds_and_is_tight(self, optimism_network):
        safe = analyze_trajectory(optimism_network, serialization="safe")
        observed = simulate(optimism_network, TrafficScenario(duration_ms=40))
        for key, stats in observed.paths.items():
            assert stats.max_us <= safe.paths[key].total_us + 1e-6
        # the sound bound is attained exactly: 10 frames + latency + own
        worst = observed.worst_observed()
        assert worst.max_us == pytest.approx(456.0)
        assert safe.paths[(worst.vl_name, worst.path_index)].total_us == pytest.approx(
            456.0
        )
