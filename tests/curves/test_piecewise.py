"""PiecewiseCurve: construction, evaluation, shape predicates."""

import pytest

from repro.curves import PiecewiseCurve


class TestConstruction:
    def test_affine(self):
        curve = PiecewiseCurve.affine(rate=2.0, burst=10.0)
        assert curve.burst == 10.0
        assert curve.final_slope == 2.0

    def test_rate_latency(self):
        curve = PiecewiseCurve.rate_latency(rate=100.0, latency=16.0)
        assert curve(0) == 0.0
        assert curve(16) == 0.0
        assert curve(17) == pytest.approx(100.0)

    def test_rate_latency_zero_latency(self):
        curve = PiecewiseCurve.rate_latency(rate=100.0, latency=0.0)
        assert curve(1) == 100.0

    def test_zero(self):
        curve = PiecewiseCurve.zero()
        assert curve(0) == 0.0
        assert curve(1e9) == 0.0

    def test_requires_breakpoint_at_zero(self):
        with pytest.raises(ValueError, match="x=0"):
            PiecewiseCurve([(1.0, 5.0)], 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            PiecewiseCurve([], 1.0)

    def test_rejects_decreasing_y(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PiecewiseCurve([(0.0, 5.0), (1.0, 3.0)], 1.0)

    def test_rejects_negative_final_slope(self):
        with pytest.raises(ValueError, match="final slope"):
            PiecewiseCurve([(0.0, 0.0)], -1.0)

    def test_rejects_non_increasing_x(self):
        with pytest.raises(ValueError, match="increase"):
            PiecewiseCurve([(0.0, 0.0), (2.0, 2.0), (1.0, 3.0)], 1.0)

    def test_duplicate_x_deduped(self):
        curve = PiecewiseCurve([(0.0, 1.0), (0.0, 2.0), (3.0, 5.0)], 1.0)
        assert curve(0) == 2.0


class TestEvaluation:
    def test_interpolation(self):
        curve = PiecewiseCurve([(0.0, 0.0), (10.0, 100.0)], 5.0)
        assert curve(5) == 50.0

    def test_beyond_last_breakpoint(self):
        curve = PiecewiseCurve([(0.0, 0.0), (10.0, 100.0)], 5.0)
        assert curve(12) == 110.0

    def test_negative_argument_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseCurve.zero()(-1.0)

    def test_many_breakpoints_binary_search(self):
        points = [(float(i), float(i * i)) for i in range(50)]
        curve = PiecewiseCurve(points, 100.0)
        assert curve(7.0) == 49.0
        assert curve(7.5) == pytest.approx((49 + 64) / 2)


class TestShape:
    def test_affine_is_concave_and_convex(self):
        curve = PiecewiseCurve.affine(1.0, 5.0)
        assert curve.is_concave()
        assert curve.is_convex()

    def test_rate_latency_is_convex_not_concave(self):
        curve = PiecewiseCurve.rate_latency(100.0, 16.0)
        assert curve.is_convex()
        assert not curve.is_concave()

    def test_concave_two_segment(self):
        curve = PiecewiseCurve([(0.0, 10.0), (5.0, 60.0)], 2.0)  # slopes 10, 2
        assert curve.is_concave()
        assert not curve.is_convex()

    def test_slopes(self):
        curve = PiecewiseCurve([(0.0, 0.0), (2.0, 20.0)], 3.0)
        assert curve.slopes() == [10.0, 3.0]

    def test_max_slope(self):
        curve = PiecewiseCurve([(0.0, 0.0), (2.0, 20.0)], 3.0)
        assert curve.max_slope() == 10.0


class TestInverse:
    def test_inverse_on_segment(self):
        curve = PiecewiseCurve([(0.0, 0.0), (10.0, 100.0)], 1.0)
        assert curve.inverse(50.0) == 5.0

    def test_inverse_below_burst_is_zero(self):
        curve = PiecewiseCurve.affine(1.0, 10.0)
        assert curve.inverse(5.0) == 0.0

    def test_inverse_beyond_last_breakpoint(self):
        curve = PiecewiseCurve([(0.0, 0.0), (10.0, 10.0)], 2.0)
        assert curve.inverse(20.0) == 15.0

    def test_inverse_flat_tail_raises(self):
        curve = PiecewiseCurve([(0.0, 0.0), (10.0, 10.0)], 0.0)
        with pytest.raises(ValueError, match="never reaches"):
            curve.inverse(11.0)

    def test_inverse_of_flat_segment_takes_right_edge(self):
        curve = PiecewiseCurve([(0.0, 0.0), (5.0, 0.0)], 100.0)  # rate-latency
        assert curve.inverse(0.0) == 0.0


class TestComparison:
    def test_equals_same_curve_different_breakpoints(self):
        a = PiecewiseCurve([(0.0, 0.0), (10.0, 10.0)], 1.0)
        b = PiecewiseCurve([(0.0, 0.0), (4.0, 4.0), (10.0, 10.0)], 1.0)
        assert a.equals(b)

    def test_not_equals_different_tail(self):
        a = PiecewiseCurve([(0.0, 0.0)], 1.0)
        b = PiecewiseCurve([(0.0, 0.0)], 2.0)
        assert not a.equals(b)

    def test_dominates(self):
        low = PiecewiseCurve.affine(1.0, 5.0)
        high = PiecewiseCurve.affine(1.0, 10.0)
        assert high.dominates(low)
        assert not low.dominates(high)

    def test_dominates_requires_tail_dominance(self):
        slow = PiecewiseCurve.affine(1.0, 100.0)
        fast = PiecewiseCurve.affine(5.0, 0.0)
        assert not slow.dominates(fast)

    def test_repr_mentions_breakpoints(self):
        assert "final_slope" in repr(PiecewiseCurve.affine(1.0, 2.0))
