"""Property-based tests of the min-plus algebra (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.curves import (
    PiecewiseCurve,
    RateLatency,
    add_curves,
    deconvolve,
    horizontal_deviation,
    min_curves,
    vertical_deviation,
)

rates = st.floats(min_value=0.01, max_value=90.0)
bursts = st.floats(min_value=0.0, max_value=20000.0)
latencies = st.floats(min_value=0.0, max_value=100.0)
times = st.floats(min_value=0.0, max_value=10000.0)


@st.composite
def concave_curves(draw):
    """Random concave curve: min of 1-3 affine curves."""
    n = draw(st.integers(min_value=1, max_value=3))
    curve = PiecewiseCurve.affine(draw(rates), draw(bursts))
    for _ in range(n - 1):
        curve = min_curves(curve, PiecewiseCurve.affine(draw(rates), draw(bursts)))
    return curve


@given(concave_curves(), concave_curves(), times)
@settings(max_examples=60)
def test_add_is_pointwise(a, b, t):
    assert add_curves(a, b)(t) == pytest.approx(a(t) + b(t), rel=1e-6, abs=1e-6)


@given(concave_curves(), concave_curves(), times)
@settings(max_examples=60)
def test_min_is_pointwise_lower_bound(a, b, t):
    low = min_curves(a, b)
    assert low(t) <= min(a(t), b(t)) + 1e-6
    assert low(t) >= min(a(t), b(t)) - 1e-6


@given(concave_curves(), concave_curves())
@settings(max_examples=60)
def test_min_preserves_concavity(a, b):
    assert min_curves(a, b).is_concave()


@given(concave_curves(), concave_curves())
@settings(max_examples=60)
def test_add_preserves_concavity(a, b):
    assert add_curves(a, b).is_concave()


@given(concave_curves(), latencies)
@settings(max_examples=60)
def test_hdev_definition(alpha, latency):
    """alpha(t) <= beta(t + h) for every t — h really is a delay bound."""
    beta_obj = RateLatency(100.0, latency)
    beta = beta_obj.curve()
    h = horizontal_deviation(alpha, beta)
    for t in [0.0, 1.0, 10.0, 100.0, 1000.0] + [x for x, _ in alpha.breakpoints]:
        assert alpha(t) <= beta(t + h) + 1e-6


@given(concave_curves(), latencies)
@settings(max_examples=60)
def test_vdev_definition(alpha, latency):
    """alpha(t) - beta(t) <= v at every breakpoint."""
    beta = RateLatency(100.0, latency).curve()
    v = vertical_deviation(alpha, beta)
    for t in [0.0, 1.0, 10.0, 100.0, 1000.0] + [x for x, _ in alpha.breakpoints]:
        assert alpha(t) - beta(t) <= v + 1e-6


@given(concave_curves(), latencies)
@settings(max_examples=60)
def test_hdev_increases_with_latency(alpha, latency):
    beta_low = RateLatency(100.0, latency).curve()
    beta_high = RateLatency(100.0, latency + 10.0).curve()
    assert horizontal_deviation(alpha, beta_high) >= horizontal_deviation(alpha, beta_low) - 1e-9


@given(concave_curves(), latencies)
@settings(max_examples=60)
def test_deconvolve_dominates_input(alpha, latency):
    out = deconvolve(alpha, RateLatency(100.0, latency))
    assert out.dominates(alpha, tol=1e-5)


@given(concave_curves(), latencies)
@settings(max_examples=60)
def test_deconvolve_keeps_long_term_rate(alpha, latency):
    out = deconvolve(alpha, RateLatency(100.0, latency))
    assert out.final_slope == pytest.approx(alpha.final_slope)
