"""LeakyBucket arrival curves."""

import pytest

from repro.curves import LeakyBucket


def test_vl_contract_values():
    # a 500 B / 4 ms VL at the ingress: burst 4000 bits, rate 1 bit/us
    bucket = LeakyBucket(rate=1.0, burst=4000.0)
    assert bucket(0) == 4000.0
    assert bucket(4000) == 8000.0


def test_negative_rate_rejected():
    with pytest.raises(ValueError):
        LeakyBucket(rate=-1.0, burst=0.0)


def test_negative_burst_rejected():
    with pytest.raises(ValueError):
        LeakyBucket(rate=1.0, burst=-1.0)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        LeakyBucket(rate=1.0, burst=1.0)(-0.5)


def test_addition_aggregates():
    total = LeakyBucket(1.0, 4000.0) + LeakyBucket(2.0, 8000.0)
    assert total.rate == 3.0
    assert total.burst == 12000.0


def test_addition_rejects_other_types():
    with pytest.raises(TypeError):
        LeakyBucket(1.0, 1.0) + 3  # noqa: B018


def test_delayed_inflates_burst_by_rate_times_delay():
    bucket = LeakyBucket(rate=2.0, burst=1000.0)
    assert bucket.delayed(50.0) == LeakyBucket(rate=2.0, burst=1100.0)


def test_delayed_zero_is_identity():
    bucket = LeakyBucket(rate=2.0, burst=1000.0)
    assert bucket.delayed(0.0) == bucket


def test_delayed_negative_rejected():
    with pytest.raises(ValueError):
        LeakyBucket(1.0, 1.0).delayed(-1.0)


def test_curve_matches_callable():
    bucket = LeakyBucket(rate=1.5, burst=300.0)
    curve = bucket.curve()
    for t in (0.0, 1.0, 10.0, 1000.0):
        assert curve(t) == pytest.approx(bucket(t))


def test_zero_rate_bucket_is_constant():
    bucket = LeakyBucket(rate=0.0, burst=100.0)
    assert bucket(1e6) == 100.0
    assert bucket.delayed(1e6).burst == 100.0
