"""Min-plus operations: sums, minima, deviations, deconvolution."""

import math

import pytest

from repro.curves import (
    LeakyBucket,
    PiecewiseCurve,
    RateLatency,
    add_curves,
    deconvolve,
    horizontal_deviation,
    min_curves,
    sum_curves,
    vertical_deviation,
)


class TestAdd:
    def test_two_affine(self):
        total = add_curves(
            PiecewiseCurve.affine(1.0, 4000.0), PiecewiseCurve.affine(2.0, 1000.0)
        )
        assert total(0) == 5000.0
        assert total.final_slope == 3.0

    def test_sum_empty_is_zero(self):
        assert sum_curves([]).equals(PiecewiseCurve.zero())

    def test_sum_many(self):
        curves = [PiecewiseCurve.affine(1.0, 100.0) for _ in range(10)]
        total = sum_curves(curves)
        assert total(0) == 1000.0
        assert total.final_slope == 10.0

    def test_add_merges_breakpoints(self):
        a = PiecewiseCurve([(0.0, 0.0), (5.0, 50.0)], 1.0)
        b = PiecewiseCurve([(0.0, 0.0), (3.0, 3.0)], 0.0)
        total = add_curves(a, b)
        assert total(3.0) == pytest.approx(33.0)
        assert total(5.0) == pytest.approx(53.0)


class TestMin:
    def test_grouping_cap(self):
        # two flows of burst 4000 each, capped by the link shaping curve
        summed = add_curves(
            PiecewiseCurve.affine(1.0, 4000.0), PiecewiseCurve.affine(1.0, 4000.0)
        )
        shaping = PiecewiseCurve.affine(100.0, 4000.0)
        capped = min_curves(summed, shaping)
        assert capped(0) == 4000.0  # burst limited to one max frame
        # far out, the sustained rates dominate
        assert capped.final_slope == 2.0

    def test_min_of_concave_is_concave(self):
        a = PiecewiseCurve.affine(1.0, 8000.0)
        b = PiecewiseCurve.affine(100.0, 1500.0)
        assert min_curves(a, b).is_concave()

    def test_min_is_pointwise(self):
        a = PiecewiseCurve.affine(1.0, 8000.0)
        b = PiecewiseCurve.affine(100.0, 1500.0)
        low = min_curves(a, b)
        for t in (0.0, 10.0, 65.0, 66.0, 100.0, 1000.0):
            assert low(t) == pytest.approx(min(a(t), b(t)))

    def test_min_commutative(self):
        a = PiecewiseCurve.affine(3.0, 100.0)
        b = PiecewiseCurve.affine(1.0, 500.0)
        assert min_curves(a, b).equals(min_curves(b, a))

    def test_min_with_self_is_identity(self):
        a = PiecewiseCurve.affine(3.0, 100.0)
        assert min_curves(a, a).equals(a)


class TestHorizontalDeviation:
    def test_textbook_affine_vs_rate_latency(self):
        # h(gamma_{r,b}, beta_{R,T}) = T + b/R for r <= R
        alpha = PiecewiseCurve.affine(1.0, 4000.0)
        beta = RateLatency(100.0, 16.0).curve()
        assert horizontal_deviation(alpha, beta) == pytest.approx(16.0 + 40.0)

    def test_unstable_returns_inf(self):
        alpha = PiecewiseCurve.affine(200.0, 0.0)
        beta = RateLatency(100.0, 0.0).curve()
        assert math.isinf(horizontal_deviation(alpha, beta))

    def test_equal_rates_is_finite(self):
        alpha = PiecewiseCurve.affine(100.0, 4000.0)
        beta = RateLatency(100.0, 16.0).curve()
        assert horizontal_deviation(alpha, beta) == pytest.approx(56.0)

    def test_zero_arrival(self):
        beta = RateLatency(100.0, 16.0).curve()
        assert horizontal_deviation(PiecewiseCurve.zero(), beta) == 0.0

    def test_capped_group_curve(self):
        # grouped aggregate: initial slope at link rate, then sustained
        group = min_curves(
            add_curves(
                PiecewiseCurve.affine(1.0, 6000.0), PiecewiseCurve.affine(1.0, 6000.0)
            ),
            PiecewiseCurve.affine(100.0, 4000.0),
        )
        beta = RateLatency(100.0, 16.0).curve()
        delay = horizontal_deviation(group, beta)
        # must be between the single-frame and the naive two-burst delay
        assert 16.0 + 40.0 <= delay <= 16.0 + 120.0


class TestVerticalDeviation:
    def test_textbook_backlog(self):
        # v(gamma_{r,b}, beta_{R,T}) = b + r T for r <= R
        alpha = PiecewiseCurve.affine(1.0, 4000.0)
        beta = RateLatency(100.0, 16.0).curve()
        assert vertical_deviation(alpha, beta) == pytest.approx(4016.0)

    def test_unstable_returns_inf(self):
        alpha = PiecewiseCurve.affine(200.0, 0.0)
        beta = RateLatency(100.0, 0.0).curve()
        assert math.isinf(vertical_deviation(alpha, beta))

    def test_backlog_at_least_burst(self):
        alpha = PiecewiseCurve.affine(0.5, 12000.0)
        beta = RateLatency(100.0, 16.0).curve()
        assert vertical_deviation(alpha, beta) >= 12000.0


class TestDeconvolve:
    def test_textbook_affine(self):
        # gamma_{r,b} (/) beta_{R,T} = gamma_{r, b + rT}
        alpha = PiecewiseCurve.affine(2.0, 1000.0)
        out = deconvolve(alpha, RateLatency(100.0, 16.0))
        expected = PiecewiseCurve.affine(2.0, 1000.0 + 2.0 * 16.0)
        assert out.equals(expected)

    def test_requires_concave(self):
        convex = PiecewiseCurve.rate_latency(100.0, 16.0)
        with pytest.raises(ValueError, match="concave"):
            deconvolve(convex, RateLatency(100.0, 0.0))

    def test_unstable_rejected(self):
        alpha = PiecewiseCurve.affine(200.0, 0.0)
        with pytest.raises(ValueError, match="exceeds"):
            deconvolve(alpha, RateLatency(100.0, 0.0))

    def test_steep_initial_segment(self):
        # group curve whose first segment runs at the link rate
        alpha = min_curves(
            PiecewiseCurve.affine(100.0, 1000.0),
            PiecewiseCurve.affine(1.0, 9000.0),
        )
        out = deconvolve(alpha, RateLatency(100.0, 10.0))
        # output dominates the input (a causal system can only spread traffic)
        assert out.dominates(alpha)
        assert out.final_slope == pytest.approx(alpha.final_slope)

    def test_output_dominates_input(self):
        alpha = PiecewiseCurve.affine(3.0, 500.0)
        out = deconvolve(alpha, RateLatency(10.0, 5.0))
        assert out.dominates(alpha)


class TestConcaveEnvelope:
    """min_curves must stay concave even when a crossing lands within
    floating-point noise of an existing knot (hypothesis-found
    regression: the micro-segment between the two near-equal x values
    got a garbage slope and is_concave() failed)."""

    def test_crossing_adjacent_to_knot_stays_concave(self):
        from repro.curves import PiecewiseCurve

        f = PiecewiseCurve.affine(1.0, 100.0)  # 100 + t
        # crosses f a couple of 1e-7 before its own knot at x ~= 100
        g = PiecewiseCurve([(0.0, 0.0), (100.0 - 1e-7, 200.0000001)], 0.5)
        assert f.is_concave() and g.is_concave()
        low = min_curves(f, g)
        assert low.is_concave()
        # and it is still the pointwise minimum
        for t in (0.0, 50.0, 99.9999, 100.0, 150.0):
            assert low(t) == pytest.approx(min(f(t), g(t)), abs=1e-6)

    def test_envelope_drops_noise_point(self):
        from repro.curves.operations import _concave_envelope

        noisy = [(0.0, 0.0), (10.0, 100.0), (10.0 + 1e-7, 100.0 - 1e-9),
                 (20.0, 105.0)]
        cleaned = _concave_envelope(noisy, 0.1)
        assert cleaned == [(0.0, 0.0), (10.0, 100.0), (20.0, 105.0)]

    def test_envelope_respects_tail_slope(self):
        from repro.curves.operations import _concave_envelope

        # last sampled point dips below: the 2.0 tail slope would make
        # slopes increase again, so the dip must be dropped
        dipping = [(0.0, 0.0), (10.0, 100.0), (10.0 + 1e-7, 100.0 - 1e-9)]
        assert _concave_envelope(dipping, 2.0) == [(0.0, 0.0), (10.0, 100.0)]


class TestMergeKnots:
    """The linear merge must be bit-identical to ``sorted(set|set)``."""

    def test_matches_set_union_on_random_ascending_lists(self):
        import random

        from repro.curves.operations import _merge_knots

        rng = random.Random(99)
        for _ in range(200):
            pool = sorted({rng.uniform(0, 100) for _ in range(rng.randrange(0, 12))})
            a = sorted(rng.sample(pool, rng.randint(0, len(pool))))
            b = sorted(rng.sample(pool, rng.randint(0, len(pool))))
            assert _merge_knots(a, b) == sorted(set(a) | set(b))

    def test_empty_and_duplicate_edges(self):
        from repro.curves.operations import _merge_knots

        assert _merge_knots([], []) == []
        assert _merge_knots([1.0], []) == [1.0]
        assert _merge_knots([], [2.0]) == [2.0]
        assert _merge_knots([1.0, 2.0], [1.0, 2.0]) == [1.0, 2.0]
        # -0.0 == 0.0: collapses exactly like the set did
        assert _merge_knots([-0.0], [0.0]) == sorted({-0.0} | {0.0})
