"""RateLatency service curves."""

import pytest

from repro.curves import RateLatency


def test_afdx_port_service():
    beta = RateLatency(rate=100.0, latency=16.0)
    assert beta(16.0) == 0.0
    assert beta(17.0) == pytest.approx(100.0)
    assert beta(0.0) == 0.0


def test_zero_latency():
    beta = RateLatency(rate=100.0, latency=0.0)
    assert beta(1.0) == 100.0


def test_rate_must_be_positive():
    with pytest.raises(ValueError):
        RateLatency(rate=0.0, latency=1.0)


def test_latency_must_be_nonnegative():
    with pytest.raises(ValueError):
        RateLatency(rate=1.0, latency=-1.0)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        RateLatency(1.0, 0.0)(-1.0)


def test_convolution_concatenates_ports():
    first = RateLatency(rate=100.0, latency=16.0)
    second = RateLatency(rate=80.0, latency=10.0)
    series = first.convolve(second)
    assert series.rate == 80.0
    assert series.latency == 26.0


def test_convolution_is_commutative():
    a = RateLatency(100.0, 16.0)
    b = RateLatency(50.0, 3.0)
    assert a.convolve(b) == b.convolve(a)


def test_curve_matches_callable():
    beta = RateLatency(rate=100.0, latency=16.0)
    curve = beta.curve()
    for t in (0.0, 10.0, 16.0, 20.0, 500.0):
        assert curve(t) == pytest.approx(beta(t))
