"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_configuration_family():
    for exc in (
        errors.DuplicateNameError,
        errors.UnknownNodeError,
        errors.InvalidTopologyError,
        errors.InvalidVirtualLinkError,
    ):
        assert issubclass(exc, errors.ConfigurationError)


def test_analysis_family():
    for exc in (
        errors.CyclicRoutingError,
        errors.UnstableNetworkError,
        errors.ConvergenceError,
    ):
        assert issubclass(exc, errors.AnalysisError)


def test_families_are_disjoint():
    assert not issubclass(errors.ConfigurationError, errors.AnalysisError)
    assert not issubclass(errors.AnalysisError, errors.ConfigurationError)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.UnstableNetworkError("port overloaded")
