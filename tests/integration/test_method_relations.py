"""Cross-method invariants the theory demands."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs import random_network
from repro.core import analyze_network
from repro.netcalc import analyze_network_calculus
from repro.trajectory import analyze_trajectory

SEEDS = [1, 7, 23, 99]


@pytest.mark.parametrize("seed", SEEDS)
def test_grouping_never_loosens_nc(seed):
    network = random_network(seed, n_virtual_links=8)
    grouped = analyze_network_calculus(network, grouping=True)
    plain = analyze_network_calculus(network, grouping=False)
    for key in grouped.paths:
        assert grouped.paths[key].total_us <= plain.paths[key].total_us + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_serialization_mode_ordering(seed):
    network = random_network(seed, n_virtual_links=8)
    paper = analyze_trajectory(network, serialization="paper")
    windowed = analyze_trajectory(network, serialization="windowed")
    safe = analyze_trajectory(network, serialization="safe")
    for key in safe.paths:
        assert paper.paths[key].total_us <= windowed.paths[key].total_us + 1e-6
        assert windowed.paths[key].total_us <= safe.paths[key].total_us + 1e-6


@pytest.mark.parametrize("seed", SEEDS)
def test_smax_refinement_never_loosens(seed):
    network = random_network(seed, n_virtual_links=8)
    refined = analyze_trajectory(network, refine_smax=True)
    single = analyze_trajectory(network, refine_smax=False)
    for key in refined.paths:
        assert refined.paths[key].total_us <= single.paths[key].total_us + 1e-6


@pytest.mark.parametrize("seed", SEEDS)
def test_combined_dominates_both(seed):
    network = random_network(seed, n_virtual_links=8)
    result = analyze_network(network)
    for path in result.paths.values():
        assert path.best_us <= path.network_calculus_us + 1e-9
        assert path.best_us <= path.trajectory_us + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_bounds_at_least_pipeline_minimum(seed):
    """No bound can be below the uncontended store-and-forward delay."""
    network = random_network(seed, n_virtual_links=8)
    result = analyze_network(network)
    for (vl_name, idx), path in result.paths.items():
        vl = network.vl(vl_name)
        ports = network.port_path(vl_name, idx)
        floor = sum(
            vl.s_max_bits / network.link_rate(*pid) for pid in ports
        ) + sum(network.node(pid[0]).technological_latency_us for pid in ports)
        assert path.best_us >= floor - 1e-6


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=10, deadline=None)
def test_larger_frames_never_shrink_own_bound(seed):
    """Monotonicity: growing a VL's s_max cannot reduce its own bound."""
    network = random_network(seed, n_virtual_links=6)
    name = sorted(network.virtual_links)[0]
    small = analyze_network(network).paths
    bigger = network.copy()
    vl = bigger.vl(name)
    bigger.replace_virtual_link(vl.with_s_max_bytes(min(1518.0, vl.s_max_bytes * 1.5)))
    if bigger.max_utilization() > 1.0:
        return  # growth made it unschedulable; nothing to compare
    big = analyze_network(bigger).paths
    for key in small:
        if key[0] == name:
            assert big[key].best_us >= small[key].best_us - 1e-6


@pytest.mark.parametrize("seed", SEEDS)
def test_adding_a_flow_never_tightens_others(seed):
    """Adding traffic can only increase (or keep) everyone's bounds."""
    from repro.network.routing import route_virtual_link
    from repro.network.virtual_link import VirtualLink

    network = random_network(seed, n_virtual_links=6)
    before = analyze_network(network).paths

    extended = network.copy()
    sources = [es.name for es in extended.end_systems()]
    src, dst = sources[0], sources[-1]
    extra = VirtualLink(
        name="extra",
        source=src,
        paths=route_virtual_link(extended, src, [dst]),
        bag_ms=32,
        s_max_bytes=64,
    )
    extended.add_virtual_link(extra)
    if extended.max_utilization() >= 1.0:
        return
    after = analyze_network(extended).paths
    for key in before:
        assert after[key].network_calculus_us >= before[key].network_calculus_us - 1e-6
        assert after[key].trajectory_us >= before[key].trajectory_us - 1e-6
