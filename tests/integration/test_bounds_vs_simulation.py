"""The central soundness invariant: analytic bounds dominate simulation.

Every delay observed by the frame-level simulator is a *witness* of a
reachable behaviour; a sound worst-case bound can never be below it.
This holds for the Network Calculus bound (with and without grouping)
and for the Trajectory bound in its provably sound 'safe' mode.  (The
paper-mode serialization credit intentionally fails this in a corner
case — covered by tests/trajectory/test_serialization.py.)
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.configs import fig1_network, fig2_network, random_network
from repro.netcalc import analyze_network_calculus
from repro.sim import TrafficScenario, simulate
from repro.trajectory import analyze_trajectory


def assert_bounds_hold(network, scenario):
    nc = analyze_network_calculus(network, grouping=True)
    nc_plain = analyze_network_calculus(network, grouping=False)
    trajectory = analyze_trajectory(network, serialization="safe")
    observed = simulate(network, scenario)
    assert observed.paths, "simulation delivered no frames"
    for key, stats in observed.paths.items():
        assert stats.max_us <= nc.paths[key].total_us + 1e-6, (key, "NC grouped")
        assert stats.max_us <= nc_plain.paths[key].total_us + 1e-6, (key, "NC plain")
        assert stats.max_us <= trajectory.paths[key].total_us + 1e-6, (key, "Trajectory")
    return observed, nc, trajectory


class TestPaperConfigs:
    def test_fig2_synchronized(self):
        assert_bounds_hold(fig2_network(), TrafficScenario(duration_ms=60))

    def test_fig2_random_offsets(self):
        assert_bounds_hold(
            fig2_network(), TrafficScenario(duration_ms=60, synchronized=False, seed=9)
        )

    def test_fig2_sporadic_random_sizes(self):
        assert_bounds_hold(
            fig2_network(),
            TrafficScenario(duration_ms=60, periodic=False, max_size=False, seed=4),
        )

    def test_fig1_synchronized(self):
        assert_bounds_hold(fig1_network(), TrafficScenario(duration_ms=60))

    def test_fig2_trajectory_bound_attained(self):
        """Tightness witness: the sound bound is reached exactly."""
        network = fig2_network()
        trajectory = analyze_trajectory(network, serialization="safe")
        observed = simulate(network, TrafficScenario(duration_ms=60))
        attained = [
            key
            for key, stats in observed.paths.items()
            if stats.max_us == pytest.approx(trajectory.paths[key].total_us)
        ]
        assert attained, "no path attains its trajectory bound on Fig. 2"


class TestRandomConfigs:
    @pytest.mark.parametrize("seed", range(12))
    def test_seeded_configurations(self, seed):
        network = random_network(
            seed, n_switches=3, n_end_systems=8, n_virtual_links=8
        )
        assert_bounds_hold(network, TrafficScenario(duration_ms=30))

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scenario_seed=st.integers(min_value=0, max_value=100),
        synchronized=st.booleans(),
    )
    # known-hard seeds replay on every run, on every clone — no
    # dependence on a local .hypothesis/ example cache.  589 is the
    # catch-up-interference counterexample of TestSeededRegressions.
    @example(seed=589, scenario_seed=10, synchronized=False)
    @settings(max_examples=15, deadline=None)
    def test_property_random_config_random_traffic(
        self, seed, scenario_seed, synchronized
    ):
        network = random_network(
            seed, n_switches=3, n_end_systems=6, n_virtual_links=6
        )
        scenario = TrafficScenario(
            duration_ms=25, synchronized=synchronized, seed=scenario_seed
        )
        assert_bounds_hold(network, scenario)


class TestSeededRegressions:
    """Counterexamples found by fuzzing, pinned forever.

    Each entry documents a soundness violation that once escaped the
    analyzers; the fix must keep every bound above the replayed
    simulation.
    """

    def test_random_589_catch_up_interference(self):
        """The seed-state soundness bug (ROADMAP, found 2026-08-05).

        ``random_network(589)`` routes a long studied prefix of ``v1``
        into a queue also fed by a short path of ``v4``: a ``v4`` frame
        released *after* the studied frame still reaches the shared
        queue first (it "catches up"), which the historical
        Martin & Minet arrival offset ``Smax_j - Smin_i`` cannot count.
        The simulator observed 512.573 us on path ``('v1', 0)`` while
        safe-mode trajectory claimed 493.76 us.  Safe mode now uses the
        symmetric offset ``max(Smax_j - Smin_i, Smax_i - Smin_j)``.
        """
        network = random_network(
            589, n_switches=3, n_end_systems=6, n_virtual_links=6
        )
        scenario = TrafficScenario(duration_ms=25, synchronized=False, seed=10)
        observed, _nc, trajectory = assert_bounds_hold(network, scenario)
        # the historical witness: the catch-up delay really happens...
        assert observed.paths[("v1", 0)].max_us > 500.0
        # ...and the corrected safe bound stays above it
        assert trajectory.paths[("v1", 0)].total_us >= 512.573


class TestBacklogBounds:
    def test_observed_backlog_below_nc_bound(self):
        network = fig1_network()
        nc = analyze_network_calculus(network, grouping=True)
        observed = simulate(network, TrafficScenario(duration_ms=60))
        for port_id, peak in observed.peak_backlog_bits.items():
            assert peak <= nc.ports[port_id].backlog_bits + 1e-6, port_id
