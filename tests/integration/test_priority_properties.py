"""Property tests of the static-priority extension on random configs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs import random_network
from repro.netcalc import analyze_network_calculus, analyze_static_priority
from repro.sim import TrafficScenario, simulate


def prioritize(network, seed, share=0.4):
    """Randomly promote a share of VLs to high priority (seeded)."""
    rng = random.Random(seed)
    for name in sorted(network.virtual_links):
        if rng.random() < share:
            network.replace_virtual_link(network.vl(name).with_priority(1))
    return network


@pytest.mark.parametrize("seed", range(8))
def test_spq_bounds_dominate_simulation(seed):
    network = prioritize(random_network(seed, n_virtual_links=8), seed)
    spq = analyze_static_priority(network)
    observed = simulate(network, TrafficScenario(duration_ms=30))
    for key, stats in observed.paths.items():
        assert stats.max_us <= spq.paths[key].total_us + 1e-6, key


@pytest.mark.parametrize("seed", range(8))
def test_all_low_equals_fifo(seed):
    network = random_network(seed, n_virtual_links=8)
    fifo = analyze_network_calculus(network)
    spq = analyze_static_priority(network)
    for key in fifo.paths:
        assert spq.paths[key].total_us == pytest.approx(fifo.paths[key].total_us)


@given(
    seed=st.integers(min_value=0, max_value=2000),
    share=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=10, deadline=None)
def test_spq_random_share_sound(seed, share):
    network = prioritize(random_network(seed, n_virtual_links=6), seed, share)
    spq = analyze_static_priority(network)
    observed = simulate(
        network, TrafficScenario(duration_ms=25, synchronized=False, seed=seed)
    )
    for key, stats in observed.paths.items():
        assert stats.max_us <= spq.paths[key].total_us + 1e-6


@pytest.mark.parametrize("seed", range(4))
def test_promotion_cost_bounded_by_blocking(seed):
    """Promotion can *analytically* hurt a flow on lightly loaded ports
    (the non-preemptive blocking frame is counted in full while the FIFO
    aggregate it replaces may be smaller), but never by more than the
    accumulated blocking terms plus a propagation margin."""
    network = random_network(seed, n_virtual_links=6)
    baseline = analyze_static_priority(network)
    name = sorted(network.virtual_links)[0]
    promoted_net = network.copy()
    promoted_net.replace_virtual_link(promoted_net.vl(name).with_priority(1))
    promoted = analyze_static_priority(promoted_net)
    for key in baseline.paths:
        if key[0] != name:
            continue
        ports = network.port_path(key[0], key[1])
        blocking_allowance = sum(
            max(
                (
                    network.vl(other).s_max_bits / network.link_rate(*pid)
                    for other in network.vls_at_port(pid)
                    if network.vl(other).priority == 0 and other != name
                ),
                default=0.0,
            )
            for pid in ports
        )
        limit = baseline.paths[key].total_us + blocking_allowance
        assert promoted.paths[key].total_us <= limit * 1.2 + 1e-6
