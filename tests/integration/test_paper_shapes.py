"""The paper's qualitative findings, asserted as tests.

Absolute values cannot match (the industrial configuration is a
synthetic substitute), but every *shape* the paper reports must hold.
"""

import pytest

from repro.configs import IndustrialConfigSpec
from repro.experiments import (
    run_fig3_4,
    run_fig7,
    run_fig8,
    run_table1,
)
from repro.experiments.runner import industrial_comparison, industrial_config

SMALL_SPEC = IndustrialConfigSpec(n_virtual_links=150, end_systems_per_switch=6)


class TestWorkedExample:
    def test_fig3_to_fig4_gain_is_one_frame(self):
        result = run_fig3_4()
        v1 = next(row for row in result.rows if row[0] == "v1")
        assert v1[3] == pytest.approx(40.0)  # gain
        assert v1[1] == pytest.approx(272.0)  # plain (Fig. 3 scenario)
        assert v1[2] == pytest.approx(232.0)  # enhanced (Fig. 4 scenario)


class TestTable1Shape:
    @pytest.fixture(scope="class")
    def stats(self):
        from repro.core import summarize

        comparison = industrial_comparison(SMALL_SPEC)
        return summarize(comparison.paths.values())

    def test_mean_benefit_positive(self, stats):
        assert stats.mean_benefit_trajectory_pct > 0

    def test_trajectory_wins_majority(self, stats):
        assert stats.trajectory_wins_share > 0.5

    def test_best_minimum_is_exactly_zero(self, stats):
        assert stats.min_benefit_best_pct == pytest.approx(0.0)

    def test_best_never_below_trajectory(self, stats):
        assert stats.mean_benefit_best_pct >= stats.mean_benefit_trajectory_pct - 1e-9

    def test_table_renders(self):
        result = run_table1(spec=SMALL_SPEC)
        text = result.render()
        assert "Trajectory/WCNC" in text and "Best/WCNC" in text


class TestFig7Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig7(s_max_values=(100, 200, 300, 500, 1000, 1500)).rows

    def test_nc_wins_for_small_frames(self, rows):
        assert rows[0][3] < 0  # 100 B: WCNC tighter

    def test_trajectory_wins_for_large_frames(self, rows):
        assert rows[-1][3] > 0  # 1500 B: Trajectory tighter

    def test_single_crossover(self, rows):
        signs = [row[3] >= 0 for row in rows]
        assert signs == sorted(signs)  # once positive, stays positive

    def test_both_bounds_increase_with_frame_size(self, rows):
        trajectories = [row[1] for row in rows]
        ncs = [row[2] for row in rows]
        assert trajectories == sorted(trajectories)
        assert ncs == sorted(ncs)

    def test_gap_grows_as_smax_shrinks(self, rows):
        # below the crossover, the NC advantage increases monotonically
        below = [row[3] for row in rows if row[3] < 0]
        assert below == sorted(below)


class TestFig8Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig8().rows

    def test_trajectory_flat_in_bag(self, rows):
        values = {row[1] for row in rows}
        assert max(values) - min(values) < 1e-9

    def test_nc_decreases_with_bag(self, rows):
        ncs = [row[2] for row in rows]
        assert all(a >= b - 1e-9 for a, b in zip(ncs, ncs[1:]))

    def test_nc_strictly_higher_at_smallest_bag(self, rows):
        assert rows[0][2] > rows[-1][2]


class TestFig5Fig6Shapes:
    """Fig. 5 / Fig. 6 statistics need the full-scale configuration.

    At reduced scale the network is too sparse — per-port contention
    vanishes and the two methods converge, so these aggregate shapes
    (like the paper's own) only emerge at industrial scale.  The
    full-scale comparison is computed once and cached for the session.
    """

    @pytest.fixture(scope="class")
    def comparison(self):
        return industrial_comparison(IndustrialConfigSpec())

    @pytest.fixture(scope="class")
    def network(self):
        return industrial_config(IndustrialConfigSpec())

    @staticmethod
    def nc_wins_share(comparison, network, low, high):
        in_bin = [
            p
            for p in comparison.paths.values()
            if low <= network.vl(p.vl_name).s_max_bytes < high
        ]
        losses = [p for p in in_bin if p.benefit_trajectory_pct <= 0]
        return len(losses) / len(in_bin)

    def test_fig6_nc_wins_concentrate_at_small_frames(self, comparison, network):
        small = self.nc_wins_share(comparison, network, 64, 300)
        large = self.nc_wins_share(comparison, network, 900, 1519)
        assert small > large

    def test_fig6_trajectory_always_wins_for_largest_frames(self, comparison, network):
        # the paper: WCNC never wins above ~900 B; allow the synthetic
        # config a sliver (<1%) in the 900-1200 range, none above
        assert self.nc_wins_share(comparison, network, 900, 1519) < 0.01
        assert self.nc_wins_share(comparison, network, 1200, 1519) == 0.0

    def test_fig5_benefit_positive_for_every_bag(self, comparison, network):
        by_bag = {}
        for p in comparison.paths.values():
            by_bag.setdefault(network.vl(p.vl_name).bag_ms, []).append(
                p.benefit_trajectory_pct
            )
        for bag, values in by_bag.items():
            assert sum(values) / len(values) > 0, f"BAG {bag}"
