"""Cross-method attribution: the gap re-expressed, the winner named."""

import math

import pytest

from repro.configs import fig2_network
from repro.errors import ProvenanceError
from repro.explain import explain_network
from repro.explain.attribution import attribute_paths


def test_contributions_regroup_the_gap(fig2_explanation):
    for attribution in fig2_explanation.attributions.values():
        regrouped = math.fsum(v for _, v in attribution.contributions)
        assert math.isclose(
            regrouped, attribution.gap_us, rel_tol=1e-9, abs_tol=1e-6
        )


def test_fig2_trajectory_wins_by_burst_accumulation(fig2_explanation):
    # Paper Sec. V / Fig. 8: on the sample configuration the trajectory
    # approach is tighter everywhere, driven by NC's burst accumulation.
    summary = fig2_explanation.summary
    assert summary.trajectory_wins == summary.n_paths == 5
    assert summary.nc_wins == 0
    assert summary.dominant_on_trajectory_wins[0][0] == "burst-accumulation"


def test_small_smax_flips_the_winner_to_nc_via_counted_twice():
    # Fig. 9 scenario: shrink v1's frames and the trajectory bound's two
    # per-transition largest-frame charges ("counted twice") outweigh
    # NC's burst pessimism — NC wins, and the attribution must say why.
    network = fig2_network()
    network.replace_virtual_link(network.vl("v1").with_s_max_bytes(100.0))
    explanation = explain_network(network)
    attribution = explanation.attributions[("v1", 0)]
    assert attribution.winner == "network_calculus"
    assert attribution.dominant_term == "counted-twice"
    assert attribution.contribution("counted-twice") < 0.0


def test_dominant_term_sign_matches_the_gap(fig2_explanation):
    for attribution in fig2_explanation.attributions.values():
        if attribution.winner == "tie":
            assert attribution.dominant_term == "none"
            continue
        value = attribution.contribution(attribution.dominant_term)
        assert value * attribution.gap_us > 0


def test_hop_alignment_covers_the_path(fig2_explanation):
    for attribution in fig2_explanation.attributions.values():
        assert len(attribution.hops) == len(attribution.node_path) - 1
        nc_total = math.fsum(h.network_calculus_us for h in attribution.hops)
        traj_total = math.fsum(h.trajectory_us for h in attribution.hops)
        assert math.isclose(nc_total, attribution.network_calculus_us, rel_tol=1e-9)
        assert math.isclose(traj_total, attribution.trajectory_us, rel_tol=1e-9)


def test_mismatched_provenance_maps_rejected(fig2_explanation):
    nc = dict(fig2_explanation.netcalc.provenance)
    nc.pop(next(iter(nc)))
    with pytest.raises(ProvenanceError, match="different VL paths"):
        attribute_paths(nc, fig2_explanation.trajectory.provenance)


def test_summary_counts_and_residuals(fig2_explanation):
    summary = fig2_explanation.summary
    assert summary.nc_wins + summary.trajectory_wins + summary.ties == summary.n_paths
    assert summary.conservation_failures == 0
    assert 0.0 <= summary.max_abs_residual_us < 1e-9
