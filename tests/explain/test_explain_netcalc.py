"""Network Calculus provenance: conservation and recording neutrality."""

import math

from repro.netcalc.analyzer import analyze_network_calculus


def assert_all_conserve(result):
    assert result.provenance is not None
    assert set(result.provenance) == set(result.paths)
    for key, decomposition in result.provenance.items():
        decomposition.check()
        assert decomposition.bound_us == result.paths[key].total_us, key


def test_fig2_ledgers_conserve_bit_exactly(fig2):
    assert_all_conserve(analyze_network_calculus(fig2, explain=True))


def test_fig1_ledgers_conserve_bit_exactly(fig1):
    assert_all_conserve(analyze_network_calculus(fig1, explain=True))


def test_explain_off_is_the_default_and_neutral(fig2):
    plain = analyze_network_calculus(fig2)
    explained = analyze_network_calculus(fig2, explain=True)
    assert plain.provenance is None
    for key in plain.paths:
        assert plain.paths[key].total_us == explained.paths[key].total_us


def test_grouping_credit_terms_are_credits(fig2):
    result = analyze_network_calculus(fig2, grouping=True, explain=True)
    saw_credit = False
    for decomposition in result.provenance.values():
        credit = decomposition.total("grouping-credit")
        assert credit <= 0.0
        saw_credit = saw_credit or credit < 0.0
    assert saw_credit  # fig2's shared links make grouping bite somewhere


def test_ungrouped_run_has_no_credit_terms(fig2):
    result = analyze_network_calculus(fig2, grouping=False, explain=True)
    assert_all_conserve(result)
    for decomposition in result.provenance.values():
        assert decomposition.total("grouping-credit") == 0.0


def test_hop_bounds_are_monotone_prefixes(fig2):
    result = analyze_network_calculus(fig2, explain=True)
    for key, decomposition in result.provenance.items():
        hops = decomposition.hop_bounds_us
        assert len(hops) == len(decomposition.node_path) - 1
        assert all(a <= b for a, b in zip(hops, hops[1:]))
        assert hops[-1] == decomposition.bound_us


def test_cache_hits_still_carry_provenance(fig2):
    from repro.incremental.cache import BoundCache

    cache = BoundCache()
    warm = analyze_network_calculus(fig2, incremental=True, cache=cache, explain=True)
    hit = analyze_network_calculus(fig2, incremental=True, cache=cache, explain=True)
    assert_all_conserve(hit)
    assert hit.provenance == warm.provenance


def test_ledger_terms_carry_known_labels(fig2):
    known = {
        "service-latency",
        "ingress-shaping",
        "burst-delay",
        "grouping-credit",
        "fp-residual",
    }
    result = analyze_network_calculus(fig2, explain=True)
    for decomposition in result.provenance.values():
        assert {term.label for term in decomposition.terms} <= known
