"""Shared fixtures for the bound-provenance tests."""

from __future__ import annotations

import pytest

from repro.configs import fig2_network
from repro.explain import explain_network


@pytest.fixture(scope="module")
def fig2_explanation():
    """One explained fig2 run shared by a module (the runs are pure)."""
    return explain_network(fig2_network())
