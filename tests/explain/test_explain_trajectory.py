"""Trajectory provenance: conservation across every analyzer mode."""

import math

import pytest

from repro.trajectory.analyzer import analyze_trajectory


def assert_all_conserve(result):
    assert result.provenance is not None
    assert set(result.provenance) == set(result.paths)
    for key, decomposition in result.provenance.items():
        decomposition.check()
        assert decomposition.bound_us == result.paths[key].total_us, key


@pytest.mark.parametrize("serialization", ["safe", "windowed", "paper"])
def test_fig2_conserves_in_every_serialization_mode(fig2, serialization):
    assert_all_conserve(analyze_trajectory(fig2, serialization=serialization, explain=True))


def test_fig2_conserves_without_refinement(fig2):
    assert_all_conserve(analyze_trajectory(fig2, refine_smax=False, explain=True))


def test_explain_off_is_the_default_and_neutral(fig2):
    plain = analyze_trajectory(fig2)
    explained = analyze_trajectory(fig2, explain=True)
    assert plain.provenance is None
    for key in plain.paths:
        assert plain.paths[key].total_us == explained.paths[key].total_us


def test_fig2_v3_counted_twice_charges_both_transitions(fig2):
    # v3 crosses e3->S2->S3->e6: two switch transitions, each charged one
    # largest competitor frame (500 B at 100 Mb/s = 40 us) — the paper's
    # "counted twice" phenomenon.
    result = analyze_trajectory(fig2, explain=True)
    decomposition = result.provenance[("v3", 0)]
    transitions = [t for t in decomposition.terms if t.label == "counted-twice"]
    assert len(transitions) == 2
    assert all(t.value_us == 40.0 for t in transitions)


def test_workload_children_sum_to_the_workload_term(fig2):
    result = analyze_trajectory(fig2, explain=True)
    saw_children = False
    for decomposition in result.provenance.values():
        for term in decomposition.terms:
            if term.label == "workload" and term.children:
                saw_children = True
                assert math.fsum(c.value_us for c in term.children) == term.value_us
    assert saw_children


def test_serialization_gain_terms_are_gains(fig2):
    result = analyze_trajectory(fig2, serialization=True, explain=True)
    total_gain = 0.0
    for decomposition in result.provenance.values():
        gain = decomposition.total("serialization-gain")
        assert gain <= 0.0
        total_gain += gain
    assert total_gain < 0.0  # the fig2 sample exercises serialization


def test_result_cache_shortcut_is_bypassed_under_explain(fig2):
    # A cached whole-result cannot carry live sweep state; explain must
    # recompute so provenance is never stale.
    from repro.incremental.cache import BoundCache

    cache = BoundCache()
    analyze_trajectory(fig2, incremental=True, cache=cache)  # warm traj.result
    explained = analyze_trajectory(fig2, incremental=True, cache=cache, explain=True)
    assert_all_conserve(explained)
