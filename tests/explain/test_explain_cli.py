"""The ``afdx explain`` subcommand end to end."""

import json

import pytest

from repro.cli import EXIT_ANALYSIS_ERROR, EXIT_OK, main
from repro.configs import fig2_network
from repro.network import network_to_json


@pytest.fixture
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    network_to_json(fig2_network(), path)
    return str(path)


def run(capsys, argv, expect=EXIT_OK):
    assert main(argv) == expect
    return capsys.readouterr().out


def test_text_report_structure(fig2_json, capsys):
    out = run(capsys, ["explain", fig2_json])
    assert "bound provenance" in out
    assert "conservation: 10/10 ledgers exact" in out
    assert "dominant term:" in out
    assert "counted-twice" in out and "burst-accumulation" in out


def test_json_report_is_machine_readable(fig2_json, capsys):
    doc = json.loads(run(capsys, ["explain", fig2_json, "--format", "json"]))
    assert doc["summary"]["conservation_failures"] == 0
    assert len(doc["paths"]) == 5
    for path in doc["paths"]:
        for method in ("network_calculus", "trajectory"):
            assert path[method]["conserved"] is True


def test_html_report_renders(fig2_json, capsys):
    out = run(capsys, ["explain", fig2_json, "--format", "html"])
    assert "<html" in out and "</html>" in out


def test_vl_and_path_filters(fig2_json, capsys):
    out = run(capsys, ["explain", fig2_json, "--vl", "v3", "--path", "0"])
    assert "v3[0]" in out
    assert "v1[0]" not in out


def test_unknown_vl_is_an_analysis_error(fig2_json, capsys):
    assert main(["explain", fig2_json, "--vl", "nope"]) == EXIT_ANALYSIS_ERROR
    assert "unknown VL" in capsys.readouterr().err


def test_output_file_and_jobs_byte_identical(fig2_json, tmp_path, capsys):
    sequential = run(capsys, ["explain", fig2_json, "--format", "json"])
    pooled = run(capsys, ["explain", fig2_json, "--format", "json", "--jobs", "4"])
    assert sequential == pooled

    out = tmp_path / "explanation.json"
    assert main(["explain", fig2_json, "--format", "json", "-o", str(out)]) == 0
    assert out.read_text() == sequential


def test_cold_vs_warm_cache_byte_identical(fig2_json, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    cold = run(capsys, ["explain", fig2_json, "--cache-dir", cache])
    warm = run(capsys, ["explain", fig2_json, "--cache-dir", cache])
    assert cold == warm


def test_manifest_carries_explain_gauges(fig2_json, tmp_path, capsys):
    from repro.obs import validate_manifest

    metrics = tmp_path / "manifest.json"
    assert main(["explain", fig2_json, "--metrics-json", str(metrics)]) == 0
    capsys.readouterr()
    manifest = json.loads(metrics.read_text())
    validate_manifest(manifest)
    gauges = manifest["metrics"]["gauges"]
    assert gauges["explain.paths"] == 5
    assert gauges["explain.conservation_failures"] == 0
    assert gauges["explain.trajectory_wins"] == 5
    assert gauges["explain.max_abs_residual_us"] < 1e-9
    assert "network_calculus" in manifest["analyzers"]
    assert "trajectory" in manifest["analyzers"]
