"""Seeded property tests: conservation holds wherever bounds are produced.

The conservation invariant (every ledger fsum's to its bound bit for
bit) must survive every execution strategy the repo offers: the
sequential analyzers, the process pool, and incremental replay after an
edit script.  These tests sweep seeded random topologies and an
industrial sample so regressions in any engine trip the same wire.
"""

import pytest

from repro.configs import fig2_network
from repro.configs.random_topology import random_network
from repro.explain import explain_network
from repro.incremental import ResizeVL, RetimeVL
from repro.incremental.delta import DeltaAnalyzer
from repro.netcalc.analyzer import analyze_network_calculus
from repro.trajectory.analyzer import analyze_trajectory


def assert_explanation_conserves(explanation):
    summary = explanation.summary
    assert summary.conservation_failures == 0
    for provenance in (
        explanation.netcalc.provenance,
        explanation.trajectory.provenance,
    ):
        for decomposition in provenance.values():
            decomposition.check()


@pytest.mark.parametrize("seed", [7, 42, 589])
def test_random_networks_conserve(seed):
    network = random_network(seed, n_virtual_links=8)
    # safe serialization: the mode every topology is analyzable under
    explanation = explain_network(network, serialization="safe")
    assert_explanation_conserves(explanation)


def test_fig2_conserves_under_jobs(fig2):
    sequential = explain_network(fig2, jobs=1)
    pooled = explain_network(fig2, jobs=2)
    assert_explanation_conserves(pooled)
    # the pool must produce the *same* ledgers, not merely conserving ones
    assert pooled.netcalc.provenance == sequential.netcalc.provenance
    assert pooled.trajectory.provenance == sequential.trajectory.provenance


def test_industrial_sample_conserves(small_industrial):
    explanation = explain_network(small_industrial)
    assert_explanation_conserves(explanation)
    assert explanation.summary.n_paths == len(explanation.comparison.paths)


def test_incremental_explain_matches_cold_after_edit_script(fig2):
    # Ten edits replayed through the DeltaAnalyzer: the warm, cache-served
    # run must attach provenance identical to a cold explained analysis
    # of the final configuration (never stale, never approximate).
    script = [
        [RetimeVL("v1", bag_ms=4.0)],
        [ResizeVL("v2", s_max_bytes=300.0)],
        [RetimeVL("v3", bag_ms=8.0), ResizeVL("v4", s_max_bytes=200.0)],
        [RetimeVL("v5", bag_ms=16.0)],
        [ResizeVL("v1", s_max_bytes=350.0), RetimeVL("v2", bag_ms=2.0)],
        [ResizeVL("v3", s_max_bytes=640.0)],
        [RetimeVL("v4", bag_ms=4.0), ResizeVL("v5", s_max_bytes=180.0)],
    ]
    assert sum(len(batch) for batch in script) == 10

    engine = DeltaAnalyzer(fig2, explain=True)
    engine.analyze_base()
    for batch in script:
        delta = engine.apply(batch)

    cold_nc = analyze_network_calculus(engine.network, explain=True)
    cold_traj = analyze_trajectory(engine.network, explain=True)
    assert delta.netcalc.provenance == cold_nc.provenance
    assert delta.trajectory.provenance == cold_traj.provenance
    for decomposition in delta.netcalc.provenance.values():
        decomposition.check()
    for decomposition in delta.trajectory.provenance.values():
        decomposition.check()
