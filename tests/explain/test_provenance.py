"""The error-free-transformation substrate of the ledgers."""

import math
import random
from fractions import Fraction

import pytest

from repro.errors import ProvenanceError
from repro.obs.provenance import (
    FP_RESIDUAL,
    Decomposition,
    ExactAccumulator,
    Term,
    closing_residual,
    two_sum,
)


class TestTwoSum:
    def test_sum_is_the_rounded_sum(self):
        a, b = 0.1, 0.2
        s, e = two_sum(a, b)
        assert s == a + b

    def test_error_free_identity_exact_in_rationals(self):
        rng = random.Random(17)
        for _ in range(500):
            a = rng.uniform(-1e6, 1e6) * 10.0 ** rng.randint(-12, 12)
            b = rng.uniform(-1e6, 1e6) * 10.0 ** rng.randint(-12, 12)
            s, e = two_sum(a, b)
            # s + e == a + b must hold as an identity over the *reals*
            assert Fraction(s) + Fraction(e) == Fraction(a) + Fraction(b)

    def test_exact_addition_has_zero_error(self):
        s, e = two_sum(1.5, 0.25)
        assert (s, e) == (1.75, 0.0)


class TestExactAccumulator:
    def test_value_matches_sequential_accumulation(self):
        values = [0.1] * 10 + [1e16, -1e16, 0.3]
        acc = ExactAccumulator()
        total = 0.0
        for x in values:
            total += x
            acc.add(x)
        assert acc.value == total

    def test_residuals_close_the_ledger(self):
        rng = random.Random(99)
        values = [rng.uniform(0, 1000) for _ in range(100)]
        acc = ExactAccumulator()
        for x in values:
            acc.add(x)
        assert math.fsum(values + acc.residuals) == acc.value

    def test_no_residuals_for_exact_sums(self):
        acc = ExactAccumulator()
        for x in (1.0, 2.0, 4.0, 8.0):
            acc.add(x)
        assert acc.value == 15.0
        assert acc.residuals == []


class TestClosingResidual:
    def test_closes_bit_exactly(self):
        parts = [0.1, 0.2, 0.3, 40.0]
        target = 40.600000000000005
        r = closing_residual(parts, target)
        assert math.fsum(parts + [r]) == target

    def test_zero_when_parts_already_sum(self):
        assert closing_residual([1.0, 2.0], 3.0) == 0.0

    def test_rejects_non_finite(self):
        with pytest.raises(ProvenanceError):
            closing_residual([float("inf")], 1.0)


class TestDecomposition:
    def _ledger(self, terms, bound):
        return Decomposition(
            method="network_calculus",
            vl_name="v1",
            path_index=0,
            node_path=("e1", "S1", "e2"),
            bound_us=bound,
            terms=tuple(terms),
        )

    def test_conserved_and_check_pass(self):
        d = self._ledger([Term("burst-delay", 40.0), Term("service-latency", 16.0)], 56.0)
        assert d.conserved
        d.check()

    def test_check_raises_on_violation(self):
        d = self._ledger([Term("burst-delay", 40.0)], 56.0)
        assert not d.conserved
        with pytest.raises(ProvenanceError, match="conservation"):
            d.check()

    def test_check_raises_on_child_mismatch(self):
        bad = Term("workload", 10.0, children=(Term("competitor-charge", 9.0),))
        d = self._ledger([bad, Term("node-latency", 46.0)], 56.0)
        with pytest.raises(ProvenanceError, match="children"):
            d.check()

    def test_total_filters_labels(self):
        d = self._ledger(
            [Term("burst-delay", 40.0), Term("grouping-credit", -4.0), Term("service-latency", 16.0)],
            52.0,
        )
        assert d.total("burst-delay", "grouping-credit") == 36.0

    def test_max_abs_residual_scans_children(self):
        inner = Term(FP_RESIDUAL, -3e-14)
        parent = Term("workload", 10.0 + -3e-14, children=(Term("competitor-charge", 10.0), inner))
        d = self._ledger([parent], parent.value_us)
        assert d.max_abs_residual_us == 3e-14

    def test_to_dict_round_trips_through_json(self):
        import json

        d = self._ledger([Term("burst-delay", 40.0, hop=1, port=("e1", "S1"))], 40.0)
        doc = json.loads(json.dumps(d.to_dict()))
        assert doc["conserved"] is True
        assert doc["terms"][0]["port"] == "e1->S1"
