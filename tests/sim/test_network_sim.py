"""Network-level simulation wiring."""

import pytest

from repro.sim import NetworkSimulation


class TestLoneFrame:
    def test_pipeline_delay_fig2(self, fig2):
        sim = NetworkSimulation(fig2)
        sim.release_frame("v1", time_us=0.0)
        result = sim.run(until_us=1000.0)
        # 3 transmissions x 40 us + 2 switch latencies x 16 us
        assert result.max_delay_us("v1") == pytest.approx(152.0)

    def test_release_offset_preserved(self, fig2):
        sim = NetworkSimulation(fig2)
        sim.release_frame("v1", time_us=500.0)
        result = sim.run(until_us=2000.0)
        assert result.max_delay_us("v1") == pytest.approx(152.0)


class TestContention:
    def test_two_frames_queue_at_switch(self, fig2):
        sim = NetworkSimulation(fig2)
        sim.release_frame("v1", time_us=0.0)
        sim.release_frame("v2", time_us=0.0)
        result = sim.run(until_us=1000.0)
        delays = sorted(
            [result.max_delay_us("v1"), result.max_delay_us("v2")]
        )
        assert delays[0] == pytest.approx(152.0)
        # the loser waits one frame time at S1
        assert delays[1] == pytest.approx(192.0)


class TestMulticast:
    def test_duplicated_to_every_destination(self, fig1):
        sim = NetworkSimulation(fig1)
        sim.release_frame("v6", time_us=0.0)
        result = sim.run(until_us=5000.0)
        assert ("v6", 0) in result.paths
        assert ("v6", 1) in result.paths
        assert result.paths[("v6", 0)].n_frames == 1
        assert result.paths[("v6", 1)].n_frames == 1


class TestContract:
    def test_oversized_frame_rejected(self, fig2):
        sim = NetworkSimulation(fig2)
        with pytest.raises(ValueError, match="contract"):
            sim.release_frame("v1", time_us=0.0, size_bits=99999.0)

    def test_undersized_frame_rejected(self, fig2):
        sim = NetworkSimulation(fig2)
        # fig2 VLs have s_min = s_max = 500 B
        with pytest.raises(ValueError, match="contract"):
            sim.release_frame("v1", time_us=0.0, size_bits=512.0)

    def test_default_size_is_s_max(self, fig2):
        sim = NetworkSimulation(fig2)
        sim.release_frame("v1", time_us=0.0)
        result = sim.run(until_us=1000.0)
        assert result.paths[("v1", 0)].n_frames == 1


class TestBacklog:
    def test_peak_backlog_reported(self, fig2):
        sim = NetworkSimulation(fig2)
        for name in ("v1", "v2", "v3", "v4"):
            sim.release_frame(name, time_us=0.0)
        result = sim.run(until_us=2000.0)
        assert result.peak_backlog_bits[("S3", "e6")] >= 4000.0
