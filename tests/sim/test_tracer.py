"""Delay tracer and simulation results."""

import pytest

from repro.sim import DelayTracer
from repro.sim.tracer import SimulationResult


def test_aggregates():
    tracer = DelayTracer()
    for delay in (10.0, 30.0, 20.0):
        tracer.record("v1", 0, delay)
    stats = tracer.stats()[("v1", 0)]
    assert stats.n_frames == 3
    assert stats.min_us == 10.0
    assert stats.max_us == 30.0
    assert stats.mean_us == pytest.approx(20.0)
    assert stats.jitter_us == pytest.approx(20.0)


def test_paths_tracked_separately():
    tracer = DelayTracer()
    tracer.record("v1", 0, 10.0)
    tracer.record("v1", 1, 99.0)
    stats = tracer.stats()
    assert stats[("v1", 0)].max_us == 10.0
    assert stats[("v1", 1)].max_us == 99.0


def test_sample_retention_bounded():
    tracer = DelayTracer(keep_samples=2)
    for delay in (1.0, 2.0, 3.0):
        tracer.record("v", 0, delay)
    assert tracer.samples[("v", 0)] == [1.0, 2.0]


def test_no_samples_by_default():
    tracer = DelayTracer()
    tracer.record("v", 0, 1.0)
    assert tracer.samples == {}


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        DelayTracer().record("v", 0, -1.0)


def test_negative_keep_rejected():
    with pytest.raises(ValueError):
        DelayTracer(keep_samples=-1)


def test_result_accessors():
    tracer = DelayTracer()
    tracer.record("v1", 0, 10.0)
    tracer.record("v2", 0, 50.0)
    result = SimulationResult(duration_us=1000.0, paths=tracer.stats())
    assert result.max_delay_us("v2") == 50.0
    assert result.worst_observed().vl_name == "v2"


def test_empty_result_worst_raises():
    with pytest.raises(ValueError):
        SimulationResult(duration_us=1.0).worst_observed()
