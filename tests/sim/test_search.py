"""Pessimism / tightness evaluation."""

import pytest

from repro.core import compare_methods
from repro.sim import evaluate_tightness
from repro.trajectory import analyze_trajectory


@pytest.fixture
def report(fig2):
    bounds = {k: p.best_us for k, p in compare_methods(fig2).paths.items()}
    return evaluate_tightness(fig2, bounds, duration_ms=50, random_seeds=2)


def test_no_violations_for_sound_bounds(report):
    assert report.violations() == []


def test_coverage_between_zero_and_one(report):
    assert 0.0 < report.min_coverage <= report.mean_coverage <= 1.0


def test_some_fig2_bounds_attained(report):
    # the Fig. 2 trajectory bounds are exact on several paths
    assert report.attained()


def test_scenario_count(report):
    assert report.n_scenarios == 3


def test_scenario_label_recorded(report):
    assert all(p.scenario for p in report.paths.values())


def test_detects_optimistic_bounds(optimism_network):
    """The 'paper' trajectory credit is flagged as violated."""
    paper = analyze_trajectory(optimism_network, serialization="paper")
    bounds = {k: p.total_us for k, p in paper.paths.items()}
    report = evaluate_tightness(optimism_network, bounds, duration_ms=40, random_seeds=0)
    assert report.violations()


def test_missing_observations_rejected(fig2):
    bounds = {("ghost", 0): 100.0}
    with pytest.raises(ValueError, match="no frames observed"):
        evaluate_tightness(fig2, bounds, duration_ms=10, random_seeds=0)


def test_safe_trajectory_exact_on_optimism_config(optimism_network):
    safe = analyze_trajectory(optimism_network, serialization="safe")
    bounds = {k: p.total_us for k, p in safe.paths.items()}
    report = evaluate_tightness(
        optimism_network, bounds, duration_ms=40, random_seeds=0
    )
    assert not report.violations()
    assert any(p.coverage == pytest.approx(1.0) for p in report.paths.values())
