"""Structured diagnostics of the simulation run (the repro.sim logger)."""

import io
import logging

import pytest

from repro.obs.logging import ROOT_LOGGER_NAME, configure
from repro.sim import NetworkSimulation


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    yield
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.handlers.clear()
    root.setLevel(logging.NOTSET)
    root.propagate = True


def _run(network, level):
    stream = io.StringIO()
    configure(level, stream=stream)
    sim = NetworkSimulation(network)
    sim.release_frame("v1", time_us=0.0)
    sim.run(until_us=1000.0)
    return stream.getvalue()


def test_info_reports_run_start_and_finish(fig2):
    text = _run(fig2, "INFO")
    assert "repro.sim" in text
    assert "run start" in text and "until_us=1000.0" in text
    assert "run finish" in text and "events=" in text
    assert "worst_observed_us=" in text
    # queue details are debug-only
    assert "queue high-water" not in text


def test_debug_adds_per_queue_high_water_marks(fig2):
    text = _run(fig2, "DEBUG")
    assert "queue high-water" in text
    assert "peak_backlog_bits=" in text
    assert "->" in text  # port ids rendered as src->dst labels


def test_silent_when_unconfigured(fig2, capsys):
    sim = NetworkSimulation(fig2)
    sim.release_frame("v1", time_us=0.0)
    sim.run(until_us=1000.0)
    captured = capsys.readouterr()
    assert "run start" not in captured.err + captured.out
