"""Simulated FIFO output ports."""

import pytest

from repro.sim import Simulator
from repro.sim.frames import Frame
from repro.sim.ports import SimOutputPort


def frame(name="v", seq=0, bits=4000.0, release=0.0):
    return Frame(vl_name=name, sequence=seq, size_bits=bits, release_time_us=release)


@pytest.fixture
def setup():
    sim = Simulator()
    delivered = []
    port = SimOutputPort(sim, rate_bits_per_us=100.0, on_delivered=lambda f, t: delivered.append((f, t)))
    return sim, port, delivered


def test_transmission_time(setup):
    sim, port, delivered = setup
    sim.schedule(0.0, lambda: port.enqueue(frame()))
    sim.run(until=100.0)
    assert delivered[0][1] == pytest.approx(40.0)


def test_fifo_order_and_serialization(setup):
    sim, port, delivered = setup
    sim.schedule(0.0, lambda: port.enqueue(frame("a", bits=4000)))
    sim.schedule(0.0, lambda: port.enqueue(frame("b", bits=2000)))
    sim.run(until=100.0)
    assert [f.vl_name for f, _ in delivered] == ["a", "b"]
    assert delivered[1][1] == pytest.approx(60.0)  # 40 + 20


def test_non_preemption(setup):
    sim, port, delivered = setup
    sim.schedule(0.0, lambda: port.enqueue(frame("long", bits=10000)))
    sim.schedule(1.0, lambda: port.enqueue(frame("short", bits=100)))
    sim.run(until=200.0)
    assert delivered[0][0].vl_name == "long"
    assert delivered[1][1] == pytest.approx(101.0)


def test_idle_port_restarts(setup):
    sim, port, delivered = setup
    sim.schedule(0.0, lambda: port.enqueue(frame("a")))
    sim.schedule(100.0, lambda: port.enqueue(frame("b")))
    sim.run(until=200.0)
    assert delivered[1][1] == pytest.approx(140.0)


def test_peak_backlog_tracked(setup):
    sim, port, _ = setup
    sim.schedule(0.0, lambda: port.enqueue(frame("a", bits=4000)))
    sim.schedule(0.0, lambda: port.enqueue(frame("b", bits=4000)))
    sim.run(until=100.0)
    assert port.peak_backlog_bits == pytest.approx(8000.0)
    assert port.backlog_bits == 0.0


def test_utilization_measured(setup):
    sim, port, _ = setup
    sim.schedule(0.0, lambda: port.enqueue(frame(bits=4000)))
    sim.run(until=80.0)
    assert port.utilization() == pytest.approx(0.5)
    assert port.transmitted_bits == 4000.0


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        SimOutputPort(Simulator(), rate_bits_per_us=0.0, on_delivered=lambda f, t: None)


def test_frame_validation():
    with pytest.raises(ValueError):
        frame(bits=0.0)
    with pytest.raises(ValueError):
        frame(release=-1.0)
