"""Traffic scenarios and the simulate() driver."""

import random

import pytest

from repro.sim import NetworkSimulation, TrafficScenario, simulate
from repro.sim.regulator import schedule_vl_traffic


class TestRegulator:
    def test_periodic_count(self, fig2):
        sim = NetworkSimulation(fig2)
        n = schedule_vl_traffic(sim, "v1", horizon_us=40000.0)
        assert n == 10  # every 4 ms over 40 ms

    def test_offset_shifts_first_release(self, fig2):
        sim = NetworkSimulation(fig2)
        n = schedule_vl_traffic(sim, "v1", horizon_us=40000.0, offset_us=3999.0)
        assert n == 10  # 3999, 7999, ... 39999

    def test_negative_offset_rejected(self, fig2):
        sim = NetworkSimulation(fig2)
        with pytest.raises(ValueError):
            schedule_vl_traffic(sim, "v1", horizon_us=1000.0, offset_us=-1.0)

    def test_sporadic_respects_bag(self, fig2):
        sim = NetworkSimulation(fig2)
        n = schedule_vl_traffic(
            sim, "v1", horizon_us=40000.0, periodic=False, rng=random.Random(1)
        )
        assert 1 <= n <= 10  # gaps are at least one BAG

    def test_random_modes_require_rng(self, fig2):
        sim = NetworkSimulation(fig2)
        with pytest.raises(ValueError, match="rng"):
            schedule_vl_traffic(sim, "v1", horizon_us=1000.0, periodic=False)
        with pytest.raises(ValueError, match="rng"):
            schedule_vl_traffic(sim, "v1", horizon_us=1000.0, max_size=False)


class TestScenario:
    def test_duration_validated(self):
        with pytest.raises(ValueError):
            TrafficScenario(duration_ms=0.0)

    def test_simulate_records_every_path(self, fig2):
        result = simulate(fig2, TrafficScenario(duration_ms=20))
        assert set(result.paths) == {(v, 0) for v in fig2.virtual_links}

    def test_synchronized_run_is_deterministic(self, fig2):
        a = simulate(fig2, TrafficScenario(duration_ms=20))
        b = simulate(fig2, TrafficScenario(duration_ms=20))
        assert {k: s.max_us for k, s in a.paths.items()} == {
            k: s.max_us for k, s in b.paths.items()
        }

    def test_seeded_random_run_is_deterministic(self, fig2):
        scenario = TrafficScenario(duration_ms=20, synchronized=False, seed=5)
        a = simulate(fig2, scenario)
        b = simulate(fig2, scenario)
        assert {k: s.max_us for k, s in a.paths.items()} == {
            k: s.max_us for k, s in b.paths.items()
        }

    def test_different_seeds_differ(self, fig2):
        a = simulate(fig2, TrafficScenario(duration_ms=20, synchronized=False, seed=1))
        b = simulate(fig2, TrafficScenario(duration_ms=20, synchronized=False, seed=2))
        assert {k: s.max_us for k, s in a.paths.items()} != {
            k: s.max_us for k, s in b.paths.items()
        }

    def test_synchronized_is_worst_among_scenarios(self, fig2):
        sync = simulate(fig2, TrafficScenario(duration_ms=50))
        desync = simulate(fig2, TrafficScenario(duration_ms=50, synchronized=False, seed=3))
        assert sync.worst_observed().max_us >= desync.worst_observed().max_us
