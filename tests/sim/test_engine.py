"""Discrete-event engine."""

import pytest

from repro.sim import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(5.0, lambda: log.append("b"))
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(9.0, lambda: log.append("c"))
    sim.run(until=10.0)
    assert log == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    log = []
    for tag in "abc":
        sim.schedule(3.0, lambda t=tag: log.append(t))
    sim.run(until=3.0)
    assert log == ["a", "b", "c"]


def test_clock_advances():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run(until=10.0)
    assert seen == [2.5]
    assert sim.now == 10.0


def test_events_after_horizon_not_run():
    sim = Simulator()
    log = []
    sim.schedule(11.0, lambda: log.append("late"))
    sim.run(until=10.0)
    assert log == []
    sim.run(until=12.0)
    assert log == ["late"]


def test_schedule_in_relative():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: sim.schedule_in(2.0, lambda: log.append(sim.now)))
    sim.run(until=5.0)
    assert log == [3.0]


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: sim.schedule(1.0, lambda: None))
    with pytest.raises(ValueError, match="backwards"):
        sim.run(until=10.0)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule_in(-1.0, lambda: None)


def test_processed_events_counted():
    sim = Simulator()
    for t in range(5):
        sim.schedule(float(t), lambda: None)
    sim.run(until=10.0)
    assert sim.processed_events == 5


def test_cascading_events():
    sim = Simulator()
    log = []

    def chain(n):
        log.append(n)
        if n < 3:
            sim.schedule_in(1.0, lambda: chain(n + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run(until=10.0)
    assert log == [0, 1, 2, 3]
