"""Conservation laws of the simulator (nothing lost, nothing invented)."""

import pytest

from repro.sim import NetworkSimulation, TrafficScenario, simulate


def test_every_released_frame_delivered_unicast(fig2):
    scenario = TrafficScenario(duration_ms=40)
    result = simulate(fig2, scenario)
    # 10 frames per VL over 40 ms at BAG 4 ms
    for key, stats in result.paths.items():
        assert stats.n_frames == 10, key


def test_multicast_duplicates_exactly_once_per_destination(fig1):
    sim = NetworkSimulation(fig1)
    sim.release_frame("v6", time_us=0.0)
    sim.release_frame("v6", time_us=8000.0)
    result = sim.run(until_us=20000.0)
    assert result.paths[("v6", 0)].n_frames == 2
    assert result.paths[("v6", 1)].n_frames == 2


def test_transmitted_bits_match_traffic(fig2):
    """Each ES port transmits exactly what its VL released."""
    sim = NetworkSimulation(fig2)
    for i in range(4):
        sim.release_frame("v1", time_us=i * 4000.0)
    sim.run(until_us=30000.0)
    port = sim._ports[("e1", "S1")]
    assert port.transmitted_bits == pytest.approx(4 * 4000.0)
    assert port.backlog_bits == pytest.approx(0.0)


def test_no_frame_outlives_the_drain(fig1):
    """After the drain window every queue is empty."""
    result = simulate(fig1, TrafficScenario(duration_ms=30))
    total_frames = sum(s.n_frames for s in result.paths.values())
    assert total_frames > 0
    assert all(peak >= 0 for peak in result.peak_backlog_bits.values())


def test_delays_never_below_physical_floor(fig2):
    from repro.core import path_floor_us

    result = simulate(fig2, TrafficScenario(duration_ms=40))
    for (vl, idx), stats in result.paths.items():
        assert stats.min_us >= path_floor_us(fig2, vl, idx) - 1e-6


def test_mean_between_min_and_max(fig1):
    result = simulate(fig1, TrafficScenario(duration_ms=40, synchronized=False, seed=1))
    for stats in result.paths.values():
        assert stats.min_us <= stats.mean_us <= stats.max_us
