"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.configs import fig1_network, fig2_network
from repro.configs.industrial import IndustrialConfigSpec, industrial_network
from repro.network.builder import NetworkBuilder


@pytest.fixture
def fig2():
    """The paper's Fig. 2 sample configuration (fresh copy)."""
    return fig2_network()


@pytest.fixture
def fig1():
    """The reconstructed Fig. 1 illustrative configuration."""
    return fig1_network()


@pytest.fixture(scope="session")
def small_industrial():
    """A reduced industrial configuration (fast enough for many tests)."""
    return industrial_network(
        IndustrialConfigSpec(n_virtual_links=120, end_systems_per_switch=6)
    )


@pytest.fixture
def single_switch():
    """Minimal network: two sources, one switch, one destination, two VLs."""
    return (
        NetworkBuilder("single")
        .switches("SW")
        .end_systems("a", "b", "d")
        .link("a", "SW")
        .link("b", "SW")
        .link("SW", "d")
        .virtual_link("va", source="a", destinations=["d"], bag_ms=4, s_max_bytes=500)
        .virtual_link("vb", source="b", destinations=["d"], bag_ms=8, s_max_bytes=1000)
        .build()
    )


@pytest.fixture
def optimism_network():
    """The configuration demonstrating the 'paper' serialization optimism.

    Two source end systems with five identical VLs each, funnelled into
    one switch output port; the sound worst case for the last flow is
    456 us and is attained by simulation, while the historical
    per-group serialization credit claims less.
    """
    builder = NetworkBuilder("optimism").switches("SW").end_systems("a", "b", "d")
    builder.link("a", "SW").link("b", "SW").link("SW", "d")
    for index in range(5):
        for source in ("a", "b"):
            builder.virtual_link(
                f"v{source}{index}",
                source=source,
                destinations=["d"],
                bag_ms=4,
                s_max_bytes=500,
                s_min_bytes=500,
            )
    return builder.build()
