"""Network Calculus analyzer."""

import pytest

from repro.errors import UnstableNetworkError
from repro.netcalc import NetworkCalculusAnalyzer, analyze_network_calculus
from repro.network import NetworkBuilder


class TestSingleHop:
    def test_lone_flow_delay(self, single_switch):
        result = analyze_network_calculus(single_switch)
        # ES port: burst/R = 40 us, no latency
        assert result.ports[("a", "SW")].delay_us == pytest.approx(40.0)

    def test_switch_port_includes_latency(self, single_switch):
        result = analyze_network_calculus(single_switch)
        port = result.ports[("SW", "d")]
        # aggregate burst (both flows, distinct links, after source delay
        # inflation) / 100 + 16 us latency
        assert port.delay_us > 16.0
        assert port.n_flows == 2
        assert port.n_groups == 2

    def test_end_to_end_is_sum_of_ports(self, single_switch):
        result = analyze_network_calculus(single_switch)
        path = result.paths[("va", 0)]
        assert path.total_us == pytest.approx(sum(path.per_port_delay_us))
        assert path.total_us == pytest.approx(
            result.ports[("a", "SW")].delay_us + result.ports[("SW", "d")].delay_us
        )


class TestFig2:
    def test_paper_sample_bounds(self, fig2):
        result = analyze_network_calculus(fig2)
        # symmetric flows get identical bounds
        assert result.bound_us("v1") == pytest.approx(result.bound_us("v2"))
        assert result.bound_us("v3") == pytest.approx(result.bound_us("v4"))
        # v5 crosses the quiet e7 port: smallest bound
        assert result.bound_us("v5") < result.bound_us("v1") < result.bound_us("v3")

    def test_grouping_never_hurts(self, fig2):
        grouped = analyze_network_calculus(fig2, grouping=True)
        plain = analyze_network_calculus(fig2, grouping=False)
        for key in grouped.paths:
            assert grouped.paths[key].total_us <= plain.paths[key].total_us + 1e-9

    def test_backlog_positive_everywhere(self, fig2):
        result = analyze_network_calculus(fig2)
        for port in result.ports.values():
            assert port.backlog_bits > 0

    def test_worst_path(self, fig2):
        result = analyze_network_calculus(fig2)
        assert result.worst_path().total_us == max(
            p.total_us for p in result.paths.values()
        )

    def test_total_buffer(self, fig2):
        result = analyze_network_calculus(fig2)
        assert result.total_buffer_bits() == pytest.approx(
            sum(p.backlog_bits for p in result.ports.values())
        )

    def test_result_cached(self, fig2):
        analyzer = NetworkCalculusAnalyzer(fig2)
        assert analyzer.analyze() is analyzer.analyze()


class TestOverheads:
    def test_frame_overhead_increases_bounds(self, fig2):
        bare = analyze_network_calculus(fig2)
        wire = analyze_network_calculus(fig2, frame_overhead_bytes=20)
        for key in bare.paths:
            assert wire.paths[key].total_us > bare.paths[key].total_us

    def test_negative_overhead_rejected(self, fig2):
        with pytest.raises(ValueError):
            NetworkCalculusAnalyzer(fig2, frame_overhead_bytes=-1)


class TestStability:
    def test_unstable_network_raises(self):
        builder = NetworkBuilder("u").switches("SW").end_systems(
            *(f"e{i}" for i in range(11)), "d"
        )
        for i in range(11):
            builder.link(f"e{i}", "SW")
        builder.link("SW", "d")
        for i in range(11):
            builder.virtual_link(
                f"v{i}", source=f"e{i}", destinations=["d"], bag_ms=1, s_max_bytes=1518
            )
        with pytest.raises(UnstableNetworkError):
            analyze_network_calculus(builder.build(validate=False))


class TestMulticast:
    def test_multicast_paths_each_bounded(self, fig1):
        result = analyze_network_calculus(fig1)
        assert ("v6", 0) in result.paths
        assert ("v6", 1) in result.paths
        # shared prefix, different tails -> different totals possible
        assert result.paths[("v6", 0)].node_path[-1] == "e7"
        assert result.paths[("v6", 1)].node_path[-1] == "e8"

    def test_shared_prefix_port_delays_match(self, fig1):
        result = analyze_network_calculus(fig1)
        first = result.paths[("v6", 0)]
        second = result.paths[("v6", 1)]
        # both paths start with the same two ports (e1->S1, S1->S3)
        assert first.port_ids[0] == second.port_ids[0]
        assert first.per_port_delay_us[0] == second.per_port_delay_us[0]
