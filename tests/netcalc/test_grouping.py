"""Input-link grouping for Network Calculus."""

import pytest

from repro.curves import LeakyBucket, PiecewiseCurve
from repro.netcalc.grouping import arrival_groups, group_arrival_curve, port_aggregate_curve


def buckets_for(network, port_id):
    return {
        name: LeakyBucket(
            rate=network.vl(name).rate_bits_per_us, burst=network.vl(name).s_max_bits
        )
        for name in network.vls_at_port(port_id)
    }


def test_groups_at_fan_in_port(fig2):
    # S3->e6 receives v1,v2 via S1 and v3,v4 via S2
    groups = arrival_groups(fig2, ("S3", "e6"))
    assert groups[("S1", "S3")] == frozenset({"v1", "v2"})
    assert groups[("S2", "S3")] == frozenset({"v3", "v4"})


def test_source_flows_get_singleton_groups(fig2):
    groups = arrival_groups(fig2, ("e1", "S1"))
    assert groups == {("source", "v1"): frozenset({"v1"})}


def test_group_curve_capped_by_link(fig2):
    port = ("S3", "e6")
    buckets = buckets_for(fig2, port)
    capped = group_arrival_curve(
        fig2, ("S1", "S3"), {"v1", "v2"}, buckets, grouping=True
    )
    # burst limited to one maximal frame (4000 bits), not 8000
    assert capped(0) == pytest.approx(4000.0)


def test_group_curve_plain_sum_without_grouping(fig2):
    port = ("S3", "e6")
    buckets = buckets_for(fig2, port)
    plain = group_arrival_curve(
        fig2, ("S1", "S3"), {"v1", "v2"}, buckets, grouping=False
    )
    assert plain(0) == pytest.approx(8000.0)


def test_source_groups_never_capped(fig2):
    port = ("e1", "S1")
    buckets = buckets_for(fig2, port)
    curve = group_arrival_curve(
        fig2, ("source", "v1"), {"v1"}, buckets, grouping=True
    )
    assert curve(0) == pytest.approx(4000.0)
    assert curve.final_slope == pytest.approx(1.0)


def test_aggregate_grouped_below_plain(fig2):
    port = ("S3", "e6")
    buckets = buckets_for(fig2, port)
    grouped, n_grouped = port_aggregate_curve(fig2, port, buckets, grouping=True)
    plain, n_plain = port_aggregate_curve(fig2, port, buckets, grouping=False)
    assert n_grouped == n_plain == 2
    assert plain.dominates(grouped)
    assert grouped(0) < plain(0)


def test_aggregate_keeps_longterm_rate(fig2):
    port = ("S3", "e6")
    buckets = buckets_for(fig2, port)
    grouped, _ = port_aggregate_curve(fig2, port, buckets, grouping=True)
    assert grouped.final_slope == pytest.approx(4.0)  # 4 VLs x 1 bit/us


def test_multicast_fan_out_counted_once_per_output_port():
    """A multicast VL crosses several output ports of the same switch.

    Grouping must treat every branch independently: at each output port
    the VL appears in exactly one group, and the link-shaping cap only
    pools flows that genuinely crossed that group's upstream link —
    which holds by construction, because a VL has a unique upstream
    port at every node of its tree.
    """
    from repro.network import NetworkBuilder

    net = (
        NetworkBuilder("mcast")
        .switches("S1")
        .end_systems("a", "d1", "d2")
        .links([("a", "S1"), ("S1", "d1"), ("S1", "d2")])
        .virtual_link("v1", source="a", destinations=["d1", "d2"],
                      bag_ms=2, s_max_bytes=500)
        .virtual_link("v2", source="a", destinations=["d1", "d2"],
                      bag_ms=2, s_max_bytes=1000)
        .build()
    )
    for port in (("S1", "d1"), ("S1", "d2")):
        groups = arrival_groups(net, port)
        assert groups == {("a", "S1"): frozenset({"v1", "v2"})}
        members = sorted(name for g in groups.values() for name in g)
        assert members == ["v1", "v2"]  # once per output port, not per branch
        curve, n_groups = port_aggregate_curve(
            net, port, buckets_for(net, port), grouping=True
        )
        assert n_groups == 1
        # capped at one maximal frame of the shared link (1000 B = 8000 b),
        # not the 12000-bit plain sum
        assert curve(0) == pytest.approx(8000.0)
