"""Static-priority (SPQ) Network Calculus analysis."""

import pytest

from repro.curves import PiecewiseCurve, RateLatency
from repro.errors import UnstableNetworkError
from repro.netcalc import analyze_network_calculus, analyze_static_priority
from repro.netcalc.priority import StaticPriorityAnalyzer, leftover_service
from repro.network import NetworkBuilder
from repro.sim import TrafficScenario, simulate


@pytest.fixture
def prio_net():
    """One high VL against two low VLs through a single switch port."""
    builder = NetworkBuilder("prio").switches("SW").end_systems("a", "b", "c", "d")
    builder.link("a", "SW").link("b", "SW").link("c", "SW").link("SW", "d")
    builder.virtual_link(
        "hi", source="a", destinations=["d"], bag_ms=4, s_max_bytes=200, priority=1
    )
    builder.virtual_link("lo1", source="b", destinations=["d"], bag_ms=4, s_max_bytes=1518)
    builder.virtual_link("lo2", source="c", destinations=["d"], bag_ms=2, s_max_bytes=1000)
    return builder.build()


class TestLeftoverService:
    def test_affine_high_class(self):
        beta = RateLatency(100.0, 16.0).curve()
        alpha_high = PiecewiseCurve.affine(10.0, 2000.0)
        left = leftover_service(beta, alpha_high)
        assert left.final_slope == pytest.approx(90.0)
        assert left(0.0) == 0.0
        # dead time: solve 100(t-16) = 2000 + 10t -> t = 40
        assert left(40.0) == pytest.approx(0.0, abs=1e-6)
        assert left(50.0) == pytest.approx(900.0)

    def test_is_convex_and_increasing(self):
        beta = RateLatency(100.0, 16.0).curve()
        alpha_high = PiecewiseCurve.affine(30.0, 5000.0)
        left = leftover_service(beta, alpha_high)
        assert left.is_convex()
        values = [left(t) for t in (0, 10, 50, 100, 500)]
        assert values == sorted(values)

    def test_saturated_high_class_raises(self):
        beta = RateLatency(100.0, 0.0).curve()
        with pytest.raises(UnstableNetworkError):
            leftover_service(beta, PiecewiseCurve.affine(100.0, 0.0))


class TestAgainstFifo:
    def test_high_priority_gains(self, prio_net):
        fifo = analyze_network_calculus(prio_net)
        spq = analyze_static_priority(prio_net)
        assert spq.bound_us("hi") < fifo.bound_us("hi")

    def test_low_priority_pays(self, prio_net):
        fifo = analyze_network_calculus(prio_net)
        spq = analyze_static_priority(prio_net)
        assert spq.bound_us("lo1") >= fifo.bound_us("lo1") - 1e-9

    def test_degenerates_to_fifo_without_high_traffic(self, fig2):
        fifo = analyze_network_calculus(fig2)
        spq = analyze_static_priority(fig2)
        for key in fifo.paths:
            assert spq.paths[key].total_us == pytest.approx(fifo.paths[key].total_us)

    def test_blocking_term_present(self, prio_net):
        # the high bound includes one low maximal frame of blocking:
        # it cannot be below transmission + latency + blocking
        spq = analyze_static_priority(prio_net)
        c_high = prio_net.vl("hi").c_max_us(100.0)
        blocking = prio_net.vl("lo1").c_max_us(100.0)
        assert spq.bound_us("hi") >= c_high * 2 + 16.0 + blocking - 1e-6


class TestSoundness:
    def test_bounds_hold_vs_priority_simulation(self, prio_net):
        spq = analyze_static_priority(prio_net)
        observed = simulate(prio_net, TrafficScenario(duration_ms=80))
        for key, stats in observed.paths.items():
            assert stats.max_us <= spq.paths[key].total_us + 1e-6, key

    def test_high_priority_observed_faster(self, prio_net):
        observed = simulate(prio_net, TrafficScenario(duration_ms=80))
        assert observed.max_delay_us("hi") < observed.max_delay_us("lo1")

    def test_result_cached(self, prio_net):
        analyzer = StaticPriorityAnalyzer(prio_net)
        assert analyzer.analyze() is analyzer.analyze()

    def test_multihop_priority(self):
        builder = (
            NetworkBuilder("mh")
            .switches("S1", "S2")
            .end_systems("a", "b", "d")
            .link("a", "S1")
            .link("b", "S1")
            .link("S1", "S2")
            .link("S2", "d")
        )
        builder.virtual_link(
            "hi", source="a", destinations=["d"], bag_ms=4, s_max_bytes=300, priority=1
        )
        builder.virtual_link("lo", source="b", destinations=["d"], bag_ms=4, s_max_bytes=1518)
        net = builder.build()
        spq = analyze_static_priority(net)
        observed = simulate(net, TrafficScenario(duration_ms=80))
        for key, stats in observed.paths.items():
            assert stats.max_us <= spq.paths[key].total_us + 1e-6
