"""Synthetic industrial configuration generator."""

import pytest

from repro.configs import IndustrialConfigSpec, industrial_network
from repro.network.port_graph import topological_port_order
from repro.network.validation import validate_network


@pytest.fixture(scope="module")
def small():
    return industrial_network(
        IndustrialConfigSpec(n_virtual_links=80, end_systems_per_switch=5)
    )


class TestStructure:
    def test_eight_switches(self, small):
        assert len(small.switches()) == 8

    def test_end_system_count(self, small):
        assert len(small.end_systems()) == 8 * 5

    def test_vl_count(self, small):
        assert len(small.virtual_links) == 80

    def test_multicast_fanout_gives_many_paths(self, small):
        paths = small.flow_paths()
        assert len(paths) > 4 * len(small.virtual_links)  # mean fan-out > 4

    def test_path_lengths_one_to_four_switches(self, small):
        for _, _, path in small.flow_paths():
            crossed = len(path) - 2
            assert 1 <= crossed <= 4

    def test_feed_forward_by_construction(self, small):
        topological_port_order(small)  # must not raise

    def test_validates(self, small):
        assert validate_network(small).ok

    def test_utilization_within_target(self, small):
        assert small.max_utilization() <= 0.15 + 1e-9


class TestDeterminism:
    def test_same_spec_same_network(self):
        spec = IndustrialConfigSpec(n_virtual_links=30, end_systems_per_switch=4)
        a = industrial_network(spec)
        b = industrial_network(spec)
        assert repr(a) == repr(b)
        assert a.vl("vl0001").paths == b.vl("vl0001").paths
        assert a.vl("vl0007").bag_ms == b.vl("vl0007").bag_ms

    def test_different_seed_differs(self):
        a = industrial_network(IndustrialConfigSpec(seed=1, n_virtual_links=30, end_systems_per_switch=4))
        b = industrial_network(IndustrialConfigSpec(seed=2, n_virtual_links=30, end_systems_per_switch=4))
        assert any(
            a.vl(n).s_max_bytes != b.vl(n).s_max_bytes for n in a.virtual_links
        )

    def test_byte_identical_across_hash_seeds(self):
        """Same spec -> byte-identical JSON under different PYTHONHASHSEED.

        The generator must not leak set/dict iteration order into the
        network: cache fingerprints and the incremental equivalence
        gate both assume a spec pins the configuration exactly.
        """
        import subprocess
        import sys

        code = (
            "import sys;"
            "from repro.configs import IndustrialConfigSpec, industrial_network;"
            "from repro.network import network_to_dict;"
            "import json;"
            "spec = IndustrialConfigSpec(n_virtual_links=40, end_systems_per_switch=4);"
            "json.dump(network_to_dict(industrial_network(spec)), sys.stdout, sort_keys=True)"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            ).stdout
            for seed in ("0", "4242")
        }
        assert len(outs) == 1
        assert outs.pop()  # non-empty payload actually compared


class TestContracts:
    def test_bags_are_harmonic(self, small):
        for vl in small.virtual_links.values():
            assert vl.bag_ms in (1, 2, 4, 8, 16, 32, 64, 128)

    def test_frame_sizes_are_ethernet(self, small):
        for vl in small.virtual_links.values():
            assert 64 <= vl.s_max_bytes <= 1518

    def test_multicast_trees(self, small):
        # paths of one VL never re-join after forking (validated network)
        report = validate_network(small)
        assert not any("re-join" in e for e in report.errors)


class TestFullScale:
    def test_published_scale(self):
        net = industrial_network(IndustrialConfigSpec())
        assert len(net.virtual_links) == 1000
        assert len(net.flow_paths()) > 6000
        assert len(net.end_systems()) > 100
        assert len(net.switches()) == 8
