"""Random configuration generator for fuzzing."""

import pytest

from repro.configs import random_network
from repro.network.port_graph import topological_port_order
from repro.network.validation import validate_network


@pytest.mark.parametrize("seed", range(8))
def test_generated_networks_are_valid(seed):
    net = random_network(seed)
    assert validate_network(net).ok
    topological_port_order(net)  # feed-forward by construction


def test_deterministic():
    a = random_network(42)
    b = random_network(42)
    assert repr(a) == repr(b)
    assert {n: v.paths for n, v in a.virtual_links.items()} == {
        n: v.paths for n, v in b.virtual_links.items()
    }


def test_respects_sizes():
    net = random_network(3, n_switches=4, n_end_systems=10, n_virtual_links=7)
    assert len(net.switches()) == 4
    assert len(net.end_systems()) == 10
    assert len(net.virtual_links) == 7


def test_utilization_repaired():
    net = random_network(0, n_virtual_links=30, utilization_target=0.5)
    assert net.max_utilization() <= 0.5 + 1e-9


def test_argument_validation():
    with pytest.raises(ValueError):
        random_network(0, n_switches=0)
    with pytest.raises(ValueError):
        random_network(0, n_end_systems=1)
