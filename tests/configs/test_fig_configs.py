"""The paper's bundled configurations."""

import pytest

from repro.configs import FIG2_BAG_MS, FIG2_S_MAX_BYTES, fig1_network, fig2_network
from repro.network.validation import validate_network


class TestFig2:
    def test_structure_matches_paper(self, fig2):
        assert len(fig2.end_systems()) == 7
        assert len(fig2.switches()) == 3
        assert len(fig2.virtual_links) == 5

    def test_contracts(self, fig2):
        for vl in fig2.virtual_links.values():
            assert vl.bag_ms == FIG2_BAG_MS == 4.0
            assert vl.s_max_bytes == FIG2_S_MAX_BYTES == 500.0

    def test_paths(self, fig2):
        assert fig2.vl("v1").paths == (("e1", "S1", "S3", "e6"),)
        assert fig2.vl("v5").paths == (("e5", "S2", "S3", "e7"),)

    def test_frame_time_is_40us(self, fig2):
        assert fig2.vl("v1").c_max_us(fig2.default_rate) == 40.0

    def test_switch_latency_is_16us(self, fig2):
        assert fig2.node("S1").technological_latency_us == 16.0

    def test_validates(self, fig2):
        assert validate_network(fig2).ok

    def test_parameterized_rebuild(self):
        net = fig2_network(bag_ms=8, s_max_bytes=1000)
        assert net.vl("v3").bag_ms == 8
        assert net.vl("v3").s_max_bytes == 1000

    def test_fresh_instances(self):
        assert fig2_network() is not fig2_network()


class TestFig1:
    def test_structure(self, fig1):
        assert len(fig1.switches()) == 5
        assert len(fig1.end_systems()) == 10
        assert len(fig1.virtual_links) == 10

    def test_v6_is_the_papers_multicast(self, fig1):
        v6 = fig1.vl("v6")
        assert v6.is_multicast
        assert set(v6.destinations) == {"e7", "e8"}

    def test_vx_is_unicast(self, fig1):
        assert not fig1.vl("vx").is_multicast

    def test_validates(self, fig1):
        assert validate_network(fig1).ok

    def test_path_count(self, fig1):
        assert len(fig1.flow_paths()) == 12  # 8 unicast + 2x2 multicast
