"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.configs import fig2_network
from repro.network import network_to_json


@pytest.fixture
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    network_to_json(fig2_network(), path)
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_and_validate(tmp_path, capsys):
    out = str(tmp_path / "net.json")
    assert main(["generate", "fig2", "-o", out]) == 0
    data = json.loads((tmp_path / "net.json").read_text())
    assert data["name"] == "fig2"
    assert main(["validate", out]) == 0
    stdout = capsys.readouterr().out
    assert "OK" in stdout


def test_generate_random(tmp_path):
    out = str(tmp_path / "r.json")
    assert main(["generate", "random", "-o", out, "--seed", "3", "--vls", "10"]) == 0
    assert json.loads((tmp_path / "r.json").read_text())["virtual_links"]


def test_analyze_prints_bounds_and_stats(fig2_json, capsys):
    assert main(["analyze", fig2_json]) == 0
    out = capsys.readouterr().out
    assert "v1[0]" in out
    assert "Trajectory/WCNC" in out


def test_analyze_top_limits_rows(fig2_json, capsys):
    main(["analyze", fig2_json, "--top", "2"])
    out = capsys.readouterr().out
    assert out.count("[0]") == 2


def test_analyze_serialization_mode(fig2_json, capsys):
    assert main(["analyze", fig2_json, "--serialization", "safe"]) == 0
    safe_out = capsys.readouterr().out
    assert main(["analyze", fig2_json, "--serialization", "paper"]) == 0
    paper_out = capsys.readouterr().out
    assert safe_out != paper_out


def test_simulate_reports_no_violations(fig2_json, capsys):
    assert main(["simulate", fig2_json, "--duration-ms", "20"]) == 0
    out = capsys.readouterr().out
    assert "0 bound violations" in out


def test_experiment_fig3_4(capsys):
    assert main(["experiment", "fig3_4"]) == 0
    out = capsys.readouterr().out
    assert "fig3_4" in out and "40.00" in out


def test_experiment_with_reduced_vls(capsys):
    assert main(["experiment", "table1", "--vls", "60"]) == 0
    out = capsys.readouterr().out
    assert "Trajectory/WCNC" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_validate_invalid_network_exits_with_config_code(tmp_path, capsys):
    # wire an ES twice by editing the JSON directly
    net = fig2_network()
    from repro.network import network_to_dict

    data = network_to_dict(net)
    data["virtual_links"] = []
    data["links"].append({"a": "e1", "b": "S2", "rate_mbps": 100.0})
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    # the loader itself refuses the second ES link: one-line diagnostic,
    # distinct exit code, no traceback
    from repro.cli import EXIT_CONFIG_ERROR

    assert main(["validate", str(path)]) == EXIT_CONFIG_ERROR
    err = capsys.readouterr().err
    assert err.startswith("afdx: error:")
    assert len(err.strip().splitlines()) == 1


def test_analyze_jitter_flag(fig2_json, capsys):
    assert main(["analyze", fig2_json, "--jitter"]) == 0
    out = capsys.readouterr().out
    assert "jitter (us)" in out


def test_experiment_csv_export(tmp_path, capsys):
    csv_path = str(tmp_path / "fig3_4.csv")
    assert main(["experiment", "fig3_4", "--csv", csv_path]) == 0
    content = (tmp_path / "fig3_4.csv").read_text()
    assert content.startswith("VL,")
    assert "v1,272.0,232.0,40.0" in content
    assert "# " in content  # notes preserved as comments


def test_report_command_stdout(fig2_json, capsys):
    assert main(["report", fig2_json]) == 0
    out = capsys.readouterr().out
    assert "Output-port dimensioning" in out
    assert "Method comparison" in out


def test_report_command_to_file(fig2_json, tmp_path, capsys):
    out_path = str(tmp_path / "report.txt")
    assert main(["report", fig2_json, "-o", out_path, "--top", "2"]) == 0
    text = (tmp_path / "report.txt").read_text()
    assert "Top 2 critical paths" in text


def test_unstable_network_exits_with_distinct_code(tmp_path, capsys):
    from repro.cli import EXIT_UNSTABLE
    from repro.network import NetworkBuilder, network_to_json

    builder = (
        NetworkBuilder("unstable").switches("SW").end_systems("a", "d")
        .link("a", "SW").link("SW", "d")
    )
    # 90 VLs at 1 ms BAG x 1500 B saturate the 100 Mbps output port
    for index in range(90):
        builder.virtual_link(
            f"v{index}", source="a", destinations=["d"], bag_ms=1, s_max_bytes=1500
        )
    path = tmp_path / "unstable.json"
    network_to_json(builder.build(validate=False), path)
    assert main(["analyze", str(path)]) == EXIT_UNSTABLE
    err = capsys.readouterr().err
    assert err.startswith("afdx: error:")


def test_analyze_metrics_json_manifest(fig2_json, tmp_path, capsys):
    from repro.obs import validate_manifest

    out = tmp_path / "manifest.json"
    assert main(["analyze", fig2_json, "--metrics-json", str(out)]) == 0
    manifest = json.loads(out.read_text())
    validate_manifest(manifest)
    assert manifest["command"] == "analyze"
    assert manifest["config"]["name"] == "fig2"
    assert manifest["config"]["n_paths"] == manifest["bounds"]["n_paths"] > 0
    # per-phase timings from both analyzers
    nc_spans = {s["name"] for s in manifest["analyzers"]["network_calculus"]["spans"]}
    assert {"netcalc.validate", "netcalc.toposort", "netcalc.propagate"} <= nc_spans
    traj = manifest["analyzers"]["trajectory"]
    assert any(s["name"] == "trajectory.sweep" for s in traj["spans"])
    # sweep-convergence trace, ending stable
    assert traj["sweeps"][0]["sweep"] == 1
    assert traj["sweeps"][-1]["smax_updates"] == 0
    # per-analyzer path counts
    assert traj["counters"]["trajectory.paths_bound"] == manifest["bounds"]["n_paths"]
    assert (
        manifest["analyzers"]["network_calculus"]["counters"]["netcalc.paths_bound"]
        == manifest["bounds"]["n_paths"]
    )


def test_analyze_without_metrics_matches_seed_output(fig2_json, tmp_path, capsys):
    assert main(["analyze", fig2_json]) == 0
    plain = capsys.readouterr().out
    out = tmp_path / "m.json"
    assert main(["analyze", fig2_json, "--metrics-json", str(out)]) == 0
    with_metrics = capsys.readouterr().out
    assert plain == with_metrics  # instrumentation never changes the bounds


def test_simulate_metrics_json(fig2_json, tmp_path, capsys):
    from repro.obs import validate_manifest

    out = tmp_path / "sim.json"
    assert main(["simulate", fig2_json, "--duration-ms", "10", "--metrics-json", str(out)]) == 0
    manifest = json.loads(out.read_text())
    validate_manifest(manifest)
    assert manifest["metrics"]["counters"]["sim.events_processed"] > 0
    assert manifest["metrics"]["timers"]["cli.total"]["count"] == 1


def test_experiment_metrics_json(tmp_path, capsys):
    from repro.obs import validate_manifest

    out = tmp_path / "exp.json"
    assert main(["experiment", "fig3_4", "--metrics-json", str(out)]) == 0
    manifest = json.loads(out.read_text())
    validate_manifest(manifest)
    assert "experiment.fig3_4" in manifest["metrics"]["timers"]


def test_progress_flag_prints_phases(fig2_json, capsys):
    assert main(["analyze", fig2_json, "--progress"]) == 0
    err = capsys.readouterr().err
    assert "netcalc.propagate" in err
    assert "trajectory.sweep" in err


def test_log_level_flag_enables_logging(fig2_json, capsys):
    import logging

    try:
        assert main(["analyze", fig2_json, "--log-level", "debug"]) == 0
        err = capsys.readouterr().err
        assert "repro.trajectory" in err
    finally:
        # drop the handler bound to the captured stream
        root = logging.getLogger("repro")
        root.handlers.clear()
        root.setLevel(logging.NOTSET)
        root.propagate = True


def test_missing_config_file_exits_with_config_code(tmp_path, capsys):
    from repro.cli import EXIT_CONFIG_ERROR

    assert main(["analyze", str(tmp_path / "nope.json")]) == EXIT_CONFIG_ERROR
    err = capsys.readouterr().err
    assert err.startswith("afdx: error: cannot read configuration")
    assert "Traceback" not in err


def test_malformed_json_exits_with_config_code(tmp_path, capsys):
    from repro.cli import EXIT_CONFIG_ERROR

    path = tmp_path / "garbage.json"
    path.write_text("not json")
    assert main(["analyze", str(path)]) == EXIT_CONFIG_ERROR
    assert "malformed JSON" in capsys.readouterr().err


def test_analyze_profile_dumps_pstats(fig2_json, tmp_path, capsys):
    import pstats

    prof = tmp_path / "analyze.pstats"
    assert main(["analyze", fig2_json, "--profile", str(prof)]) == 0
    err = capsys.readouterr().err
    assert "profile written to" in err
    stats = pstats.Stats(str(prof))
    assert stats.total_calls > 0
    names = {func for (_, _, func) in stats.stats}
    assert "analyze" in names  # the analyzers themselves were profiled


def test_analyze_profile_section_in_manifest(fig2_json, tmp_path, capsys):
    from repro.obs import validate_manifest

    prof = tmp_path / "analyze.pstats"
    manifest_path = tmp_path / "manifest.json"
    assert (
        main([
            "analyze", fig2_json,
            "--profile", str(prof),
            "--metrics-json", str(manifest_path),
        ])
        == 0
    )
    manifest = json.loads(manifest_path.read_text())
    validate_manifest(manifest)
    profile = manifest["profile"]
    assert profile["stats_path"] == str(prof)
    assert profile["total_calls"] > 0
    assert profile["total_time_s"] >= 0
    top = profile["top_cumulative"]
    assert 0 < len(top) <= 25
    # descending by cumulative time, entries fully populated
    cums = [entry["cumtime_s"] for entry in top]
    assert cums == sorted(cums, reverse=True)
    assert all(entry["function"] and entry["ncalls"] >= 1 for entry in top)


def test_experiment_profile_flag(tmp_path, capsys):
    prof = tmp_path / "exp.pstats"
    assert main(["experiment", "fig3_4", "--profile", str(prof)]) == 0
    assert prof.exists()
    assert "profile written to" in capsys.readouterr().err


def test_profile_does_not_change_bounds(fig2_json, tmp_path, capsys):
    assert main(["analyze", fig2_json]) == 0
    plain = capsys.readouterr().out
    assert main(["analyze", fig2_json, "--profile", str(tmp_path / "p.pstats")]) == 0
    profiled = capsys.readouterr().out
    assert plain == profiled


# ----------------------------------------------------------------------
# Shared observability flag group (the _obs_parent() invariant)
# ----------------------------------------------------------------------


def test_every_subcommand_carries_the_obs_flag_group():
    # a new subcommand registered without parents=[_obs_parent()] would
    # ship without --log-level/--metrics-json/--metrics-prom/--progress/
    # --profile; this walks every subparser so that cannot land silently
    import argparse

    from repro.cli import OBS_FLAG_DESTS

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    assert subparsers.choices  # sanity: there are subcommands to check
    for name, subparser in subparsers.choices.items():
        dests = {action.dest for action in subparser._actions}
        missing = set(OBS_FLAG_DESTS) - dests
        assert not missing, f"subcommand {name!r} lacks obs flags {sorted(missing)}"


def test_profile_flag_on_simulate_and_whatif(fig2_json, tmp_path, capsys):
    prof = tmp_path / "sim.pstats"
    assert main(["simulate", fig2_json, "--duration-ms", "5", "--profile", str(prof)]) == 0
    assert prof.exists()
    assert "profile written to" in capsys.readouterr().err

    edits = tmp_path / "edits.json"
    edits.write_text(json.dumps({"edits": [{"op": "retime", "vl": "v1", "bag_ms": 4.0}]}))
    prof2 = tmp_path / "whatif.pstats"
    assert main(["whatif", fig2_json, str(edits), "--profile", str(prof2)]) == 0
    assert prof2.exists()


def test_metrics_prom_writes_textfile(fig2_json, tmp_path, capsys):
    prom = tmp_path / "metrics.prom"
    assert main(["analyze", fig2_json, "--metrics-prom", str(prom)]) == 0
    assert "prometheus metrics written to" in capsys.readouterr().err
    text = prom.read_text()
    assert text.startswith("# TYPE repro_")
    assert 'command="analyze"' in text
    assert 'analyzer="trajectory"' in text


def test_metrics_prom_unwritable_path_fails(fig2_json, tmp_path, capsys):
    prom = tmp_path / "missing-dir" / "metrics.prom"
    assert main(["analyze", fig2_json, "--metrics-prom", str(prom)]) == 1
    assert "cannot write prometheus" in capsys.readouterr().err


# ----------------------------------------------------------------------
# afdx profile and --trace (the performance observatory)
# ----------------------------------------------------------------------


def test_profile_text_report_lists_hot_ports(fig2_json, capsys):
    assert main(["profile", fig2_json]) == 0
    out = capsys.readouterr().out
    assert "deterministic work counters:" in out
    assert "top 10 ports by candidate evaluations (trajectory):" in out
    assert "sweep convergence cost curve:" in out
    assert "->" in out  # at least one port label ranked


def test_profile_top_flag_limits_ranking(fig2_json, capsys):
    assert main(["profile", fig2_json, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "top 2 ports by candidate evaluations (trajectory):" in out
    hot_section = out.split("candidate evaluations (trajectory):")[1]
    hot_section = hot_section.split("top 2 ports by flow folds")[0]
    ranked = [line for line in hot_section.splitlines() if "->" in line]
    assert len(ranked) <= 2


def test_profile_json_report_schema(fig2_json, tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert (
        main(["profile", fig2_json, "--format", "json", "-o", str(out_path)]) == 0
    )
    report = json.loads(out_path.read_text())
    assert report["profile_schema"] == 1
    det = report["deterministic"]
    assert det["work"]["network_calculus"]["ports_analyzed"] > 0
    assert det["work"]["trajectory"]["sweeps"] >= 1
    assert det["hot_ports"]
    assert det["sweep_cost_curve"]
    assert report["config"]["name"] == "fig2"
    assert "profile report written to" in capsys.readouterr().err


def test_profile_deterministic_section_stable_across_runs(fig2_json, capsys):
    canon = []
    for _ in range(2):
        assert main(["profile", fig2_json, "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        canon.append(json.dumps(report["deterministic"], sort_keys=True))
    assert canon[0] == canon[1]


def test_trace_flag_writes_valid_chrome_trace(fig2_json, tmp_path):
    from repro.obs import load_chrome_trace

    trace = tmp_path / "trace.json"
    assert main(["analyze", fig2_json, "--trace", str(trace)]) == 0
    doc = load_chrome_trace(trace)  # validates or raises
    spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    assert spans
    assert doc["otherData"]["runs"] == ["run1:analyze"]


def test_trace_flag_merges_across_runs(fig2_json, tmp_path):
    from repro.obs import load_chrome_trace

    trace = tmp_path / "trace.json"
    assert main(["analyze", fig2_json, "--trace", str(trace)]) == 0
    assert main(["profile", fig2_json, "--trace", str(trace)]) == 0
    doc = load_chrome_trace(trace)
    assert doc["otherData"]["runs"] == ["run1:analyze", "run2:profile"]
    pids = {ev["pid"] for ev in doc["traceEvents"]}
    assert len(pids) == 4  # two analyzers per run, fresh lanes per run


def test_trace_unwritable_path_fails(fig2_json, tmp_path, capsys):
    trace = tmp_path / "missing-dir" / "trace.json"
    assert main(["analyze", fig2_json, "--trace", str(trace)]) == 1
    assert "cannot write trace" in capsys.readouterr().err


def test_trace_does_not_change_bounds(fig2_json, tmp_path, capsys):
    assert main(["analyze", fig2_json]) == 0
    plain = capsys.readouterr().out
    assert main(["analyze", fig2_json, "--trace", str(tmp_path / "t.json")]) == 0
    traced = capsys.readouterr().out
    assert plain == traced  # the notice goes to stderr, bounds unchanged
