"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.configs import fig2_network
from repro.network import network_to_json


@pytest.fixture
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    network_to_json(fig2_network(), path)
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_and_validate(tmp_path, capsys):
    out = str(tmp_path / "net.json")
    assert main(["generate", "fig2", "-o", out]) == 0
    data = json.loads((tmp_path / "net.json").read_text())
    assert data["name"] == "fig2"
    assert main(["validate", out]) == 0
    stdout = capsys.readouterr().out
    assert "OK" in stdout


def test_generate_random(tmp_path):
    out = str(tmp_path / "r.json")
    assert main(["generate", "random", "-o", out, "--seed", "3", "--vls", "10"]) == 0
    assert json.loads((tmp_path / "r.json").read_text())["virtual_links"]


def test_analyze_prints_bounds_and_stats(fig2_json, capsys):
    assert main(["analyze", fig2_json]) == 0
    out = capsys.readouterr().out
    assert "v1[0]" in out
    assert "Trajectory/WCNC" in out


def test_analyze_top_limits_rows(fig2_json, capsys):
    main(["analyze", fig2_json, "--top", "2"])
    out = capsys.readouterr().out
    assert out.count("[0]") == 2


def test_analyze_serialization_mode(fig2_json, capsys):
    assert main(["analyze", fig2_json, "--serialization", "safe"]) == 0
    safe_out = capsys.readouterr().out
    assert main(["analyze", fig2_json, "--serialization", "paper"]) == 0
    paper_out = capsys.readouterr().out
    assert safe_out != paper_out


def test_simulate_reports_no_violations(fig2_json, capsys):
    assert main(["simulate", fig2_json, "--duration-ms", "20"]) == 0
    out = capsys.readouterr().out
    assert "0 bound violations" in out


def test_experiment_fig3_4(capsys):
    assert main(["experiment", "fig3_4"]) == 0
    out = capsys.readouterr().out
    assert "fig3_4" in out and "40.00" in out


def test_experiment_with_reduced_vls(capsys):
    assert main(["experiment", "table1", "--vls", "60"]) == 0
    out = capsys.readouterr().out
    assert "Trajectory/WCNC" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_validate_invalid_network_exits_nonzero(tmp_path, capsys):
    # wire an ES twice by editing the JSON directly
    net = fig2_network()
    from repro.network import network_to_dict

    data = network_to_dict(net)
    data["virtual_links"] = []
    data["links"].append({"a": "e1", "b": "S2", "rate_mbps": 100.0})
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    # the loader itself refuses the second ES link
    from repro.errors import InvalidTopologyError

    with pytest.raises(InvalidTopologyError):
        main(["validate", str(path)])


def test_analyze_jitter_flag(fig2_json, capsys):
    assert main(["analyze", fig2_json, "--jitter"]) == 0
    out = capsys.readouterr().out
    assert "jitter (us)" in out


def test_experiment_csv_export(tmp_path, capsys):
    csv_path = str(tmp_path / "fig3_4.csv")
    assert main(["experiment", "fig3_4", "--csv", csv_path]) == 0
    content = (tmp_path / "fig3_4.csv").read_text()
    assert content.startswith("VL,")
    assert "v1,272.0,232.0,40.0" in content
    assert "# " in content  # notes preserved as comments


def test_report_command_stdout(fig2_json, capsys):
    assert main(["report", fig2_json]) == 0
    out = capsys.readouterr().out
    assert "Output-port dimensioning" in out
    assert "Method comparison" in out


def test_report_command_to_file(fig2_json, tmp_path, capsys):
    out_path = str(tmp_path / "report.txt")
    assert main(["report", fig2_json, "-o", out_path, "--top", "2"]) == 0
    text = (tmp_path / "report.txt").read_text()
    assert "Top 2 critical paths" in text
