"""The benchmark-regression gate (scripts/bench_gate.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    Path(__file__).resolve().parent.parent / "scripts" / "bench_gate.py",
)
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)


class TestFlatten:
    def test_timing_suffixes_only(self):
        record = {"cold_s": 1.5, "speedup": 12.0, "n_paths": 626, "ok": True}
        assert dict(bench_gate.flatten_timings(record)) == {"cold_s": 1.5}

    def test_ms_converted_to_seconds(self):
        record = {"metrics": {"timers": {"bench.x": {"total_ms": 1500.0, "count": 2}}}}
        flat = dict(bench_gate.flatten_timings(record))
        assert flat == {"metrics.timers.bench.x.total_ms": 1.5}

    def test_list_elements_addressed_by_discriminator(self):
        record = {
            "points": [
                {"n_virtual_links": 100, "netcalc_s": 0.06},
                {"n_virtual_links": 300, "netcalc_s": 0.14},
            ]
        }
        flat = dict(bench_gate.flatten_timings(record))
        assert flat == {
            "points[n_virtual_links=100].netcalc_s": 0.06,
            "points[n_virtual_links=300].netcalc_s": 0.14,
        }

    def test_list_without_discriminator_uses_index(self):
        flat = dict(bench_gate.flatten_timings({"runs": [{"t_s": 1.0}]}))
        assert flat == {"runs[0].t_s": 1.0}


class TestFlattenWork:
    def test_only_work_subtree_counts(self):
        record = {
            "cold_s": 1.5,
            "n_paths": 626,  # integer outside work: ignored
            "work": {"trajectory": {"sweeps": 4, "paths_bound": 8}},
        }
        flat = dict(bench_gate.flatten_work(record))
        assert flat == {
            "work.trajectory.sweeps": 4,
            "work.trajectory.paths_bound": 8,
        }

    def test_work_inside_discriminated_list(self):
        record = {
            "points": [
                {"n_virtual_links": 100, "work": {"nc": {"flow_folds": 7}}},
            ]
        }
        flat = dict(bench_gate.flatten_work(record))
        assert flat == {"points[n_virtual_links=100].work.nc.flow_folds": 7}

    def test_floats_and_bools_in_work_ignored(self):
        record = {"work": {"ratio": 1.5, "flag": True, "count": 3}}
        assert dict(bench_gate.flatten_work(record)) == {"work.count": 3}


class TestCompare:
    def _compare(self, base, now, **kw):
        kw.setdefault("tolerance", 0.30)
        kw.setdefault("min_seconds", 0.01)
        return {
            (f, k): status
            for f, k, status, *_ in bench_gate.compare(
                {"B.json": now}, {"B.json": base}, **kw
            )
        }

    def test_within_tolerance_is_ok(self):
        got = self._compare({"cold_s": 1.0}, {"cold_s": 1.25})
        assert got == {("B.json", "cold_s"): "ok"}

    def test_regression_flagged_slower(self):
        got = self._compare({"cold_s": 1.0}, {"cold_s": 1.4})
        assert got == {("B.json", "cold_s"): "slower"}

    def test_improvement_flagged_faster(self):
        got = self._compare({"cold_s": 1.0}, {"cold_s": 0.5})
        assert got == {("B.json", "cold_s"): "faster"}

    def test_noise_floor_suppresses_micro_jitter(self):
        got = self._compare({"cold_s": 0.001}, {"cold_s": 0.009})
        assert got == {("B.json", "cold_s"): "ok"}

    def test_new_and_missing_keys(self):
        got = self._compare({"old_s": 1.0}, {"new_s": 1.0})
        assert got == {
            ("B.json", "old_s"): "missing",
            ("B.json", "new_s"): "new",
        }

    def test_work_counters_compared_exactly(self):
        key = "work.trajectory.sweeps"
        assert self._compare({key: 4}, {key: 4}) == {("B.json", key): "ok"}
        # one extra unit of work is a regression — no ±30% tolerance
        assert self._compare({key: 4}, {key: 5}) == {("B.json", key): "more-work"}
        assert self._compare({key: 4}, {key: 3}) == {("B.json", key): "less-work"}

    def test_work_counters_ignore_noise_floor(self):
        # tiny counts still compare exactly (the floor is for seconds)
        key = "work.nc.flow_folds"
        got = self._compare({key: 1}, {key: 2}, min_seconds=10.0)
        assert got == {("B.json", key): "more-work"}


class TestJobsMismatch:
    def _rows(self, base, now):
        return {
            key: status
            for _f, key, status, *_ in bench_gate.compare(
                {"B.json": now}, {"B.json": base},
                tolerance=0.30, min_seconds=0.01,
            )
        }

    def test_mismatch_skips_timings_keeps_work(self):
        base = {"jobs": 4, "samples": {"cold_s": 1.0, "work.tr.sweeps": 4}}
        now = {"jobs": 1, "samples": {"cold_s": 9.0, "work.tr.sweeps": 4}}
        rows = self._rows(base, now)
        assert rows["(jobs)"] == "jobs-mismatch"
        assert "cold_s" not in rows  # wall times incomparable, no verdict
        assert rows["work.tr.sweeps"] == "ok"  # work is jobs-invariant

    def test_work_regression_flagged_despite_mismatch(self):
        base = {"jobs": 4, "samples": {"work.tr.sweeps": 4}}
        now = {"jobs": 1, "samples": {"work.tr.sweeps": 5}}
        assert self._rows(base, now)["work.tr.sweeps"] == "more-work"

    def test_same_jobs_compares_timings(self):
        base = {"jobs": 4, "samples": {"cold_s": 1.0}}
        now = {"jobs": 4, "samples": {"cold_s": 2.0}}
        rows = self._rows(base, now)
        assert "(jobs)" not in rows
        assert rows["cold_s"] == "slower"

    def test_old_flat_baseline_means_jobs_one(self):
        # pre-jobs baselines keep working, treated as jobs=1
        base = {"cold_s": 1.0}
        now = {"jobs": 1, "samples": {"cold_s": 1.1}}
        rows = self._rows(base, now)
        assert "(jobs)" not in rows
        assert rows["cold_s"] == "ok"

    def test_mismatch_alone_is_not_fatal_in_strict(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_x.json").write_text(
            json.dumps([{"jobs": 1, "cold_s": 9.0}])
        )
        baselines = tmp_path / "baselines.json"
        baselines.write_text(
            json.dumps(
                {"BENCH_x.json": {"jobs": 4, "samples": {"cold_s": 1.0}}}
            )
        )
        args = [
            "--results-dir", str(results), "--baselines", str(baselines),
            "--strict",
        ]
        assert bench_gate.main(args) == 0
        assert "jobs-mismatch" in capsys.readouterr().out


class TestMain:
    def _setup(self, tmp_path, latest, baselines=None):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_x.json").write_text(json.dumps([latest]))
        baselines_path = tmp_path / "baselines.json"
        if baselines is not None:
            baselines_path.write_text(json.dumps({"BENCH_x.json": baselines}))
        return [
            "--results-dir", str(results), "--baselines", str(baselines_path),
        ]

    def test_update_baselines_writes_latest_record(self, tmp_path):
        args = self._setup(tmp_path, {"cold_s": 1.0, "n": 3})
        assert bench_gate.main(args + ["--update-baselines"]) == 0
        doc = json.loads((tmp_path / "baselines.json").read_text())
        assert doc == {
            "BENCH_x.json": {"jobs": 1, "samples": {"cold_s": 1.0}}
        }

    def test_advisory_by_default(self, tmp_path, capsys):
        args = self._setup(tmp_path, {"cold_s": 2.0}, baselines={"cold_s": 1.0})
        assert bench_gate.main(args) == 0
        out = capsys.readouterr().out
        assert "1 slower" in out and "advisory" in out

    def test_strict_fails_on_regression(self, tmp_path, capsys):
        args = self._setup(tmp_path, {"cold_s": 2.0}, baselines={"cold_s": 1.0})
        assert bench_gate.main(args + ["--strict"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_strict_passes_when_clean(self, tmp_path):
        args = self._setup(tmp_path, {"cold_s": 1.0}, baselines={"cold_s": 1.0})
        assert bench_gate.main(args + ["--strict"]) == 0

    def test_missing_baselines_file_is_advisory(self, tmp_path, capsys):
        args = self._setup(tmp_path, {"cold_s": 1.0})
        assert bench_gate.main(args) == 0
        assert "no baselines" in capsys.readouterr().out

    def test_update_baselines_includes_work_counters(self, tmp_path):
        record = {"cold_s": 1.0, "work": {"tr": {"sweeps": 4}}}
        args = self._setup(tmp_path, record)
        assert bench_gate.main(args + ["--update-baselines"]) == 0
        doc = json.loads((tmp_path / "baselines.json").read_text())
        assert doc == {
            "BENCH_x.json": {
                "jobs": 1,
                "samples": {"cold_s": 1.0, "work.tr.sweeps": 4},
            }
        }

    def test_strict_fails_on_more_work(self, tmp_path, capsys):
        latest = {"cold_s": 1.0, "work": {"tr": {"sweeps": 5}}}
        base = {"cold_s": 1.0, "work.tr.sweeps": 4}
        args = self._setup(tmp_path, latest, baselines=base)
        assert bench_gate.main(args + ["--strict"]) == 1
        out = capsys.readouterr().out
        assert "more-work" in out and "FAIL" in out

    def test_less_work_is_never_fatal(self, tmp_path, capsys):
        latest = {"cold_s": 1.0, "work": {"tr": {"sweeps": 3}}}
        base = {"cold_s": 1.0, "work.tr.sweeps": 4}
        args = self._setup(tmp_path, latest, baselines=base)
        assert bench_gate.main(args + ["--strict"]) == 0
        assert "less-work" in capsys.readouterr().out
