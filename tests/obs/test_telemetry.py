"""FleetView aggregation, the drain thread, and the fleet_drain gate."""

import io
import queue as queue_module

from repro.obs.telemetry import (
    STOP_EVENT_KIND,
    FleetView,
    TelemetryDrain,
    fleet_drain,
)


class _Clock:
    """Deterministic monotonic clock for rate/ETA assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _view(total=10):
    clock = _Clock()
    view = FleetView(total, stream=io.StringIO(), clock=clock)
    return view, clock


class TestFleetView:
    def test_config_events_accumulate(self):
        view, clock = _view()
        clock.now = 2.0
        view.handle({"kind": "config", "lane": 101, "n": 1})
        view.handle({"kind": "config", "lane": 100, "n": 2})
        assert view.done == 3
        assert view.lanes == {100: 2, 101: 1}
        assert view.throughput == 1.5
        # 7 configurations left at 1.5 cfg/s
        assert abs(view.eta_s - 7 / 1.5) < 1e-9

    def test_cache_tallies_fold_into_hit_rate(self):
        view, _clock = _view()
        view.handle(
            {"kind": "config", "lane": 100, "cache_hits": 3, "cache_misses": 1}
        )
        assert view.cache_hit_rate == 0.75
        assert view.cache_hit_rate is not None

    def test_no_lookups_means_no_rate(self):
        view, _clock = _view()
        assert view.cache_hit_rate is None
        assert "cache" not in view.render_line()

    def test_heartbeats_mark_stragglers_until_first_config(self):
        view, _clock = _view()
        view.handle({"kind": "heartbeat", "lane": 101, "at": "SW1.p3"})
        assert "at w101=SW1.p3" in view.render_line()
        view.handle({"kind": "config", "lane": 101, "n": 1})
        assert "at w101" not in view.render_line()

    def test_unknown_kinds_only_bump_the_event_counter(self):
        view, _clock = _view()
        view.handle({"kind": "mystery", "lane": 100})
        view.handle("not even a dict")
        assert view.events == 1
        assert view.done == 0

    def test_render_line_shape(self):
        view, clock = _view(total=4)
        clock.now = 2.0
        view.handle(
            {
                "kind": "config",
                "lane": 100,
                "n": 2,
                "cache_hits": 1,
                "cache_misses": 1,
            }
        )
        line = view.render_line()
        assert line.startswith("fleet 2/4 cfg | 1.0 cfg/s | eta 2s")
        assert "cache 50%" in line
        assert "w100:2" in line

    def test_render_is_rate_limited_but_close_forces(self):
        view, clock = _view()
        for _ in range(50):
            view.handle({"kind": "config", "lane": 100, "n": 1})
        assert view.renders == 1  # clock never advanced past the interval
        view.close()
        assert view.renders == 2
        assert view.stream.getvalue().endswith("\n")

    def test_snapshot_is_json_shaped(self):
        view, clock = _view(total=4)
        clock.now = 1.0
        view.handle(
            {"kind": "config", "lane": 101, "n": 2, "cache_hits": 2}
        )
        snap = view.snapshot()
        assert snap["configs_done"] == 2
        assert snap["configs_total"] == 4
        assert snap["lanes"] == {"101": 2}  # str keys: JSON-safe
        assert snap["cache_hit_rate"] == 1.0
        assert snap["throughput_cfg_s"] == 2.0


class TestTelemetryDrain:
    def test_drains_until_sentinel(self):
        events = []
        channel = queue_module.SimpleQueue()
        for index in range(3):
            channel.put({"kind": "config", "lane": 100, "n": 1, "i": index})
        drain = TelemetryDrain(channel, events.append).start()
        drain.stop()
        assert len(events) == 3
        assert drain.events == 3

    def test_events_ahead_of_the_sentinel_still_deliver(self):
        events = []
        channel = queue_module.SimpleQueue()
        channel.put({"kind": "config"})
        channel.put({"kind": STOP_EVENT_KIND})
        drain = TelemetryDrain(channel, events.append)
        drain._run()  # synchronous: deterministic ordering
        assert events == [{"kind": "config"}]

    def test_handler_exceptions_do_not_kill_the_drain(self):
        seen = []

        def explode(event):
            seen.append(event)
            raise RuntimeError("bad render")

        channel = queue_module.SimpleQueue()
        channel.put({"kind": "config", "n": 1})
        channel.put({"kind": "config", "n": 2})
        drain = TelemetryDrain(channel, explode).start()
        drain.stop()
        assert len(seen) == 2

    def test_stop_is_idempotent(self):
        channel = queue_module.SimpleQueue()
        drain = TelemetryDrain(channel, lambda event: None).start()
        drain.stop()
        drain.stop()  # no error, thread already gone

    def test_context_manager(self):
        events = []
        channel = queue_module.SimpleQueue()
        with TelemetryDrain(channel, events.append):
            channel.put({"kind": "config"})
        assert events == [{"kind": "config"}]


class _FakePool:
    def __init__(self, queue):
        self.telemetry_queue = queue


class TestFleetDrainGate:
    def test_needs_both_queue_and_progress(self):
        channel = queue_module.SimpleQueue()
        assert fleet_drain(_FakePool(None), object(), 5) == (None, None)
        assert fleet_drain(_FakePool(channel), None, 5) == (None, None)

    def test_activates_with_queue_and_progress(self):
        channel = queue_module.SimpleQueue()
        view, drain = fleet_drain(_FakePool(channel), object(), 5)
        try:
            assert view is not None
            assert view.total == 5
            channel.put({"kind": "config", "lane": 100, "n": 1})
        finally:
            drain.stop()
        assert view.done == 1
