"""worker_lane_summary: per-phase lane utilization from span exports."""

from repro.obs.hotspots import worker_lane_summary


def _span(name, duration_ms, attrs=None, children=()):
    span = {
        "name": name,
        "start_ms": 0.0,
        "duration_ms": duration_ms,
        "children": list(children),
    }
    if attrs is not None:
        span["attrs"] = attrs
    return span


class TestWorkerLaneSummary:
    def test_no_stats_or_no_workers_is_empty(self):
        assert worker_lane_summary(None) == []
        assert worker_lane_summary({}) == []
        stats = {"spans": [_span("batch.trajectory", 10.0)]}
        assert worker_lane_summary(stats) == []

    def test_utilization_and_lane_fractions(self):
        stats = {
            "spans": [
                _span(
                    "batch.trajectory",
                    100.0,
                    attrs={
                        "workers": [50.0, 80.0],
                        "start_method": "fork",
                        "pool_reused": 1,
                        "shm_tables": 1,
                    },
                )
            ]
        }
        (phase,) = worker_lane_summary(stats)
        assert phase["phase"] == "batch.trajectory"
        assert phase["lanes"] == 2
        assert phase["wall_ms"] == 100.0
        assert phase["utilization"] == 0.65  # (50 + 80) / (100 * 2)
        assert phase["lane_busy_frac"] == [0.5, 0.8]
        assert phase["stragglers"] == []
        assert phase["start_method"] == "fork"
        assert phase["pool_reused"] == 1
        assert phase["shm_tables"] == 1

    def test_straggler_lane_detected(self):
        stats = {
            "spans": [
                _span(
                    "batch.netcalc",
                    100.0,
                    attrs={"workers": [10.0, 10.0, 90.0]},
                )
            ]
        }
        (phase,) = worker_lane_summary(stats)
        # mean busy ~36.7 ms; lane 2 exceeds 1.25x the mean
        assert phase["stragglers"] == [2]

    def test_single_lane_never_a_straggler(self):
        stats = {
            "spans": [_span("batch.trajectory", 10.0, attrs={"workers": [9.0]})]
        }
        (phase,) = worker_lane_summary(stats)
        assert phase["stragglers"] == []

    def test_nested_spans_visited(self):
        child = _span("batch.trajectory", 40.0, attrs={"workers": [20.0, 30.0]})
        stats = {"spans": [_span("analysis", 50.0, children=[child])]}
        (phase,) = worker_lane_summary(stats)
        assert phase["phase"] == "batch.trajectory"

    def test_utilization_clamped_to_one(self):
        # busy > wall happens when lanes overlap timer granularity
        stats = {
            "spans": [
                _span("batch.trajectory", 10.0, attrs={"workers": [11.0, 12.0]})
            ]
        }
        (phase,) = worker_lane_summary(stats)
        assert phase["utilization"] == 1.0
        assert phase["lane_busy_frac"] == [1.0, 1.0]
