"""The persistent run-history store and its diff/drift queries."""

import json

import pytest

from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    RunHistory,
    build_run_record,
    cache_summary,
    deterministic_view,
    diff_runs,
    drift_report,
    git_revision,
    render_drift_report,
    render_run_diff,
    render_run_line,
    resolve_history_dir,
    validate_run_record,
)

CFG = "c" * 64
BOUNDS = "b" * 64


def _record(**overrides):
    fields = dict(
        command="analyze",
        config_digest=CFG,
        bounds_digest=BOUNDS,
        work={"netcalc": {"ports_converged": 7}},
        options={"top": 10},
        git_rev="rev-1",
        recorded_at="2026-08-07T00:00:00Z",
    )
    fields.update(overrides)
    return build_run_record(**fields)


class TestResolution:
    def test_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("AFDX_HISTORY_DIR", "/env/dir")
        assert resolve_history_dir("/flag/dir") == "/flag/dir"
        assert resolve_history_dir(None) == "/env/dir"

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("AFDX_HISTORY_DIR", raising=False)
        assert resolve_history_dir(None) is None

    def test_git_rev_env_override(self, monkeypatch):
        monkeypatch.setenv("AFDX_GIT_REV", "deadbeef")
        assert git_revision() == "deadbeef"


class TestRecordAssembly:
    def test_schema_stamp_and_validation(self):
        record = _record()
        assert record["history_schema"] == HISTORY_SCHEMA_VERSION
        validate_run_record(record)  # does not raise

    def test_run_ids_are_unique(self):
        a, b = _record(), _record()
        assert a["run_id"] != b["run_id"]

    def test_deterministic_view_drops_volatile_fields(self):
        record = _record(
            cache={"trajectory": {"events.hits": 3}},
            execution={"jobs": 4},
            wall_ms=12.5,
        )
        view = deterministic_view(record)
        for volatile in ("run_id", "recorded_at", "git_rev", "wall",
                         "cache", "execution"):
            assert volatile not in view
        assert view["bounds_digest"] == BOUNDS
        assert view["work"] == {"netcalc": {"ports_converged": 7}}

    def test_deterministic_view_is_byte_stable_across_runs(self):
        views = [
            json.dumps(
                deterministic_view(
                    _record(git_rev=f"rev-{i}", execution={"jobs": i + 1})
                ),
                sort_keys=True,
            )
            for i in range(3)
        ]
        assert views[0] == views[1] == views[2]

    @pytest.mark.parametrize(
        "mutation",
        [
            {"history_schema": 99},
            {"status": "maybe"},
            {"command": ""},
            {"work": {"netcalc": {"ports": 1.5}}},
            {"work": {"netcalc": {"ports": True}}},
            {"bounds_digest": 123},
        ],
    )
    def test_validation_rejects_bad_shapes(self, mutation):
        record = _record()
        record.update(mutation)
        with pytest.raises(ValueError):
            validate_run_record(record)


class TestCacheSummary:
    def test_flattens_ledger_cache_sections(self):
        stats = {
            "trajectory": {
                "cost": {
                    "cache": {
                        "events": {"hits": 8, "misses": 2},
                        "horizon": {"hits": 1, "misses": 0},
                    }
                }
            },
            "netcalc": {"cost": {}},  # no cache section -> omitted
            "sim": None,
        }
        assert cache_summary(stats) == {
            "trajectory": {
                "events.hits": 8,
                "events.misses": 2,
                "horizon.hits": 1,
                "horizon.misses": 0,
            }
        }


class TestStore:
    def test_append_and_read_back(self, tmp_path):
        history = RunHistory(tmp_path)
        record = history.append(_record())
        assert history.records() == [record]
        assert history.index()["total_records"] == 1

    def test_appends_are_whole_lines(self, tmp_path):
        history = RunHistory(tmp_path)
        for _ in range(3):
            history.append(_record())
        (segment,) = history.segment_paths()
        lines = segment.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            validate_run_record(json.loads(line))

    def test_segment_rotation(self, tmp_path):
        history = RunHistory(tmp_path, segment_records=2)
        for _ in range(5):
            history.append(_record())
        assert [p.name for p in history.segment_paths()] == [
            "seg-000001.jsonl",
            "seg-000002.jsonl",
            "seg-000003.jsonl",
        ]
        assert len(history.records()) == 5

    def test_records_survive_missing_index(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record())
        history.index_path.unlink()
        assert len(history.records()) == 1
        assert history.index()["total_records"] == 1  # rebuilt

    def test_torn_foreign_line_is_skipped(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record())
        (segment,) = history.segment_paths()
        with open(segment, "a") as handle:
            handle.write('{"torn": \n')
        history.append(_record())
        assert len(history.records()) == 2

    def test_filters_and_limit(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record(command="analyze"))
        history.append(_record(command="whatif"))
        history.append(_record(command="analyze", config_digest="d" * 64))
        assert len(history.records(command="analyze")) == 2
        assert len(history.records(config_digest=CFG)) == 2
        newest = history.records(limit=1)
        assert len(newest) == 1
        assert newest[0]["config_digest"] == "d" * 64

    def test_get_resolves_prefixes(self, tmp_path):
        history = RunHistory(tmp_path)
        record = history.append(_record())
        run_id = record["run_id"]
        assert history.get(run_id) == record
        assert history.get(run_id[:12]) == record
        # the hash part after the timestamp resolves too
        assert history.get(run_id.split("-", 1)[1][:6]) == record
        assert history.get("nope") is None

    def test_get_rejects_ambiguous_prefix(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record())
        history.append(_record())
        with pytest.raises(ValueError, match="ambiguous"):
            history.get("2026")  # shared timestamp prefix

    def test_rejects_invalid_segment_size(self, tmp_path):
        with pytest.raises(ValueError):
            RunHistory(tmp_path, segment_records=0)


class TestDiff:
    def test_identical_runs(self):
        diff = diff_runs(_record(), _record())
        assert diff["same_config"] is True
        assert diff["bounds"]["identical"] is True
        assert diff["work_delta"] == {}
        text = render_run_diff(diff)
        assert "bounds: identical" in text
        assert "work counters identical" in text

    def test_bounds_and_work_changes_surface(self):
        before = _record()
        after = _record(
            bounds_digest="e" * 64,
            work={"netcalc": {"ports_converged": 9}},
        )
        diff = diff_runs(before, after)
        assert diff["bounds"]["identical"] is False
        assert diff["work_delta"]["netcalc.ports_converged"]["delta"] == 2
        text = render_run_diff(diff)
        assert "DIFFERENT" in text
        assert "7 -> 9 (+2)" in text

    def test_missing_digests_never_claim_identity(self):
        diff = diff_runs(
            _record(bounds_digest=None), _record(bounds_digest=None)
        )
        assert diff["bounds"]["identical"] is False


class TestDrift:
    def test_clean_across_revs_and_jobs(self):
        records = [
            _record(git_rev="rev-1"),
            _record(git_rev="rev-2", execution={"jobs": 4}),
        ]
        report = drift_report(records)
        assert report["verdict"] == "clean"
        assert report["groups_compared"] == 1
        assert report["drifts"] == []
        assert report["more_work"] == []
        assert "verdict: clean" in render_drift_report(report)

    def test_bounds_change_at_fixed_config_is_drift(self):
        records = [
            _record(git_rev="rev-1"),
            _record(git_rev="rev-2", bounds_digest="0" * 64),
        ]
        report = drift_report(records)
        assert report["verdict"] == "drift"
        (drift,) = report["drifts"]
        assert drift["config_digest"] == CFG
        assert len(drift["variants"]) == 2
        assert "DRIFT" in render_drift_report(report)

    def test_different_configs_never_compared(self):
        records = [
            _record(),
            _record(config_digest="d" * 64, bounds_digest="0" * 64),
        ]
        assert drift_report(records)["verdict"] == "clean"

    def test_more_work_across_revs_is_advisory(self):
        records = [
            _record(git_rev="rev-1"),
            _record(
                git_rev="rev-2",
                work={"netcalc": {"ports_converged": 12}},
            ),
        ]
        report = drift_report(records)
        assert report["verdict"] == "clean"  # advisory, not drift
        (trend,) = report["more_work"]
        assert trend["counter"] == "netcalc.ports_converged"
        assert (trend["before"], trend["after"]) == (7, 12)
        assert "more-work" in render_drift_report(report)

    def test_more_work_within_one_rev_stays_silent(self):
        records = [
            _record(git_rev="rev-1"),
            _record(
                git_rev="rev-1",
                work={"netcalc": {"ports_converged": 12}},
            ),
        ]
        assert drift_report(records)["more_work"] == []

    def test_config_digest_filter(self):
        records = [
            _record(),
            _record(config_digest="d" * 64, bounds_digest="0" * 64),
            _record(config_digest="d" * 64, bounds_digest="1" * 64),
        ]
        assert drift_report(records, config_digest=CFG)["verdict"] == "clean"
        assert (
            drift_report(records, config_digest="d" * 64)["verdict"] == "drift"
        )


class TestRendering:
    def test_list_line_carries_the_handles(self):
        line = render_run_line(_record(wall_ms=12.345))
        assert "analyze" in line
        assert "rev=rev-1" in line
        assert f"cfg={CFG[:12]}" in line
        assert f"bounds={BOUNDS[:12]}" in line
        assert "wall=12.345ms" in line
