"""Prometheus textfile exposition: naming, escaping, grouping, atomicity."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    pool_samples,
    registry_samples,
    render_prometheus,
    write_prometheus,
)


def snapshot():
    registry = MetricsRegistry()
    registry.counter("netcalc.ports_analyzed", 12)
    registry.gauge("explain.max_abs_residual_us", 4.6e-13)
    with registry.timer("trajectory.sweep"):
        pass
    return registry.to_dict()


class TestRegistrySamples:
    def test_counters_get_total_suffix(self):
        samples = registry_samples(snapshot())
        names = {name for name, *_ in samples}
        assert "repro_netcalc_ports_analyzed_total" in names

    def test_timers_expand_into_four_gauges(self):
        samples = registry_samples(snapshot())
        names = {name for name, *_ in samples}
        for suffix in ("_ms_count", "_ms_sum", "_ms_min", "_ms_max"):
            assert f"repro_trajectory_sweep{suffix}" in names

    def test_dots_sanitized_and_prefix_applied(self):
        samples = registry_samples(snapshot())
        for name, *_ in samples:
            assert name.startswith("repro_")
            assert "." not in name

    def test_labels_attached_to_every_sample(self):
        samples = registry_samples(snapshot(), labels={"command": "explain"})
        assert samples
        for _name, labels, *_ in samples:
            assert labels == (("command", "explain"),)


class TestRender:
    def test_one_type_line_per_family(self):
        text = render_prometheus(
            registry_samples(snapshot(), labels={"command": "a"})
            + registry_samples(snapshot(), labels={"command": "b"})
        )
        lines = text.splitlines()
        type_lines = [l for l in lines if l.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))
        # both label sets appear under the single family header
        assert 'repro_netcalc_ports_analyzed_total{command="a"} 12' in lines
        assert 'repro_netcalc_ports_analyzed_total{command="b"} 12' in lines

    def test_counter_type_declared(self):
        text = render_prometheus(registry_samples(snapshot()))
        assert "# TYPE repro_netcalc_ports_analyzed_total counter" in text

    def test_label_values_escaped(self):
        sample = ("repro_x", (("path", 'a\\b"c\nd'),), 1.0, "gauge")
        text = render_prometheus([sample])
        assert '{path="a\\\\b\\"c\\nd"}' in text
        assert text.count("\n") == 2  # TYPE line + sample line, no raw newline

    def test_type_conflict_rejected(self):
        with pytest.raises(ValueError, match="declared both"):
            render_prometheus(
                [("repro_x", (), 1.0, "counter"), ("repro_x", (), 2.0, "gauge")]
            )

    def test_output_is_sorted_and_newline_terminated(self):
        text = render_prometheus(registry_samples(snapshot()))
        assert text.endswith("\n")
        families = [l.split()[2] for l in text.splitlines() if l.startswith("# TYPE")]
        assert families == sorted(families)

    def test_empty_input_renders_empty(self):
        assert render_prometheus([]) == ""

    def test_float_values_round_trip(self):
        text = render_prometheus(registry_samples(snapshot()))
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_explain_max_abs_residual_us")
        )
        assert float(line.split()[-1]) == 4.6e-13


class TestWrite:
    def test_writes_atomically(self, tmp_path):
        target = tmp_path / "metrics.prom"
        # one sample set: a second snapshot() would re-time the timer
        # block and render different wall-clock digits
        samples = registry_samples(snapshot())
        write_prometheus(target, samples)
        assert target.read_text() == render_prometheus(samples)
        # no temp file left behind
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

    def test_overwrites_previous_run(self, tmp_path):
        target = tmp_path / "metrics.prom"
        write_prometheus(target, registry_samples(snapshot()))
        write_prometheus(target, [("repro_only", (), 1.0, "gauge")])
        assert target.read_text() == "# TYPE repro_only gauge\nrepro_only 1\n"


class TestPoolSamples:
    def test_three_execution_shape_gauges(self):
        samples = pool_samples(3, 2, True)
        by_name = {name: value for name, _labels, value, kind in samples}
        assert by_name == {
            "repro_pool_epoch": 3.0,
            "repro_pool_shm_segments_active": 2.0,
            "repro_pool_borrowed": 1.0,
        }
        assert all(kind == "gauge" for _n, _l, _v, kind in samples)

    def test_labels_attached_and_renderable(self):
        samples = pool_samples(0, 0, False, labels={"command": "batch-sweep"})
        text = render_prometheus(samples)
        assert 'repro_pool_borrowed{command="batch-sweep"} 0' in text
        assert 'repro_pool_epoch{command="batch-sweep"} 0' in text
