"""Logger hierarchy and the configure() helper."""

import io
import logging

import pytest

from repro.obs.logging import ROOT_LOGGER_NAME, configure, get_logger, kv


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    yield
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.handlers.clear()
    root.setLevel(logging.NOTSET)
    root.propagate = True


def test_get_logger_namespacing():
    assert get_logger().name == "repro"
    assert get_logger("netcalc").name == "repro.netcalc"
    assert get_logger("repro.trajectory").name == "repro.trajectory"


def test_children_inherit_configuration():
    stream = io.StringIO()
    configure("DEBUG", stream=stream)
    get_logger("netcalc").debug("propagation %s", kv(ports=12))
    text = stream.getvalue()
    assert "repro.netcalc" in text
    assert "ports=12" in text


def test_configure_is_idempotent():
    first = io.StringIO()
    second = io.StringIO()
    configure("INFO", stream=first)
    configure("INFO", stream=second)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    assert len(root.handlers) == 1
    get_logger("cli").info("hello")
    assert "hello" not in first.getvalue()
    assert "hello" in second.getvalue()


def test_configure_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure("LOUD")


def test_level_filtering():
    stream = io.StringIO()
    configure("WARNING", stream=stream)
    get_logger("sim").info("quiet")
    get_logger("sim").warning("loud")
    assert "quiet" not in stream.getvalue()
    assert "loud" in stream.getvalue()


def test_kv_formatting():
    assert kv(a=1, b=2.34567, c="plain") == "a=1 b=2.346 c=plain"
    assert kv(msg="two words") == "msg='two words'"
