"""Logger hierarchy, the configure() helper, and worker-lane prefixes."""

import io
import logging

import pytest

from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    configure,
    get_logger,
    kv,
    lane_prefix,
    set_worker_lane,
    worker_lane,
)


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    yield
    set_worker_lane(None)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.handlers.clear()
    root.setLevel(logging.NOTSET)
    root.propagate = True


def test_get_logger_namespacing():
    assert get_logger().name == "repro"
    assert get_logger("netcalc").name == "repro.netcalc"
    assert get_logger("repro.trajectory").name == "repro.trajectory"


def test_children_inherit_configuration():
    stream = io.StringIO()
    configure("DEBUG", stream=stream)
    get_logger("netcalc").debug("propagation %s", kv(ports=12))
    text = stream.getvalue()
    assert "repro.netcalc" in text
    assert "ports=12" in text


def test_configure_is_idempotent():
    first = io.StringIO()
    second = io.StringIO()
    configure("INFO", stream=first)
    configure("INFO", stream=second)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    assert len(root.handlers) == 1
    get_logger("cli").info("hello")
    assert "hello" not in first.getvalue()
    assert "hello" in second.getvalue()


def test_configure_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure("LOUD")


def test_level_filtering():
    stream = io.StringIO()
    configure("WARNING", stream=stream)
    get_logger("sim").info("quiet")
    get_logger("sim").warning("loud")
    assert "quiet" not in stream.getvalue()
    assert "loud" in stream.getvalue()


def test_kv_formatting():
    assert kv(a=1, b=2.34567, c="plain") == "a=1 b=2.346 c=plain"
    assert kv(msg="two words") == "msg='two words'"


class TestWorkerLanePrefix:
    def test_prefix_format_matches_trace_lanes(self):
        """``[w<lane>]`` with lanes numbered like the Chrome-trace tids."""
        from repro.batch.pool import LANE_BASE
        from repro.obs.tracefile import _WORKER_TID_BASE

        assert LANE_BASE == _WORKER_TID_BASE
        assert lane_prefix(LANE_BASE + 2) == "[w102]"

    def test_repro_records_get_the_prefix(self):
        stream = io.StringIO()
        configure("INFO", stream=stream)
        set_worker_lane(101)
        assert worker_lane() == 101
        get_logger("batch").info("chunk done %s", kv(n=4))
        assert "[w101] chunk done n=4" in stream.getvalue()

    def test_foreign_records_stay_untouched(self):
        set_worker_lane(101)
        record = logging.getLogRecordFactory()(
            "other.lib", logging.INFO, __file__, 1, "hello", (), None
        )
        assert record.msg == "hello"

    def test_none_uninstalls(self):
        stream = io.StringIO()
        configure("INFO", stream=stream)
        set_worker_lane(101)
        set_worker_lane(None)
        assert worker_lane() is None
        get_logger("batch").info("plain")
        text = stream.getvalue()
        assert "plain" in text
        assert "[w101]" not in text

    def test_reinstall_replaces_instead_of_stacking(self):
        stream = io.StringIO()
        configure("INFO", stream=stream)
        set_worker_lane(100)
        set_worker_lane(103)
        get_logger("batch").info("swapped")
        text = stream.getvalue()
        assert "[w103] swapped" in text
        assert "[w100]" not in text
