"""End-to-end checks of analyzer instrumentation.

The guarantees under test: ``collect_stats=True`` yields a complete
stats snapshot (phases, counters, sweep trace) and never changes any
bound; the default mode attaches nothing at all.
"""

from repro.netcalc.analyzer import analyze_network_calculus
from repro.obs.instrument import OFF, Instrumentation
from repro.trajectory.analyzer import analyze_trajectory


def test_disabled_mode_attaches_no_stats(fig2):
    nc = analyze_network_calculus(fig2)
    trajectory = analyze_trajectory(fig2)
    assert nc.stats is None
    assert trajectory.stats is None


def test_instrumentation_off_is_shared_singleton():
    assert Instrumentation.create(False) is OFF
    assert OFF.export() is None
    assert Instrumentation.create(True) is not OFF


def test_netcalc_stats_snapshot(fig2):
    result = analyze_network_calculus(fig2, collect_stats=True)
    stats = result.stats
    assert stats is not None
    span_names = {span["name"] for span in stats["spans"]}
    assert {"netcalc.validate", "netcalc.toposort", "netcalc.propagate"} <= span_names
    assert stats["counters"]["netcalc.ports_analyzed"] == len(result.ports)
    assert stats["counters"]["netcalc.paths_bound"] == len(result.paths)


def test_trajectory_smoke_reports_sweeps(fig2):
    result = analyze_trajectory(fig2, collect_stats=True)
    stats = result.stats
    assert stats is not None
    assert stats["counters"]["trajectory.sweeps"] >= 1
    assert len(stats["sweeps"]) == result.refinement_iterations >= 1
    # descending fixed point: the last recorded sweep is the stable one
    assert stats["sweeps"][-1]["smax_updates"] == 0
    assert all(entry["max_delta_us"] >= 0.0 for entry in stats["sweeps"])
    assert stats["counters"]["trajectory.paths_bound"] == len(result.paths)


def test_instrumented_bounds_bit_identical(fig2, small_industrial):
    for network in (fig2, small_industrial):
        plain_nc = analyze_network_calculus(network)
        instr_nc = analyze_network_calculus(network, collect_stats=True)
        assert {k: p.total_us for k, p in plain_nc.paths.items()} == {
            k: p.total_us for k, p in instr_nc.paths.items()
        }
        plain_traj = analyze_trajectory(network)
        instr_traj = analyze_trajectory(network, collect_stats=True)
        assert {k: p.total_us for k, p in plain_traj.paths.items()} == {
            k: p.total_us for k, p in instr_traj.paths.items()
        }
        assert plain_traj.refinement_iterations == instr_traj.refinement_iterations


def test_progress_callback_receives_all_phases(fig2):
    phases = set()
    analyze_trajectory(fig2, progress=lambda phase, done, total: phases.add(phase))
    assert "trajectory.sweep" in phases
    phases.clear()
    analyze_network_calculus(fig2, progress=lambda phase, done, total: phases.add(phase))
    assert "netcalc.propagate" in phases


def test_progress_totals_are_consistent(fig2):
    events = []
    analyze_trajectory(
        fig2, progress=lambda phase, done, total: events.append((done, total))
    )
    assert events, "progress callback never invoked"
    assert all(0 <= done <= total for done, total in events)
    assert events[-1][0] == events[-1][1]  # completion always reported
