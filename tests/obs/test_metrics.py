"""Metrics registry: counters, gauges, timers, export, disabled mode."""

import json
import time

import pytest

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, TimerStats


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("x")
    registry.counter("x")
    registry.counter("x", 3)
    assert registry.counter_value("x") == 5
    assert registry.counter_value("never") == 0


def test_gauge_keeps_latest_value():
    registry = MetricsRegistry()
    registry.gauge("g", 1.0)
    registry.gauge("g", 42.5)
    assert registry.gauge_value("g") == 42.5


def test_timer_records_monotonic_elapsed():
    registry = MetricsRegistry()
    with registry.timer("t"):
        time.sleep(0.01)
    stats = registry.timer_stats("t")
    assert stats.count == 1
    assert stats.total_ms >= 5.0


def test_timer_nesting_records_both_levels():
    registry = MetricsRegistry()
    with registry.timer("outer"):
        with registry.timer("inner"):
            pass
        with registry.timer("inner"):
            pass
    assert registry.timer_stats("outer").count == 1
    assert registry.timer_stats("inner").count == 2
    # outer encloses both inner observations
    assert registry.timer_stats("outer").total_ms >= registry.timer_stats("inner").total_ms


def test_timer_reentrant_same_name():
    registry = MetricsRegistry()
    with registry.timer("t"):
        with registry.timer("t"):
            pass
    assert registry.timer_stats("t").count == 2


def test_timer_records_on_exception():
    registry = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with registry.timer("t"):
            raise RuntimeError("boom")
    assert registry.timer_stats("t").count == 1


def test_json_export_round_trip():
    registry = MetricsRegistry()
    registry.counter("a.count", 2)
    registry.gauge("a.gauge", 1.25)
    with registry.timer("a.timer"):
        pass
    snapshot = json.loads(json.dumps(registry.to_dict()))
    assert snapshot["counters"] == {"a.count": 2}
    assert snapshot["gauges"] == {"a.gauge": 1.25}
    timer = snapshot["timers"]["a.timer"]
    assert timer["count"] == 1
    assert set(timer) == {"count", "total_ms", "mean_ms", "min_ms", "max_ms"}


def test_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    registry.counter("x")
    registry.gauge("g", 1.0)
    with registry.timer("t"):
        pass
    assert registry.to_dict() == {"counters": {}, "gauges": {}, "timers": {}}


def test_null_registry_shared_and_disabled():
    assert NULL_REGISTRY.enabled is False
    NULL_REGISTRY.counter("x")
    assert NULL_REGISTRY.counter_value("x") == 0


def test_clear_keeps_enabled_flag():
    registry = MetricsRegistry()
    registry.counter("x")
    registry.clear()
    assert registry.enabled
    assert registry.counter_value("x") == 0


def test_timer_stats_aggregates():
    stats = TimerStats()
    stats.record(2.0)
    stats.record(4.0)
    assert stats.count == 2
    assert stats.total_ms == 6.0
    assert stats.mean_ms == 3.0
    assert stats.min_ms == 2.0
    assert stats.max_ms == 4.0
