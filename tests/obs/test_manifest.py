"""Run-manifest assembly and schema validation."""

import json

import pytest

from repro.configs import fig2_network
from repro.core.comparison import compare_methods
from repro.obs.manifest import (
    MANIFEST_VERSION,
    bound_summary,
    build_manifest,
    network_identity,
    validate_manifest,
    write_manifest,
)


def minimal_manifest(**overrides):
    manifest = build_manifest(command="analyze", options={"top": 0})
    manifest.update(overrides)
    return manifest


def test_network_identity_fields(fig2):
    identity = network_identity(fig2)
    assert identity["name"] == "fig2"
    assert identity["n_virtual_links"] == len(fig2.virtual_links)
    assert identity["n_paths"] == len(fig2.flow_paths())
    assert identity["n_nodes"] > 0 and identity["n_links"] > 0


def test_bound_summary_aggregates(fig2):
    result = compare_methods(fig2)
    summary = bound_summary(result)
    assert summary["n_paths"] == len(result.paths)
    for method in ("network_calculus", "trajectory", "combined"):
        agg = summary[method]
        assert agg["min_us"] <= agg["mean_us"] <= agg["max_us"]
    # combined is the per-path min, so its mean cannot exceed either method's
    assert summary["combined"]["mean_us"] <= summary["network_calculus"]["mean_us"]
    assert "mean_benefit_trajectory_pct" in summary


def test_minimal_manifest_validates():
    validate_manifest(minimal_manifest())


def test_build_manifest_version_and_status():
    manifest = minimal_manifest()
    assert manifest["manifest_version"] == MANIFEST_VERSION
    assert manifest["status"] == "ok"


def test_error_status_requires_error_message():
    manifest = minimal_manifest(status="error")
    with pytest.raises(ValueError, match="error"):
        validate_manifest(manifest)
    manifest["error"] = "boom"
    validate_manifest(manifest)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda m: m.pop("manifest_version"),
        lambda m: m.update(manifest_version=99),
        lambda m: m.pop("command"),
        lambda m: m.update(status="weird"),
        lambda m: m.update(options="not a dict"),
        lambda m: m.update(config={"name": "x"}),  # missing population counts
        lambda m: m.update(analyzers={"nc": {"counters": {}}}),  # missing sections
        lambda m: m.update(bounds={"n_paths": "many"}),
    ],
)
def test_invalid_manifests_rejected(mutate):
    manifest = minimal_manifest()
    mutate(manifest)
    with pytest.raises(ValueError):
        validate_manifest(manifest)


def test_sweep_trace_validation():
    stats = {
        "counters": {},
        "gauges": {},
        "timers": {},
        "spans": [],
        "sweeps": [{"sweep": 1, "smax_updates": 3, "max_delta_us": 1.5}],
    }
    validate_manifest(minimal_manifest(analyzers={"trajectory": stats}))
    stats["sweeps"].append({"sweep": 2})  # missing fields
    with pytest.raises(ValueError):
        validate_manifest(minimal_manifest(analyzers={"trajectory": stats}))


def test_write_manifest_round_trip(tmp_path):
    path = tmp_path / "manifest.json"
    manifest = minimal_manifest()
    write_manifest(manifest, path)
    assert json.loads(path.read_text()) == manifest


def test_write_manifest_rejects_invalid(tmp_path):
    bad = {"manifest_version": MANIFEST_VERSION}
    with pytest.raises(ValueError):
        write_manifest(bad, tmp_path / "bad.json")
    assert not (tmp_path / "bad.json").exists()


def test_explain_gauges_round_trip(tmp_path):
    # the afdx explain summary gauges are plain numbers, so they ride the
    # schema's metrics section unchanged through JSON and validation
    metrics = {
        "counters": {},
        "gauges": {
            "explain.paths": 626,
            "explain.nc_wins": 98,
            "explain.trajectory_wins": 528,
            "explain.ties": 0,
            "explain.conservation_failures": 0,
            "explain.max_abs_residual_us": 4.6e-13,
        },
        "timers": {},
    }
    path = tmp_path / "manifest.json"
    write_manifest(build_manifest(command="explain", options={}, metrics=metrics), path)
    loaded = json.loads(path.read_text())
    validate_manifest(loaded)
    assert loaded["metrics"]["gauges"] == metrics["gauges"]


def test_write_manifest_is_atomic(tmp_path):
    # tmp + os.replace: a crash mid-write can never leave a truncated
    # manifest behind, and no temp litter survives a successful write
    path = tmp_path / "manifest.json"
    write_manifest(minimal_manifest(), path)
    assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]
    validate_manifest(json.loads(path.read_text()))


def test_write_manifest_invalid_preserves_existing_file(tmp_path):
    path = tmp_path / "manifest.json"
    write_manifest(minimal_manifest(), path)
    before = path.read_text()
    with pytest.raises(ValueError):
        write_manifest({"manifest_version": "nope"}, path)
    assert path.read_text() == before  # validation runs before the write
    assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]


def test_whatif_gauges_round_trip(tmp_path):
    metrics = {
        "counters": {"cache.hit.nc.port": 12},
        "gauges": {
            "whatif.dirty_ports": 3,
            "whatif.dirty_vls": 5,
            "whatif.changed_paths": 2,
        },
        "timers": {},
    }
    path = tmp_path / "manifest.json"
    write_manifest(build_manifest(command="whatif", options={}, metrics=metrics), path)
    loaded = json.loads(path.read_text())
    validate_manifest(loaded)
    assert loaded["metrics"]["gauges"] == metrics["gauges"]
    assert loaded["metrics"]["counters"] == metrics["counters"]
