"""Deterministic cost attribution (repro.obs.costmodel).

The contract under test: the ledger's non-cache sections are a pure
function of the analysis result — byte-identical across job counts,
``PYTHONHASHSEED`` values and cold/warm caches — and cache hits appear
as explicit ledger entries rather than silently missing work.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.batch import BatchAnalyzer
from repro.incremental.cache import BoundCache
from repro.netcalc.analyzer import analyze_network_calculus
from repro.obs.costmodel import (
    COST_SCHEMA_VERSION,
    CostLedger,
    deterministic_section,
    netcalc_cost_ledger,
    port_label,
    trajectory_result_work,
    work_summary,
)
from repro.trajectory.analyzer import analyze_trajectory

REPO = Path(__file__).resolve().parent.parent.parent


def _canon(cost):
    """The byte-identity form of a ledger dict's deterministic part."""
    return json.dumps(deterministic_section(cost), sort_keys=True)


class TestCostLedger:
    def test_add_work_accumulates(self):
        ledger = CostLedger("trajectory")
        ledger.add_work("candidate_evaluations", 3)
        ledger.add_work("candidate_evaluations", 2)
        assert ledger.work == {"candidate_evaluations": 5}

    def test_add_port_work_accumulates_per_label(self):
        ledger = CostLedger("trajectory")
        ledger.add_port_work("a->b", "candidate_evaluations", 2)
        ledger.add_port_work("a->b", "candidate_evaluations", 1)
        ledger.add_port_work("c->d", "candidate_evaluations", 7)
        assert ledger.ports == {
            "a->b": {"candidate_evaluations": 3},
            "c->d": {"candidate_evaluations": 7},
        }

    def test_add_sweep_numbers_entries(self):
        ledger = CostLedger("trajectory")
        ledger.add_sweep(candidate_evaluations=4)
        ledger.add_sweep(candidate_evaluations=2)
        assert [entry["sweep"] for entry in ledger.sweeps] == [1, 2]
        assert ledger.sweeps[0]["candidate_evaluations"] == 4

    def test_record_cache_accumulates(self):
        ledger = CostLedger("trajectory")
        ledger.record_cache("result", 1, 0)
        ledger.record_cache("result", 0, 2)
        assert ledger.cache == {"result": {"hits": 1, "misses": 2}}

    def test_hot_ports_ranked_with_stable_ties(self):
        ledger = CostLedger("trajectory")
        ledger.add_port_work("z->a", "candidate_evaluations", 5)
        ledger.add_port_work("b->c", "candidate_evaluations", 5)
        ledger.add_port_work("a->b", "candidate_evaluations", 9)
        labels = [label for label, _ in ledger.hot_ports("candidate_evaluations")]
        assert labels == ["a->b", "b->c", "z->a"]  # ties break lexicographically
        top1 = ledger.hot_ports("candidate_evaluations", top=1)
        assert [label for label, _ in top1] == ["a->b"]

    def test_to_dict_carries_schema_and_sorted_keys(self):
        ledger = CostLedger("network_calculus")
        ledger.add_work("flow_folds", 2)
        ledger.add_work("curve_knot_operations", 3)
        payload = ledger.to_dict()
        assert payload["cost_schema"] == COST_SCHEMA_VERSION
        assert payload["analyzer"] == "network_calculus"
        assert list(payload["work"]) == sorted(payload["work"])

    def test_snapshot_is_independent_and_cache_free(self):
        ledger = CostLedger("trajectory")
        ledger.add_work("sweeps", 2)
        ledger.add_port_work("a->b", "candidate_evaluations", 4)
        ledger.record_cache("result", 0, 1)
        copy = ledger.snapshot()
        assert copy.cache == {}  # warm runs record their own tallies
        copy.add_work("sweeps", 1)
        copy.ports["a->b"]["candidate_evaluations"] = 99
        assert ledger.work["sweeps"] == 2  # no aliasing
        assert ledger.ports["a->b"]["candidate_evaluations"] == 4

    def test_from_dict_round_trips(self):
        ledger = CostLedger("trajectory")
        ledger.add_work("sweeps", 3)
        ledger.add_port_work("a->b", "competitor_folds", 7)
        ledger.add_sweep(candidate_evaluations=5, smax_updates=1)
        ledger.record_cache("prefix", 2, 4)
        rebuilt = CostLedger.from_dict(ledger.to_dict())
        assert rebuilt.to_dict() == ledger.to_dict()

    def test_port_label(self):
        assert port_label(("SW1", "dest")) == "SW1->dest"


class TestResultDerivedLedgers:
    def test_netcalc_ledger_matches_result_structure(self, fig2):
        result = analyze_network_calculus(fig2)
        ledger = netcalc_cost_ledger(result)
        assert ledger.work["ports_analyzed"] == len(result.ports)
        assert ledger.work["paths_bound"] == len(result.paths)
        assert ledger.work["flow_folds"] == sum(
            port.n_flows for port in result.ports.values()
        )
        assert ledger.work["curve_knot_operations"] == sum(
            port.n_groups + 1 for port in result.ports.values()
        )
        assert set(ledger.ports) == {port_label(pid) for pid in result.ports}

    def test_trajectory_result_work_matches_result(self, fig2):
        result = analyze_trajectory(fig2)
        work = trajectory_result_work(result)
        assert work["sweeps"] == result.refinement_iterations
        assert work["paths_bound"] == len(result.paths)
        assert work["path_candidate_evaluations"] == sum(
            bound.n_candidates for bound in result.paths.values()
        )

    def test_stats_carry_cost_section(self, fig2):
        nc = analyze_network_calculus(fig2, collect_stats=True)
        tr = analyze_trajectory(fig2, collect_stats=True)
        for result, analyzer in ((nc, "network_calculus"), (tr, "trajectory")):
            cost = result.stats["cost"]
            assert cost["cost_schema"] == COST_SCHEMA_VERSION
            assert cost["analyzer"] == analyzer
            assert cost["work"]
        # one cost-curve entry per fixed-point sweep
        assert len(tr.stats["cost"]["sweeps"]) == tr.refinement_iterations
        assert tr.stats["cost"]["sweeps"][-1]["smax_updates"] == 0

    def test_work_summary_extracts_per_analyzer_work(self):
        stats = {
            "trajectory": {"cost": {"work": {"sweeps": 4}}},
            "skipped": None,
            "no_cost": {"counters": {}},
        }
        assert work_summary(stats) == {"trajectory": {"sweeps": 4}}


class TestDeterminism:
    def test_jobs_invariant(self, fig2):
        seq_nc = analyze_network_calculus(fig2, collect_stats=True)
        seq_tr = analyze_trajectory(fig2, collect_stats=True)
        batch = BatchAnalyzer(fig2, jobs=2, collect_stats=True)
        par_nc = batch.network_calculus()
        par_tr = batch.trajectory()
        assert _canon(seq_nc.stats["cost"]) == _canon(par_nc.stats["cost"])
        assert _canon(seq_tr.stats["cost"]) == _canon(par_tr.stats["cost"])

    def test_cold_warm_identical_with_explicit_hit(self, fig2):
        cache = BoundCache()
        cold = analyze_trajectory(
            fig2, collect_stats=True, incremental=True, cache=cache
        )
        warm = analyze_trajectory(
            fig2, collect_stats=True, incremental=True, cache=cache
        )
        assert _canon(cold.stats["cost"]) == _canon(warm.stats["cost"])
        assert cold.stats["cost"]["cache"]["result"] == {"hits": 0, "misses": 1}
        assert warm.stats["cost"]["cache"]["result"] == {"hits": 1, "misses": 0}

    def test_hashseed_invariant(self, fig2):
        script = (
            "import json\n"
            "from repro.configs import fig2_network\n"
            "from repro.netcalc.analyzer import analyze_network_calculus\n"
            "from repro.obs.costmodel import deterministic_section\n"
            "from repro.trajectory.analyzer import analyze_trajectory\n"
            "nc = analyze_network_calculus(fig2_network(), collect_stats=True)\n"
            "tr = analyze_trajectory(fig2_network(), collect_stats=True)\n"
            "print(json.dumps({\n"
            "    'nc': deterministic_section(nc.stats['cost']),\n"
            "    'tr': deterministic_section(tr.stats['cost']),\n"
            "}, sort_keys=True))\n"
        )
        outputs = []
        for seed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = str(REPO / "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
