"""Tracer spans, annotations, progress hook."""

import json

from repro.obs.trace import NULL_TRACER, ProgressHook, Tracer


def test_spans_nest_into_a_tree():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child_a"):
            pass
        with tracer.span("child_b"):
            with tracer.span("grandchild"):
                pass
    roots = tracer.spans()
    assert [span.name for span in roots] == ["root"]
    assert [child.name for child in roots[0].children] == ["child_a", "child_b"]
    assert roots[0].children[1].children[0].name == "grandchild"


def test_span_durations_are_monotonic():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer = tracer.spans()[0]
    inner = outer.children[0]
    assert outer.duration_ms >= inner.duration_ms >= 0.0
    assert inner.start_ms >= outer.start_ms


def test_span_attrs_and_annotate():
    tracer = Tracer()
    with tracer.span("phase", n_ports=7) as span:
        tracer.annotate(sweeps=3)
        span.attrs["extra"] = True
    entry = tracer.to_list()[0]
    assert entry["attrs"] == {"n_ports": 7, "sweeps": 3, "extra": True}


def test_to_list_is_json_compatible():
    tracer = Tracer()
    with tracer.span("a", label="x"):
        with tracer.span("b"):
            pass
    round_tripped = json.loads(json.dumps(tracer.to_list()))
    assert round_tripped[0]["name"] == "a"
    assert round_tripped[0]["children"][0]["name"] == "b"


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("x") as span:
        assert span is None
        tracer.annotate(ignored=1)
    assert tracer.spans() == []
    assert tracer.to_list() == []


def test_null_tracer_is_disabled():
    assert NULL_TRACER.enabled is False


def test_progress_hook_forwards_and_rate_limits():
    seen = []
    hook = ProgressHook(lambda phase, done, total: seen.append((phase, done, total)),
                        min_interval_s=3600.0)
    hook.update("phase", 0, 10)    # first update always emits
    hook.update("phase", 5, 10)    # rate-limited away
    hook.update("phase", 10, 10)   # final update always emits
    assert seen == [("phase", 0, 10), ("phase", 10, 10)]


def test_progress_hook_without_callback_is_falsy_noop():
    hook = ProgressHook(None)
    assert not hook
    hook.update("phase", 1, 2)  # must not raise


def test_progress_hook_phases_are_independent():
    seen = []
    hook = ProgressHook(lambda *event: seen.append(event), min_interval_s=3600.0)
    hook.update("a", 0, 2)
    hook.update("b", 0, 2)
    assert seen == [("a", 0, 2), ("b", 0, 2)]
