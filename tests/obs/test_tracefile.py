"""Chrome-trace export (repro.obs.tracefile).

The guarantees under test: exported documents satisfy the validator
(so Perfetto / ``chrome://tracing`` load them), merge stacks runs under
fresh pid lanes, writes are atomic, and the structural skeleton left by
:func:`strip_wall_fields` is byte-identical across reruns.
"""

import json

import pytest

from repro.netcalc.analyzer import analyze_network_calculus
from repro.obs.tracefile import (
    build_chrome_trace,
    load_chrome_trace,
    merge_chrome_trace,
    strip_wall_fields,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trajectory.analyzer import analyze_trajectory


def _analyzers(network):
    nc = analyze_network_calculus(network, collect_stats=True)
    tr = analyze_trajectory(network, collect_stats=True)
    return {"network_calculus": nc.stats, "trajectory": tr.stats}


class TestBuild:
    def test_document_is_valid_and_has_spans(self, fig2):
        doc = build_chrome_trace(_analyzers(fig2))
        validate_chrome_trace(doc)  # must not raise
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert spans
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["runs"] == ["afdx"]

    def test_each_analyzer_gets_a_named_pid_lane(self, fig2):
        doc = build_chrome_trace(_analyzers(fig2), label="test")
        names = {
            ev["args"]["name"]: ev["pid"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        # sorted analyzer order: network_calculus first, trajectory second
        assert names == {"test:network_calculus": 1, "test:trajectory": 2}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                assert ev["pid"] in (1, 2)

    def test_analyzers_without_stats_are_skipped(self):
        doc = build_chrome_trace({"trajectory": None})
        validate_chrome_trace(doc)
        assert doc["traceEvents"] == []


class TestValidate:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_event_list(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace(doc)

    def test_rejects_non_integer_pid(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": "p", "tid": 1, "ts": 0, "dur": 1}
            ]
        }
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace(doc)

    def test_rejects_negative_duration(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
            ]
        }
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(doc)


class TestMergeAndPersist:
    def test_merge_shifts_pids_and_concatenates_runs(self, fig2):
        first = build_chrome_trace(_analyzers(fig2), label="cold")
        second = build_chrome_trace(_analyzers(fig2), label="warm")
        merged = merge_chrome_trace(first, second)
        validate_chrome_trace(merged)
        pids = {ev["pid"] for ev in merged["traceEvents"]}
        assert pids == {1, 2, 3, 4}
        assert merged["otherData"]["runs"] == ["cold", "warm"]

    def test_write_load_round_trip(self, fig2, tmp_path):
        doc = build_chrome_trace(_analyzers(fig2))
        target = tmp_path / "trace.json"
        write_chrome_trace(target, doc)
        assert load_chrome_trace(target) == doc
        # atomic write leaves no temp litter behind
        assert [p.name for p in tmp_path.iterdir()] == ["trace.json"]

    def test_write_rejects_invalid_doc_without_touching_target(self, tmp_path):
        target = tmp_path / "trace.json"
        target.write_text("{\"traceEvents\": []}\n")
        with pytest.raises(ValueError):
            write_chrome_trace(target, {"traceEvents": "nope"})
        assert json.loads(target.read_text()) == {"traceEvents": []}

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "trace.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_chrome_trace(bad)


class TestStripWallFields:
    def test_drops_ts_dur_and_ms_args(self):
        doc = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "x",
                    "pid": 1,
                    "tid": 1,
                    "ts": 12.3,
                    "dur": 4.5,
                    "args": {"n_ports": 4, "elapsed_ms": 9.1},
                }
            ],
            "otherData": {"tool": "afdx"},
        }
        stripped = strip_wall_fields(doc)
        (event,) = stripped["traceEvents"]
        assert "ts" not in event and "dur" not in event
        assert event["args"] == {"n_ports": 4}

    def test_skeleton_identical_across_reruns(self, fig2):
        canon = [
            json.dumps(
                strip_wall_fields(build_chrome_trace(_analyzers(fig2))),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert canon[0] == canon[1]


class TestWarmPoolMerge:
    def test_worker_lanes_stable_across_payload_epochs(self, fig2):
        """Two runs on one borrowed warm pool merge with stable lanes.

        The pool's worker slots claim lanes 100..100+jobs-1 once; a
        payload epoch (the second run's ``set_payload``) must not shift
        them, so the merged trace shows the same worker tids in both
        runs' pid groups — the joinability contract between trace
        lanes, ``[w<lane>]`` log prefixes and fleet telemetry.
        """
        from repro.batch import BatchAnalyzer
        from repro.batch.pool import LANE_BASE, WorkerPool
        from repro.configs import fig1_network

        docs = []
        with WorkerPool(2, None) as pool:
            for run, network in enumerate((fig1_network(), fig2), 1):
                analyzer = BatchAnalyzer(
                    network, collect_stats=True, pool=pool
                )
                stats = {
                    "network_calculus": analyzer.network_calculus().stats,
                    "trajectory": analyzer.trajectory().stats,
                }
                docs.append(build_chrome_trace(stats, label=f"run{run}"))

        merged = merge_chrome_trace(docs[0], docs[1])
        validate_chrome_trace(merged)
        assert merged["otherData"]["runs"] == ["run1", "run2"]

        # group the synthetic worker lanes by the run they belong to:
        # run2's pids were shifted past run1's, tids stay untouched
        max_pid_run1 = max(
            int(ev["pid"]) for ev in docs[0]["traceEvents"]
        )
        lanes = {1: set(), 2: set()}
        for event in merged["traceEvents"]:
            if event.get("ph") == "X" and event["name"].endswith(".worker"):
                run = 1 if int(event["pid"]) <= max_pid_run1 else 2
                lanes[run].add(int(event["tid"]))
        allowed = {LANE_BASE, LANE_BASE + 1}
        assert lanes[1] and lanes[1] <= allowed
        assert lanes[2] and lanes[2] <= allowed
        assert lanes[1] == lanes[2]
