"""Network container: wiring rules, port queries, utilization."""

import pytest

from repro.errors import (
    DuplicateNameError,
    InvalidTopologyError,
    InvalidVirtualLinkError,
    UnknownNodeError,
)
from repro.network import Network, VirtualLink


@pytest.fixture
def net():
    network = Network(name="t")
    network.add_end_system("e1")
    network.add_end_system("e2")
    network.add_switch("S1")
    network.add_switch("S2")
    network.add_link("e1", "S1")
    network.add_link("S1", "S2")
    network.add_link("S2", "e2")
    return network


def vl(name="v1", paths=(("e1", "S1", "S2", "e2"),), **kw):
    fields = dict(name=name, source="e1", paths=paths, bag_ms=4, s_max_bytes=500)
    fields.update(kw)
    return VirtualLink(**fields)


class TestWiring:
    def test_duplicate_node_rejected(self, net):
        with pytest.raises(DuplicateNameError):
            net.add_switch("S1")

    def test_link_to_unknown_node(self, net):
        with pytest.raises(UnknownNodeError):
            net.add_link("e1", "S9")

    def test_self_link_rejected(self, net):
        with pytest.raises(InvalidTopologyError):
            net.add_link("S1", "S1")

    def test_parallel_link_rejected(self, net):
        with pytest.raises(InvalidTopologyError, match="already exists"):
            net.add_link("S1", "e1")

    def test_es_to_es_link_rejected(self, net):
        with pytest.raises(InvalidTopologyError, match="exactly one switch"):
            net.add_link("e1", "e2")

    def test_second_es_link_rejected(self, net):
        with pytest.raises(InvalidTopologyError, match="already has a link"):
            net.add_link("e1", "S2")

    def test_nonpositive_rate_rejected(self, net):
        net.add_end_system("e3")
        with pytest.raises(ValueError):
            net.add_link("e3", "S1", rate_bits_per_us=0.0)

    def test_has_link_symmetric(self, net):
        assert net.has_link("e1", "S1")
        assert net.has_link("S1", "e1")
        assert not net.has_link("e1", "S2")

    def test_link_rate_default(self, net):
        assert net.link_rate("S1", "S2") == 100.0

    def test_link_rate_override(self):
        network = Network()
        network.add_switch("S1")
        network.add_switch("S2")
        network.add_link("S1", "S2", rate_bits_per_us=1000.0)
        assert network.link_rate("S2", "S1") == 1000.0

    def test_neighbors(self, net):
        assert net.neighbors("S1") == {"e1", "S2"}

    def test_links_listing(self, net):
        assert len(net.links()) == 3


class TestVirtualLinks:
    def test_add_and_lookup(self, net):
        net.add_virtual_link(vl())
        assert net.vl("v1").bag_ms == 4

    def test_duplicate_vl_rejected(self, net):
        net.add_virtual_link(vl())
        with pytest.raises(DuplicateNameError):
            net.add_virtual_link(vl())

    def test_source_must_be_end_system(self, net):
        bad = VirtualLink(
            name="vx", source="S1", paths=(("S1", "S2", "e2"),), bag_ms=4, s_max_bytes=500
        )
        with pytest.raises(InvalidVirtualLinkError, match="mono-transmitter"):
            net.add_virtual_link(bad)

    def test_destination_must_be_end_system(self, net):
        with pytest.raises(InvalidVirtualLinkError, match="not an end system"):
            net.add_virtual_link(vl(paths=(("e1", "S1", "S2"),)))

    def test_intermediate_must_be_switch(self, net):
        net.add_end_system("e3")
        net.add_link("e3", "S2")
        with pytest.raises(InvalidVirtualLinkError):
            net.add_virtual_link(vl(paths=(("e1", "S1", "S2", "e2", "e3"),)))

    def test_path_must_follow_links(self, net):
        with pytest.raises(InvalidVirtualLinkError, match="non-existent link"):
            net.add_virtual_link(vl(paths=(("e1", "S2", "e2"),)))

    def test_unknown_node_in_path(self, net):
        with pytest.raises(UnknownNodeError):
            net.add_virtual_link(vl(paths=(("e1", "S1", "S9", "e2"),)))

    def test_replace_virtual_link(self, net):
        net.add_virtual_link(vl())
        net.replace_virtual_link(net.vl("v1").with_bag_ms(8))
        assert net.vl("v1").bag_ms == 8

    def test_replace_unknown_rejected(self, net):
        with pytest.raises(UnknownNodeError):
            net.replace_virtual_link(vl(name="nope"))


class TestPortQueries:
    def test_port_path(self, net):
        net.add_virtual_link(vl())
        assert net.port_path("v1") == (("e1", "S1"), ("S1", "S2"), ("S2", "e2"))

    def test_port_path_bad_index(self, net):
        net.add_virtual_link(vl())
        with pytest.raises(InvalidVirtualLinkError, match="out of range"):
            net.port_path("v1", 3)

    def test_vls_at_port(self, net):
        net.add_virtual_link(vl())
        assert net.vls_at_port(("S1", "S2")) == frozenset({"v1"})
        assert net.vls_at_port(("S2", "S1")) == frozenset()

    def test_multicast_counted_once_per_port(self, net):
        net.add_end_system("e3")
        net.add_link("e3", "S2")
        multicast = vl(paths=(("e1", "S1", "S2", "e2"), ("e1", "S1", "S2", "e3")))
        net.add_virtual_link(multicast)
        assert net.vls_at_port(("S1", "S2")) == frozenset({"v1"})
        assert len(net.flow_paths()) == 2

    def test_upstream_port(self, net):
        net.add_virtual_link(vl())
        assert net.upstream_port("v1", ("S1", "S2")) == ("e1", "S1")
        assert net.upstream_port("v1", ("e1", "S1")) is None

    def test_upstream_port_unrelated_port_raises(self, net):
        net.add_virtual_link(vl())
        with pytest.raises(InvalidVirtualLinkError):
            net.upstream_port("v1", ("S2", "S1"))

    def test_utilization(self, net):
        net.add_virtual_link(vl())  # 1 bit/us on 100 bit/us links
        assert net.port_utilization(("S1", "S2")) == pytest.approx(0.01)
        assert net.max_utilization() == pytest.approx(0.01)

    def test_max_utilization_empty(self, net):
        assert net.max_utilization() == 0.0

    def test_used_ports_sorted(self, net):
        net.add_virtual_link(vl())
        assert net.used_ports() == sorted(net.used_ports())


class TestMisc:
    def test_copy_is_independent(self, net):
        net.add_virtual_link(vl())
        dup = net.copy()
        dup.add_virtual_link(vl(name="v2"))
        assert "v2" not in net.virtual_links
        assert "v1" in dup.virtual_links

    def test_repr_counts(self, net):
        net.add_virtual_link(vl())
        assert "1 VLs / 1 paths" in repr(net)

    def test_end_systems_and_switches_sorted(self, net):
        assert [n.name for n in net.end_systems()] == ["e1", "e2"]
        assert [n.name for n in net.switches()] == ["S1", "S2"]

    def test_unknown_lookups(self, net):
        with pytest.raises(UnknownNodeError):
            net.node("zz")
        with pytest.raises(UnknownNodeError):
            net.vl("zz")
        with pytest.raises(UnknownNodeError):
            net.link_rate("e1", "e2")
