"""NetworkBuilder fluent construction."""

import pytest

from repro.errors import UnstableNetworkError
from repro.network import NetworkBuilder


def test_builds_and_routes_automatically():
    net = (
        NetworkBuilder("b")
        .switches("S1", "S2")
        .end_systems("a", "d")
        .link("a", "S1")
        .link("S1", "S2")
        .link("S2", "d")
        .virtual_link("v1", source="a", destinations=["d"], bag_ms=4, s_max_bytes=500)
        .build()
    )
    assert net.vl("v1").paths == (("a", "S1", "S2", "d"),)


def test_explicit_paths_respected():
    net = (
        NetworkBuilder("b")
        .switches("S1", "S2")
        .end_systems("a", "d")
        .link("a", "S1")
        .link("S1", "S2")
        .link("S2", "d")
        .virtual_link(
            "v1", source="a", destinations=["d"], bag_ms=4, s_max_bytes=500,
            paths=[["a", "S1", "S2", "d"]],
        )
        .build()
    )
    assert net.vl("v1").paths == (("a", "S1", "S2", "d"),)


def test_links_batch():
    net = (
        NetworkBuilder("b")
        .switches("S1", "S2")
        .end_systems("a")
        .links([("a", "S1"), ("S1", "S2")])
        .build(validate=False)
    )
    assert net.has_link("S1", "S2")


def test_builder_switch_latency_applied():
    net = (
        NetworkBuilder("b", switch_latency_us=8.0)
        .switches("S1")
        .build(validate=False)
    )
    assert net.node("S1").technological_latency_us == 8.0


def test_build_validates_by_default():
    builder = NetworkBuilder("b").switches("SW").end_systems(*(f"e{i}" for i in range(12)), "d")
    for i in range(12):
        builder.link(f"e{i}", "SW")
    builder.link("SW", "d")
    for i in range(12):
        builder.virtual_link(
            f"v{i}", source=f"e{i}", destinations=["d"], bag_ms=1, s_max_bytes=1518
        )
    with pytest.raises(UnstableNetworkError):
        builder.build()
    assert builder.build(validate=False) is not None
