"""JSON persistence round trips."""

import json

import pytest

from repro.configs import fig1_network, fig2_network
from repro.errors import ConfigurationError
from repro.network import network_from_dict, network_from_json, network_to_dict, network_to_json


def test_round_trip_fig2(tmp_path, fig2):
    path = tmp_path / "fig2.json"
    network_to_json(fig2, path)
    loaded = network_from_json(path)
    assert repr(loaded) == repr(fig2)
    assert loaded.vl("v1").bag_ms == 4
    assert loaded.vl("v1").paths == fig2.vl("v1").paths


def test_round_trip_preserves_rates_and_latencies(tmp_path, fig1):
    path = tmp_path / "fig1.json"
    network_to_json(fig1, path)
    loaded = network_from_json(path)
    assert loaded.node("S1").technological_latency_us == 16.0
    assert loaded.link_rate("S1", "S3") == 100.0
    assert loaded.default_rate == 100.0


def test_dict_round_trip_is_stable(fig2):
    once = network_to_dict(fig2)
    twice = network_to_dict(network_from_dict(once))
    assert once == twice


def test_json_is_human_oriented_units(fig2):
    data = network_to_dict(fig2)
    v1 = next(v for v in data["virtual_links"] if v["name"] == "v1")
    assert v1["bag_ms"] == 4.0
    assert v1["s_max_bytes"] == 500.0
    assert data["rate_mbps"] == 100.0


def test_unknown_node_kind_rejected():
    with pytest.raises(ConfigurationError, match="kind"):
        network_from_dict(
            {"name": "x", "nodes": [{"name": "n", "kind": "router"}], "links": []}
        )


def test_missing_field_reported():
    with pytest.raises(ConfigurationError, match="missing required field"):
        network_from_dict({"name": "x"})


def test_file_ends_with_newline(tmp_path, fig2):
    path = tmp_path / "out.json"
    network_to_json(fig2, path)
    assert path.read_text().endswith("\n")
    json.loads(path.read_text())  # valid JSON
