"""Whole-configuration validation."""

import pytest

from repro.errors import ConfigurationError, UnstableNetworkError
from repro.network import Network, NetworkBuilder, VirtualLink
from repro.network.validation import check_network, validate_network


def overload_network(bag_ms=1, s_max_bytes=1518, n=10):
    """n VLs from separate sources funnelled into one 100 Mb/s port."""
    builder = NetworkBuilder("overload").switches("SW").end_systems(
        *(f"e{i}" for i in range(n)), "d"
    )
    for i in range(n):
        builder.link(f"e{i}", "SW")
    builder.link("SW", "d")
    for i in range(n):
        builder.virtual_link(
            f"v{i}", source=f"e{i}", destinations=["d"], bag_ms=bag_ms,
            s_max_bytes=s_max_bytes,
        )
    return builder.build(validate=False)


def test_valid_network_passes(fig2):
    report = validate_network(fig2)
    assert report.ok
    assert not report.errors


def test_overloaded_port_detected():
    # 10 x 1518 B / 1 ms = ~121 bits/us > 100 bits/us
    report = validate_network(overload_network())
    assert not report.ok
    assert any("overloaded" in e for e in report.errors)


def test_check_network_raises_unstable():
    with pytest.raises(UnstableNetworkError):
        check_network(overload_network())


def test_utilization_warning_margin():
    # 8 x 1330 B / 1 ms = ~85 bits/us: feasible but above the 0.75 margin
    net = overload_network(bag_ms=1, s_max_bytes=1330, n=8)
    report = validate_network(net)
    assert report.ok
    assert any("margin" in w for w in report.warnings)


def test_unwired_end_system_warns():
    net = Network()
    net.add_end_system("lonely")
    report = validate_network(net)
    assert report.ok
    assert any("not wired" in w for w in report.warnings)


def test_multicast_rejoin_detected():
    net = Network()
    for name in ("S1", "S2", "S3"):
        net.add_switch(name)
    net.add_end_system("e1")
    net.add_end_system("e2")
    net.add_link("e1", "S1")
    net.add_link("S1", "S2")
    net.add_link("S1", "S3")
    net.add_link("S2", "e2")
    net.add_end_system("e3")
    net.add_link("S2", "S3")
    net.add_link("S3", "e3")
    # both paths reach S3... path2 goes S1->S3 direct, path1 via S2:
    # they fork at S1 and re-join at S3 -> not a tree
    rejoining = VirtualLink(
        name="vx",
        source="e1",
        paths=(("e1", "S1", "S2", "S3", "e3"), ("e1", "S1", "S3", "e3")),
        bag_ms=4,
        s_max_bytes=500,
    )
    with pytest.raises(Exception):
        # duplicate destination paths are rejected at VL level or by
        # the tree check at network level — either way it cannot pass
        net.add_virtual_link(rejoining)
        check_network(net)


def test_check_network_raises_configuration_error():
    net = Network()
    net.add_switch("S1")
    net.add_switch("S2")
    net.add_end_system("e1")
    net.add_link("e1", "S1")
    report = validate_network(net)
    assert report.ok  # warnings only
    # force an error: wire e1 twice by touching internals is not possible
    # through the API, so exercise the error branch via a rejoining VL
    net.add_link("S1", "S2")
    net.add_end_system("e2")
    net.add_end_system("e3")
    net.add_link("e2", "S2")
    net.add_link("e3", "S2")
    vl = VirtualLink(
        name="v1",
        source="e1",
        paths=(("e1", "S1", "S2", "e2"), ("e1", "S1", "S2", "e3")),
        bag_ms=4,
        s_max_bytes=100,
    )
    net.add_virtual_link(vl)
    check_network(net)  # a proper tree passes


def test_port_utilization_reported(fig2):
    report = validate_network(fig2)
    assert report.port_utilization[("S3", "e6")] == pytest.approx(0.04)
