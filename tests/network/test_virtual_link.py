"""VirtualLink contracts and derived quantities."""

import pytest

from repro.errors import InvalidVirtualLinkError
from repro.network import VirtualLink
from repro.network.virtual_link import (
    ETHERNET_MAX_FRAME_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    STANDARD_BAGS_MS,
)


def make_vl(**overrides):
    fields = dict(
        name="v1",
        source="e1",
        paths=(("e1", "S1", "e2"),),
        bag_ms=4.0,
        s_max_bytes=500.0,
        s_min_bytes=64.0,
    )
    fields.update(overrides)
    return VirtualLink(**fields)


class TestDerived:
    def test_bag_us(self):
        assert make_vl().bag_us == 4000.0

    def test_s_max_bits(self):
        assert make_vl().s_max_bits == 4000.0

    def test_rate(self):
        # 4000 bits / 4000 us = 1 bit/us
        assert make_vl().rate_bits_per_us == 1.0

    def test_c_max_at_100mbps(self):
        assert make_vl().c_max_us(100.0) == 40.0

    def test_c_min(self):
        assert make_vl().c_min_us(100.0) == pytest.approx(5.12)

    def test_destinations(self):
        vl = make_vl(paths=(("e1", "S1", "e2"), ("e1", "S1", "e3")))
        assert vl.destinations == ("e2", "e3")

    def test_multicast_flag(self):
        assert not make_vl().is_multicast
        assert make_vl(paths=(("e1", "S1", "e2"), ("e1", "S1", "e3"))).is_multicast


class TestValidation:
    def test_bag_must_be_positive(self):
        with pytest.raises(InvalidVirtualLinkError):
            make_vl(bag_ms=0)

    def test_strict_bag_accepts_standard_values(self):
        for bag in STANDARD_BAGS_MS:
            make_vl(bag_ms=bag, strict_bag=True)

    def test_strict_bag_rejects_nonstandard(self):
        with pytest.raises(InvalidVirtualLinkError, match="ARINC"):
            make_vl(bag_ms=3.0, strict_bag=True)

    def test_nonstrict_accepts_any_positive_bag(self):
        make_vl(bag_ms=3.7)

    def test_s_max_positive(self):
        with pytest.raises(InvalidVirtualLinkError):
            make_vl(s_max_bytes=0)

    def test_s_min_le_s_max(self):
        with pytest.raises(InvalidVirtualLinkError):
            make_vl(s_min_bytes=600, s_max_bytes=500)

    def test_path_must_start_at_source(self):
        with pytest.raises(InvalidVirtualLinkError, match="start at source"):
            make_vl(paths=(("e9", "S1", "e2"),))

    def test_path_may_not_repeat_nodes(self):
        with pytest.raises(InvalidVirtualLinkError, match="repeats"):
            make_vl(paths=(("e1", "S1", "e1"),))

    def test_duplicate_paths_rejected(self):
        with pytest.raises(InvalidVirtualLinkError, match="duplicate"):
            make_vl(paths=(("e1", "S1", "e2"), ("e1", "S1", "e2")))

    def test_at_least_one_path(self):
        with pytest.raises(InvalidVirtualLinkError, match="at least one path"):
            make_vl(paths=())

    def test_short_path_rejected(self):
        with pytest.raises(InvalidVirtualLinkError):
            make_vl(paths=(("e1",),))

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidVirtualLinkError):
            make_vl(name="")

    def test_ethernet_constants(self):
        assert ETHERNET_MIN_FRAME_BYTES == 64
        assert ETHERNET_MAX_FRAME_BYTES == 1518


class TestFunctionalUpdates:
    def test_with_bag(self):
        vl = make_vl().with_bag_ms(32)
        assert vl.bag_ms == 32
        assert vl.name == "v1"

    def test_with_bag_allows_nonstandard(self):
        assert make_vl(strict_bag=True).with_bag_ms(5.0).bag_ms == 5.0

    def test_with_s_max(self):
        vl = make_vl().with_s_max_bytes(1000)
        assert vl.s_max_bytes == 1000

    def test_with_s_max_clamps_s_min(self):
        vl = make_vl(s_min_bytes=500, s_max_bytes=500).with_s_max_bytes(100)
        assert vl.s_min_bytes == 100

    def test_with_paths(self):
        vl = make_vl().with_paths([("e1", "S2", "e2")])
        assert vl.paths == (("e1", "S2", "e2"),)
