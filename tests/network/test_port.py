"""OutputPort."""

import pytest

from repro.network import OutputPort


def test_port_id():
    port = OutputPort(owner="S1", target="S3", rate_bits_per_us=100.0, latency_us=16.0)
    assert port.port_id == ("S1", "S3")


def test_transmission_time():
    port = OutputPort(owner="S1", target="S3", rate_bits_per_us=100.0)
    assert port.transmission_time_us(4000) == 40.0


def test_str_is_arrow():
    port = OutputPort(owner="e1", target="S1", rate_bits_per_us=100.0)
    assert str(port) == "e1->S1"


def test_rate_must_be_positive():
    with pytest.raises(ValueError):
        OutputPort(owner="a", target="b", rate_bits_per_us=0.0)


def test_latency_must_be_nonnegative():
    with pytest.raises(ValueError):
        OutputPort(owner="a", target="b", rate_bits_per_us=1.0, latency_us=-2.0)
