"""Node dataclasses."""

import pytest

from repro.network import EndSystem, Switch
from repro.network.node import DEFAULT_SWITCH_LATENCY_US


def test_end_system_defaults():
    es = EndSystem(name="e1")
    assert es.is_end_system
    assert not es.is_switch
    assert es.technological_latency_us == 0.0


def test_switch_default_latency_is_16us():
    sw = Switch(name="S1")
    assert sw.is_switch
    assert not sw.is_end_system
    assert sw.technological_latency_us == DEFAULT_SWITCH_LATENCY_US == 16.0


def test_switch_custom_latency():
    assert Switch(name="S1", technological_latency_us=8.0).technological_latency_us == 8.0


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        EndSystem(name="")


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        Switch(name="S1", technological_latency_us=-1.0)


def test_nodes_are_frozen():
    es = EndSystem(name="e1")
    with pytest.raises(AttributeError):
        es.name = "e2"  # type: ignore[misc]


def test_equality_by_value():
    assert EndSystem(name="e1") == EndSystem(name="e1")
    assert Switch(name="S1") != Switch(name="S2")
