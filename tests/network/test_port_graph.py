"""Port precedence graph and topological ordering."""

import pytest

from repro.errors import CyclicRoutingError
from repro.network import NetworkBuilder
from repro.network.port_graph import port_successors, topological_port_order


def test_successors_fig2(fig2):
    succ = port_successors(fig2)
    assert ("S1", "S3") in succ[("e1", "S1")]
    assert succ[("S3", "e6")] == set()


def test_topological_order_respects_paths(fig2):
    order = topological_port_order(fig2)
    position = {pid: idx for idx, pid in enumerate(order)}
    for vl_name, path_index, _ in fig2.flow_paths():
        ports = fig2.port_path(vl_name, path_index)
        for earlier, later in zip(ports, ports[1:]):
            assert position[earlier] < position[later]


def test_order_covers_all_used_ports(fig1):
    assert set(topological_port_order(fig1)) == set(fig1.used_ports())


def test_order_is_deterministic(fig1):
    assert topological_port_order(fig1) == topological_port_order(fig1)


def test_cycle_detected():
    # three switches in a triangle with rotating flows: a genuine
    # port-graph cycle (S1,S2)->(S2,S3)->(S3,S1)->(S1,S2)
    builder = (
        NetworkBuilder("cyc")
        .switches("S1", "S2", "S3")
        .end_systems("a", "b", "c", "x", "y", "z")
        .link("S1", "S2")
        .link("S2", "S3")
        .link("S3", "S1")
        .link("a", "S1")
        .link("b", "S2")
        .link("c", "S3")
        .link("x", "S2")
        .link("y", "S3")
        .link("z", "S1")
    )
    builder.virtual_link(
        "v1", source="a", destinations=["y"], bag_ms=4, s_max_bytes=100,
        paths=[["a", "S1", "S2", "S3", "y"]],
    )
    builder.virtual_link(
        "v2", source="b", destinations=["z"], bag_ms=4, s_max_bytes=100,
        paths=[["b", "S2", "S3", "S1", "z"]],
    )
    builder.virtual_link(
        "v3", source="c", destinations=["x"], bag_ms=4, s_max_bytes=100,
        paths=[["c", "S3", "S1", "S2", "x"]],
    )
    net = builder.build(validate=False)
    with pytest.raises(CyclicRoutingError, match="cycle"):
        topological_port_order(net)


def test_empty_network_has_empty_order():
    net = NetworkBuilder("empty").switches("S1").build(validate=False)
    assert topological_port_order(net) == []
