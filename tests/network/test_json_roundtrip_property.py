"""Property: JSON round trips preserve any generated configuration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs import random_network
from repro.core import compare_methods
from repro.network import network_from_dict, network_to_dict


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_round_trip_preserves_structure(seed):
    network = random_network(seed, n_virtual_links=5)
    loaded = network_from_dict(network_to_dict(network))
    assert repr(loaded) == repr(network)
    assert set(loaded.virtual_links) == set(network.virtual_links)
    for name, vl in network.virtual_links.items():
        other = loaded.vl(name)
        assert other.paths == vl.paths
        assert other.bag_ms == vl.bag_ms
        assert other.s_max_bytes == vl.s_max_bytes
        assert other.s_min_bytes == vl.s_min_bytes
        assert other.priority == vl.priority
    assert loaded.links() == network.links()


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=8, deadline=None)
def test_round_trip_preserves_analysis_results(seed):
    """The acid test: identical bounds before and after serialization."""
    network = random_network(seed, n_virtual_links=5)
    loaded = network_from_dict(network_to_dict(network))
    original = compare_methods(network)
    reloaded = compare_methods(loaded)
    for key in original.paths:
        assert reloaded.paths[key].network_calculus_us == pytest.approx(
            original.paths[key].network_calculus_us
        )
        assert reloaded.paths[key].trajectory_us == pytest.approx(
            original.paths[key].trajectory_us
        )
