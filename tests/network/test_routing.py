"""Static route computation."""

import pytest

from repro.errors import InvalidTopologyError
from repro.network import NetworkBuilder
from repro.network.routing import reachable_end_systems, route_virtual_link, shortest_path


@pytest.fixture
def net():
    return (
        NetworkBuilder("r")
        .switches("S1", "S2", "S3")
        .end_systems("a", "b", "c")
        .link("a", "S1")
        .link("S1", "S2")
        .link("S2", "S3")
        .link("S1", "S3")
        .link("b", "S3")
        .link("c", "S2")
        .build(validate=False)
    )


def test_shortest_path_direct(net):
    assert shortest_path(net, "a", "b") == ("a", "S1", "S3", "b")


def test_shortest_path_same_node(net):
    assert shortest_path(net, "a", "a") == ("a",)


def test_deterministic_tie_breaking(net):
    # two equal-cost routes to c: via S2 directly; result is stable
    assert shortest_path(net, "a", "c") == shortest_path(net, "a", "c")


def test_no_transit_through_end_systems():
    # b's only route to c must not cut through end system a
    net = (
        NetworkBuilder("x")
        .switches("S1")
        .end_systems("a", "b", "c")
        .link("a", "S1")
        .link("b", "S1")
        .link("c", "S1")
        .build(validate=False)
    )
    assert shortest_path(net, "b", "c") == ("b", "S1", "c")


def test_unreachable_raises():
    net = (
        NetworkBuilder("y")
        .switches("S1", "S2")
        .end_systems("a", "b")
        .link("a", "S1")
        .link("b", "S2")
        .build(validate=False)
    )
    with pytest.raises(InvalidTopologyError, match="no route"):
        shortest_path(net, "a", "b")


def test_route_virtual_link_multicast(net):
    paths = route_virtual_link(net, "a", ["b", "c"])
    assert len(paths) == 2
    assert paths[0][0] == "a" and paths[0][-1] == "b"
    assert paths[1][-1] == "c"


def test_route_virtual_link_requires_destination(net):
    with pytest.raises(Exception):
        route_virtual_link(net, "a", [])


def test_reachable_end_systems(net):
    assert reachable_end_systems(net, "a") == ("b", "c")
