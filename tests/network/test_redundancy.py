"""Dual-network redundancy."""

import pytest

from repro.core import compare_methods
from repro.network import combine_redundant, duplicate_network
from repro.network.validation import validate_network


class TestDuplicate:
    def test_switches_renamed_end_systems_kept(self, fig2):
        twin = duplicate_network(fig2)
        assert "S1_B" in twin.nodes
        assert "S1" not in twin.nodes
        assert "e1" in twin.nodes

    def test_paths_renamed(self, fig2):
        twin = duplicate_network(fig2)
        assert twin.vl("v1").paths == (("e1", "S1_B", "S3_B", "e6"),)

    def test_contracts_preserved(self, fig2):
        twin = duplicate_network(fig2)
        for name, vl in fig2.virtual_links.items():
            other = twin.vl(name)
            assert other.bag_ms == vl.bag_ms
            assert other.s_max_bytes == vl.s_max_bytes
            assert other.priority == vl.priority

    def test_twin_validates(self, fig1):
        assert validate_network(duplicate_network(fig1)).ok

    def test_custom_suffix(self, fig2):
        twin = duplicate_network(fig2, suffix="_X")
        assert "S2_X" in twin.nodes

    def test_latencies_and_rates_copied(self, fig2):
        twin = duplicate_network(fig2)
        assert twin.node("S3_B").technological_latency_us == 16.0
        assert twin.link_rate("S1_B", "S3_B") == 100.0


class TestCombine:
    @pytest.fixture
    def merged(self, fig2):
        twin = duplicate_network(fig2)
        bounds_a = {k: p.best_us for k, p in compare_methods(fig2).paths.items()}
        bounds_b = {k: p.best_us for k, p in compare_methods(twin).paths.items()}
        return combine_redundant(fig2, twin, bounds_a, bounds_b)

    def test_identical_networks_symmetric(self, merged):
        for bound in merged.values():
            assert bound.bound_a_us == pytest.approx(bound.bound_b_us)
            assert bound.floor_a_us == pytest.approx(bound.floor_b_us)

    def test_first_copy_is_min(self, merged):
        for bound in merged.values():
            assert bound.first_copy_us == min(bound.bound_a_us, bound.bound_b_us)

    def test_any_copy_is_max(self, merged):
        for bound in merged.values():
            assert bound.any_copy_us == max(bound.bound_a_us, bound.bound_b_us)

    def test_skew_positive_and_consistent(self, merged):
        for bound in merged.values():
            assert bound.skew_us >= 0
            assert bound.skew_us >= bound.any_copy_us - bound.first_copy_us - 1e-9

    def test_mismatched_keys_rejected(self, fig2):
        twin = duplicate_network(fig2)
        with pytest.raises(ValueError, match="different VL paths"):
            combine_redundant(fig2, twin, {("v1", 0): 1.0}, {("v2", 0): 1.0})

    def test_asymmetric_networks(self, fig2):
        """A slower B-network shifts the combined figures correctly."""
        twin = duplicate_network(fig2)
        bounds_a = {k: p.best_us for k, p in compare_methods(fig2).paths.items()}
        bounds_b = {k: v + 100.0 for k, v in bounds_a.items()}  # degraded B
        merged = combine_redundant(fig2, twin, bounds_a, bounds_b)
        for key, bound in merged.items():
            assert bound.first_copy_us == pytest.approx(bounds_a[key])
            assert bound.any_copy_us == pytest.approx(bounds_b[key])
