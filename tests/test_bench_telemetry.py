"""Benchmark telemetry stamping and rotation (benchmarks/_telemetry.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "_telemetry",
    Path(__file__).resolve().parent.parent / "benchmarks" / "_telemetry.py",
)
telemetry = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(telemetry)


class TestAppendRecord:
    def test_stamps_schema_timestamp_and_git_rev(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record = telemetry.append_record(path, {"cold_s": 1.0})
        assert record["bench_schema"] == telemetry.BENCH_SCHEMA_VERSION == 3
        assert record["cold_s"] == 1.0
        assert "T" in record["timestamp"]  # ISO-8601 UTC
        assert "git_rev" in record  # short hash, or None outside a checkout
        (stored,) = json.loads(path.read_text())
        assert stored == record

    def test_stamps_jobs_default_one(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        assert telemetry.append_record(path, {"cold_s": 1.0})["jobs"] == 1
        assert telemetry.append_record(path, {"jobs": 4})["jobs"] == 4

    def test_appends_to_existing_history(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        telemetry.append_record(path, {"n": 1})
        telemetry.append_record(path, {"n": 2})
        history = json.loads(path.read_text())
        assert [r["n"] for r in history] == [1, 2]

    def test_explicit_stamps_in_record_win(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record = telemetry.append_record(path, {"timestamp": "frozen"})
        assert record["timestamp"] == "frozen"

    def test_corrupt_history_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("not json")
        telemetry.append_record(path, {"n": 1})
        history = json.loads(path.read_text())
        assert len(history) == 1


class TestRotation:
    def test_keep_bounds_history(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        for n in range(6):
            telemetry.append_record(path, {"n": n}, keep=3)
        history = json.loads(path.read_text())
        assert [r["n"] for r in history] == [3, 4, 5]  # newest survive

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AFDX_BENCH_KEEP", "2")
        path = tmp_path / "BENCH_x.json"
        for n in range(4):
            telemetry.append_record(path, {"n": n})
        assert [r["n"] for r in json.loads(path.read_text())] == [2, 3]

    def test_resolve_keep_precedence(self, monkeypatch):
        monkeypatch.delenv("AFDX_BENCH_KEEP", raising=False)
        assert telemetry.resolve_keep(None) == telemetry.DEFAULT_KEEP == 50
        assert telemetry.resolve_keep(7) == 7
        monkeypatch.setenv("AFDX_BENCH_KEEP", "12")
        assert telemetry.resolve_keep(None) == 12
        assert telemetry.resolve_keep(7) == 7  # explicit arg beats env
        assert telemetry.resolve_keep(0) == 1  # floored at one record

    def test_bad_env_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("AFDX_BENCH_KEEP", "many")
        assert telemetry.resolve_keep(None) == telemetry.DEFAULT_KEEP
