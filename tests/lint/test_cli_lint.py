"""CLI contracts of ``afdx lint``, ``--preflight`` and the exit-code
remap for cyclic routing.

Exit codes under test: 0 clean · 1 warnings with ``--strict`` ·
3 configuration errors (including cyclic routing) · 4 unstable network.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import (
    EXIT_CONFIG_ERROR,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_UNSTABLE,
    main,
)
from repro.configs import fig2_network
from repro.network.serialization import network_to_json

FIXTURES = Path(__file__).parent / "fixtures"

EXPECTED = {
    "cyclic.json": "CFG101",
    "overloaded.json": "CFG102",
    "bad_bag.json": "CFG104",
    "bad_sizes.json": "CFG105",
    "disconnected.json": "CFG106",
    "multicast_not_tree.json": "CFG108",
}


@pytest.fixture()
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    network_to_json(fig2_network(), path)
    return str(path)


class TestLintCommand:
    @pytest.mark.parametrize("name,rule_id", sorted(EXPECTED.items()))
    def test_bad_fixture_exits_3_naming_the_rule(self, capsys, name, rule_id):
        code = main(["lint", str(FIXTURES / name), "--no-utilization-table"])
        out = capsys.readouterr().out
        assert code == EXIT_CONFIG_ERROR
        assert rule_id in out
        assert "INVALID" in out

    def test_clean_config_exits_0(self, capsys, fig2_json):
        code = main(["lint", fig2_json, "--no-utilization-table"])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "OK" in out

    def test_multiple_configs_any_error_fails(self, fig2_json, capsys):
        code = main(
            ["lint", fig2_json, str(FIXTURES / "bad_bag.json"),
             "--no-utilization-table"]
        )
        out = capsys.readouterr().out
        assert code == EXIT_CONFIG_ERROR
        assert "OK" in out and "INVALID" in out

    def test_json_format_is_sorted_and_parseable(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "overloaded.json"), "--format", "json"]
        )
        out = capsys.readouterr().out
        assert code == EXIT_CONFIG_ERROR
        payload = json.loads(out)
        assert payload["summary"]["errors"] == 1
        (config,) = payload["configs"]
        assert any(f["rule"] == "CFG102" for f in config["findings"])
        # deterministic serialization: re-dumping with sorted keys is a no-op
        assert out.strip() == json.dumps(payload, indent=2, sort_keys=True)

    def test_unreadable_file_exits_3(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "missing.json")])
        assert code == EXIT_CONFIG_ERROR
        assert "ERROR" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        # util 0.1093 with a 5% warning margin: warning but no error
        document = json.loads((FIXTURES / "overloaded.json").read_text())
        document["virtual_links"] = document["virtual_links"][:1]
        config = tmp_path / "warm.json"
        config.write_text(json.dumps(document))
        relaxed = ["--max-utilization", "1.0", "--no-utilization-table"]
        assert main(["lint", str(config)] + relaxed) == EXIT_OK
        capsys.readouterr()
        code = main(["lint", str(config), "--strict"] + relaxed)
        out = capsys.readouterr().out
        assert code == EXIT_OK  # 0.12 util is below the 0.75 margin
        assert "warning" in out


class TestAnalyzeErrorSurfacing:
    def test_cyclic_config_exits_3(self, capsys):
        code = main(["analyze", str(FIXTURES / "cyclic.json")])
        err = capsys.readouterr().err
        assert code == EXIT_CONFIG_ERROR
        assert err.startswith("afdx: error:")
        assert "cycle" in err

    def test_cyclic_config_with_preflight_names_rule(self, capsys):
        code = main(["analyze", str(FIXTURES / "cyclic.json"), "--preflight"])
        err = capsys.readouterr().err
        assert code == EXIT_CONFIG_ERROR
        assert "CFG101" in err
        assert err.count("\n") == 1  # one-line diagnostic

    def test_unstable_config_exits_4(self, capsys):
        code = main(["analyze", str(FIXTURES / "overloaded.json")])
        assert code == EXIT_UNSTABLE

    def test_unstable_config_with_preflight_exits_4(self, capsys):
        code = main(
            ["analyze", str(FIXTURES / "overloaded.json"), "--preflight"]
        )
        err = capsys.readouterr().err
        assert code == EXIT_UNSTABLE
        assert "CFG102" in err

    def test_preflight_output_bit_identical_on_clean_config(
        self, capsys, fig2_json
    ):
        assert main(["analyze", fig2_json]) == EXIT_OK
        plain = capsys.readouterr().out
        assert main(["analyze", fig2_json, "--preflight"]) == EXIT_OK
        checked = capsys.readouterr().out
        assert plain == checked

    def test_whatif_preflight_rejects_cyclic(self, tmp_path, capsys):
        edits = tmp_path / "edits.json"
        edits.write_text('{"edits": []}')
        code = main(
            ["whatif", str(FIXTURES / "cyclic.json"), str(edits), "--preflight"]
        )
        err = capsys.readouterr().err
        assert code == EXIT_CONFIG_ERROR
        assert "CFG101" in err


class TestLintManifest:
    def test_manifest_carries_lint_gauges(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        code = main(
            ["lint", str(FIXTURES / "overloaded.json"),
             "--metrics-json", str(manifest_path)]
        )
        capsys.readouterr()
        assert code == EXIT_CONFIG_ERROR
        manifest = json.loads(manifest_path.read_text())
        gauges = manifest["metrics"]["gauges"]
        assert gauges["lint.configs"] == 1
        assert gauges["lint.errors"] == 1
        assert gauges["lint.warnings"] == 0

    def test_preflight_gauges_in_manifest(self, tmp_path, capsys, fig2_json):
        manifest_path = tmp_path / "manifest.json"
        code = main(
            ["analyze", fig2_json, "--preflight",
             "--metrics-json", str(manifest_path)]
        )
        capsys.readouterr()
        assert code == EXIT_OK
        gauges = json.loads(manifest_path.read_text())["metrics"]["gauges"]
        assert gauges["preflight.errors"] == 0
        assert gauges["preflight.warnings"] == 0
