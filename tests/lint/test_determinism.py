"""The linter's own determinism contract, self-cleanliness and the
seeded mutation gate.

* two runs over the same tree produce byte-identical JSON;
* the JSON is also byte-identical under different ``PYTHONHASHSEED``
  values (subprocess check — the seed cannot change in-process);
* ``python -m repro.lint src/repro`` exits 0: the codebase carries
  zero unwaived findings;
* re-introducing the historical ``Network.port_utilization`` hazard
  (builtin ``sum()`` over an unsorted frozenset) is caught with the
  expected rule ids — the linter guards the very bug class it was
  built after.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.lint import lint_paths, lint_source, render_json

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
TOPOLOGY = SRC / "repro" / "network" / "topology.py"


class TestDeterminism:
    def test_two_runs_byte_identical(self):
        first = render_json(lint_paths([str(SRC / "repro" / "lint")]))
        second = render_json(lint_paths([str(SRC / "repro" / "lint")]))
        assert first == second

    def test_json_identical_across_hash_seeds(self):
        outputs = []
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.lint", "--format", "json",
                 str(SRC / "repro" / "network")],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": seed},
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


class TestSelfClean:
    def test_src_tree_has_zero_unwaived_findings(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(SRC / "repro")],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC)},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_every_waiver_in_src_has_a_reason(self):
        result = lint_paths([str(SRC / "repro")])
        for finding in result.findings:
            if finding.waived:
                assert finding.waiver_reason, finding.render()


class TestMutationGate:
    """Seeded mutation: undo the port_utilization hardening."""

    def _mutate(self) -> str:
        source = TOPOLOGY.read_text()
        hardened = (
            "math.fsum(\n"
            "            self._vls[v].rate_bits_per_us "
            "for v in sorted(self.vls_at_port(port_id))\n"
            "        )"
        )
        assert hardened in source, "port_utilization changed; update the gate"
        return source.replace(
            hardened,
            "sum(\n"
            "            self._vls[v].rate_bits_per_us "
            "for v in self.vls_at_port(port_id)\n"
            "        )",
        )

    def test_unsorted_float_sum_is_caught(self):
        result = lint_source(self._mutate(), path=str(TOPOLOGY))
        ids = {f.rule_id for f in result.active}
        # the float hazard and the set-ordering hazard must both fire
        assert "REPRO101" in ids
        assert "REPRO103" in ids
        assert result.errors >= 2

    def test_pristine_topology_is_clean(self):
        result = lint_source(TOPOLOGY.read_text(), path=str(TOPOLOGY))
        assert result.errors == 0, [f.render() for f in result.active]
