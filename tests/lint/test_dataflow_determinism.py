"""Termination and determinism of the dataflow engine.

The engine's contract (see ``repro/lint/dataflow/domain.py``): the
fixpoints terminate on arbitrary inputs, and the findings are a pure
function of the source text — byte-identical across repeated runs,
``PYTHONHASHSEED`` values and file-walk orders.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.lint import lint_sources, render_json

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


# -- program generator ----------------------------------------------------
#
# Random straight-line/branchy programs assembled from statement
# templates that exercise every analysis feature: set construction,
# iteration, sanitizers, sinks, acquire/release, try/finally, loops.

_STMTS = [
    "v{a} = {{x for x in src{a}}}",
    "v{a} = sorted(v{b})",
    "v{a} = list(v{b})",
    "v{a} = v{b}",
    "v{a} = time.time()",
    "v{a} = random.random()",
    "v{a} = os.getenv('K{b}')",
    "acc += sum(y * 1.5 for y in v{a})",
    "out = stable_digest(v{a})",
    "ledger.add_work(v{a})",
    "seg{a} = SharedMemory(name='n{a}')",
    "seg{a}.close()",
    "for item{a} in v{b}:\n        acc += item{a}",
    "if v{a}:\n        v{b} = sorted(v{a})",
    "while flag{a}():\n        flag{b} = v{a}",
    "try:\n        v{a} = risky{a}()\n    finally:\n        note{b}()",
    "with open('f{a}') as fh{a}:\n        v{b} = fh{a}.read()",
    "return stable_digest(sorted(v{a}))",
]


@st.composite
def programs(draw) -> str:
    count = draw(st.integers(min_value=1, max_value=8))
    lines = ["import os", "import random", "import time", "", "def f(src0, src1, src2, ledger):", "    acc = 0.0"]
    for _ in range(count):
        template = draw(st.sampled_from(_STMTS))
        a = draw(st.integers(min_value=0, max_value=2))
        b = draw(st.integers(min_value=0, max_value=2))
        stmt = template.format(a=a, b=b)
        lines.append("    " + stmt)
        if stmt.startswith("return"):
            break
    lines.append("    return acc")
    return "\n".join(lines) + "\n"


class TestGeneratedPrograms:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(programs())
    def test_analysis_terminates_and_repeats_byte_identically(self, source):
        first = render_json(
            lint_sources({"gen.py": source}, engine="dataflow")
        )
        second = render_json(
            lint_sources({"gen.py": source}, engine="dataflow")
        )
        assert first == second

    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(programs(), programs())
    def test_walk_order_does_not_matter(self, src_a, src_b):
        forward = lint_sources({"a.py": src_a, "b.py": src_b}, engine="dataflow")
        # dict insertion order reversed: results must not change,
        # including interprocedural summary construction
        backward = lint_sources({"b.py": src_b, "a.py": src_a}, engine="dataflow")
        assert render_json(forward) == render_json(backward)


class TestHashSeedIndependence:
    def test_dataflow_json_identical_across_hash_seeds(self):
        outputs = []
        for seed in ("1", "31337"):
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.lint",
                    "--engine",
                    "dataflow",
                    "--format",
                    "json",
                    str(SRC / "repro" / "lint"),
                    str(SRC / "repro" / "batch"),
                ],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": seed},
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
