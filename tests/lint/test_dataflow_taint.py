"""Flow-sensitive nondeterminism taint analysis (REPRO501–REPRO504).

The engine only reports when tainted data *reaches a sink* — a float
fold, a digest/cache key, an artefact emission or a deterministic
ledger counter — and every finding carries the provenance chain.
These tests pin both halves: taint that reaches a sink fires with the
right chain, and taint that is sanitized or never sinks stays silent.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source, lint_sources


def _findings(source: str, path: str = "mod.py"):
    result = lint_source(textwrap.dedent(source), path=path, engine="dataflow")
    return [f for f in result.active]


def _ids(source: str, path: str = "mod.py"):
    return [f.rule_id for f in _findings(source, path)]


class TestSeededMutationDigest:
    """Acceptance criterion: the unsorted-set-into-digest mutation."""

    CLEAN = """
        from repro.lint_support import stable_digest

        def cache_key(flows):
            names = {f.name for f in flows}
            return stable_digest(sorted(names))
        """

    MUTATED = """
        from repro.lint_support import stable_digest

        def cache_key(flows):
            names = {f.name for f in flows}
            return stable_digest(names)
        """

    def test_clean_version_is_silent(self):
        assert _ids(self.CLEAN) == []

    def test_mutation_produces_exactly_one_finding_with_chain(self):
        found = _findings(self.MUTATED)
        assert [f.rule_id for f in found] == ["REPRO502"]
        message = found[0].message
        assert "set iteration" in message or "set-order" in message
        assert "-> sink" in message, "diagnostic must carry the taint chain"


class TestOrderTaint:
    def test_set_iteration_to_float_sum_fires_501(self):
        assert "REPRO501" in _ids(
            """
            def total(rates):
                chosen = {r for r in rates if r > 0}
                return sum(x * 1.5 for x in chosen)
            """
        )

    def test_sorted_sanitizes_order(self):
        # REPRO101 (syntactic float-sum) still applies; the point here
        # is that the *order* finding is gone once the set is sorted
        assert "REPRO501" not in _ids(
            """
            def total(rates):
                chosen = {r for r in rates if r > 0}
                return sum(x * 1.5 for x in sorted(chosen))
            """
        )

    def test_set_order_without_sink_is_silent(self):
        # REPRO103 flagged any unsorted iteration; the dataflow engine
        # waits for the order to matter.
        assert _ids(
            """
            def names(flows):
                seen = {f.name for f in flows}
                for name in seen:
                    print(name)
            """
        ) == []

    def test_dict_order_from_environ_to_json_fires_503(self):
        assert "REPRO503" in _ids(
            """
            import json
            import os

            def snapshot(path):
                env = dict(os.environ)
                path.write_text(json.dumps(env))
            """
        )


class TestValueTaint:
    def test_wall_clock_to_digest_fires_502(self):
        found = [
            f
            for f in _findings(
                """
                import time
                from repro.lint_support import stable_digest

                def stamp_key(config):
                    now = time.time()
                    return stable_digest((config, now))
                """
            )
            if f.rule_id == "REPRO502"
        ]
        assert len(found) == 1
        assert "time.time()" in found[0].message

    def test_sorted_does_not_launder_wall_clock(self):
        # sorted() erases *order* taint only — a time-derived value
        # stays tainted through it.
        assert "REPRO502" in _ids(
            """
            import time
            from repro.lint_support import stable_digest

            def stamp_key(xs):
                vals = [time.time() for _ in xs]
                return stable_digest(sorted(vals))
            """
        )

    def test_rng_to_ledger_counter_fires_504(self):
        assert "REPRO504" in _ids(
            """
            import random

            def account(ledger):
                jitter = random.random()
                ledger.add_work(jitter)
            """
        )

    def test_hash_builtin_to_digest_fires_502(self):
        assert "REPRO502" in _ids(
            """
            from repro.lint_support import stable_digest

            def key(obj):
                h = hash(obj)
                return stable_digest(h)
            """
        )


class TestInterprocedural:
    def test_taint_flows_through_helper_with_chain(self):
        found = _findings(
            """
            from repro.lint_support import stable_digest

            def total_rate(rates):
                return sum(r * 1.5 for r in rates)

            def fingerprint_config(net):
                ids = {vl.rate for vl in net.vls}
                return stable_digest(total_rate(ids))
            """
        )
        ids = [f.rule_id for f in found]
        # the helper's float fold sinks the caller's set-order taint
        assert "REPRO501" in ids
        chains = [f.message for f in found if f.rule_id == "REPRO501"]
        assert any("total_rate" in c for c in chains), chains

    def test_source_inside_helper_reaches_caller_sink(self):
        found = _findings(
            """
            import time
            from repro.lint_support import stable_digest

            def _utc_now():
                return time.time()

            def run_key(config):
                started = _utc_now()
                return stable_digest((config, started))
            """
        )
        found = [f for f in found if f.rule_id == "REPRO502"]
        assert len(found) == 1
        assert "_utc_now" in found[0].message

    def test_helper_that_sorts_is_a_sanitizer(self):
        assert _ids(
            """
            from repro.lint_support import stable_digest

            def canonical(names):
                return sorted(names)

            def key(flows):
                raw = {f.name for f in flows}
                return stable_digest(canonical(raw))
            """
        ) == []

    def test_cross_module_flow(self):
        sources = {
            "pkg/util.py": textwrap.dedent(
                """
                def total_rate(rates):
                    return sum(r * 1.5 for r in rates)
                """
            ),
            "pkg/main.py": textwrap.dedent(
                """
                from pkg.util import total_rate

                def summarize(net):
                    ids = {vl.rate for vl in net.vls}
                    return total_rate(ids)
                """
            ),
        }
        result = lint_sources(sources, engine="dataflow")
        ids = [f.rule_id for f in result.active]
        assert "REPRO501" in ids


class TestSupersededSyntacticRules:
    SRC = """
        import math

        def total(names):
            return math.fsum(weight(n) for n in set(names))
        """

    def test_syntactic_engine_keeps_repro103(self):
        result = lint_source(textwrap.dedent(self.SRC), path="m.py")
        assert "REPRO103" in [f.rule_id for f in result.active]

    def test_dataflow_engine_retires_repro103(self):
        ids = _ids(self.SRC)
        assert "REPRO103" not in ids
        # fsum is order-insensitive: no REPRO501 either — this is
        # exactly the over-approximation the dataflow engine removes
        assert "REPRO501" not in ids
