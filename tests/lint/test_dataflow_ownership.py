"""Ownership/lifetime analysis over the CFG (REPRO601 / REPRO602).

REPRO601 tracks acquire→release obligations for shared-memory segments
and worker pools along *every* CFG path, including exception edges —
replacing the syntactic REPRO401 pairing check.  REPRO602 flags
fork-captured state mutated after the fork point.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def _findings(source: str, path: str = "mod.py"):
    result = lint_source(textwrap.dedent(source), path=path, engine="dataflow")
    return [f for f in result.active]


def _ids(source: str, path: str = "mod.py"):
    return [f.rule_id for f in _findings(source, path)]


class TestSeededMutationLeak:
    """Acceptance criterion: raise inserted before the release."""

    CLEAN = """
        from multiprocessing.shared_memory import SharedMemory

        def read_block(name, check):
            seg = SharedMemory(name=name)
            try:
                if not check(seg.buf):
                    raise ValueError("bad block")
                data = bytes(seg.buf)
            finally:
                seg.close()
            return data
        """

    MUTATED = """
        from multiprocessing.shared_memory import SharedMemory

        def read_block(name, check):
            seg = SharedMemory(name=name)
            if not check(seg.buf):
                raise ValueError("bad block")
            data = bytes(seg.buf)
            seg.close()
            return data
        """

    def test_clean_version_is_silent(self):
        assert _ids(self.CLEAN) == []

    def test_mutation_produces_exactly_one_finding_with_leak_path(self):
        found = _findings(self.MUTATED)
        assert [f.rule_id for f in found] == ["REPRO601"]
        message = found[0].message
        assert "SharedMemory" in message
        assert "exception path" in message


class TestAcquireRelease:
    def test_close_and_reraise_handler_is_clean(self):
        assert _ids(
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name, build):
                seg = SharedMemory(name=name)
                try:
                    views = build(seg.buf)
                except Exception:
                    seg.close()
                    raise
                return views, seg
            """
        ) == []

    def test_with_statement_is_clean(self):
        assert _ids(
            """
            from multiprocessing.shared_memory import SharedMemory

            def peek(name, n):
                with SharedMemory(name=name) as seg:
                    return bytes(seg.buf[:n])
            """
        ) == []

    def test_normal_path_leak_fires(self):
        found = _findings(
            """
            from multiprocessing.shared_memory import SharedMemory

            def sizes(name):
                seg = SharedMemory(name=name)
                return len(seg.buf)
            """
        )
        assert [f.rule_id for f in found] == ["REPRO601"]
        assert "without close/unlink/transfer" in found[0].message

    def test_transfer_to_registry_is_a_release(self):
        # passing the handle to another function transfers ownership
        # (the registry's atexit hook owns it now)
        assert _ids(
            """
            from multiprocessing.shared_memory import SharedMemory

            def create(registry, size):
                seg = SharedMemory(create=True, size=size)
                registry.track(seg)
                return seg.name
            """
        ) == []

    def test_returning_the_handle_transfers_ownership(self):
        assert _ids(
            """
            from multiprocessing.shared_memory import SharedMemory

            def open_segment(name):
                seg = SharedMemory(name=name)
                return seg
            """
        ) == []

    def test_conditional_release_with_none_guard_is_clean(self):
        # path-sensitivity on `is None` guards: the only path where the
        # pool is unreleased is the path where it was never created
        assert _ids(
            """
            from repro.batch.pool import WorkerPool

            def run(jobs, payload):
                pool = None
                try:
                    if jobs > 1:
                        pool = WorkerPool(jobs, payload)
                        pool.map(payload.items)
                finally:
                    if pool is not None:
                        pool.shutdown()
            """
        ) == []

    def test_pool_leak_on_early_return_fires(self):
        found = _findings(
            """
            from repro.batch.pool import WorkerPool

            def run(jobs, payload):
                pool = WorkerPool(jobs, payload)
                if not payload.items:
                    return []
                out = pool.map(payload.items)
                pool.shutdown()
                return out
            """
        )
        assert "REPRO601" in [f.rule_id for f in found]

    def test_retired_syntactic_401_replaced(self):
        # the old REPRO401 flagged any SharedMemory() without a
        # lexically visible close; the dataflow engine follows the
        # actual paths instead, and never reports under the 401 id
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def mk(size):
                seg = SharedMemory(create=True, size=size)
                return seg
            """
        assert "REPRO401" not in _ids(src)

    def test_repro401_waiver_alias_covers_601(self):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def hold(name):
                seg = SharedMemory(name=name)  # repro-lint: allow[REPRO401] held for process lifetime
                return len(seg.buf)
            """
        result = lint_source(textwrap.dedent(src), path="m.py", engine="dataflow")
        assert [f.rule_id for f in result.active] == []
        assert result.waived >= 1


class TestForkSafety:
    def test_mutation_after_fork_fires_602(self):
        found = _findings(
            """
            from multiprocessing import Pool

            def run(tables, items):
                pool = Pool(4, initializer=_init, initargs=(tables,))
                try:
                    tables.append(extra())
                    return pool.map(work, items)
                finally:
                    pool.terminate()
            """
        )
        ids = [f.rule_id for f in found]
        assert "REPRO602" in ids
        msg = [f.message for f in found if f.rule_id == "REPRO602"][0]
        assert "pre-fork snapshot" in msg

    def test_mutation_before_fork_is_clean(self):
        assert _ids(
            """
            from multiprocessing import Pool

            def run(tables, items):
                tables.append(extra())
                pool = Pool(4, initializer=_init, initargs=(tables,))
                try:
                    return pool.map(work, items)
                finally:
                    pool.terminate()
            """
        ) == []

    def test_read_after_fork_is_clean(self):
        assert _ids(
            """
            from multiprocessing import Pool

            def run(tables, items):
                pool = Pool(4, initializer=_init, initargs=(tables,))
                try:
                    report(len(tables))
                    return pool.map(work, items)
                finally:
                    pool.terminate()
            """
        ) == []
