"""ConfigVerifier: rule ids per fixture, clean samples, bit-identity.

The bad-configuration fixtures under ``tests/lint/fixtures/`` each
violate exactly one documented precondition; the verifier must name
the documented CFG rule.  The shipped sample configurations and the
paper's configurations must lint clean.  Enabling the preflight on a
clean network must not change a single computed bound bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.configs import fig1_network, fig2_network, industrial_network
from repro.configs.industrial import IndustrialConfigSpec
from repro.lint.findings import Severity
from repro.network.preflight import (
    CONFIG_RULES,
    CONFIG_RULES_BY_ID,
    ConfigVerifier,
    find_port_cycle,
    verify_config_dict,
    verify_network,
)
FIXTURES = Path(__file__).parent / "fixtures"

#: fixture -> the error rule id it must trigger
EXPECTED = {
    "cyclic.json": "CFG101",
    "overloaded.json": "CFG102",
    "bad_bag.json": "CFG104",
    "bad_sizes.json": "CFG105",
    "disconnected.json": "CFG106",
    "multicast_not_tree.json": "CFG108",
}


def _verify_fixture(name: str):
    document = json.loads((FIXTURES / name).read_text())
    return ConfigVerifier(utilization_table=False).verify_dict(
        document, source=name
    )


class TestBadFixtures:
    @pytest.mark.parametrize("name,rule_id", sorted(EXPECTED.items()))
    def test_fixture_triggers_documented_rule(self, name, rule_id):
        report = _verify_fixture(name)
        assert not report.ok
        assert rule_id in {f.rule_id for f in report.errors}
        assert CONFIG_RULES_BY_ID[rule_id].severity is Severity.ERROR

    def test_cycle_message_names_the_actual_cycle(self):
        report = _verify_fixture("cyclic.json")
        (finding,) = [f for f in report.errors if f.rule_id == "CFG101"]
        # the concrete cycle, closed (first port repeated at the end)
        assert "S1->S2 -> S2->S3 -> S3->S1 -> S1->S2" in finding.message

    def test_overloaded_is_stability_only(self):
        report = _verify_fixture("overloaded.json")
        assert report.stability_only
        assert not _verify_fixture("cyclic.json").stability_only

    def test_raw_stage_catches_unbuildable_documents(self):
        # s_min > s_max is rejected by the VirtualLink constructor;
        # the raw stage must still produce a structured CFG105 finding
        report = _verify_fixture("bad_sizes.json")
        assert not report.built
        assert "CFG105" in {f.rule_id for f in report.errors}


class TestCleanConfigurations:
    @pytest.mark.parametrize(
        "build", [fig1_network, fig2_network], ids=["fig1", "fig2"]
    )
    def test_paper_configurations_lint_clean(self, build):
        report = verify_network(build(), utilization_table=False)
        assert report.ok
        assert report.warnings == []

    def test_industrial_sample_lints_clean(self):
        network = industrial_network(IndustrialConfigSpec(n_virtual_links=64))
        report = verify_network(network, utilization_table=False)
        assert report.ok

    def test_example_configs_lint_clean(self):
        examples = Path(__file__).resolve().parents[2] / "examples" / "configs"
        configs = sorted(examples.glob("*.json"))
        assert configs, "examples/configs/*.json missing"
        for config in configs:
            document = json.loads(config.read_text())
            report = verify_config_dict(document, source=config.name)
            assert report.ok, [f.render() for f in report.errors]

    def test_no_cycle_in_fig2(self):
        assert find_port_cycle(fig2_network()) is None

    def test_utilization_table_entries(self):
        report = verify_network(fig2_network())
        infos = [f for f in report.findings if f.rule_id == "CFG110"]
        assert len(infos) == len(report.port_utilization)
        assert all(f.severity is Severity.INFO for f in infos)


class TestVerifierContract:
    def test_catalogue_ids_unique_and_documented(self):
        ids = [rule.rule_id for rule in CONFIG_RULES]
        assert len(ids) == len(set(ids))
        for rule in CONFIG_RULES:
            assert rule.precondition, rule.rule_id

    def test_report_to_dict_is_json_serializable(self):
        report = _verify_fixture("overloaded.json")
        payload = json.dumps(report.to_dict(), sort_keys=True)
        assert "CFG102" in payload

    def test_strict_utilization_threshold(self):
        # fig2 peaks at 0.04: a 3% admission threshold must reject it
        report = ConfigVerifier(
            max_utilization=0.03, utilization_table=False
        ).verify_network(fig2_network())
        assert "CFG102" in {f.rule_id for f in report.errors}

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ConfigVerifier(max_utilization=1.5)


class TestPreflightBitIdentity:
    def test_bounds_unchanged_by_preflight(self):
        """The verifier reads the network; bounds stay bit-identical."""
        from repro.core.combined import analyze_network

        network = fig2_network()
        before = analyze_network(network)
        report = verify_network(network, utilization_table=True)
        assert report.ok
        after = analyze_network(fig2_network())
        for key in before.paths:
            assert (
                before.paths[key].network_calculus_us
                == after.paths[key].network_calculus_us
            )
            assert before.paths[key].trajectory_us == after.paths[key].trajectory_us

    def test_sweep_preflight_changes_no_outcome(self):
        from repro.batch import SweepSpec, batch_sweep

        plain = batch_sweep(SweepSpec(configs=3, scenarios_per_config=1))
        checked = batch_sweep(
            SweepSpec(configs=3, scenarios_per_config=1, preflight=True)
        )
        assert len(plain.records) == len(checked.records)
        for a, b in zip(plain.records, checked.records):
            assert a.config_seed == b.config_seed
            assert a.min_margin_us == b.min_margin_us
            assert a.error == b.error
