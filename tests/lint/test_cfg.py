"""Golden tests for the dataflow engine's CFG builder.

Each test pins the exact ``CFG.render()`` text for one control
construct, so any change to node splitting, edge routing or exception
modelling shows up as a readable diff instead of a silent behaviour
shift in the analyses built on top.
"""

from __future__ import annotations

import ast

from repro.lint.dataflow import build_cfg
from repro.lint.dataflow.cfg import EDGE_KINDS


def _render(source: str) -> str:
    return build_cfg(ast.parse(source).body).render()


class TestGoldenRenders:
    def test_try_except_finally(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except ValueError:\n"
            "    handle()\n"
            "finally:\n"
            "    cleanup()\n"
        )
        # the finally body is duplicated: node 10/7 on the normal path,
        # node 3/4 on the exceptional one (its own failures still
        # propagate); the dispatch node keeps an edge to the
        # exceptional finally because ValueError does not catch all.
        assert _render(src) == (
            "[0] entry: next->9\n"
            "[1] exit\n"
            "[2] raise\n"
            "[3] finally-exc@1: next->4\n"
            "[4] expr@6: except->2\n"
            "[5] except-dispatch@1: except->3, except->6\n"
            "[6] handler@3: next->10\n"
            "[7] finally@1: next->8\n"
            "[8] expr@6: next->1, except->2\n"
            "[9] expr@2: next->7, except->5\n"
            "[10] expr@4: next->7, except->3\n"
        )

    def test_catch_all_handler_removes_propagation(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    handle()\n"
        )
        # `except Exception` catches everything the analyses model, so
        # the dispatch node must NOT keep an except edge to raise/exit
        # (that phantom path caused close-and-reraise false positives).
        assert _render(src) == (
            "[0] entry: next->5\n"
            "[1] exit\n"
            "[2] raise\n"
            "[3] except-dispatch@1: except->4\n"
            "[4] handler@3: next->6\n"
            "[5] expr@2: next->1, except->3\n"
            "[6] expr@4: next->1, except->2\n"
        )

    def test_with_block(self):
        src = (
            "with open(p) as fh:\n"
            "    data = fh.read()\n"
            "done()\n"
        )
        # with-exit (normal __exit__) vs with-exit-exc (exceptional
        # unwind); the body's except edge routes through the latter.
        assert _render(src) == (
            "[0] entry: next->3\n"
            "[1] exit\n"
            "[2] raise\n"
            "[3] with@1: next->6, except->2\n"
            "[4] with-exit@1: next->7\n"
            "[5] with-exit-exc@1: except->2\n"
            "[6] assign@2: next->4, except->5\n"
            "[7] expr@3: next->1, except->2\n"
        )

    def test_comprehension_is_one_node(self):
        src = (
            "items = [f(x) for x in xs]\n"
            "total = sum(items)\n"
        )
        # comprehensions evaluate within their statement's node — the
        # taint analysis handles their binding structure expression-side.
        assert _render(src) == (
            "[0] entry: next->3\n"
            "[1] exit\n"
            "[2] raise\n"
            "[3] assign@1: next->4, except->2\n"
            "[4] assign@2: next->1, except->2\n"
        )

    def test_while_else(self):
        src = (
            "while pending():\n"
            "    step()\n"
            "else:\n"
            "    finish()\n"
            "after()\n"
        )
        # false edge enters the else suite; loop edge returns to the test.
        assert _render(src) == (
            "[0] entry: next->3\n"
            "[1] exit\n"
            "[2] raise\n"
            "[3] while@1: true->4, false->5, except->2\n"
            "[4] expr@2: loop->3, except->2\n"
            "[5] expr@4: next->6, except->2\n"
            "[6] expr@5: next->1, except->2\n"
        )


class TestStructuralInvariants:
    SOURCES = [
        "x = 1\n",
        "for i in xs:\n    if i:\n        break\n    continue\nelse:\n    done()\n",
        "try:\n    a()\nexcept KeyError:\n    b()\nexcept Exception:\n    c()\nfinally:\n    d()\n",
        "with a() as x, b() as y:\n    use(x, y)\n",
        "while True:\n    try:\n        step()\n    finally:\n        note()\n",
        "def g():\n    return 1\n",
    ]

    def test_edges_reference_real_nodes_with_known_kinds(self):
        for src in self.SOURCES:
            cfg = build_cfg(ast.parse(src).body)
            nids = {node.nid for node in cfg.nodes}
            for node in cfg.nodes:
                for dst, kind in cfg.succs(node.nid):
                    assert dst in nids
                    assert kind in EDGE_KINDS

    def test_rpo_starts_at_entry_and_is_stable(self):
        for src in self.SOURCES:
            cfg = build_cfg(ast.parse(src).body)
            order = cfg.rpo()
            assert order[0] == cfg.entry
            assert order == cfg.rpo()  # deterministic across calls

    def test_break_and_continue_route_to_loop_edges(self):
        cfg = build_cfg(
            ast.parse(
                "for i in xs:\n"
                "    if i:\n"
                "        break\n"
                "    continue\n"
                "tail()\n"
            ).body
        )
        kinds = {kind for node in cfg.nodes for _, kind in cfg.succs(node.nid)}
        assert "break" in kinds
        assert "continue" in kinds

    def test_break_through_finally_runs_cleanup_first(self):
        # a break inside try/finally must traverse the finally copy
        # before leaving the loop — the edge out of the break node goes
        # to a finally node, not straight past the loop.
        cfg = build_cfg(
            ast.parse(
                "while cond():\n"
                "    try:\n"
                "        break\n"
                "    finally:\n"
                "        note()\n"
                "after()\n"
            ).body
        )
        by_nid = {node.nid: node for node in cfg.nodes}
        break_nodes = [n for n in cfg.nodes if n.label.startswith("break@")]
        assert break_nodes
        for node in break_nodes:
            succs = list(cfg.succs(node.nid))
            assert succs, "break node must be routed somewhere"
            for dst, _ in succs:
                assert by_nid[dst].label.startswith("finally")
