"""Waiver syntax, coverage and hygiene (REPRO301 / REPRO302)."""

from __future__ import annotations

from repro.lint import lint_source
from repro.lint.waivers import parse_waivers


def _ids(result):
    return [f.rule_id for f in result.active]


SNIPPET = "def f(xs):\n    return sum(x * 1.5 for x in xs){comment}\n"


class TestWaiverSuppression:
    def test_reasoned_waiver_suppresses(self):
        src = SNIPPET.format(
            comment="  # repro-lint: allow[REPRO101] integer-weight table"
        )
        result = lint_source(src, path="s.py")
        assert _ids(result) == []
        assert result.waived == 1
        waived = [f for f in result.findings if f.waived]
        assert waived[0].waiver_reason == "integer-weight table"

    def test_waiver_on_preceding_line_covers_next(self):
        src = (
            "def f(xs):\n"
            "    # repro-lint: allow[REPRO101] integer counts\n"
            "    return sum(x * 1.5 for x in xs)\n"
        )
        result = lint_source(src, path="s.py")
        assert _ids(result) == []
        assert result.waived == 1

    def test_waiver_does_not_cover_other_rules(self):
        src = SNIPPET.format(comment="  # repro-lint: allow[REPRO103] not the hazard")
        result = lint_source(src, path="s.py")
        # REPRO101 still fires; the REPRO103 waiver is unused (REPRO302)
        assert "REPRO101" in _ids(result)
        assert "REPRO302" in _ids(result)


class TestWaiverHygiene:
    def test_waiver_without_reason_is_malformed(self):
        src = SNIPPET.format(comment="  # repro-lint: allow[REPRO101]")
        result = lint_source(src, path="s.py")
        assert "REPRO301" in _ids(result)
        # a reasonless waiver must NOT suppress the finding
        assert "REPRO101" in _ids(result)

    def test_unknown_rule_id_is_malformed(self):
        src = SNIPPET.format(comment="  # repro-lint: allow[NOPE-1] because")
        result = lint_source(src, path="s.py")
        assert "REPRO301" in _ids(result)

    def test_docstring_mention_is_not_a_waiver(self):
        src = (
            '"""Docs show the syntax: # repro-lint: allow[REPRO101] reason."""\n'
            "def f(xs):\n"
            "    return sum(x * 1.5 for x in xs)\n"
        )
        result = lint_source(src, path="s.py")
        assert "REPRO101" in _ids(result)
        assert "REPRO301" not in _ids(result)
        assert "REPRO302" not in _ids(result)

    def test_parse_waivers_extracts_fields(self):
        waivers = parse_waivers(
            "x = 1  # repro-lint: allow[REPRO101,REPRO103] two hazards here\n"
        )
        assert len(waivers) == 1
        assert waivers[0].rule_ids == ("REPRO101", "REPRO103")
        assert waivers[0].reason == "two hazards here"
        assert waivers[0].line == 1


class TestStatementSpans:
    """A waiver covers its whole (possibly multi-line) statement.

    Regression tests for the span fix: waivers used to cover only the
    comment's own line plus the next one, so a trailing waiver on a
    wrapped statement missed findings anchored at the statement's first
    line.
    """

    def test_trailing_waiver_on_wrapped_statement_covers_first_line(self):
        # the finding anchors at line 2 (`total = sum(`); the waiver
        # sits three lines later on the closing paren
        src = (
            "def f(xs):\n"
            "    total = sum(\n"
            "        x * 1.5\n"
            "        for x in xs\n"
            "    )  # repro-lint: allow[REPRO101] weights are exact halves\n"
            "    return total\n"
        )
        result = lint_source(src, path="s.py")
        assert _ids(result) == []
        assert result.waived == 1

    def test_leading_waiver_covers_whole_wrapped_statement(self):
        src = (
            "def f(xs):\n"
            "    # repro-lint: allow[REPRO101] weights are exact halves\n"
            "    return sum(\n"
            "        x * 1.5\n"
            "        for x in xs\n"
            "    )\n"
        )
        result = lint_source(src, path="s.py")
        assert _ids(result) == []
        assert result.waived == 1

    def test_waiver_does_not_bleed_past_adjacent_line(self):
        # a trailing waiver keeps the historical one-line lookahead but
        # must not blanket statements further down
        src = (
            "def f(xs, ys):\n"
            "    a = sum(\n"
            "        len(x)\n"
            "        for x in xs\n"
            "    )  # repro-lint: allow[REPRO101] integer lengths\n"
            "\n"
            "    b = sum(y * 1.5 for y in ys)\n"
            "    return a + b\n"
        )
        result = lint_source(src, path="s.py")
        fired = [f for f in result.active if f.rule_id == "REPRO101"]
        assert [f.line for f in fired] == [7]

    def test_compound_header_waiver_does_not_cover_whole_suite(self):
        # def/for/while/with spans stop at the header — a waiver there
        # never silently blankets the body (beyond the historical
        # one-line lookahead); hazards deeper in need their own waiver
        src = (
            "def f(xs):  # repro-lint: allow[REPRO101] scoped to the header\n"
            '    """Sum with exact half weights."""\n'
            "    return sum(x * 1.5 for x in xs)\n"
        )
        result = lint_source(src, path="s.py")
        assert "REPRO101" in _ids(result)
