"""Waiver syntax, coverage and hygiene (REPRO301 / REPRO302)."""

from __future__ import annotations

from repro.lint import lint_source
from repro.lint.waivers import parse_waivers


def _ids(result):
    return [f.rule_id for f in result.active]


SNIPPET = "def f(xs):\n    return sum(x * 1.5 for x in xs){comment}\n"


class TestWaiverSuppression:
    def test_reasoned_waiver_suppresses(self):
        src = SNIPPET.format(
            comment="  # repro-lint: allow[REPRO101] integer-weight table"
        )
        result = lint_source(src, path="s.py")
        assert _ids(result) == []
        assert result.waived == 1
        waived = [f for f in result.findings if f.waived]
        assert waived[0].waiver_reason == "integer-weight table"

    def test_waiver_on_preceding_line_covers_next(self):
        src = (
            "def f(xs):\n"
            "    # repro-lint: allow[REPRO101] integer counts\n"
            "    return sum(x * 1.5 for x in xs)\n"
        )
        result = lint_source(src, path="s.py")
        assert _ids(result) == []
        assert result.waived == 1

    def test_waiver_does_not_cover_other_rules(self):
        src = SNIPPET.format(comment="  # repro-lint: allow[REPRO103] not the hazard")
        result = lint_source(src, path="s.py")
        # REPRO101 still fires; the REPRO103 waiver is unused (REPRO302)
        assert "REPRO101" in _ids(result)
        assert "REPRO302" in _ids(result)


class TestWaiverHygiene:
    def test_waiver_without_reason_is_malformed(self):
        src = SNIPPET.format(comment="  # repro-lint: allow[REPRO101]")
        result = lint_source(src, path="s.py")
        assert "REPRO301" in _ids(result)
        # a reasonless waiver must NOT suppress the finding
        assert "REPRO101" in _ids(result)

    def test_unknown_rule_id_is_malformed(self):
        src = SNIPPET.format(comment="  # repro-lint: allow[NOPE-1] because")
        result = lint_source(src, path="s.py")
        assert "REPRO301" in _ids(result)

    def test_docstring_mention_is_not_a_waiver(self):
        src = (
            '"""Docs show the syntax: # repro-lint: allow[REPRO101] reason."""\n'
            "def f(xs):\n"
            "    return sum(x * 1.5 for x in xs)\n"
        )
        result = lint_source(src, path="s.py")
        assert "REPRO101" in _ids(result)
        assert "REPRO301" not in _ids(result)
        assert "REPRO302" not in _ids(result)

    def test_parse_waivers_extracts_fields(self):
        waivers = parse_waivers(
            "x = 1  # repro-lint: allow[REPRO101,REPRO103] two hazards here\n"
        )
        assert len(waivers) == 1
        assert waivers[0].rule_ids == ("REPRO101", "REPRO103")
        assert waivers[0].reason == "two hazards here"
        assert waivers[0].line == 1
