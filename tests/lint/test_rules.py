"""Unit tests of the determinism/soundness lint rules.

Each rule is checked both ways: the violating snippet fires with the
expected rule id, and the blessed idiom stays silent.
"""

from __future__ import annotations

import textwrap

from repro.lint import Severity, lint_source


def _ids(source: str, path: str = "snippet.py"):
    result = lint_source(textwrap.dedent(source), path=path)
    return [f.rule_id for f in result.active]


class TestFloatAccumulation:
    def test_builtin_sum_of_floats_fires(self):
        assert "REPRO101" in _ids(
            """
            def total(delays):
                return sum(d * 1.5 for d in delays)
            """
        )

    def test_fsum_is_clean(self):
        assert _ids(
            """
            import math

            def total(delays):
                return math.fsum(d * 1.5 for d in delays)
            """
        ) == []

    def test_integer_sum_is_clean(self):
        assert _ids(
            """
            def count(records):
                return sum(len(r) for r in records)
            """
        ) == []

    def test_augmented_float_loop_fires(self):
        assert "REPRO102" in _ids(
            """
            def total(values):
                acc = 0.0
                for v in values:
                    acc += v
                return acc
            """
        )

    def test_augmented_loop_over_terms_list_then_fsum_is_clean(self):
        assert _ids(
            """
            import math

            def total(values):
                terms = []
                for v in values:
                    terms.append(v * 2.0)
                return math.fsum(terms)
            """
        ) == []


class TestUnorderedIteration:
    def test_set_iteration_feeding_numbers_fires(self):
        assert "REPRO103" in _ids(
            """
            import math

            def total(names):
                return math.fsum(weight(n) for n in set(names))
            """
        )

    def test_sorted_set_iteration_is_clean(self):
        assert _ids(
            """
            import math

            def total(names):
                return math.fsum(weight(n) for n in sorted(set(names)))
            """
        ) == []

    def test_frozenset_annotation_is_inferred_project_wide(self):
        # vls() is annotated -> FrozenSet[str]; iterating its result
        # unsorted must be flagged even through the function call.
        assert "REPRO103" in _ids(
            """
            import math
            from typing import FrozenSet

            def vls(port) -> FrozenSet[str]:
                return frozenset()

            def demand(port):
                return math.fsum(rate(v) for v in vls(port))
            """
        )

    def test_set_annotated_parameter_fires(self):
        assert "REPRO103" in _ids(
            """
            import math

            def total(names: frozenset):
                return math.fsum(weight(n) for n in names)
            """
        )

    def test_dict_values_iteration_is_clean(self):
        # dict iteration follows insertion order (deterministic given a
        # deterministic build), unlike set iteration — not flagged.
        assert _ids(
            """
            import math

            def total(curves: dict):
                return math.fsum(c.burst for c in curves.values())
            """
        ) == []


class TestEnvironmentRules:
    def test_global_random_fires(self):
        assert "REPRO104" in _ids(
            """
            import random

            def jitter():
                return random.random()
            """
        )

    def test_seeded_rng_instance_is_clean(self):
        assert _ids(
            """
            import random

            def jitter(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        ) == []

    def test_wall_clock_fires(self):
        assert "REPRO105" in _ids(
            """
            import time

            def stamp():
                return time.time()
            """
        )

    def test_perf_counter_is_clean(self):
        assert _ids(
            """
            import time

            def elapsed(start):
                return time.perf_counter() - start
            """
        ) == []


class TestHygieneRules:
    def test_mutable_default_fires(self):
        result = lint_source(
            "def f(acc=[]):\n    return acc\n", path="snippet.py"
        )
        assert [f.rule_id for f in result.active] == ["REPRO201"]
        assert result.active[0].severity is Severity.ERROR

    def test_bare_except_is_a_warning(self):
        result = lint_source(
            "def f():\n    try:\n        pass\n    except:\n        pass\n",
            path="snippet.py",
        )
        assert [f.rule_id for f in result.active] == ["REPRO202"]
        assert result.active[0].severity is Severity.WARNING

    def test_syntax_error_is_reported_not_raised(self):
        result = lint_source("def broken(:\n", path="bad.py")
        assert result.parse_failures


class TestResourceLifecycle:
    def test_shared_memory_without_unlink_fires(self):
        assert "REPRO401" in _ids(
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(payload):
                seg = SharedMemory(create=True, size=len(payload))
                seg.buf[:] = payload
                return seg.name
            """
        )

    def test_shared_memory_with_unlink_is_clean(self):
        assert _ids(
            """
            from multiprocessing.shared_memory import SharedMemory

            def roundtrip(payload):
                seg = SharedMemory(create=True, size=len(payload))
                try:
                    seg.buf[:] = payload
                finally:
                    seg.close()
                    seg.unlink()
            """
        ) == []

    def test_shared_memory_with_helper_named_unlink_is_clean(self):
        # any module-level mention of a release call pairs the
        # acquisition — close_and_unlink() counts
        assert _ids(
            """
            from multiprocessing.shared_memory import SharedMemory

            def acquire(n):
                return SharedMemory(create=True, size=n)

            def close_and_unlink(seg):
                seg.close()
                seg.unlink()
            """
        ) == []

    def test_pool_without_teardown_fires(self):
        assert "REPRO401" in _ids(
            """
            import multiprocessing

            def fan_out(tasks):
                pool = multiprocessing.get_context("fork").Pool(4)
                return pool.map(str, tasks)
            """
        )

    def test_pool_with_terminate_is_clean(self):
        assert _ids(
            """
            import multiprocessing

            def fan_out(tasks):
                pool = multiprocessing.get_context("fork").Pool(4)
                try:
                    return pool.map(str, tasks)
                finally:
                    pool.terminate()
                    pool.join()
            """
        ) == []

    def test_severity_is_error(self):
        result = lint_source(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "seg = SharedMemory(create=True, size=8)\n",
            path="snippet.py",
        )
        assert [f.rule_id for f in result.active] == ["REPRO401"]
        assert result.active[0].severity is Severity.ERROR
