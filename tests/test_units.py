"""Unit conversions."""

import pytest

from repro import units


def test_bytes_to_bits():
    assert units.bytes_to_bits(500) == 4000


def test_bits_to_bytes_roundtrip():
    assert units.bits_to_bytes(units.bytes_to_bits(1518)) == 1518


def test_ms_to_us():
    assert units.ms_to_us(4) == 4000.0


def test_us_to_ms_roundtrip():
    assert units.us_to_ms(units.ms_to_us(128)) == 128


def test_100_mbps_is_100_bits_per_us():
    assert units.mbps_to_bits_per_us(100) == 100.0
    assert units.MBPS_100 == 100.0


def test_rate_conversion_roundtrip():
    assert units.bits_per_us_to_mbps(units.mbps_to_bits_per_us(12.5)) == 12.5


def test_transmission_time_paper_example():
    # 4000-bit frame at 100 Mb/s takes 40 us (paper Sec. II-B)
    assert units.transmission_time_us(4000, 100.0) == 40.0


def test_transmission_time_max_ethernet_frame():
    assert units.transmission_time_us(units.bytes_to_bits(1518), 100.0) == pytest.approx(121.44)


def test_transmission_time_rejects_zero_rate():
    with pytest.raises(ValueError):
        units.transmission_time_us(4000, 0.0)


def test_transmission_time_rejects_negative_rate():
    with pytest.raises(ValueError):
        units.transmission_time_us(4000, -1.0)
