"""Run-history recording by the CLI and the ``afdx obs`` queries."""

import json

import pytest

from repro.cli import main
from repro.configs import fig2_network
from repro.network import network_to_json
from repro.obs.history import RunHistory, deterministic_view


@pytest.fixture
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    network_to_json(fig2_network(), path)
    return str(path)


@pytest.fixture
def hist_dir(tmp_path):
    return str(tmp_path / "history")


def _analyze(fig2_json, hist_dir, git_rev, monkeypatch, *extra):
    monkeypatch.setenv("AFDX_GIT_REV", git_rev)
    return main(
        ["analyze", fig2_json, "--history-dir", hist_dir] + list(extra)
    )


class TestRecording:
    def test_analyze_appends_one_record(
        self, fig2_json, hist_dir, monkeypatch, capsys
    ):
        assert _analyze(fig2_json, hist_dir, "rev-a", monkeypatch) == 0
        (record,) = RunHistory(hist_dir).records()
        assert record["command"] == "analyze"
        assert record["status"] == "ok"
        assert record["git_rev"] == "rev-a"
        assert record["config"]["name"] == "fig2"
        assert len(record["config_digest"]) == 64
        assert len(record["bounds_digest"]) == 64
        assert record["work"]  # cost-ledger signature present
        assert record["execution"]["jobs"] == 1
        assert "jobs" not in record["options"]  # execution, not identity
        assert record["wall"]["total_ms"] > 0
        assert f"(run {record['run_id']} recorded" in capsys.readouterr().err

    def test_no_history_dir_records_nothing(self, fig2_json, monkeypatch, capsys):
        monkeypatch.delenv("AFDX_HISTORY_DIR", raising=False)
        assert main(["analyze", fig2_json]) == 0
        assert "recorded in history" not in capsys.readouterr().err

    def test_env_var_enables_recording(
        self, fig2_json, hist_dir, monkeypatch
    ):
        monkeypatch.setenv("AFDX_HISTORY_DIR", hist_dir)
        assert main(["analyze", fig2_json]) == 0
        assert len(RunHistory(hist_dir).records()) == 1

    def test_deterministic_view_stable_across_jobs(
        self, fig2_json, hist_dir, monkeypatch
    ):
        assert _analyze(fig2_json, hist_dir, "rev-a", monkeypatch) == 0
        assert (
            _analyze(fig2_json, hist_dir, "rev-b", monkeypatch, "--jobs", "2")
            == 0
        )
        a, b = RunHistory(hist_dir).records()
        assert a["execution"]["jobs"] == 1
        assert b["execution"]["jobs"] == 2
        assert json.dumps(deterministic_view(a), sort_keys=True) == json.dumps(
            deterministic_view(b), sort_keys=True
        )

    def test_whatif_folds_edits_into_config_digest(
        self, fig2_json, hist_dir, tmp_path, monkeypatch
    ):
        edits = tmp_path / "edits.json"
        edits.write_text(
            json.dumps(
                {"edits": [{"op": "resize", "vl": "v1", "s_max_bytes": 1000}]}
            )
        )
        monkeypatch.setenv("AFDX_GIT_REV", "rev-a")
        base = ["--history-dir", hist_dir]
        assert main(["analyze", fig2_json] + base) == 0
        assert main(["whatif", fig2_json, str(edits)] + base) == 0
        analyzed, whatif = RunHistory(hist_dir).records()
        assert whatif["command"] == "whatif"
        assert whatif["config_digest"] != analyzed["config_digest"]
        assert whatif["bounds_digest"] != analyzed["bounds_digest"]


class TestObsQueries:
    @pytest.fixture
    def recorded(self, fig2_json, hist_dir, monkeypatch):
        assert _analyze(fig2_json, hist_dir, "rev-a", monkeypatch) == 0
        assert _analyze(fig2_json, hist_dir, "rev-b", monkeypatch) == 0
        return RunHistory(hist_dir).records()

    def test_requires_a_history_dir(self, monkeypatch, capsys):
        monkeypatch.delenv("AFDX_HISTORY_DIR", raising=False)
        assert main(["obs", "list"]) == 3
        assert "no run history directory" in capsys.readouterr().err

    def test_list_shows_every_run(self, recorded, hist_dir, capsys):
        assert main(["obs", "list", "--history-dir", hist_dir]) == 0
        out = capsys.readouterr().out
        for record in recorded:
            assert record["run_id"] in out
        assert "2 of 2 record(s)" in out

    def test_list_filters(self, recorded, hist_dir, capsys):
        assert (
            main(
                [
                    "obs",
                    "list",
                    "--history-dir",
                    hist_dir,
                    "--command",
                    "whatif",
                ]
            )
            == 0
        )
        assert "0 of 0 record(s)" in capsys.readouterr().out

    def test_show_emits_the_full_record(self, recorded, hist_dir, capsys):
        run_id = recorded[0]["run_id"]
        assert (
            main(["obs", "show", run_id, "--history-dir", hist_dir]) == 0
        )
        out = capsys.readouterr().out
        assert recorded[0]["bounds_digest"] in out

    def test_show_json_round_trips(self, recorded, hist_dir, capsys):
        run_id = recorded[0]["run_id"]
        assert (
            main(
                [
                    "obs",
                    "show",
                    run_id,
                    "--history-dir",
                    hist_dir,
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        assert json.loads(capsys.readouterr().out)["run_id"] == run_id

    def test_show_unknown_run_fails(self, recorded, hist_dir, capsys):
        assert (
            main(["obs", "show", "zzzz", "--history-dir", hist_dir]) == 1
        )
        assert "no run" in capsys.readouterr().err

    def test_diff_identical_runs(self, recorded, hist_dir, capsys):
        a, b = (record["run_id"] for record in recorded)
        assert main(["obs", "diff", a, b, "--history-dir", hist_dir]) == 0
        out = capsys.readouterr().out
        assert "bounds: identical" in out
        assert "work counters identical" in out

    def test_diff_needs_exactly_two(self, recorded, hist_dir, capsys):
        assert (
            main(
                [
                    "obs",
                    "diff",
                    recorded[0]["run_id"],
                    "--history-dir",
                    hist_dir,
                ]
            )
            == 3
        )
        assert "exactly two" in capsys.readouterr().err

    def test_drift_clean_across_revs(self, recorded, hist_dir, capsys):
        assert main(["obs", "drift", "--history-dir", hist_dir]) == 0
        assert "verdict: clean" in capsys.readouterr().out

    def test_injected_bounds_change_is_fatal_drift(
        self, recorded, hist_dir, capsys
    ):
        from repro.obs.history import build_run_record

        RunHistory(hist_dir).append(
            build_run_record(
                command="analyze",
                config_digest=recorded[0]["config_digest"],
                bounds_digest="0" * 64,
                options=recorded[0]["options"],
                git_rev="rev-evil",
            )
        )
        assert main(["obs", "drift", "--history-dir", hist_dir]) == 1
        out = capsys.readouterr().out
        assert "verdict: drift" in out
        assert "DRIFT" in out

    def test_strict_promotes_more_work(self, recorded, hist_dir, capsys):
        from repro.obs.history import build_run_record

        inflated = {
            name: {counter: value + 1 for counter, value in counters.items()}
            for name, counters in recorded[0]["work"].items()
        }
        RunHistory(hist_dir).append(
            build_run_record(
                command="analyze",
                config_digest=recorded[0]["config_digest"],
                bounds_digest=recorded[0]["bounds_digest"],
                work=inflated,
                options=recorded[0]["options"],
                git_rev="rev-more",
            )
        )
        assert main(["obs", "drift", "--history-dir", hist_dir]) == 0
        capsys.readouterr()
        assert (
            main(["obs", "drift", "--strict", "--history-dir", hist_dir])
            == 1
        )
        assert "more-work" in capsys.readouterr().out

    def test_drift_json_format(self, recorded, hist_dir, capsys):
        assert (
            main(
                ["obs", "drift", "--history-dir", hist_dir, "--format", "json"]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["verdict"] == "clean"
        assert report["scanned"] == 2
