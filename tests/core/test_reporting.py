"""Certification report rendering."""

import pytest

from repro.core import certification_report, compare_methods
from repro.netcalc import analyze_network_calculus


@pytest.fixture
def report(fig2):
    nc = analyze_network_calculus(fig2)
    result = compare_methods(fig2)
    return certification_report(fig2, result, nc_result=nc, top_paths=3)


def test_header_identifies_configuration(report):
    assert "configuration 'fig2'" in report
    assert "5 VLs / 5 paths" in report


def test_all_paths_listed(report):
    for name in ("v1[0]", "v2[0]", "v3[0]", "v4[0]", "v5[0]"):
        assert name in report


def test_sections_present(report):
    assert "End-to-end delay bounds" in report
    assert "critical paths" in report
    assert "Method comparison" in report
    assert "Output-port dimensioning" in report


def test_top_paths_limited(report):
    section = report.split("Top 3 critical paths")[1].split("Method comparison")[0]
    assert section.count(" via ") == 3


def test_jitter_and_floor_columns(report):
    assert "jitter" in report
    assert "floor" in report


def test_buffer_budget_line(report):
    assert "total switch buffer budget" in report


def test_without_nc_result_omits_port_section(fig2):
    result = compare_methods(fig2)
    text = certification_report(fig2, result)
    assert "Output-port dimensioning" not in text
    assert "End-to-end delay bounds" in text


def test_deterministic(fig2):
    nc = analyze_network_calculus(fig2)
    result = compare_methods(fig2)
    a = certification_report(fig2, result, nc_result=nc)
    b = certification_report(fig2, result, nc_result=nc)
    assert a == b
