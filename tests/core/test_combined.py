"""Combined approach: per-path minimum of both bounds."""

import pytest

from repro.core import analyze_network, build_comparison
from repro.netcalc import analyze_network_calculus
from repro.trajectory import analyze_trajectory


def test_best_is_min_of_both(fig2):
    result = analyze_network(fig2)
    for path in result.paths.values():
        assert path.best_us == pytest.approx(
            min(path.network_calculus_us, path.trajectory_us)
        )


def test_best_never_worse_than_either(fig1):
    result = analyze_network(fig1)
    for path in result.paths.values():
        assert path.best_us <= path.network_calculus_us + 1e-9
        assert path.best_us <= path.trajectory_us + 1e-9


def test_benefit_signs(fig1):
    result = analyze_network(fig1)
    for path in result.paths.values():
        assert path.benefit_best_pct >= -1e-9  # the combined bound never loses
        if path.trajectory_wins:
            assert path.benefit_trajectory_pct > 0


def test_reuses_precomputed_results(fig2):
    nc = analyze_network_calculus(fig2)
    trajectory = analyze_trajectory(fig2)
    result = analyze_network(fig2, nc_result=nc, trajectory_result=trajectory)
    assert result.paths[("v1", 0)].network_calculus_us == nc.bound_us("v1")
    assert result.paths[("v1", 0)].trajectory_us == trajectory.bound_us("v1")


def test_mismatched_results_rejected(fig1, fig2):
    nc = analyze_network_calculus(fig2)
    trajectory = analyze_trajectory(fig1)
    with pytest.raises(ValueError, match="different VL paths"):
        build_comparison(nc, trajectory)


def test_flow_label(fig2):
    result = analyze_network(fig2)
    assert result.paths[("v1", 0)].flow == "v1[0]"


def test_best_accessor(fig2):
    result = analyze_network(fig2)
    assert result.best_us("v1") == result.paths[("v1", 0)].best_us


def test_path_list_ordering(fig1):
    result = analyze_network(fig1)
    listed = result.path_list()
    assert [(p.vl_name, p.path_index) for p in listed] == sorted(result.paths)
