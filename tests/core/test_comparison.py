"""Comparison statistics (Table I machinery)."""

import pytest

from repro.core import benefit_percent, compare_methods, group_mean_benefit, summarize
from repro.core.results import PathComparison


def make_path(name, nc, traj, bag=4.0):
    best = min(nc, traj)
    return PathComparison(
        vl_name=name,
        path_index=0,
        node_path=("a", "S", "d"),
        network_calculus_us=nc,
        trajectory_us=traj,
        best_us=best,
        benefit_trajectory_pct=benefit_percent(nc, traj),
        benefit_best_pct=benefit_percent(nc, best),
    )


class TestBenefitPercent:
    def test_positive_when_tighter(self):
        assert benefit_percent(200.0, 180.0) == pytest.approx(10.0)

    def test_negative_when_looser(self):
        assert benefit_percent(200.0, 220.0) == pytest.approx(-10.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            benefit_percent(0.0, 10.0)


class TestSummarize:
    def test_table1_statistics(self):
        paths = [
            make_path("a", 100.0, 90.0),   # +10%
            make_path("b", 100.0, 80.0),   # +20%
            make_path("c", 100.0, 110.0),  # -10%
        ]
        stats = summarize(paths)
        assert stats.n_paths == 3
        assert stats.mean_benefit_trajectory_pct == pytest.approx(20 / 3)
        assert stats.max_benefit_trajectory_pct == pytest.approx(20.0)
        assert stats.min_benefit_trajectory_pct == pytest.approx(-10.0)
        # the combined column: losses clamp to 0
        assert stats.min_benefit_best_pct == pytest.approx(0.0)
        assert stats.trajectory_wins_share == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_table_renders(self):
        stats = summarize([make_path("a", 100.0, 90.0)])
        text = stats.as_table()
        assert "Trajectory/WCNC" in text
        assert "Mean" in text and "Maximum" in text and "Minimum" in text


class TestGroupMeanBenefit:
    def test_grouping_by_callable(self):
        paths = [make_path("a", 100.0, 90.0), make_path("b", 100.0, 70.0)]
        groups = group_mean_benefit(
            type("R", (), {"paths": {i: p for i, p in enumerate(paths)}})(),
            key=lambda p: p.vl_name,
        )
        assert groups == {"a": pytest.approx(10.0), "b": pytest.approx(30.0)}

    def test_explicit_key_order(self):
        paths = {0: make_path("a", 100.0, 90.0)}
        holder = type("R", (), {"paths": paths})()
        assert group_mean_benefit(holder, key=lambda p: "g", keys=["g", "h"]) == {
            "g": pytest.approx(10.0)
        }


class TestCompareMethods:
    def test_stats_attached(self, fig2):
        result = compare_methods(fig2)
        assert result.stats is not None
        assert result.stats.n_paths == 5

    def test_min_best_benefit_never_negative(self, fig1):
        result = compare_methods(fig1)
        assert result.stats.min_benefit_best_pct >= 0.0
