"""End-to-end jitter bounds."""

import pytest

from repro.core import analyze_network, jitter_bounds, path_floor_us
from repro.sim import TrafficScenario, simulate


class TestPathFloor:
    def test_fig2_floor(self, fig2):
        # fig2 frames are fixed-size (s_min = s_max = 500 B):
        # 3 transmissions x 40 us + 2 switch latencies x 16 us
        assert path_floor_us(fig2, "v1") == pytest.approx(152.0)

    def test_floor_uses_min_size(self, single_switch):
        # va: s_min 64 B -> 5.12 us per hop
        assert path_floor_us(single_switch, "va") == pytest.approx(
            2 * 5.12 + 16.0
        )

    def test_floor_attained_by_unloaded_simulation(self, fig2):
        """A lone maximal frame achieves floor when s_min == s_max."""
        from repro.sim import NetworkSimulation

        sim = NetworkSimulation(fig2)
        sim.release_frame("v1", time_us=0.0)
        result = sim.run(until_us=1000.0)
        assert result.max_delay_us("v1") == pytest.approx(path_floor_us(fig2, "v1"))


class TestJitterBounds:
    def test_jitter_is_bound_minus_floor(self, fig2):
        result = analyze_network(fig2)
        jitters = jitter_bounds(fig2, result)
        for key, jb in jitters.items():
            assert jb.jitter_us == pytest.approx(
                result.paths[key].best_us - jb.floor_us
            )
            assert jb.jitter_us >= 0

    def test_observed_jitter_within_bound(self, fig2):
        result = analyze_network(fig2)
        jitters = jitter_bounds(fig2, result)
        observed = simulate(
            fig2, TrafficScenario(duration_ms=60, synchronized=False, seed=2)
        )
        for key, stats in observed.paths.items():
            assert stats.jitter_us <= jitters[key].jitter_us + 1e-6

    def test_every_path_covered(self, fig1):
        result = analyze_network(fig1)
        jitters = jitter_bounds(fig1, result)
        assert set(jitters) == set(result.paths)

    def test_inconsistent_bound_rejected(self, fig2):
        result = analyze_network(fig2)
        key = ("v1", 0)
        broken = result.paths[key].__class__(
            **{**result.paths[key].__dict__, "best_us": 1.0}
        )
        result.paths[key] = broken
        with pytest.raises(ValueError, match="floor"):
            jitter_bounds(fig2, result)
