# Developer entry points.  `make check` is the tier-1 gate (tests +
# bytecode compile); `make bench` regenerates the paper artefacts and
# appends a timing record to benchmarks/results/BENCH_obs.json.

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: check test lint lint-dataflow lint-baseline bench bench-batch \
	bench-scaling bench-incremental bench-explain bench-throughput \
	bench-gate bench-baselines profile-smoke obs-smoke kernel-gate

check:
	sh scripts/check.sh

test:
	python -m pytest -x -q

# Static analysis: the determinism/soundness code linter over src/,
# then the configuration verifier over the shipped examples.
lint:
	python -m repro.lint src/repro
	python -m repro.cli lint examples/configs/*.json --no-utilization-table

# Interprocedural dataflow lint (taint + ownership + fork-safety) over
# everything we ship, gated on the committed baseline: pre-existing
# benchmark/script findings are tolerated, new findings fail.
lint-dataflow:
	python -m repro.lint --engine dataflow --baseline lint_baseline.json \
		src/repro benchmarks scripts

# Re-record the baseline after deliberately accepting new findings.
lint-baseline:
	python -m repro.lint --engine dataflow --baseline lint_baseline.json \
		--write-baseline src/repro benchmarks scripts

bench:
	python -m pytest benchmarks/ --benchmark-only

# Sequential vs parallel batch-engine timing; appends to
# benchmarks/results/BENCH_batch.json (records cpu_count honestly).
bench-batch:
	python benchmarks/bench_batch.py

# Analyzer wall time vs configuration size; appends to
# benchmarks/results/BENCH_scaling.json.
bench-scaling:
	python benchmarks/bench_scaling.py

# Cold full analysis vs warm incremental re-analysis of one edit;
# appends to benchmarks/results/BENCH_incremental.json.
bench-incremental:
	python benchmarks/bench_incremental.py

# Plain analysis vs explain=True provenance overhead; appends to
# benchmarks/results/BENCH_explain.json.
bench-explain:
	python benchmarks/bench_explain.py

# Fleet throughput (configs/sec) over a seeded 200-config corpus:
# cold vs warm-pool vs warm-pool+cache, bit-identical bounds; appends
# to benchmarks/results/BENCH_throughput.json.
bench-throughput:
	python benchmarks/bench_throughput.py

# Compare the latest BENCH_*.json records against the committed
# baselines (advisory; `--strict` in CI to make regressions fatal).
bench-gate:
	python scripts/bench_gate.py

bench-baselines:
	python scripts/bench_gate.py --update-baselines

# Observatory smoke: `afdx profile` on fig1, valid Chrome traces, and
# a byte-identical deterministic section across runs and --jobs.
profile-smoke:
	python scripts/profile_smoke.py

# Run-history smoke: analyze into a temp history dir across simulated
# git revs and --jobs; afdx obs list/show/diff exit 0, drift verdict
# clean, injected bounds change detected.
obs-smoke:
	python scripts/obs_smoke.py

# Trajectory kernel equivalence: fast vs reference bounds bit-identical
# on every scenario, across --jobs and cold/warm incremental cache.
kernel-gate:
	python scripts/kernel_gate.py
