#!/usr/bin/env python
"""Benchmark-regression gate over ``benchmarks/results/BENCH_*.json``.

Each ``BENCH_*.json`` is an append-only list of run records (one per
``make bench-*`` invocation).  This gate flattens the *latest* record of
every file into ``key: seconds`` timing samples and compares them
against the committed ``benchmarks/baselines.json``:

* numeric leaves whose key ends in ``_s`` (seconds) or ``_ms``
  (milliseconds, converted to seconds) are timing samples; everything
  else (counts, speedups, flags) is ignored;
* nested dicts flatten with ``.`` joins; list elements are addressed by
  the first discriminator key they carry (``name``, ``id``, ``bench``,
  ``n_virtual_links``, ``configs``, ``label``) so the flat key is stable
  across re-runs, falling back to the positional index;
* a sample regresses when ``latest > baseline * (1 + tolerance)``
  (default ±30%) *and* both sides exceed the noise floor
  (``--min-seconds``, default 0.01 s) — micro-timings are all jitter;
* statuses: ``ok`` / ``faster`` / ``slower`` (regression) / ``new``
  (no baseline) / ``missing`` (baselined key absent from the latest
  record, e.g. after a bench rewrite);
* wall times from different worker counts are not comparable, so each
  file's samples carry the record's ``jobs`` stamp and timing
  comparison only happens against a same-``jobs`` baseline — a
  mismatch reports one informational ``jobs-mismatch`` row for the
  file and still compares the ``work`` counters (which are exact
  across any ``jobs`` by the bit-identity contract).

Alongside the wall times, integer leaves under a record's ``work``
section (the deterministic cost-ledger summary every bench script
embeds — candidate evaluations, flow folds, sweeps) are compared
**exactly**: they are bit-identical across machines, hash seeds and
job counts, so there is no ±30% noise floor — any difference is a real
algorithmic change.  Statuses: ``ok`` (equal) / ``more-work`` /
``less-work`` / ``new`` / ``missing``.  Only ``more-work`` is a
regression; ``less-work`` is *informational* — it means an intentional
optimization landed (the kernel gate already proved the bounds did not
move) and the baselines want a ``--update-baselines`` refresh.

The gate is advisory by default (always exits 0, prints the table) so a
noisy CI machine cannot block a merge; ``--strict`` makes ``slower``
and ``more-work`` samples fatal.  ``--update-baselines`` rewrites
``baselines.json`` from the latest records.

Usage::

    python scripts/bench_gate.py [--strict] [--tolerance 0.30]
    python scripts/bench_gate.py --update-baselines
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO / "benchmarks" / "results"
BASELINES_PATH = REPO / "benchmarks" / "baselines.json"

#: keys that identify a list element better than its position
DISCRIMINATORS = ("name", "id", "bench", "n_virtual_links", "configs", "label")

TIMING_SUFFIXES = ("_s", "_ms")

#: the record key whose integer subtree is compared exactly
WORK_SEGMENT = "work"


def _element_tag(index: int, element: object) -> str:
    if isinstance(element, dict):
        for key in DISCRIMINATORS:
            if key in element and isinstance(element[key], (str, int, float)):
                return f"[{key}={element[key]}]"
    return f"[{index}]"


def _is_timing_key(key: str) -> bool:
    return key.endswith(TIMING_SUFFIXES)


def _to_seconds(key: str, value: float) -> float:
    return value / 1000.0 if key.endswith("_ms") else float(value)


def flatten_timings(record: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(flat_key, seconds)`` for every timing leaf of ``record``."""
    if isinstance(record, dict):
        for key, value in record.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                yield from flatten_timings(value, path)
            elif (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and _is_timing_key(str(key))
            ):
                yield path, _to_seconds(str(key), value)
    elif isinstance(record, list):
        for index, element in enumerate(record):
            yield from flatten_timings(element, prefix + _element_tag(index, element))


def flatten_work(
    record: object, prefix: str = "", in_work: bool = False
) -> Iterator[Tuple[str, int]]:
    """Yield ``(flat_key, count)`` for integer leaves under ``work``.

    Only leaves inside a ``work`` section count — they are the
    deterministic cost-ledger summaries, exact across runs; integer
    leaves elsewhere (``n_paths``, ``cpu_count``) stay ignored.
    """
    if isinstance(record, dict):
        for key, value in record.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            inside = in_work or str(key) == WORK_SEGMENT
            if isinstance(value, (dict, list)):
                yield from flatten_work(value, path, inside)
            elif (
                inside
                and isinstance(value, int)
                and not isinstance(value, bool)
            ):
                yield path, int(value)
    elif isinstance(record, list):
        for index, element in enumerate(record):
            yield from flatten_work(
                element, prefix + _element_tag(index, element), in_work
            )


def _is_work_key(key: str) -> bool:
    return WORK_SEGMENT in key.split(".")


def _record_jobs(record: object) -> int:
    """The record's ``jobs`` stamp (pre-schema-3 records ran jobs=1)."""
    if isinstance(record, dict):
        jobs = record.get("jobs", 1)
        if isinstance(jobs, (int, float)) and not isinstance(jobs, bool):
            return int(jobs)
    return 1


def latest_timings(results_dir: Path) -> Dict[str, Dict[str, object]]:
    """``{file_name: {"jobs": N, "samples": {flat_key: sample}}}``
    from each file's newest record.

    Timing samples (seconds, float) and work counters (exact ints,
    keys containing a ``work`` segment) share the flat namespace; the
    key shape keeps them apart.  ``jobs`` is the record's worker-count
    stamp, the comparability guard for the timing samples.
    """
    out: Dict[str, Dict[str, object]] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench-gate: warning: cannot read {path.name}: {exc}", file=sys.stderr)
            continue
        record = doc[-1] if isinstance(doc, list) and doc else doc
        samples = dict(flatten_timings(record))
        samples.update(flatten_work(record))
        if samples:
            out[path.name] = {"jobs": _record_jobs(record), "samples": samples}
    return out


def _normalize_entry(entry: object) -> Tuple[int, Dict[str, float]]:
    """``(jobs, samples)`` from either baseline schema.

    Pre-``jobs`` baselines were flat ``{flat_key: sample}`` dicts; they
    are treated as jobs=1 so existing committed baselines keep working.
    """
    if (
        isinstance(entry, dict)
        and isinstance(entry.get("samples"), dict)
        and "jobs" in entry
    ):
        return _record_jobs(entry), dict(entry["samples"])
    return 1, dict(entry) if isinstance(entry, dict) else {}


def compare(
    latest: Dict[str, Dict[str, object]],
    baselines: Dict[str, object],
    tolerance: float,
    min_seconds: float,
) -> List[Tuple[str, str, str, float, float]]:
    """``(file, key, status, baseline_s, latest_s)`` rows, sorted."""
    rows: List[Tuple[str, str, str, float, float]] = []
    for fname in sorted(set(latest) | set(baselines)):
        now_jobs, now = _normalize_entry(latest.get(fname, {}))
        base_jobs, base = _normalize_entry(baselines.get(fname, {}))
        jobs_match = now_jobs == base_jobs
        if not jobs_match and fname in latest and fname in baselines:
            # timings at different worker counts are incomparable;
            # the work counters below still compare exactly
            rows.append(
                (fname, "(jobs)", "jobs-mismatch", float(base_jobs), float(now_jobs))
            )
        for key in sorted(set(now) | set(base)):
            if not jobs_match and not _is_work_key(key):
                continue
            if key not in base:
                rows.append((fname, key, "new", float("nan"), now[key]))
            elif key not in now:
                rows.append((fname, key, "missing", base[key], float("nan")))
            elif _is_work_key(key):
                b, n = base[key], now[key]
                # deterministic work counters: exact, no noise floor
                if n == b:
                    status = "ok"
                elif n > b:
                    status = "more-work"
                else:
                    status = "less-work"
                rows.append((fname, key, status, b, n))
            else:
                b, n = base[key], now[key]
                if b < min_seconds and n < min_seconds:
                    status = "ok"  # both below the noise floor
                elif n > b * (1.0 + tolerance):
                    status = "slower"
                elif n < b * (1.0 - tolerance):
                    status = "faster"
                else:
                    status = "ok"
                rows.append((fname, key, status, b, n))
    return rows


def _fmt(value: float) -> str:
    return "-" if value != value else f"{value:10.4f}"  # NaN check


def _fmt_work(value: float) -> str:
    return "-" if value != value else f"{int(value):>10d}"  # NaN check


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=0.30, metavar="FRAC",
        help="allowed slowdown fraction before a sample regresses (default 0.30)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.01, metavar="S",
        help="noise floor: samples where both sides are below S are always ok",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any sample is slower or does more work "
             "(default: advisory)",
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="rewrite benchmarks/baselines.json from the latest records",
    )
    parser.add_argument(
        "--results-dir", type=Path, default=RESULTS_DIR, help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--baselines", type=Path, default=BASELINES_PATH, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    latest = latest_timings(args.results_dir)
    if args.update_baselines:
        args.baselines.write_text(
            json.dumps(latest, indent=2, sort_keys=True) + "\n"
        )
        n = sum(len(v) for v in latest.values())
        print(f"bench-gate: wrote {n} baseline samples to {args.baselines}")
        return 0

    if not args.baselines.exists():
        print(
            "bench-gate: no baselines committed "
            f"({args.baselines}); run with --update-baselines first",
        )
        return 0
    baselines = json.loads(args.baselines.read_text())

    rows = compare(latest, baselines, args.tolerance, args.min_seconds)
    counts: Dict[str, int] = {}
    width = max((len(f"{f}:{k}") for f, k, *_ in rows), default=20)
    for fname, key, status, base, now in rows:
        counts[status] = counts.get(status, 0) + 1
        if status != "ok":
            ratio = (
                f" ({now / base:5.2f}x)"
                if base == base and now == now and base > 0
                else ""
            )
            if status == "jobs-mismatch":
                print(
                    f"{status:>13}  {f'{fname}':<{width}}  "
                    f"baseline jobs={int(base)}  latest jobs={int(now)} "
                    f"(timings skipped; work counters still exact)"
                )
            elif _is_work_key(key):
                print(
                    f"{status:>9}  {f'{fname}:{key}':<{width}}  "
                    f"base {_fmt_work(base)}  now {_fmt_work(now)}{ratio}"
                )
            else:
                print(
                    f"{status:>9}  {f'{fname}:{key}':<{width}}  "
                    f"base {_fmt(base)} s  now {_fmt(now)} s{ratio}"
                )
    summary = ", ".join(
        f"{counts.get(s, 0)} {s}"
        for s in (
            "ok", "faster", "slower", "more-work", "less-work",
            "new", "missing", "jobs-mismatch",
        )
    )
    print(
        f"bench-gate: {summary} "
        f"(tolerance ±{args.tolerance:.0%}; work counters exact)"
    )
    if counts.get("less-work"):
        print(
            "bench-gate: less-work is informational (intentional optimization; "
            "refresh with --update-baselines)"
        )
    if counts.get("slower") or counts.get("more-work"):
        if args.strict:
            print("bench-gate: FAIL (--strict and regressions present)")
            return 1
        print("bench-gate: advisory only; pass --strict to fail on regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
