#!/usr/bin/env python
"""Smoke test of the fleet run observatory on the paper's Figure 1.

Runs ``afdx analyze examples/configs/fig1.json`` into a temporary
``--history-dir`` several times — twice at different (simulated) git
revisions via ``AFDX_GIT_REV``, once at ``--jobs 2`` — and asserts the
observatory's core contracts:

* every run appends exactly one schema-versioned record to the
  append-only history, and ``afdx obs list`` / ``show`` / ``diff``
  exit 0 over them;
* ``afdx obs diff`` of the two revisions reports identical bounds
  digests and identical work counters;
* ``afdx obs drift`` over the whole history gives a **clean** verdict
  (same config digest, same bounds bytes, across revs and ``--jobs``);
* the records' deterministic view (everything outside the volatile
  shell: run id, timestamps, git rev, wall times, cache hits,
  execution shape) is **byte-identical** across all runs — the history
  analogue of the cost ledger's bit-identity contract;
* an injected record with a flipped bounds digest at the same config
  digest makes ``afdx obs drift`` report a drift and exit non-zero.

Exit 0 on success; raises (non-zero exit) on the first violation.

Usage::

    make obs-smoke
    python scripts/obs_smoke.py [--config PATH]
"""

import argparse
import contextlib
import io
import json
import os
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import main as afdx  # noqa: E402
from repro.obs.history import (  # noqa: E402
    HISTORY_SCHEMA_VERSION,
    RunHistory,
    build_run_record,
    deterministic_view,
)

DEFAULT_CONFIG = REPO / "examples" / "configs" / "fig1.json"


def _afdx(argv, git_rev=None):
    """Run the CLI in-process; returns (exit_code, stdout_text)."""
    previous = os.environ.get("AFDX_GIT_REV")
    if git_rev is not None:
        os.environ["AFDX_GIT_REV"] = git_rev
    buffer = io.StringIO()
    try:
        with contextlib.redirect_stdout(buffer):
            code = afdx(argv)
    finally:
        if git_rev is not None:
            if previous is None:
                os.environ.pop("AFDX_GIT_REV", None)
            else:
                os.environ["AFDX_GIT_REV"] = previous
    return code, buffer.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", type=Path, default=DEFAULT_CONFIG)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="afdx-obs-smoke-") as tmp:
        hist = ["--history-dir", tmp]

        for tag, jobs in (("rev-a", 1), ("rev-b", 1), ("rev-b", 2)):
            code, _ = _afdx(
                ["analyze", str(args.config), "--jobs", str(jobs)] + hist,
                git_rev=tag,
            )
            assert code == 0, f"afdx analyze exited {code} ({tag}, jobs={jobs})"

        history = RunHistory(tmp)
        records = history.records()
        assert len(records) == 3, f"expected 3 history records, got {len(records)}"
        assert all(
            r.get("history_schema") == HISTORY_SCHEMA_VERSION for r in records
        ), "record missing the history schema stamp"

        views = [
            json.dumps(deterministic_view(r), sort_keys=True) for r in records
        ]
        assert views[0] == views[1] == views[2], (
            "deterministic view differs across revs / --jobs"
        )

        run_a, run_b = records[0]["run_id"], records[1]["run_id"]

        code, out = _afdx(["obs", "list"] + hist)
        assert code == 0 and run_a in out, f"obs list failed (exit {code})"

        code, out = _afdx(["obs", "show", run_a] + hist)
        assert code == 0 and records[0]["bounds_digest"] in out, (
            f"obs show failed (exit {code})"
        )

        code, out = _afdx(["obs", "diff", run_a, run_b] + hist)
        assert code == 0, f"obs diff exited {code}"
        assert "bounds: identical" in out, f"obs diff saw drift:\n{out}"
        assert "work counters identical" in out, f"work drifted:\n{out}"

        code, out = _afdx(["obs", "drift", "--strict"] + hist)
        assert code == 0, f"obs drift exited {code} on a clean history:\n{out}"
        assert "verdict: clean" in out, f"unexpected drift verdict:\n{out}"

        # inject a flipped-bounds record at the same config digest: the
        # exact soundness regression the drift query exists to catch
        history.append(
            build_run_record(
                command="analyze",
                config_digest=records[0]["config_digest"],
                bounds_digest="0" * 64,
                work=records[0]["work"],
                options=records[0]["options"],
                git_rev="rev-evil",
            )
        )
        code, out = _afdx(["obs", "drift"] + hist)
        assert code != 0, "obs drift missed an injected bounds change"
        assert "verdict: drift" in out, f"expected drift verdict:\n{out}"

    print(
        f"obs-smoke OK: {args.config.name} -> 3 runs recorded; "
        f"list/show/diff clean; drift verdict clean across revs and "
        f"--jobs; injected bounds change detected"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
