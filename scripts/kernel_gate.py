"""Kernel-equivalence gate (run by ``scripts/check.sh``).

The trajectory analyzer ships two sweep implementations: the
``reference`` kernel (the straight transcription of the paper's
per-candidate walk) and the ``fast`` kernel (flat per-port competitor
tables, batched busy-period folds, shared-subpath memoization and a
proven candidate-dominance prune — see docs/PERFORMANCE.md).  The
contract is Zippo & Stea's: *faster, not looser*.  This gate enforces
it bit for bit:

1. On every scenario below, the fast kernel's per-path bounds equal
   the reference kernel's **exactly** — every float field and the
   competitor count; only ``n_candidates`` may be *smaller* (the
   dominance prune skips candidates it proves cannot win).
2. The fast kernel is self-consistent across execution shapes:
   ``--jobs 1`` vs ``--jobs 2`` and cold vs warm incremental cache all
   yield bit-identical paths and byte-identical deterministic
   :class:`CostLedger` sections.
3. Across kernels the deterministic ledger sections agree after the
   candidate-evaluation counters (the only prune-dependent numbers)
   are dropped.

Any violation prints the offending scenario and exits non-zero.

``--jobs N`` sets the parallel execution shape (default 2); with
``--warm-pool`` a single :class:`WorkerPool` is created once and
reused across every scenario (payload epochs), proving the warm-pool
fleet mode is as bit-exact as fresh pools.  Either way the gate ends
by asserting no shared-memory segment leaked.
"""

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.batch import BatchAnalyzer  # noqa: E402
from repro.batch import shm  # noqa: E402
from repro.batch.pool import WorkerPool  # noqa: E402
from repro.configs import fig1_network, fig2_network  # noqa: E402
from repro.configs.industrial import (  # noqa: E402
    IndustrialConfigSpec,
    industrial_network,
)
from repro.configs.random_topology import random_network  # noqa: E402
from repro.obs.costmodel import deterministic_section  # noqa: E402
from repro.trajectory.analyzer import TrajectoryAnalyzer  # noqa: E402

_FLOAT_FIELDS = (
    "total_us",
    "critical_instant_us",
    "busy_period_us",
    "workload_us",
    "transition_us",
    "latency_us",
    "serialization_gain_us",
)


def _scenarios():
    yield "fig1/paper", fig1_network(), "paper"
    yield "fig1/windowed", fig1_network(), "windowed"
    yield "fig1/safe", fig1_network(), "safe"
    yield "fig2/paper", fig2_network(), "paper"
    yield "fig2/windowed", fig2_network(), "windowed"
    yield "fig2/safe", fig2_network(), "safe"
    yield (
        "random-589/safe",
        random_network(589, n_switches=3, n_end_systems=6, n_virtual_links=6),
        "safe",
    )
    yield (
        "random-7/windowed",
        random_network(7, n_switches=3, n_end_systems=8, n_virtual_links=8),
        "windowed",
    )
    yield (
        "industrial-120/windowed",
        industrial_network(IndustrialConfigSpec(n_virtual_links=120)),
        "windowed",
    )


def _fail(scenario, message):
    print(f"kernel gate FAILED on {scenario}: {message}")
    sys.exit(1)


def _check_paths(scenario, label, reference, candidate):
    if set(reference.paths) != set(candidate.paths):
        _fail(scenario, f"{label}: path key sets differ")
    for key in reference.paths:
        ref, fast = reference.paths[key], candidate.paths[key]
        for field in _FLOAT_FIELDS:
            if getattr(ref, field) != getattr(fast, field):
                _fail(
                    scenario,
                    f"{label}: {key} {field} "
                    f"{getattr(ref, field)!r} != {getattr(fast, field)!r}",
                )
        if ref.n_competitors != fast.n_competitors:
            _fail(scenario, f"{label}: {key} n_competitors differ")
        if fast.n_candidates > ref.n_candidates:
            _fail(
                scenario,
                f"{label}: {key} fast evaluated more candidates "
                f"({fast.n_candidates} > {ref.n_candidates}) — the prune "
                "must only ever skip work",
            )


def _scrub_candidates(value):
    """Recursively drop every candidate-evaluation counter."""
    if isinstance(value, dict):
        return {
            key: _scrub_candidates(entry)
            for key, entry in value.items()
            if "candidate" not in key
        }
    if isinstance(value, list):
        return [_scrub_candidates(entry) for entry in value]
    return value


def _ledger_section(result):
    assert result.stats is not None, "collect_stats run lost its ledger"
    return deterministic_section(result.stats["cost"])


def main(argv=None):
    parser = argparse.ArgumentParser(description="trajectory kernel gate")
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker count for the parallel execution shape (default 2)",
    )
    parser.add_argument(
        "--warm-pool", action="store_true",
        help="reuse one WorkerPool across every scenario (payload epochs)",
    )
    args = parser.parse_args(argv)

    pool = WorkerPool(args.jobs, None) if args.warm_pool else None
    try:
        _run_scenarios(args.jobs, pool)
    finally:
        if pool is not None:
            pool.close()
    leaked = shm.active_owned()
    if leaked:
        print(f"kernel gate FAILED: leaked shared-memory segments {leaked}")
        sys.exit(1)
    shape = f"jobs={args.jobs}" + (" warm pool" if args.warm_pool else "")
    print(f"kernel gate OK ({shape}, no shm segments leaked)")


def _run_scenarios(jobs, pool):
    for scenario, network, mode in _scenarios():
        reference = TrajectoryAnalyzer(
            network, serialization=mode, kernel="reference", collect_stats=True
        ).analyze()

        fast_j1 = BatchAnalyzer(
            network, jobs=1, serialization=mode, collect_stats=True,
            trajectory_kernel="fast",
        ).trajectory()
        _check_paths(scenario, "fast jobs=1 vs reference", reference, fast_j1)

        fast_jn = BatchAnalyzer(
            network, jobs=jobs, serialization=mode, collect_stats=True,
            trajectory_kernel="fast", pool=pool,
        ).trajectory()
        _check_paths(scenario, f"fast jobs={jobs} vs reference", reference, fast_jn)

        with tempfile.TemporaryDirectory(prefix="afdx-kernel-gate-") as cache:
            cold = BatchAnalyzer(
                network, jobs=1, serialization=mode, collect_stats=True,
                trajectory_kernel="fast", incremental=True, cache_dir=cache,
            ).trajectory()
            _check_paths(scenario, "fast cold cache vs reference", reference, cold)
            warm = BatchAnalyzer(
                network, jobs=1, serialization=mode, collect_stats=True,
                trajectory_kernel="fast", incremental=True, cache_dir=cache,
            ).trajectory()
            _check_paths(scenario, "fast warm cache vs reference", reference, warm)

        # deterministic ledger sections: byte-identical across every
        # fast execution shape...
        section = _ledger_section(fast_j1)
        for label, result in (
            (f"jobs={jobs}", fast_jn),
            ("cold cache", cold),
            ("warm cache", warm),
        ):
            if _ledger_section(result) != section:
                _fail(scenario, f"fast ledger section drifted under {label}")
        # ...and equal to the reference's once the prune-dependent
        # candidate counters are dropped
        if _scrub_candidates(section) != _scrub_candidates(
            _ledger_section(reference)
        ):
            _fail(scenario, "cross-kernel ledger sections differ beyond "
                            "candidate evaluations")

        pruned = sum(
            reference.paths[key].n_candidates - fast_j1.paths[key].n_candidates
            for key in reference.paths
        )
        print(
            f"  {scenario}: {len(reference.paths)} paths bit-identical "
            f"(4 fast shapes), ledgers agree, {pruned} candidates pruned"
        )


if __name__ == "__main__":
    main()
