"""Incremental-equivalence gate (run by ``scripts/check.sh``).

Replays a seeded 30-edit admission scenario on a ``random_network``
and demands that every incremental result is *exactly* — bit for bit —
the result of a cold full analysis of the same configuration:

1. a chained :class:`~repro.incremental.delta.DeltaAnalyzer` with a
   disk-backed cache, compared against cold NC + trajectory per step;
2. the final configuration through ``BatchAnalyzer(jobs=2)`` sharing
   the (now warm) ``--cache-dir``;
3. a fresh engine on the same directory replaying the whole scenario
   warm (the interactive "reopen the tool" path).

Any mismatch prints the offending step and exits non-zero.
"""

import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.batch import BatchAnalyzer  # noqa: E402
from repro.configs.random_topology import random_network  # noqa: E402
from repro.incremental import DeltaAnalyzer  # noqa: E402
from repro.incremental.edits import (  # noqa: E402
    AddVL,
    RemoveVL,
    RerouteVL,
    ResizeVL,
    RetimeVL,
)
from repro.netcalc.analyzer import analyze_network_calculus  # noqa: E402
from repro.trajectory.analyzer import analyze_trajectory  # noqa: E402

SEED = 30  # network + edit stream; change only with the scenario
N_EDITS = 30


def _random_edit(rng, network, removed):
    """One valid, load-non-increasing edit against the current network."""
    live = sorted(network.virtual_links)
    ops = ["retime", "retime", "resize", "reroute"]  # retime dominates
    if removed:
        ops.append("add")
    if len(live) > 3:
        ops.append("remove")
    op = rng.choice(ops)
    if op == "add":
        name = rng.choice(sorted(removed))
        return AddVL(vl=removed.pop(name))
    name = rng.choice(live)
    vl = network.vl(name)
    if op == "remove":
        removed[name] = vl
        return RemoveVL(name=name)
    if op == "resize":
        return ResizeVL(name=name, s_max_bytes=max(64, vl.s_max_bytes // 2))
    if op == "reroute":
        return RerouteVL(name=name, paths=vl.paths[:1])
    return RetimeVL(name=name, bag_ms=min(vl.bag_ms * 2, 1024.0))


def _expect(step, label, incremental, cold):
    if incremental != cold:
        print(f"incremental gate FAILED at {step}: {label} diverged from cold run")
        sys.exit(1)


def _run(cache_dir):
    network = random_network(SEED, n_switches=3, n_end_systems=6, n_virtual_links=10)
    rng = random.Random(SEED)
    engine = DeltaAnalyzer(network, cache_dir=cache_dir)
    engine.analyze_base()
    removed = {}
    edits = []
    for step in range(1, N_EDITS + 1):
        edit = _random_edit(rng, engine.network, removed)
        edits.append(edit)
        delta = engine.apply([edit])
        cold_nc = analyze_network_calculus(engine.network)
        cold_tr = analyze_trajectory(engine.network)
        _expect(f"edit #{step} ({type(edit).__name__})", "NC ports",
                delta.netcalc.ports, cold_nc.ports)
        _expect(f"edit #{step} ({type(edit).__name__})", "NC paths",
                delta.netcalc.paths, cold_nc.paths)
        _expect(f"edit #{step} ({type(edit).__name__})", "trajectory paths",
                delta.trajectory.paths, cold_tr.paths)
    print(f"  {N_EDITS} incremental steps bit-identical to cold analysis")

    final = engine.network
    cold_nc = analyze_network_calculus(final)
    cold_tr = analyze_trajectory(final)

    # the pooled path through the same warm cache directory
    batch = BatchAnalyzer(final, jobs=2, incremental=True, cache_dir=cache_dir)
    _expect("batch jobs=2", "NC paths", batch.network_calculus().paths, cold_nc.paths)
    _expect("batch jobs=2", "trajectory paths", batch.trajectory().paths, cold_tr.paths)
    print("  batch --jobs 2 over the warm cache dir bit-identical")

    # a fresh engine replays the whole scenario from disk
    warm = DeltaAnalyzer(
        random_network(SEED, n_switches=3, n_end_systems=6, n_virtual_links=10),
        cache_dir=cache_dir,
    )
    warm.analyze_base()
    for step, edit in enumerate(edits, 1):
        delta = warm.apply([edit])
        if step == len(edits):
            _expect("warm replay (final)", "NC paths", delta.netcalc.paths, cold_nc.paths)
            _expect("warm replay (final)", "trajectory paths",
                    delta.trajectory.paths, cold_tr.paths)
    totals = warm.cache.stats()
    if totals["disk_hits"] == 0:
        print("incremental gate FAILED: warm replay never touched the disk cache")
        sys.exit(1)
    print(f"  warm replay bit-identical ({totals['disk_hits']} disk hits)")


def main():
    with tempfile.TemporaryDirectory(prefix="afdx-gate-") as cache_dir:
        _run(cache_dir)
    print("incremental gate OK")


if __name__ == "__main__":
    main()
