#!/bin/sh
# Tier-1 gate: the full test suite plus a bytecode compile of src/.
# Usage: scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

if [ -n "${PYTHONPATH:-}" ]; then
    PYTHONPATH="src:$PYTHONPATH"
else
    PYTHONPATH="src"
fi
export PYTHONPATH

echo "== compileall src =="
python -m compileall -q src

echo "== repro.lint (dataflow engine, zero unwaived findings in src/repro) =="
python -m repro.lint --engine dataflow src/repro

echo "== repro.lint dataflow baseline (src + benchmarks + scripts; new findings fail) =="
python -m repro.lint --engine dataflow --baseline lint_baseline.json \
    src/repro benchmarks scripts

echo "== afdx lint (config verifier over shipped examples) =="
python -m repro.cli lint examples/configs/*.json --no-utilization-table

echo "== pytest (tier-1) =="
python -m pytest -x -q

echo "== batch --jobs equivalence (jobs=1 sequential vs pooled) =="
python -m pytest -x -q \
    tests/batch/test_batch_analyzer.py::TestJobsOne \
    tests/batch/test_batch_analyzer.py::TestBitIdenticalFig2

echo "== incremental equivalence (30-edit replay vs cold, jobs=2, warm cache dir) =="
python scripts/incremental_gate.py

echo "== kernel equivalence (fast vs reference, bit-identical across jobs + cache) =="
python scripts/kernel_gate.py

echo "== fleet equivalence (one warm pool across all scenarios at --jobs 4, no shm leaks) =="
python scripts/kernel_gate.py --jobs 4 --warm-pool

echo "== profile smoke (afdx profile on fig1; traces valid; ledger byte-identical) =="
python scripts/profile_smoke.py

echo "== obs smoke (run history across revs + --jobs; obs list/show/diff; clean drift) =="
python scripts/obs_smoke.py

echo "== bench-regression gate (advisory; ±30% wall, exact work counters) =="
python scripts/bench_gate.py

echo "check OK"
