#!/usr/bin/env python
"""Smoke test of the performance observatory on the paper's Figure 1.

Runs ``afdx profile examples/configs/fig1.json`` twice (JSON report +
``--trace``) and asserts the observatory's core contracts:

* both trace files are valid Chrome-trace documents
  (:func:`repro.obs.tracefile.validate_chrome_trace` accepts them and
  they contain at least one complete-event span);
* the report's ``deterministic`` section — work counters, hot ports,
  sweep cost curve — is **byte-identical** across the two runs (the
  bit-identity contract of the cost ledger);
* a ``--jobs 2`` run reproduces the same deterministic section (the
  ledger is jobs-invariant).

Exit 0 on success; raises (non-zero exit) on the first violation.

Usage::

    make profile-smoke
    python scripts/profile_smoke.py [--config PATH]
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import main as afdx  # noqa: E402
from repro.obs.tracefile import load_chrome_trace  # noqa: E402

DEFAULT_CONFIG = REPO / "examples" / "configs" / "fig1.json"


def _profile(config: Path, out_dir: Path, tag: str, jobs: int = 1) -> dict:
    """One ``afdx profile`` run; returns the parsed JSON report."""
    report_path = out_dir / f"report_{tag}.json"
    trace_path = out_dir / f"trace_{tag}.json"
    code = afdx(
        [
            "profile",
            str(config),
            "--format",
            "json",
            "--output",
            str(report_path),
            "--jobs",
            str(jobs),
            "--trace",
            str(trace_path),
        ]
    )
    assert code == 0, f"afdx profile exited {code} ({tag})"

    doc = load_chrome_trace(trace_path)  # validates or raises
    spans = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
    assert spans, f"trace {trace_path.name} has no complete events"

    return json.loads(report_path.read_text())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", type=Path, default=DEFAULT_CONFIG)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="afdx-profile-smoke-") as tmp:
        out_dir = Path(tmp)
        first = _profile(args.config, out_dir, "run1")
        second = _profile(args.config, out_dir, "run2")
        pooled = _profile(args.config, out_dir, "jobs2", jobs=2)

    assert first.get("profile_schema") == 1, "unexpected profile schema"
    assert first["deterministic"]["hot_ports"], "no hot ports in the report"

    canon = [
        json.dumps(report["deterministic"], sort_keys=True)
        for report in (first, second, pooled)
    ]
    assert canon[0] == canon[1], (
        "deterministic section differs between two identical runs"
    )
    assert canon[0] == canon[2], (
        "deterministic section differs between --jobs 1 and --jobs 2"
    )

    n_ports = len(first["deterministic"]["hot_ports"])
    n_sweeps = len(first["deterministic"]["sweep_cost_curve"])
    print(
        f"profile-smoke OK: {args.config.name} -> {n_ports} hot port(s), "
        f"{n_sweeps} sweep(s); deterministic section byte-identical "
        f"across run1/run2/jobs=2; traces valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
