"""Soundness fuzzing at scale: the ``batch_sweep`` harness.

The ``random_network(589)`` bug was found by a single lucky property
test.  This module turns that one-off into a regression *class*: it
fans whole seeded configurations across the worker pool, runs both
analyses plus the frame-level simulator on each, and reports every path
where an observed delay exceeds a claimed worst-case bound.

A *claimed* bound here means a bound the repository asserts to be
sound: the Network Calculus bound and the ``serialization="safe"``
trajectory bound.  The historical ``paper``/``windowed`` reproduction
modes are documented-optimistic and are deliberately not fuzzed.

Each configuration is one task (embarrassingly parallel), so the
speedup is near-linear in ``jobs`` and a thousand-config sweep is a
lunch-break job instead of an overnight one.
"""

from __future__ import annotations

import time
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.batch.pool import (
    WorkerPool,
    chunked,
    resolve_jobs,
    worker_emit,
    worker_payload,
)
from repro.configs.random_topology import random_network
from repro.errors import AnalysisError, ConfigurationError, UnstableNetworkError
from repro.netcalc.analyzer import analyze_network_calculus
from repro.obs.instrument import Instrumentation
from repro.obs.logging import get_logger, kv
from repro.obs.telemetry import fleet_drain
from repro.sim.scenarios import TrafficScenario, simulate
from repro.trajectory.analyzer import analyze_trajectory

__all__ = [
    "SweepSpec",
    "SweepViolation",
    "SweepConfigRecord",
    "SweepReport",
    "batch_sweep",
]

_LOG = get_logger("batch")


@dataclass(frozen=True)
class SweepSpec:
    """What one sweep explores.

    ``configs`` seeded topologies are generated as
    ``random_network(base_seed + i, ...)``; each is simulated under
    ``scenarios_per_config`` traffic scenarios (seeds ``0..n-1``, both
    synchronized and desynchronized releases alternating) of
    ``duration_ms`` simulated milliseconds.
    """

    configs: int = 50
    base_seed: int = 0
    n_switches: int = 3
    n_end_systems: int = 6
    n_virtual_links: int = 6
    scenarios_per_config: int = 2
    duration_ms: float = 5.0
    cache_dir: Optional[str] = None  # share bound-cache entries across runs
    preflight: bool = False  # verify each config (repro.network.preflight) first


@dataclass(frozen=True)
class SweepViolation:
    """One observed delay above a claimed bound — a soundness bug."""

    config_seed: int
    path: Tuple[str, int]
    scenario_seed: int
    synchronized: bool
    observed_us: float
    bound_us: float
    method: str  # "network_calculus" | "trajectory_safe"


@dataclass
class SweepConfigRecord:
    """Outcome of one configuration's analyze-and-simulate cycle."""

    config_seed: int
    n_paths: int = 0
    n_scenarios: int = 0
    min_margin_us: float = float("inf")  # min(bound - observed) over paths
    violations: List[SweepViolation] = field(default_factory=list)
    error: Optional[str] = None  # analysis failed (config skipped)


@dataclass
class SweepReport:
    """Aggregate of a whole sweep."""

    spec: SweepSpec
    records: List[SweepConfigRecord] = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1
    stats: Optional[Dict[str, object]] = None  # obs export when collected

    @property
    def violations(self) -> List[SweepViolation]:
        return [v for record in self.records for v in record.violations]

    @property
    def n_errors(self) -> int:
        return sum(1 for record in self.records if record.error is not None)

    @property
    def paths_checked(self) -> int:
        # repro-lint: allow[REPRO101] integer path/scenario counts; exact in floats
        return sum(record.n_paths * record.n_scenarios for record in self.records)

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"batch-sweep: {len(self.records)} configs "
            f"({self.spec.n_switches} switches, {self.spec.n_end_systems} end systems, "
            f"{self.spec.n_virtual_links} VLs), "
            f"{self.paths_checked} path-scenarios checked, "
            f"{self.n_errors} configs skipped, "
            f"{len(self.violations)} bound violations "
            f"[{self.wall_s:.1f}s, jobs={self.jobs}]"
        ]
        finite = [
            record.min_margin_us
            for record in self.records
            if record.error is None and record.min_margin_us != float("inf")
        ]
        if finite:
            lines.append(
                f"tightest margin (bound - observed): {min(finite):.3f} us "
                f"on config seed "
                f"{min((record for record in self.records if record.error is None), key=lambda r: r.min_margin_us).config_seed}"
            )
        for violation in self.violations:
            lines.append(
                f"VIOLATION config={violation.config_seed} path={violation.path} "
                f"scenario={violation.scenario_seed} sync={violation.synchronized}: "
                f"observed {violation.observed_us:.3f} us > {violation.method} bound "
                f"{violation.bound_us:.3f} us"
            )
        for record in self.records:
            if record.error is not None:
                lines.append(f"skipped config={record.config_seed}: {record.error}")
        return "\n".join(lines)


_SWEEP_CACHES: Dict[str, object] = {}


def _sweep_cache(spec: SweepSpec):
    """Per-process BoundCache for a sweep, or None without ``cache_dir``.

    Workers of the same sweep share entries through the on-disk layer;
    within one process the in-memory LRU serves repeats directly.
    """
    if spec.cache_dir is None:
        return None
    cache = _SWEEP_CACHES.get(spec.cache_dir)
    if cache is None:
        from repro.incremental.cache import BoundCache

        cache = BoundCache(cache_dir=spec.cache_dir)
        _SWEEP_CACHES[spec.cache_dir] = cache
    return cache


def sweep_one_config(config_seed: int, spec: SweepSpec) -> SweepConfigRecord:
    """Analyze + simulate one seeded configuration (runs in a worker)."""
    record = SweepConfigRecord(config_seed=config_seed)
    cache = _sweep_cache(spec)
    try:
        network = random_network(
            config_seed,
            n_switches=spec.n_switches,
            n_end_systems=spec.n_end_systems,
            n_virtual_links=spec.n_virtual_links,
        )
        if spec.preflight:
            from repro.network.preflight import ConfigVerifier

            preflight = ConfigVerifier(utilization_table=False).verify_network(
                network, source=f"seed={config_seed}"
            )
            if not preflight.ok:
                first = preflight.errors[0]
                record.error = f"preflight {first.rule_id}: {first.message}"
                return record
        nc = analyze_network_calculus(network, cache=cache)
        trajectory = analyze_trajectory(network, serialization="safe", cache=cache)
    except (ConfigurationError, UnstableNetworkError, AnalysisError) as exc:
        record.error = f"{type(exc).__name__}: {exc}"
        return record
    record.n_paths = len(nc.paths)
    bounds: Dict[Tuple[str, int], List[Tuple[str, float]]] = {
        key: [
            ("network_calculus", nc.paths[key].total_us),
            ("trajectory_safe", trajectory.paths[key].total_us),
        ]
        for key in nc.paths
    }
    for scenario_seed in range(spec.scenarios_per_config):
        scenario = TrafficScenario(
            duration_ms=spec.duration_ms,
            synchronized=(scenario_seed % 2 == 0),
            seed=config_seed * 1000 + scenario_seed,
        )
        observed = simulate(network, scenario)
        record.n_scenarios += 1
        for key, stats in observed.paths.items():
            for method, bound_us in bounds[key]:
                margin = bound_us - stats.max_us
                if margin < record.min_margin_us:
                    record.min_margin_us = margin
                if margin < -1e-9:
                    record.violations.append(
                        SweepViolation(
                            config_seed=config_seed,
                            path=key,
                            scenario_seed=scenario_seed,
                            synchronized=scenario.synchronized,
                            observed_us=stats.max_us,
                            bound_us=bound_us,
                            method=method,
                        )
                    )
    return record


def _sweep_worker(task: List[int]) -> Tuple[List[SweepConfigRecord], float]:
    spec: SweepSpec = worker_payload()
    start = time.perf_counter()
    records = []
    for seed in task:
        records.append(sweep_one_config(seed, spec))
        worker_emit("config", n=1, seed=seed)
    return records, time.perf_counter() - start


def batch_sweep(
    spec: SweepSpec = SweepSpec(),
    jobs: int = 1,
    collect_stats: bool = False,
    progress=None,
    pool: Optional[WorkerPool] = None,
) -> SweepReport:
    """Fuzz ``spec.configs`` seeded configurations for soundness.

    Every configuration is analyzed (Network Calculus + safe-mode
    trajectory) and simulated; any path whose observed delay exceeds a
    claimed bound is reported as a :class:`SweepViolation`.  Configs the
    analyzers reject (unstable, invalid) are recorded as skipped, not
    fatal — the sweep is a search, not a test run.

    ``pool`` reuses an existing warm :class:`WorkerPool` (the sweep
    spec is swapped in as a payload epoch; the caller owns the pool's
    lifecycle and ``jobs`` is taken from it).
    """
    jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
    obs = Instrumentation.create(collect_stats, progress)
    seeds = [spec.base_seed + index for index in range(spec.configs)]
    report = SweepReport(spec=spec, jobs=jobs)
    started = time.perf_counter()
    busy_s = 0.0
    start_method = ""
    fleet_snapshot: Optional[Dict[str, object]] = None
    with obs.tracer.span("batch.sweep", jobs=jobs, configs=len(seeds)):
        if jobs == 1:
            for index, seed in enumerate(seeds):
                if obs.progress:
                    obs.progress.update("batch.sweep", index, len(seeds))
                report.records.append(sweep_one_config(seed, spec))
            busy_s = time.perf_counter() - started
        else:
            tasks = chunked(seeds, jobs * 4)
            if pool is not None:
                pool.set_payload(spec)
                own_pool = _nullcontext(pool)
            else:
                own_pool = WorkerPool(
                    jobs, spec, telemetry=progress is not None
                )
            with own_pool as live_pool:
                start_method = live_pool.start_method
                fleet, drain = fleet_drain(live_pool, progress, len(seeds))
                try:
                    done = 0
                    for records, busy in live_pool.map(_sweep_worker, tasks):
                        report.records.extend(records)
                        # repro-lint: allow[REPRO102] wall-time bookkeeping, not an analysis value
                        busy_s += busy
                        done += len(records)
                        if obs.progress and fleet is None:
                            obs.progress.update("batch.sweep", done, len(seeds))
                finally:
                    if drain is not None:
                        drain.stop()
                    if fleet is not None:
                        fleet.close()
                        fleet_snapshot = fleet.snapshot()
        if obs.progress:
            obs.progress.update("batch.sweep", len(seeds), len(seeds))
    report.wall_s = time.perf_counter() - started
    if obs.enabled:
        obs.metrics.counter("batch.sweep.configs", len(report.records))
        obs.metrics.counter("batch.sweep.violations", len(report.violations))
        obs.metrics.counter("batch.sweep.errors", report.n_errors)
        obs.metrics.counter("batch.sweep.paths_checked", report.paths_checked)
        obs.metrics.gauge("batch.sweep.jobs", jobs)
        obs.metrics.gauge("batch.sweep.wall_ms", round(report.wall_s * 1e3, 3))
        utilization = (
            min(1.0, busy_s / (report.wall_s * jobs)) if report.wall_s > 0 else 0.0
        )
        obs.metrics.gauge("batch.sweep.worker_utilization", round(utilization, 4))
        obs.metrics.gauge("batch.sweep.pool_reused", int(pool is not None))
        obs.metrics.gauge(
            "batch.sweep.start_method_fork", int(start_method == "fork")
        )
        report.stats = obs.export()
    if fleet_snapshot is not None:
        report.stats = dict(report.stats or {})
        report.stats["fleet"] = fleet_snapshot
    _LOG.info(
        "batch sweep done %s",
        kv(
            configs=len(report.records),
            violations=len(report.violations),
            errors=report.n_errors,
            jobs=jobs,
        ),
    )
    return report
