"""The :class:`BatchAnalyzer`: parallel drivers for the three analyses.

Parallel decomposition per method
---------------------------------

**Network Calculus** — the propagation is a wavefront over the port
graph: :func:`repro.network.port_graph.port_levels` groups the output
ports by longest-path depth, every port of one level is independent
given the previous levels' delays, so each level's ports fan across the
pool.  Workers hold a persistent :class:`NetworkCalculusAnalyzer`
(topology, port-flow sets, grouping tables) and receive only
``(port, entering buckets)`` pairs; the coordinator keeps the (cheap)
burst-inflation bookkeeping and assembles the result **in the
sequential topological order**, so the result is bit-identical to the
sequential analyzer's.

**Trajectory** — one fixed-point sweep walks every VL tree with a
frozen ``Smax`` map, and the walks of different VLs are independent
(see :meth:`TrajectoryAnalyzer.sweep_vls`).  The coordinator prepares
one analyzer (computing the Network Calculus seed exactly once), ships
the seed to every worker through the pool payload, and then fans each
sweep's VL chunks across workers that hold a fully *prepared* analyzer
— per-node busy-period horizons, meeting structures and serialization
terms are memoized inside each worker and reused across sweeps.
Between sweeps the coordinator runs the (sequential, cheap)
``tighten_smax`` contraction and broadcasts the cumulative tightened
entries with the next round of tasks, so every worker sweeps with the
exact ``Smax`` map the sequential analyzer would have used —
bit-identical bounds, sweep for sweep.

**Combined** — Network Calculus first (parallel), its result seeds the
parallel trajectory run (the seed the sequential path would recompute),
then the per-path minimum is taken on the coordinator.

``jobs=1`` never touches :mod:`multiprocessing`: every method delegates
to the sequential analyzer, which keeps the default CLI path exactly as
fast and exactly as deterministic as before the batch engine existed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.curves import LeakyBucket
from repro.netcalc.analyzer import NetworkCalculusAnalyzer, analyze_network_calculus
from repro.netcalc.results import NetworkCalculusResult, PortAnalysis
from repro.network.port import PortId
from repro.network.port_graph import port_levels, topological_port_order
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.obs.costmodel import (
    CostLedger,
    netcalc_cost_ledger,
    record_trajectory_sweep,
)
from repro.obs.instrument import Instrumentation
from repro.obs.logging import get_logger, kv
from repro.batch import shm as _shm
from repro.batch.pool import (
    WorkerPool,
    chunked,
    resolve_jobs,
    worker_emit,
    worker_persistent,
    worker_state,
)
from repro.core.combined import analyze_network, build_comparison
from repro.core.results import AnalysisResult
from repro.trajectory.analyzer import TrajectoryAnalyzer, analyze_trajectory
from repro.trajectory.results import TrajectoryPathBound, TrajectoryResult
from repro.trajectory.timing import FlowPortKey, seed_smax_from_netcalc

__all__ = ["BatchAnalyzer"]

_LOG = get_logger("batch")


@dataclass
class _Payload:
    """Everything a worker needs, delivered once per process (or once
    per epoch when a warm pool switches configs)."""

    network: Network
    grouping: bool = True
    frame_overhead_bytes: float = 0.0
    serialization: object = True
    smax_seed: Optional[Dict[FlowPortKey, float]] = None
    incremental: bool = False
    cache_dir: Optional[str] = None
    trajectory_kernel: Optional[str] = None
    #: shared-memory spec + per-port index of the coordinator's
    #: exported fast-kernel tables (``export_fast_tables``), or None
    fast_tables: Optional[Tuple[_shm.ShmSpec, Dict[PortId, Tuple[int, int]]]] = None


def _worker_cache(payload: _Payload):
    """One per-process :class:`BoundCache` (None when not incremental).

    Workers of one pool cannot share Python objects, so each process
    opens its own cache; a ``cache_dir`` makes them share entries
    through the disk layer (safe: writes are atomic and entries are
    content-addressed, so concurrent writers only ever duplicate work,
    never corrupt results).  The cache is *persistent* worker state: it
    survives payload epochs, so a warm pool re-used across configs
    keeps serving its in-memory entries — content addressing makes
    cross-config hits sound by construction.
    """
    if not payload.incremental:
        return None
    cache_dir = payload.cache_dir

    def build():
        from repro.incremental.cache import BoundCache

        return BoundCache(cache_dir=cache_dir)

    return worker_persistent(f"bound_cache:{cache_dir}", build)


def _build_nc_analyzer(payload: _Payload) -> NetworkCalculusAnalyzer:
    return NetworkCalculusAnalyzer(
        payload.network,
        grouping=payload.grouping,
        frame_overhead_bytes=payload.frame_overhead_bytes,
        incremental=payload.incremental,
        cache=_worker_cache(payload),
    )


def _nc_worker(
    task: List[Tuple[PortId, Dict[str, LeakyBucket]]]
) -> Tuple[List[Tuple[PortId, PortAnalysis]], int, float]:
    """Analyze one chunk of a propagation level.

    Returns ``(analyses, pid, busy seconds)`` — the pid keys the
    per-worker busy accounting that becomes the synthetic worker lanes
    of the ``--trace`` export.
    """
    import os

    analyzer = worker_state("netcalc", _build_nc_analyzer)
    if task:
        worker_emit("heartbeat", at=str(task[0][0]))
    start = time.perf_counter()
    out = [
        (port_id, analyzer.analyze_port_cached(port_id, buckets))
        for port_id, buckets in task
    ]
    busy = time.perf_counter() - start
    worker_emit("chunk", phase="netcalc", n=len(task))
    return out, os.getpid(), busy


def _build_trajectory_analyzer(payload: _Payload) -> TrajectoryAnalyzer:
    analyzer = TrajectoryAnalyzer(
        payload.network,
        serialization=payload.serialization,
        refine_smax=False,
        incremental=payload.incremental,
        cache=_worker_cache(payload),
        kernel=payload.trajectory_kernel,
    )
    smax_seed = payload.smax_seed
    if payload.fast_tables is not None:
        spec, index = payload.fast_tables
        try:
            arrays, segment = _shm.attach(spec)
        except (OSError, ValueError):
            # the coordinator's segment is gone (e.g. it crashed and
            # atexit unlinked); fall back to a local table build
            pass
        else:
            # the segment handle must outlive the zero-copy views; the
            # analyzer's lifetime bounds both (epoch-scoped state)
            analyzer._shm_segment = segment
            smax_seed = analyzer.adopt_fast_tables(arrays, index)
    analyzer.prepare(smax_seed=smax_seed)
    return analyzer


def _trajectory_worker(
    task: Tuple[List[str], Dict[FlowPortKey, float]]
) -> Tuple[Dict[FlowPortKey, TrajectoryPathBound], Dict[str, Tuple[int, int]], int, float]:
    """Sweep one VL chunk with the coordinator's current ``Smax`` map.

    The second task element is the *cumulative* set of entries the
    coordinator tightened since the seed; applying it is idempotent, so
    a worker that missed a sweep (received no task that round) catches
    up on its next task.  Returns ``(prefix bounds, cache stats, pid,
    busy seconds)`` — the pid keys the per-worker cache statistics on
    the coordinator.
    """
    import os

    chunk, smax_updates = task
    analyzer = worker_state("trajectory", _build_trajectory_analyzer)
    if smax_updates:
        analyzer.apply_smax_updates(smax_updates)
    if chunk:
        worker_emit("heartbeat", at=str(chunk[0]))
    start = time.perf_counter()
    bounds = analyzer.sweep_vls(chunk)
    busy = time.perf_counter() - start
    worker_emit("chunk", phase="trajectory", n=len(chunk))
    return bounds, analyzer.cache_stats(), os.getpid(), busy


@contextmanager
def _borrowed(pool: WorkerPool):
    """Context manager over a pool the caller owns: never closes it."""
    yield pool


@dataclass
class _PoolStats:
    """Worker accounting for one parallel phase."""

    tasks: int = 0
    busy_s: float = 0.0
    wall_s: float = 0.0
    jobs: int = 1
    cache_stats: Dict[int, Dict[str, Tuple[int, int]]] = field(default_factory=dict)
    worker_busy: Dict[int, float] = field(default_factory=dict)
    # execution shape (manifest gauges; non-deterministic by design)
    shm_tables: int = 0
    pool_reused: int = 0
    start_method: str = ""
    pool_epoch: int = 0
    shm_segments: int = 0

    def record_pool(self, pool: WorkerPool, external: bool) -> None:
        """Capture the pool's shape at phase start (epoch, shm, borrow)."""
        self.pool_reused = int(external)
        self.start_method = pool.start_method
        self.pool_epoch = pool.epochs_served
        self.shm_segments = len(_shm.active_owned())

    def record_task(self, pid: int, busy: float) -> None:
        self.tasks += 1
        self.busy_s += busy
        self.worker_busy[pid] = self.worker_busy.get(pid, 0.0) + busy

    def worker_lanes(self) -> List[float]:
        """Per-worker busy milliseconds, pid-agnostic (sorted by pid)."""
        return [
            round(self.worker_busy[pid] * 1e3, 3)
            for pid in sorted(self.worker_busy)
        ]

    @property
    def utilization(self) -> float:
        if self.wall_s <= 0.0 or self.jobs < 1:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.jobs))

    def merged_cache_stats(self) -> Dict[str, Tuple[int, int]]:
        """Final per-worker cache counters summed across workers."""
        totals: Dict[str, List[int]] = {}
        for per_worker in self.cache_stats.values():
            for name, (hits, misses) in per_worker.items():
                slot = totals.setdefault(name, [0, 0])
                slot[0] += hits
                slot[1] += misses
        return {name: (h, m) for name, (h, m) in totals.items()}


class BatchAnalyzer:
    """Parallel front-end over the sequential analyzers.

    Parameters
    ----------
    network:
        The configuration to analyze (not mutated).
    jobs:
        Worker process count.  ``1`` (the default) delegates to the
        sequential analyzers — no pool, bit-identical, zero overhead.
        ``0`` means one worker per CPU core.
    grouping / frame_overhead_bytes:
        Forwarded to the Network Calculus analyzer.
    serialization / refine_smax / max_refinements / trajectory_kernel:
        Forwarded to the Trajectory analyzer (coordinator and every
        worker; bounds are bit-identical for either kernel).
    collect_stats / progress:
        Observability (:mod:`repro.obs`): when enabled, worker
        utilization, chunk counts and per-worker cache hit-rates land
        in the result's ``stats`` field (and from there in the run
        manifest).
    incremental / cache_dir:
        Serve per-port analyses and per-VL walks from the
        content-addressed bound cache (:mod:`repro.incremental`).  With
        workers, each process opens its own cache on ``cache_dir``
        (persistence makes them share entries); results stay
        bit-identical for any ``jobs``.
    explain:
        Attach bound provenance ledgers (:mod:`repro.explain`) to the
        results.  The provenance replay always runs on the coordinator
        — workers only ever compute bounds — and the ledgers are
        identical for any ``jobs`` because the bounds they decompose
        are.
    pool:
        An existing warm :class:`WorkerPool` to reuse instead of
        creating (and tearing down) one per phase.  The analyzer swaps
        its payload in via :meth:`WorkerPool.set_payload` — workers
        keep their persistent state (bound caches) — and never closes
        it; the caller owns its lifecycle.  ``jobs`` is taken from the
        pool.
    use_shm:
        Ship the fast kernel's flat tables (and warm-pool payload
        epochs) through shared memory (default).  ``False`` falls back
        to fork-copy/pickling — bounds are identical either way.
    """

    def __init__(
        self,
        network: Network,
        jobs: int = 1,
        grouping: bool = True,
        frame_overhead_bytes: float = 0.0,
        serialization: object = True,
        refine_smax: bool = True,
        max_refinements: int = 8,
        collect_stats: bool = False,
        progress=None,
        incremental: bool = False,
        cache_dir: Optional[str] = None,
        explain: bool = False,
        trajectory_kernel: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
        use_shm: bool = True,
    ) -> None:
        self.network = network
        self.jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
        self.grouping = grouping
        self.frame_overhead_bytes = frame_overhead_bytes
        self.serialization = serialization
        self.refine_smax = refine_smax
        self.max_refinements = max_refinements
        self.explain = explain
        self.trajectory_kernel = trajectory_kernel
        self.collect_stats = collect_stats
        self._progress = progress
        self.incremental = incremental or cache_dir is not None
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._external_pool = pool
        self.use_shm = use_shm
        self._cache = None
        if self.incremental:
            from repro.incremental.cache import BoundCache

            self._cache = BoundCache(cache_dir=self.cache_dir)

    def _pool_for(self, payload: _Payload):
        """One phase's pool: the external warm pool (payload swapped
        in, never closed) or a fresh owned one (context-managed)."""
        if self._external_pool is not None:
            pool = self._external_pool
            pool.set_payload(payload)
            return _borrowed(pool)
        return WorkerPool(self.jobs, payload, use_shm=self.use_shm)

    # ------------------------------------------------------------------
    # Network Calculus
    # ------------------------------------------------------------------

    def network_calculus(self) -> NetworkCalculusResult:
        """Level-parallel Network Calculus propagation."""
        if self.jobs == 1:
            return analyze_network_calculus(
                self.network,
                grouping=self.grouping,
                frame_overhead_bytes=self.frame_overhead_bytes,
                collect_stats=self.collect_stats,
                progress=self._progress,
                incremental=self.incremental,
                cache=self._cache,
                explain=self.explain,
            )
        network = self.network
        obs = Instrumentation.create(self.collect_stats, self._progress)
        check_network(network)
        order = topological_port_order(network)
        levels = port_levels(network)
        coordinator = NetworkCalculusAnalyzer(
            network,
            grouping=self.grouping,
            frame_overhead_bytes=self.frame_overhead_bytes,
        )
        entering = coordinator.ingress_buckets()
        analyses: Dict[PortId, PortAnalysis] = {}
        stats = _PoolStats(jobs=self.jobs)
        payload = _Payload(
            network=network,
            grouping=self.grouping,
            frame_overhead_bytes=self.frame_overhead_bytes,
            incremental=self.incremental,
            cache_dir=self.cache_dir,
        )
        progress = obs.progress
        started = time.perf_counter()
        with obs.tracer.span(
            "batch.netcalc", jobs=self.jobs, n_ports=len(order), n_levels=len(levels)
        ) as phase_span:
            with self._pool_for(payload) as pool:
                stats.record_pool(pool, pool is self._external_pool)
                done = 0
                for level in levels:
                    tasks = chunked(
                        [
                            (
                                port_id,
                                {
                                    name: entering[(name, port_id)]
                                    for name in sorted(network.vls_at_port(port_id))
                                },
                            )
                            for port_id in level
                        ],
                        self.jobs * 2,
                    )
                    for chunk_result, pid, busy in pool.map(_nc_worker, tasks):
                        stats.record_task(pid, busy)
                        for port_id, analysis in chunk_result:
                            analyses[port_id] = analysis
                    # burst inflation stays on the coordinator: one
                    # writer per (flow, port) entry, so order is free
                    for port_id in level:
                        coordinator.propagate_port(
                            entering, port_id, analyses[port_id].delay_us
                        )
                    done += len(level)
                    if progress:
                        progress.update("batch.netcalc", done, len(order))
            if obs.enabled:
                phase_span.attrs["workers"] = stats.worker_lanes()
                phase_span.attrs["start_method"] = stats.start_method
                phase_span.attrs["pool_reused"] = stats.pool_reused
        stats.wall_s = time.perf_counter() - started

        result = NetworkCalculusResult(grouping=self.grouping)
        for port_id in order:  # sequential insertion order, bit for bit
            result.ports[port_id] = analyses[port_id]
        port_delay = {port_id: analyses[port_id].delay_us for port_id in order}
        coordinator.finalize_paths(result, port_delay)
        if self.explain:
            with obs.tracer.span("batch.netcalc.explain"):
                coordinator._attach_provenance(result)
        if obs.enabled:
            self._export_pool_stats(obs, "netcalc", stats)
            ledger = netcalc_cost_ledger(result)
            exported = obs.export()
            exported["cost"] = ledger.to_dict()
            result.stats = exported
        _LOG.debug(
            "batch netcalc done %s",
            kv(jobs=self.jobs, ports=len(order), levels=len(levels), tasks=stats.tasks),
        )
        return result

    # ------------------------------------------------------------------
    # Trajectory
    # ------------------------------------------------------------------

    def trajectory(
        self, smax_seed: Optional[Dict[FlowPortKey, float]] = None
    ) -> TrajectoryResult:
        """Parallel trajectory fixed point (per-VL sweep fan-out)."""
        if self.jobs == 1:
            return analyze_trajectory(
                self.network,
                serialization=self.serialization,
                refine_smax=self.refine_smax,
                max_refinements=self.max_refinements,
                collect_stats=self.collect_stats,
                progress=self._progress,
                incremental=self.incremental,
                cache=self._cache,
                explain=self.explain,
                kernel=self.trajectory_kernel,
            )
        network = self.network
        obs = Instrumentation.create(self.collect_stats, self._progress)
        coordinator = TrajectoryAnalyzer(
            network,
            serialization=self.serialization,
            refine_smax=self.refine_smax,
            max_refinements=self.max_refinements,
            kernel=self.trajectory_kernel,
        )
        coordinator.prepare(smax_seed=smax_seed)
        # same walk order as the sequential sweep; chunked contiguously
        vl_names = list(network.virtual_links)
        chunks = chunked(vl_names, self.jobs * 4)
        # fast-kernel runs pack the coordinator's flat tables into one
        # shared-memory arena: workers map the columns read-only
        # instead of rebuilding (or fork-copying) them per process
        arena: Optional[_shm.ShmArena] = None
        fast_tables = None
        if self.use_shm and coordinator.kernel == "fast":
            columns, table_index = coordinator.export_fast_tables()
            try:
                arena = _shm.ShmArena(columns)
            except _shm.ShmUnavailable as exc:
                _LOG.info("fast-table arena unavailable, fork-copying: %s", exc)
            else:
                fast_tables = (arena.spec, table_index)
        cumulative: Dict[FlowPortKey, float] = {}
        bounds: Dict[FlowPortKey, TrajectoryPathBound] = {}
        sweeps = 0
        # from here until the matching finally the arena is live: any
        # failure (payload construction included) must still retire it
        try:
            stats = _PoolStats(jobs=self.jobs)
            progress = obs.progress
            started = time.perf_counter()
            payload = _Payload(
                network=network,
                serialization=self.serialization,
                smax_seed=coordinator.smax_snapshot(),
                incremental=self.incremental,
                cache_dir=self.cache_dir,
                trajectory_kernel=self.trajectory_kernel,
                fast_tables=fast_tables,
            )
            ledger = CostLedger("trajectory") if self.collect_stats else None
            stats.shm_tables = int(fast_tables is not None)
            with obs.tracer.span(
                "batch.trajectory",
                jobs=self.jobs,
                n_vls=len(vl_names),
                n_chunks=len(chunks),
            ) as phase_span:
                with self._pool_for(payload) as pool:
                    stats.record_pool(pool, pool is self._external_pool)
                    for _ in range(self.max_refinements):
                        if self.explain:
                            # the map this round's workers sweep with: the
                            # seed plus every tightening broadcast so far
                            coordinator._explain_smax = coordinator.smax_snapshot()
                        tasks = [(chunk, dict(cumulative)) for chunk in chunks]
                        bounds = {}
                        for chunk_bounds, cache_stats, pid, busy in pool.map(
                            _trajectory_worker, tasks
                        ):
                            stats.record_task(pid, busy)
                            stats.cache_stats[pid] = cache_stats
                            bounds.update(chunk_bounds)
                        sweeps += 1
                        if progress:
                            progress.update("batch.trajectory.sweep", sweeps, sweeps)
                        stable = True
                        n_updates = 0
                        if self.refine_smax:
                            updates, _ = coordinator.tighten_smax(bounds)
                            stable = not updates
                            n_updates = len(updates)
                            cumulative.update(updates)
                        if ledger is not None:
                            # the merged chunk bounds equal the sequential
                            # sweep's map bit for bit, so the ledger is
                            # identical for any --jobs N
                            record_trajectory_sweep(
                                ledger, bounds, smax_updates=n_updates
                            )
                        if stable:
                            break
                if obs.enabled:
                    phase_span.attrs["workers"] = stats.worker_lanes()
                    phase_span.attrs["start_method"] = stats.start_method
                    phase_span.attrs["pool_reused"] = stats.pool_reused
                    phase_span.attrs["shm_tables"] = stats.shm_tables
        finally:
            # every worker that will ever need the arena has mapped it
            # by now (tasks for this payload epoch are done); retiring
            # the name is safe while those mappings live
            if arena is not None:
                arena.close_and_unlink()
        stats.wall_s = time.perf_counter() - started

        result = coordinator.build_result(bounds, sweeps)
        if ledger is not None:
            ledger.add_work("paths_bound", len(result.paths))
            ledger.record_runtime("shm_table_segments", stats.shm_tables)
            ledger.record_runtime("pool_reused", stats.pool_reused)
            ledger.record_runtime("workers", stats.jobs)
        if self.explain:
            coordinator._explain_bounds = bounds
            with obs.tracer.span("batch.trajectory.explain"):
                coordinator._attach_provenance(result)
        if obs.enabled:
            obs.metrics.counter("trajectory.sweeps", sweeps)
            for name, (hits, misses) in sorted(stats.merged_cache_stats().items()):
                obs.metrics.counter(f"trajectory.{name}_cache_hits", hits)
                obs.metrics.counter(f"trajectory.{name}_cache_misses", misses)
                if ledger is not None:
                    ledger.record_cache(name, hits, misses)
            self._export_pool_stats(obs, "trajectory", stats)
            exported = obs.export()
            if ledger is not None:
                exported["cost"] = ledger.to_dict()
            result.stats = exported
        _LOG.debug(
            "batch trajectory done %s",
            kv(jobs=self.jobs, sweeps=sweeps, paths=len(result.paths)),
        )
        return result

    # ------------------------------------------------------------------
    # Combined
    # ------------------------------------------------------------------

    def combined(self) -> AnalysisResult:
        """Both analyses (parallel) and their per-path minimum.

        One worker pool serves both phases: the trajectory phase swaps
        its payload into the pool the NC phase warmed up (a payload
        epoch) instead of forking a second set of processes.
        """
        if self.jobs == 1:
            return analyze_network(
                self.network,
                grouping=self.grouping,
                serialization=self.serialization,
                refine_smax=self.refine_smax,
                collect_stats=self.collect_stats,
                progress=self._progress,
                explain=self.explain,
                trajectory_kernel=self.trajectory_kernel,
            )
        own_pool: Optional[WorkerPool] = None
        if self._external_pool is None:
            own_pool = WorkerPool(self.jobs, None, use_shm=self.use_shm)
            self._external_pool = own_pool
        try:
            nc_result = self.network_calculus()
            # the sequential path seeds Smax from a grouping=True NC
            # run; reuse ours when it matches, otherwise let the
            # trajectory coordinator compute its own grouped seed
            seed = (
                seed_smax_from_netcalc(self.network, nc_result)
                if self.grouping
                else None
            )
            trajectory_result = self.trajectory(smax_seed=seed)
        except BaseException:
            if own_pool is not None:
                self._external_pool = None
                own_pool.terminate()
                own_pool = None
            raise
        finally:
            if own_pool is not None:
                self._external_pool = None
                own_pool.close()
        return build_comparison(nc_result, trajectory_result)

    # ------------------------------------------------------------------

    def _export_pool_stats(
        self, obs: Instrumentation, phase: str, stats: _PoolStats
    ) -> None:
        metrics = obs.metrics
        metrics.gauge(f"batch.{phase}.jobs", stats.jobs)
        metrics.counter(f"batch.{phase}.tasks", stats.tasks)
        metrics.counter(f"batch.{phase}.worker_busy_ms", round(stats.busy_s * 1e3, 3))
        metrics.gauge(f"batch.{phase}.wall_ms", round(stats.wall_s * 1e3, 3))
        metrics.gauge(
            f"batch.{phase}.worker_utilization", round(stats.utilization, 4)
        )
        # execution shape: gauges must be numeric (manifest contract),
        # so the start method is encoded as its fork-ness and the full
        # string rides the phase span / INFO log
        metrics.gauge(f"batch.{phase}.shm_tables", stats.shm_tables)
        metrics.gauge(f"batch.{phase}.pool_reused", stats.pool_reused)
        metrics.gauge(
            f"batch.{phase}.start_method_fork",
            int(stats.start_method == "fork"),
        )
        metrics.gauge(f"batch.{phase}.pool_epoch", stats.pool_epoch)
        metrics.gauge(
            f"batch.{phase}.shm_segments_active", stats.shm_segments
        )
