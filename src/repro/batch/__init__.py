"""Parallel batch-analysis engine.

Fans the repository's three analyses — Network Calculus, Trajectory and
the combined approach — across a :mod:`multiprocessing` pool while
guaranteeing results bit-identical to the sequential analyzers, and
provides the ``batch_sweep`` soundness-fuzzing harness that analyzes
and simulates many seeded random configurations hunting for
``simulated > bound`` violations (the regression class behind the
``random_network(589)`` bug).

Entry points
------------

:class:`BatchAnalyzer`
    ``network_calculus()`` / ``trajectory()`` / ``combined()`` with a
    ``jobs`` knob; ``jobs=1`` delegates to the sequential analyzers.
:func:`batch_sweep`
    Whole-configuration fan-out over seeded ``random_network`` configs,
    each analyzed and simulated, returning a violation report.
:func:`analyze_corpus`
    Fleet throughput: every configuration of a seeded
    :class:`CorpusSpec` analyzed through a (reusable, warm) worker
    pool with shared cross-config caches.

See ``docs/BATCH.md`` for the design and the cache-sharing model.
"""

from repro.batch.analyzer import BatchAnalyzer
from repro.batch.corpus import (
    CorpusReport,
    CorpusSpec,
    analyze_corpus,
    corpus_network,
)
from repro.batch.pool import (
    LANE_BASE,
    WorkerPool,
    chunked,
    worker_emit,
    worker_lane,
)
from repro.batch.sweep import (
    SweepConfigRecord,
    SweepReport,
    SweepSpec,
    SweepViolation,
    batch_sweep,
)

__all__ = [
    "BatchAnalyzer",
    "LANE_BASE",
    "WorkerPool",
    "chunked",
    "worker_emit",
    "worker_lane",
    "SweepSpec",
    "SweepViolation",
    "SweepConfigRecord",
    "SweepReport",
    "batch_sweep",
    "CorpusSpec",
    "CorpusReport",
    "analyze_corpus",
    "corpus_network",
]
