"""Shared-memory arenas for zero-copy worker state.

The batch engine ships two kinds of bulk data to workers:

* the fast trajectory kernel's flat per-port competitor tables and the
  ``Smax`` seed pack (large float/int columns, read-only after
  ``prepare()``), and
* the pickled worker payload itself when a warm :class:`~repro.batch.
  pool.WorkerPool` switches configs mid-life (the epoch protocol).

Both are packed here into :class:`multiprocessing.shared_memory`
segments so workers *map* the bytes instead of receiving a private
copy per process (``fork`` copies lazily but refcount traffic still
unshares the pages; ``spawn`` re-pickles everything).

Lifecycle contract
------------------

* The **coordinator** owns every segment: :class:`ShmArena` /
  :func:`put_bytes` create it, and exactly one ``close_and_unlink()``
  (or :func:`unlink_spec`) retires it.  Owned segments are tracked in a
  module registry; :func:`active_owned` exposes it so tests and gates
  can assert nothing leaked, and an ``atexit`` hook unlinks stragglers
  if the coordinator dies mid-analysis.
* **Workers** only ever attach (:func:`attach` / :func:`get_bytes`).
  Attaching never takes ownership: the view is closed once the worker
  is done with it, and the attach *never registers* with the worker's
  ``resource_tracker`` (see :func:`_attach_untracked`) — exactly one
  tracker entry exists per segment, the owner's, balanced by its
  ``unlink``.
* Unlinking while workers hold mappings is safe on POSIX: the name
  disappears but live mappings survive until closed, which is what lets
  the coordinator retire an old payload epoch eagerly.
"""

from __future__ import annotations

import atexit
import pickle
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.logging import get_logger

__all__ = [
    "ShmArena",
    "ShmSpec",
    "ShmUnavailable",
    "active_owned",
    "attach",
    "get_bytes",
    "get_pickled",
    "put_bytes",
    "put_pickled",
    "unlink_spec",
]

_LOG = get_logger("batch")


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be created on this platform/container."""


#: Segments created (and not yet unlinked) by this process, by name.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}


def active_owned() -> List[str]:
    """Names of segments this process owns and has not yet unlinked."""
    return sorted(_OWNED)


def _register_owned(segment: shared_memory.SharedMemory) -> None:
    _OWNED[segment.name] = segment


def _release_owned(name: str) -> None:
    segment = _OWNED.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
        segment.unlink()
    except (OSError, FileNotFoundError):  # already gone: nothing leaked
        pass


@atexit.register
def _cleanup_owned() -> None:
    for name in list(_OWNED):
        _release_owned(name)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering it with resource_tracker.

    CPython ≤ 3.12 registers shared memory on attach as well as create
    (fixed by ``track=False`` in 3.13).  Attach-side registrations are
    pure bookkeeping noise: whichever tracker process serves the
    attacher would either warn about (and double-unlink) the segment at
    shutdown, or — when several attachers share one tracker — blow up
    on balancing ``unregister`` calls.  Suppressing the registration
    for the duration of the constructor leaves exactly one tracker
    entry per segment: the owner's, balanced by its ``unlink``.

    The swap is process-local and momentary; batch workers are
    single-threaded, so nothing else registers concurrently.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ShmSpec:
    """Picklable description of one segment's layout.

    ``entries`` maps each array key to ``(dtype_str, shape, offset)``
    into the flat buffer; ``nbytes`` is the payload size (the segment
    itself may be rounded up by the OS).
    """

    name: str
    nbytes: int
    entries: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]


class ShmArena:
    """A read-only bundle of named numpy arrays in one shared segment.

    Created by the coordinator from plain arrays; workers rebuild
    zero-copy views from :attr:`spec` via :func:`attach`.
    """

    def __init__(self, arrays: Dict[str, "np.ndarray"]) -> None:
        total = 0
        entries: List[Tuple[str, str, Tuple[int, ...], int]] = []
        for key in sorted(arrays):
            arr = np.ascontiguousarray(arrays[key])
            entries.append((key, arr.dtype.str, tuple(arr.shape), total))
            total += arr.nbytes
        try:
            segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        except OSError as exc:
            raise ShmUnavailable(f"cannot create shared memory: {exc}") from exc
        _register_owned(segment)
        for (key, dtype, shape, offset), source in zip(
            entries, (arrays[k] for k in sorted(arrays))
        ):
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)
            view[...] = source
        self._segment = segment
        self.spec = ShmSpec(name=segment.name, nbytes=total, entries=tuple(entries))

    def close_and_unlink(self) -> None:
        """Retire the segment (idempotent)."""
        _release_owned(self._segment.name)


def attach(spec: ShmSpec) -> Tuple[Dict[str, "np.ndarray"], shared_memory.SharedMemory]:
    """Map ``spec``'s arrays read-only; caller keeps the handle alive.

    Returns ``(arrays, segment)``; the arrays are views into the
    segment's buffer, so the caller must hold ``segment`` (and
    ``close()`` it once the arrays are garbage) — the batch worker
    parks both in its epoch state.
    """
    segment = _attach_untracked(spec.name)
    try:
        arrays: Dict[str, "np.ndarray"] = {}
        for key, dtype, shape, offset in spec.entries:
            view = np.ndarray(
                shape, dtype=dtype, buffer=segment.buf, offset=offset
            )
            view.flags.writeable = False
            arrays[key] = view
    except Exception:
        # a malformed spec (stale entry table, truncated segment) must
        # not strand the mapping: detach before propagating
        segment.close()
        raise
    return arrays, segment


def put_bytes(data: bytes) -> ShmSpec:
    """Park opaque bytes (a pickled payload) in a fresh owned segment."""
    try:
        segment = shared_memory.SharedMemory(create=True, size=max(len(data), 1))
    except OSError as exc:
        raise ShmUnavailable(f"cannot create shared memory: {exc}") from exc
    _register_owned(segment)
    segment.buf[: len(data)] = data
    return ShmSpec(name=segment.name, nbytes=len(data), entries=())


def get_bytes(spec: ShmSpec) -> bytes:
    """Copy a :func:`put_bytes` segment's payload out and detach."""
    segment = _attach_untracked(spec.name)
    try:
        return bytes(segment.buf[: spec.nbytes])
    finally:
        segment.close()


def put_pickled(obj: object) -> ShmSpec:
    """Pickle ``obj`` into a fresh owned segment (payload epochs)."""
    return put_bytes(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def get_pickled(spec: ShmSpec) -> object:
    """Load a :func:`put_pickled` payload in the attaching process."""
    return pickle.loads(get_bytes(spec))


def unlink_spec(spec: Optional[ShmSpec]) -> None:
    """Owner-side retirement by spec (idempotent, ``None``-safe)."""
    if spec is not None:
        _release_owned(spec.name)
