"""Seeded scenario corpora: fleets of structurally related configs.

A *corpus* models the admission-control workload the fleet-throughput
engine exists for: one base topology (an airframe) and many lightly
edited variants of it (candidate configuration changes), all analyzed
with the same claimed-sound methods.  Because the variants share most
of their structure, the cross-config cache namespaces (``nc.port``,
``traj.walk``, ``traj.node``, whole-result) convert the fleet from
``configs x full-analysis`` into ``one full analysis + per-variant
deltas`` — which is what ``benchmarks/bench_throughput.py`` measures
as configs/sec.

Everything is seeded: ``corpus_network(spec, i)`` is a pure function
of ``(spec, i)``, so workers regenerate their configurations from the
integer task list instead of unpickling networks, and every analysis
mode (sequential, warm pool, warm cache) sees bit-identical inputs.
"""

from __future__ import annotations

import hashlib
import random
import struct
import time
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.batch.pool import (
    WorkerPool,
    chunked,
    resolve_jobs,
    telemetry_active,
    worker_emit,
    worker_payload,
    worker_persistent,
)
from repro.configs.random_topology import random_network
from repro.incremental.edits import Edit, ResizeVL, RetimeVL, apply_edits
from repro.netcalc.analyzer import analyze_network_calculus
from repro.network.topology import Network
from repro.network.virtual_link import STANDARD_BAGS_MS
from repro.obs.instrument import Instrumentation
from repro.obs.logging import get_logger, kv
from repro.obs.telemetry import fleet_drain
from repro.trajectory.analyzer import analyze_trajectory

__all__ = [
    "CorpusSpec",
    "CorpusRecord",
    "CorpusReport",
    "analyze_corpus",
    "corpus_edits",
    "corpus_network",
]

_LOG = get_logger("batch")


@dataclass(frozen=True)
class CorpusSpec:
    """One corpus: a seeded base topology plus seeded light edits.

    Config ``0`` is the base ``random_network(base_seed, ...)``; config
    ``i > 0`` applies ``edits_per_config`` load-reducing edits (BAG
    doubling, frame shrinking) to seeded victim VLs, so every variant
    stays valid and stable by construction while dirtying only a few
    ports — the shape real admission-control queries have.
    """

    configs: int = 200
    base_seed: int = 2010
    n_switches: int = 3
    n_end_systems: int = 8
    n_virtual_links: int = 24
    edits_per_config: int = 2


#: Base networks by spec — regenerating the base per variant would
#: dominate corpus generation; the base is never mutated (apply_edits
#: copies) so sharing one instance is safe.
_BASE_CACHE: Dict[CorpusSpec, Network] = {}


def _base_network(spec: CorpusSpec) -> Network:
    base = _BASE_CACHE.get(spec)
    if base is None:
        base = random_network(
            spec.base_seed,
            n_switches=spec.n_switches,
            n_end_systems=spec.n_end_systems,
            n_virtual_links=spec.n_virtual_links,
        )
        _BASE_CACHE[spec] = base
    return base


def corpus_edits(spec: CorpusSpec, index: int) -> List[Edit]:
    """The seeded edit batch of config ``index`` (empty for the base)."""
    if index == 0:
        return []
    base = _base_network(spec)
    rng = random.Random(spec.base_seed * 100003 + index)
    names = sorted(base.virtual_links)
    victims = rng.sample(names, min(spec.edits_per_config, len(names)))
    edits: List[Edit] = []
    for name in victims:
        vl = base.vl(name)
        if rng.random() < 0.5 and vl.bag_ms < STANDARD_BAGS_MS[-1]:
            edits.append(RetimeVL(name=name, bag_ms=vl.bag_ms * 2))
        else:
            edits.append(
                ResizeVL(
                    name=name,
                    s_max_bytes=max(vl.s_min_bytes, vl.s_max_bytes * 0.75),
                )
            )
    return edits


def corpus_network(spec: CorpusSpec, index: int) -> Network:
    """Configuration ``index`` of the corpus — pure in ``(spec, index)``."""
    base = _base_network(spec)
    edits = corpus_edits(spec, index)
    if not edits:
        return base
    edited, _impact = apply_edits(base, edits)
    return edited


@dataclass(frozen=True)
class CorpusRecord:
    """One configuration's analysis outcome.

    ``bounds_digest`` hashes every path's NC and safe-trajectory bound
    losslessly (packed doubles over the sorted path keys), so two runs
    produced identical bounds *iff* their digests match — the
    bit-identity handle the throughput benchmark compares across cold,
    warm-pool and warm-cache modes.
    """

    index: int
    n_paths: int
    bounds_digest: str


def analyze_one_config(
    spec: CorpusSpec, index: int, cache=None
) -> CorpusRecord:
    """Analyze config ``index`` with both claimed-sound methods."""
    network = corpus_network(spec, index)
    nc = analyze_network_calculus(network, cache=cache)
    trajectory = analyze_trajectory(network, serialization="safe", cache=cache)
    digest = hashlib.sha256()
    for key in sorted(nc.paths):
        digest.update(repr(key).encode())
        digest.update(
            struct.pack(
                "<2d", nc.paths[key].total_us, trajectory.paths[key].total_us
            )
        )
    return CorpusRecord(
        index=index, n_paths=len(nc.paths), bounds_digest=digest.hexdigest()
    )


@dataclass
class CorpusReport:
    """Aggregate of one corpus analysis pass."""

    spec: CorpusSpec
    records: List[CorpusRecord] = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1
    stats: Optional[Dict[str, object]] = None

    @property
    def configs_per_s(self) -> float:
        return len(self.records) / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def digest(self) -> str:
        """One hash over every config's bounds digest, in index order."""
        digest = hashlib.sha256()
        for record in sorted(self.records, key=lambda r: r.index):
            digest.update(record.bounds_digest.encode())
        return digest.hexdigest()

    @property
    def paths_bound(self) -> int:
        # repro-lint: allow[REPRO101] integer path counts; exact in floats
        return sum(record.n_paths for record in self.records)


def _cache_tally(cache) -> Tuple[int, int]:
    """(hits, misses) from a BoundCache counter snapshot.

    ``hits`` already folds the disk tier in (a disk hit increments
    both ``hits`` and ``disk_hits``).
    """
    if cache is None:
        return (0, 0)
    stats = cache.stats()
    return (int(stats.get("hits", 0)), int(stats.get("misses", 0)))


def _corpus_worker(task: List[int]) -> List[CorpusRecord]:
    spec, cache_dir = worker_payload()
    cache = None
    if cache_dir is not None:
        def build():
            from repro.incremental.cache import BoundCache

            return BoundCache(cache_dir=cache_dir)

        # persists across payload epochs: the same worker serves many
        # corpora/configs with its in-memory LRU intact (the disk tier
        # shares entries across workers and processes)
        cache = worker_persistent(f"bound_cache:{cache_dir}", build)
    live = telemetry_active()
    records: List[CorpusRecord] = []
    for index in task:
        before = _cache_tally(cache) if live else (0, 0)
        records.append(analyze_one_config(spec, index, cache))
        if live:
            after = _cache_tally(cache)
            worker_emit(
                "config",
                n=1,
                index=index,
                cache_hits=after[0] - before[0],
                cache_misses=after[1] - before[1],
            )
    return records


def analyze_corpus(
    spec: CorpusSpec = CorpusSpec(),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    collect_stats: bool = False,
    progress=None,
    pool: Optional[WorkerPool] = None,
) -> CorpusReport:
    """Analyze every configuration of a corpus; fleet-throughput core.

    One task per configuration (embarrassingly parallel).  ``pool``
    reuses an existing warm :class:`WorkerPool` — the corpus payload is
    swapped in as a new epoch and the workers keep their persistent
    per-process bound caches, so a warm pool plus a shared
    ``cache_dir`` is the engine's peak-throughput mode.  Bounds are
    bit-identical across all modes (compare :attr:`CorpusReport.digest`).
    """
    jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
    obs = Instrumentation.create(collect_stats, progress)
    report = CorpusReport(spec=spec, jobs=jobs)
    indices = list(range(spec.configs))
    fleet_snapshot: Optional[Dict[str, object]] = None
    started = time.perf_counter()
    with obs.tracer.span("batch.corpus", jobs=jobs, configs=len(indices)):
        if jobs == 1 and pool is None:
            cache = None
            if cache_dir is not None:
                from repro.incremental.cache import BoundCache

                cache = BoundCache(cache_dir=cache_dir)
            for index in indices:
                if obs.progress:
                    obs.progress.update("batch.corpus", index, len(indices))
                report.records.append(analyze_one_config(spec, index, cache))
        else:
            payload = (spec, cache_dir)
            tasks = chunked(indices, jobs * 4)
            if pool is not None:
                pool.set_payload(payload)
                own_pool = _nullcontext(pool)
            else:
                # a fresh pool opens its telemetry channel iff someone
                # is watching; a borrowed warm pool keeps whatever its
                # owner chose (its queue, when present, is drained here)
                own_pool = WorkerPool(
                    jobs, payload, telemetry=progress is not None
                )
            with own_pool as live_pool:
                fleet, drain = fleet_drain(live_pool, progress, len(indices))
                try:
                    done = 0
                    for records in live_pool.map(_corpus_worker, tasks):
                        report.records.extend(records)
                        done += len(records)
                        if obs.progress and fleet is None:
                            obs.progress.update(
                                "batch.corpus", done, len(indices)
                            )
                finally:
                    if drain is not None:
                        drain.stop()
                    if fleet is not None:
                        fleet.close()
                        fleet_snapshot = fleet.snapshot()
        if obs.progress:
            obs.progress.update("batch.corpus", len(indices), len(indices))
    report.wall_s = time.perf_counter() - started
    if obs.enabled:
        obs.metrics.counter("batch.corpus.configs", len(report.records))
        obs.metrics.counter("batch.corpus.paths_bound", report.paths_bound)
        obs.metrics.gauge("batch.corpus.jobs", jobs)
        obs.metrics.gauge("batch.corpus.wall_ms", round(report.wall_s * 1e3, 3))
        obs.metrics.gauge("batch.corpus.pool_reused", int(pool is not None))
        report.stats = obs.export()
    if fleet_snapshot is not None:
        report.stats = dict(report.stats or {})
        report.stats["fleet"] = fleet_snapshot
    _LOG.info(
        "corpus analyzed %s",
        kv(
            configs=len(report.records),
            paths=report.paths_bound,
            jobs=jobs,
            warm_pool=int(pool is not None),
            cached=int(cache_dir is not None),
        ),
    )
    return report
