"""Worker-pool plumbing shared by the batch engine.

A thin, deterministic wrapper over :class:`multiprocessing.pool.Pool`:

* **fork first** — the coordinator prefers the ``fork`` start method so
  workers inherit the (read-only) network topology for free; on
  platforms without it the fallback start method is logged at INFO and
  the payload travels through shared memory (or the ``spawn``
  initializer) instead.  Either way the payload is delivered exactly
  once per worker per epoch, not once per task.
* **persistent per-worker state** — the initializer parks the payload
  in a module global; task functions lazily build whatever expensive
  state they need from it (a prepared analyzer, cached port-flow sets)
  and reuse it across every task the worker receives.
* **warm reuse across configs** — :meth:`WorkerPool.set_payload` swaps
  the payload without restarting the workers.  Each swap starts a new
  *epoch*: the payload is pickled once into a shared-memory segment
  (:mod:`repro.batch.shm`), every task carries the epoch tag, and a
  worker seeing a newer tag reloads the payload and drops its
  epoch-scoped state while keeping the *persistent* state
  (:func:`worker_persistent`) — per-worker bound caches survive config
  switches, which is what makes a corpus sweep warm.
* **ordered results** — ``map()`` returns results in task-submission
  order regardless of which worker finished first, so merging is
  deterministic by construction.
* **error transparency** — the analysis exceptions
  (:mod:`repro.errors`) are picklable; a worker raising one surfaces
  unchanged in the coordinator, where the CLI's existing handler maps
  it to exit codes 3/4/5.

The pool deliberately exposes only what the batch engine needs; it is
not a general task framework.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.batch import shm as _shm
from repro.obs.logging import get_logger, kv, set_worker_lane

__all__ = [
    "LANE_BASE",
    "WorkerPool",
    "chunked",
    "resolve_jobs",
    "telemetry_active",
    "worker_emit",
    "worker_lane",
    "worker_payload",
    "worker_persistent",
    "worker_state",
]

T = TypeVar("T")

_LOG = get_logger("batch")

#: First worker-lane id.  Must match the Chrome-trace export's
#: synthetic worker tid base (``repro.obs.tracefile._WORKER_TID_BASE``)
#: so a ``[w101]`` log line, a lane-101 telemetry event and the tid-101
#: trace lane all name the same worker slot.
LANE_BASE = 100

#: Payload slot filled by :func:`_init_worker` in every pool process.
_WORKER_PAYLOAD: Optional[Any] = None
#: Lazily-built per-worker state, keyed by task family (see ``worker_state``).
#: Cleared on every payload epoch — it derives from the payload.
_WORKER_STATE: dict = {}
#: Per-worker state that *survives* payload epochs (bound caches keyed
#: by cache directory); cleared only when the worker process dies.
_WORKER_PERSISTENT: dict = {}
#: Epoch of the payload currently loaded in this worker (-1 = none).
_WORKER_EPOCH: int = -1
#: This process's worker-lane id (None on the coordinator / before init).
_WORKER_LANE: Optional[int] = None
#: Telemetry queue back to the coordinator (None when telemetry is off).
_WORKER_TELEMETRY: Optional[Any] = None


def _load_payload_ref(ref: Any) -> Any:
    """Materialize a payload reference shipped by the coordinator."""
    if isinstance(ref, _shm.ShmSpec):
        return _shm.get_pickled(ref)
    return ref


def _init_worker(
    epoch: int, ref: Any, lane_counter: Any = None, telemetry: Any = None
) -> None:
    global _WORKER_PAYLOAD, _WORKER_EPOCH, _WORKER_LANE, _WORKER_TELEMETRY
    _WORKER_PAYLOAD = _load_payload_ref(ref)
    _WORKER_EPOCH = epoch
    _WORKER_STATE.clear()
    _WORKER_PERSISTENT.clear()
    if lane_counter is not None:
        # first-come lane claim: each pool process takes the next slot
        # (LANE_BASE + index).  Lanes are identities of *slots*, not
        # pids — a pool restart re-claims 100..100+jobs-1, so log
        # prefixes and trace tids stay stable across payload epochs.
        with lane_counter.get_lock():
            index = lane_counter.value
            lane_counter.value = index + 1
        _WORKER_LANE = LANE_BASE + index
        set_worker_lane(_WORKER_LANE)
    _WORKER_TELEMETRY = telemetry


def worker_lane() -> Optional[int]:
    """This worker's lane id (``LANE_BASE + slot``), or None outside one."""
    return _WORKER_LANE


def telemetry_active() -> bool:
    """True when this worker has a live telemetry queue.

    Lets task functions skip telemetry-only bookkeeping (e.g. cache
    counter deltas per config) when nobody is listening.
    """
    return _WORKER_TELEMETRY is not None


def worker_emit(kind: str, **fields: Any) -> None:
    """Send one telemetry event to the coordinator (no-op when off).

    Events are plain dicts — ``kind`` plus the worker's lane and pid,
    plus whatever ``fields`` the caller adds (see
    :mod:`repro.obs.telemetry` for the grammar the fleet view folds).
    Strictly fire-and-forget: a full or broken queue drops the event
    rather than perturbing the analysis.
    """
    queue = _WORKER_TELEMETRY
    if queue is None:
        return
    event = {"kind": str(kind), "lane": _WORKER_LANE, "pid": os.getpid()}
    event.update(fields)
    try:
        queue.put(event)
    except (OSError, ValueError):
        pass


def _ensure_epoch(epoch: int, ref: Any) -> None:
    """Reload the payload when a task carries a newer epoch tag.

    A respawned worker (after a crash) self-heals here too: its
    initializer installed whatever epoch the pool was created with, and
    the first task it receives upgrades it.
    """
    global _WORKER_PAYLOAD, _WORKER_EPOCH
    if epoch == _WORKER_EPOCH:
        return
    if ref is not None:
        _WORKER_PAYLOAD = _load_payload_ref(ref)
    _WORKER_EPOCH = epoch
    _WORKER_STATE.clear()


def _run_task(wrapped: Tuple[int, Any, Callable[[Any], T], Any]) -> T:
    epoch, ref, func, task = wrapped
    _ensure_epoch(epoch, ref)
    return func(task)


def worker_payload() -> Any:
    """The payload the coordinator shipped to this worker process."""
    return _WORKER_PAYLOAD


def worker_state(key: str, build: Callable[[Any], T]) -> T:
    """Per-worker memo: build once from the payload, reuse per task.

    Scoped to the payload *epoch* — a :meth:`WorkerPool.set_payload`
    swap clears it, since it derives from the payload.
    """
    try:
        return _WORKER_STATE[key]
    except KeyError:
        state = build(_WORKER_PAYLOAD)
        _WORKER_STATE[key] = state
        return state


def worker_persistent(key: str, build: Callable[[], T]) -> T:
    """Per-worker memo that survives payload epochs (e.g. bound caches)."""
    try:
        return _WORKER_PERSISTENT[key]
    except KeyError:
        state = build()
        _WORKER_PERSISTENT[key] = state
        return state


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


def chunked(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs.

    Chunk sizes differ by at most one and concatenating the chunks
    reproduces ``items`` exactly — the property the coordinator relies
    on for deterministic merges.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    items = list(items)
    n_chunks = min(n_chunks, len(items)) or 1
    base, extra = divmod(len(items), n_chunks)
    chunks: List[List[T]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        chunks.append(items[start : start + size])
        start += size
    return chunks


class WorkerPool:
    """A process pool carrying one shared payload to every worker.

    Parameters
    ----------
    jobs:
        Worker process count (already resolved; must be >= 2 — a
        single-job run should bypass the pool entirely and call the
        sequential code path).
    payload:
        Arbitrary picklable object delivered once to each worker via
        the pool initializer; task functions read it back with
        :func:`worker_payload` / :func:`worker_state`.
    use_shm:
        Ship payload epochs through :mod:`repro.batch.shm` (default)
        so a :meth:`set_payload` swap costs one pickle total instead of
        one per worker.  When shared memory is unavailable the swap
        falls back to restarting the pool processes (correct, but the
        per-worker epoch-scoped state is rebuilt).
    telemetry:
        Open a telemetry queue from the workers back to the
        coordinator: task functions may then call :func:`worker_emit`
        and the coordinator drains with :meth:`drain_telemetry` (or a
        live :class:`repro.obs.telemetry.TelemetryDrain` thread while a
        ``map`` blocks).  Off by default — events cost a queue put per
        emission.  Lane ids are assigned either way.
    """

    def __init__(
        self,
        jobs: int,
        payload: Any,
        *,
        use_shm: bool = True,
        telemetry: bool = False,
    ) -> None:
        if jobs < 2:
            raise ValueError(f"WorkerPool needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        methods = multiprocessing.get_all_start_methods()
        self.start_method = "fork" if "fork" in methods else methods[0]
        if self.start_method != "fork":
            _LOG.info(
                "worker pool start method %s",
                kv(start_method=self.start_method, jobs=jobs, fork_available=False),
            )
        self.use_shm = use_shm
        self._epoch = 0
        self._payload: Any = payload
        #: segment holding the *current* epoch's pickled payload; built
        #: lazily — the initial delivery rides the initializer (free
        #: under ``fork``), only epoch swaps need the segment
        self._payload_spec: Optional[_shm.ShmSpec] = None
        self._context = multiprocessing.get_context(
            self.start_method if "fork" in methods else None
        )
        #: next free worker-lane slot; workers claim LANE_BASE + slot
        #: in their initializer (reset to 0 on a pool restart so the
        #: replacement workers re-claim the same lane range)
        self._lane_counter = self._context.Value("i", 0)
        self.telemetry_queue = (
            self._context.SimpleQueue() if telemetry else None
        )
        self._pool = self._context.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(
                self._epoch,
                payload,
                self._lane_counter,
                self.telemetry_queue,
            ),
        )

    def set_payload(self, payload: Any) -> None:
        """Swap the payload without restarting workers (new epoch).

        The previous epoch's shared segment is unlinked eagerly — live
        worker mappings survive the unlink, and any worker that never
        loaded the old epoch will only ever be asked for the new one.
        """
        self._epoch += 1
        self._payload = payload
        old_spec = self._payload_spec
        self._payload_spec = None
        if self.use_shm:
            try:
                self._payload_spec = _shm.put_pickled(payload)
            except _shm.ShmUnavailable as exc:
                _LOG.info(
                    "shared memory unavailable, restarting pool per epoch: %s", exc
                )
                self.use_shm = False
        if self._payload_spec is None:
            # fallback: re-deliver through the initializer; workers are
            # replaced, so epoch-scoped state rebuilds (persistent
            # per-worker state is lost too — the disk cache tier covers
            # cross-config reuse on such platforms)
            self._pool.terminate()
            self._pool.join()
            with self._lane_counter.get_lock():
                self._lane_counter.value = 0
            self._pool = self._context.Pool(
                processes=self.jobs,
                initializer=_init_worker,
                initargs=(
                    self._epoch,
                    payload,
                    self._lane_counter,
                    self.telemetry_queue,
                ),
            )
        _shm.unlink_spec(old_spec)

    @property
    def epochs_served(self) -> int:
        """How many :meth:`set_payload` swaps this pool has absorbed."""
        return self._epoch

    def map(
        self,
        func: Callable[[Any], T],
        tasks: Iterable[Any],
        timeout: Optional[float] = None,
    ) -> List[T]:
        """Run ``func`` over ``tasks``; results in task order.

        A worker exception aborts the call and re-raises in the
        coordinator (pickled through the pool's result queue).  With
        ``timeout`` the call raises :class:`multiprocessing.TimeoutError`
        instead of hanging when a worker dies mid-task (a killed worker
        is respawned by the pool, but its in-flight task is lost).
        """
        # ``ref`` self-heals crash-respawned workers: their initializer
        # installed the pool-creation payload, and the first task they
        # see upgrades them to the current epoch from shared memory.
        ref = self._payload_spec
        wrapped = [(self._epoch, ref, func, task) for task in tasks]
        if timeout is None:
            return self._pool.map(_run_task, wrapped, chunksize=1)
        return self._pool.map_async(_run_task, wrapped, chunksize=1).get(timeout)

    def drain_telemetry(self) -> List[dict]:
        """Collect every telemetry event currently queued (non-blocking).

        Returns ``[]`` when telemetry is off.  Used between map waves —
        for *live* consumption while a map blocks, hand
        :attr:`telemetry_queue` to a
        :class:`repro.obs.telemetry.TelemetryDrain` instead.
        """
        queue = self.telemetry_queue
        if queue is None:
            return []
        events: List[dict] = []
        try:
            while not queue.empty():
                events.append(queue.get())
        except (OSError, EOFError):
            pass
        return events

    def _unlink_payload(self) -> None:
        _shm.unlink_spec(self._payload_spec)
        self._payload_spec = None

    def close(self) -> None:
        self._pool.close()
        self._pool.join()
        self._unlink_payload()
        self.drain_telemetry()

    def terminate(self) -> None:
        self._pool.terminate()
        self._pool.join()
        self._unlink_payload()
        self.drain_telemetry()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()
