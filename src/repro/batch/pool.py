"""Worker-pool plumbing shared by the batch engine.

A thin, deterministic wrapper over :class:`multiprocessing.pool.Pool`:

* **fork first** — the coordinator prefers the ``fork`` start method so
  workers inherit the (read-only) network topology for free; on
  platforms without it the payload travels through the ``spawn``
  initializer instead.  Either way the payload is delivered exactly
  once per worker, not once per task.
* **persistent per-worker state** — the initializer parks the payload
  in a module global; task functions lazily build whatever expensive
  state they need from it (a prepared analyzer, cached port-flow sets)
  and reuse it across every task the worker receives.
* **ordered results** — ``map()`` returns results in task-submission
  order regardless of which worker finished first, so merging is
  deterministic by construction.
* **error transparency** — the analysis exceptions
  (:mod:`repro.errors`) are picklable; a worker raising one surfaces
  unchanged in the coordinator, where the CLI's existing handler maps
  it to exit codes 3/4/5.

The pool deliberately exposes only what the batch engine needs; it is
not a general task framework.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["WorkerPool", "chunked", "resolve_jobs"]

T = TypeVar("T")

#: Payload slot filled by :func:`_init_worker` in every pool process.
_WORKER_PAYLOAD: Optional[Any] = None
#: Lazily-built per-worker state, keyed by task family (see ``worker_state``).
_WORKER_STATE: dict = {}


def _init_worker(payload: Any) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    _WORKER_STATE.clear()


def worker_payload() -> Any:
    """The payload the coordinator shipped to this worker process."""
    return _WORKER_PAYLOAD


def worker_state(key: str, build: Callable[[Any], T]) -> T:
    """Per-worker memo: build once from the payload, reuse per task."""
    try:
        return _WORKER_STATE[key]
    except KeyError:
        state = build(_WORKER_PAYLOAD)
        _WORKER_STATE[key] = state
        return state


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


def chunked(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs.

    Chunk sizes differ by at most one and concatenating the chunks
    reproduces ``items`` exactly — the property the coordinator relies
    on for deterministic merges.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    items = list(items)
    n_chunks = min(n_chunks, len(items)) or 1
    base, extra = divmod(len(items), n_chunks)
    chunks: List[List[T]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        chunks.append(items[start : start + size])
        start += size
    return chunks


class WorkerPool:
    """A process pool carrying one shared payload to every worker.

    Parameters
    ----------
    jobs:
        Worker process count (already resolved; must be >= 2 — a
        single-job run should bypass the pool entirely and call the
        sequential code path).
    payload:
        Arbitrary picklable object delivered once to each worker via
        the pool initializer; task functions read it back with
        :func:`worker_payload` / :func:`worker_state`.
    """

    def __init__(self, jobs: int, payload: Any) -> None:
        if jobs < 2:
            raise ValueError(f"WorkerPool needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        context = multiprocessing.get_context(method)
        self._pool = context.Pool(
            processes=jobs, initializer=_init_worker, initargs=(payload,)
        )

    def map(self, func: Callable[[Any], T], tasks: Iterable[Any]) -> List[T]:
        """Run ``func`` over ``tasks``; results in task order.

        A worker exception aborts the call and re-raises in the
        coordinator (pickled through the pool's result queue).
        """
        return self._pool.map(func, tasks, chunksize=1)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def terminate(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()
