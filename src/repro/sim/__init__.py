"""Frame-level discrete-event simulation of AFDX networks.

The analytic bounds of :mod:`repro.netcalc` and :mod:`repro.trajectory`
are *upper* bounds; this package provides the matching *lower*
witnesses: an event-driven simulator of the modelled network — per-VL
BAG regulators at the end systems, FIFO output ports at link rate,
constant technological latency per switch, multicast duplication at the
forking switches — that measures observed end-to-end delays.

The invariant ``max observed delay <= analytic bound`` is asserted
throughout the test suite (it is how the reproduction validates both
analyses without the authors' testbed) and demonstrated in
``examples/simulation_validation.py``.

Entry point: :func:`simulate` with a :class:`TrafficScenario`.
"""

from repro.sim.engine import Simulator
from repro.sim.network_sim import NetworkSimulation
from repro.sim.scenarios import TrafficScenario, simulate
from repro.sim.search import PathTightness, TightnessReport, evaluate_tightness
from repro.sim.tracer import DelayTracer, SimulationResult

__all__ = [
    "Simulator",
    "NetworkSimulation",
    "TrafficScenario",
    "simulate",
    "DelayTracer",
    "SimulationResult",
    "PathTightness",
    "TightnessReport",
    "evaluate_tightness",
]
