"""Delay recording and simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.network.port import PortId

__all__ = ["DelayTracer", "PathDelayStats", "SimulationResult"]

FlowPathKey = Tuple[str, int]


@dataclass(frozen=True)
class PathDelayStats:
    """Observed end-to-end delay statistics of one VL path."""

    vl_name: str
    path_index: int
    n_frames: int
    min_us: float
    mean_us: float
    max_us: float

    @property
    def jitter_us(self) -> float:
        """Observed delay spread (max - min)."""
        return self.max_us - self.min_us


class DelayTracer:
    """Accumulates per-path delay samples during a run.

    Keeps only the running aggregate (count/sum/min/max) per path plus
    an optional bounded sample list, so multi-second simulations of the
    industrial configuration stay memory-flat.
    """

    def __init__(self, keep_samples: int = 0):
        if keep_samples < 0:
            raise ValueError(f"keep_samples must be >= 0, got {keep_samples}")
        self._keep = keep_samples
        self._count: Dict[FlowPathKey, int] = {}
        self._sum: Dict[FlowPathKey, float] = {}
        self._min: Dict[FlowPathKey, float] = {}
        self._max: Dict[FlowPathKey, float] = {}
        self.samples: Dict[FlowPathKey, List[float]] = {}

    def record(self, vl_name: str, path_index: int, delay_us: float) -> None:
        """Add one observed end-to-end delay."""
        if delay_us < 0:
            raise ValueError(f"negative delay recorded: {delay_us}")
        key = (vl_name, path_index)
        self._count[key] = self._count.get(key, 0) + 1
        self._sum[key] = self._sum.get(key, 0.0) + delay_us
        self._min[key] = min(self._min.get(key, delay_us), delay_us)
        self._max[key] = max(self._max.get(key, delay_us), delay_us)
        if self._keep:
            bucket = self.samples.setdefault(key, [])
            if len(bucket) < self._keep:
                bucket.append(delay_us)

    def stats(self) -> Dict[FlowPathKey, PathDelayStats]:
        """Aggregate statistics per path."""
        return {
            key: PathDelayStats(
                vl_name=key[0],
                path_index=key[1],
                n_frames=self._count[key],
                min_us=self._min[key],
                mean_us=self._sum[key] / self._count[key],
                max_us=self._max[key],
            )
            for key in self._count
        }


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    duration_us:
        Simulated horizon.
    paths:
        Observed delay statistics per VL path (paths whose VL never
        emitted a frame are absent).
    peak_backlog_bits:
        Largest buffer occupancy observed per output port — the
        empirical counterpart of the Network Calculus backlog bound.
    """

    duration_us: float
    paths: Dict[FlowPathKey, PathDelayStats] = field(default_factory=dict)
    peak_backlog_bits: Dict[PortId, float] = field(default_factory=dict)

    def max_delay_us(self, vl_name: str, path_index: int = 0) -> float:
        """Largest observed delay of one VL path."""
        return self.paths[(vl_name, path_index)].max_us

    def worst_observed(self) -> PathDelayStats:
        """The path with the largest observed delay."""
        if not self.paths:
            raise ValueError("simulation recorded no delivered frames")
        return max(self.paths.values(), key=lambda s: s.max_us)
