"""Wiring a :class:`~repro.network.Network` into the event engine.

:class:`NetworkSimulation` instantiates one simulated FIFO port per used
output port, builds per-VL forwarding tables from the multicast trees,
applies each node's technological latency between reception and
enqueueing, duplicates frames at forking switches, and traces
end-to-end delays at the destination end systems.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.network.port import PortId
from repro.network.topology import Network
from repro.obs.logging import get_logger, kv
from repro.sim.engine import Simulator
from repro.sim.frames import Frame
from repro.sim.ports import SimOutputPort
from repro.sim.tracer import DelayTracer, SimulationResult

__all__ = ["NetworkSimulation"]

_LOG = get_logger("sim")


class NetworkSimulation:
    """Executable model of an AFDX configuration.

    Parameters
    ----------
    network:
        The configuration to simulate (not mutated).
    simulator:
        An event engine to share; a fresh one is created by default.
    keep_samples:
        Per-path delay samples to retain verbatim (0 = aggregates only).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` handed to
        the default-constructed :class:`Simulator` (ignored when an
        engine is shared in).
    """

    def __init__(
        self,
        network: Network,
        simulator: Optional[Simulator] = None,
        keep_samples: int = 0,
        metrics=None,
    ):
        self.network = network
        self.simulator = simulator if simulator is not None else Simulator(metrics=metrics)
        self.tracer = DelayTracer(keep_samples=keep_samples)
        self._sequence: Dict[str, int] = {}

        # forwarding[(vl, node)] -> next nodes on the VL tree at that node
        self._forwarding: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        # dest_index[(vl, destination_es)] -> path index (for tracing)
        self._dest_index: Dict[Tuple[str, str], int] = {}
        for name, vl in network.virtual_links.items():
            hops: Dict[str, list] = {}
            for idx, path in enumerate(vl.paths):
                self._dest_index[(name, path[-1])] = idx
                for a, b in zip(path, path[1:]):
                    nexts = hops.setdefault(a, [])
                    if b not in nexts:
                        nexts.append(b)
            for node, nexts in hops.items():
                self._forwarding[(name, node)] = tuple(nexts)

        self._ports: Dict[PortId, SimOutputPort] = {}
        for port_id in network.used_ports():

            def deliver(frame: Frame, time: float, pid: PortId = port_id) -> None:
                self._on_delivered(pid, frame, time)

            self._ports[port_id] = SimOutputPort(
                self.simulator,
                rate_bits_per_us=network.link_rate(*port_id),
                on_delivered=deliver,
                priority_of=lambda frame: network.vl(frame.vl_name).priority,
            )

    # ------------------------------------------------------------------

    def release_frame(
        self, vl_name: str, time_us: float, size_bits: Optional[float] = None
    ) -> None:
        """Schedule the release of one frame of a VL at ``time_us``.

        The frame enters the source end system's output queue after the
        ES's technological latency (0 by default).  ``size_bits``
        defaults to the VL's ``s_max``.
        """
        vl = self.network.vl(vl_name)
        if size_bits is None:
            size_bits = vl.s_max_bits
        if not vl.s_min_bits - 1e-9 <= size_bits <= vl.s_max_bits + 1e-9:
            raise ValueError(
                f"frame of {size_bits} bits violates VL {vl_name}'s contract "
                f"[{vl.s_min_bits}, {vl.s_max_bits}]"
            )
        seq = self._sequence.get(vl_name, 0)
        self._sequence[vl_name] = seq + 1
        frame = Frame(
            vl_name=vl_name, sequence=seq, size_bits=size_bits, release_time_us=time_us
        )
        source_latency = self.network.node(vl.source).technological_latency_us
        first_port = (vl.source, vl.paths[0][1])

        self.simulator.schedule(
            time_us + source_latency,
            lambda: self._ports[first_port].enqueue(frame),
        )

    def _on_delivered(self, port_id: PortId, frame: Frame, time: float) -> None:
        """A frame's last bit reached ``port_id``'s downstream node."""
        node_name = port_id[1]
        node = self.network.node(node_name)
        if node.is_end_system:
            path_index = self._dest_index[(frame.vl_name, node_name)]
            self.tracer.record(
                frame.vl_name, path_index, time - frame.release_time_us
            )
            return
        next_hops = self._forwarding[(frame.vl_name, node_name)]
        for next_node in next_hops:  # multicast duplication happens here
            port = self._ports[(node_name, next_node)]
            self.simulator.schedule(
                time + node.technological_latency_us,
                lambda p=port: p.enqueue(frame),
            )

    # ------------------------------------------------------------------

    def run(self, until_us: float) -> SimulationResult:
        """Drive the event loop to ``until_us`` and collect results."""
        _LOG.info(
            "run start %s",
            kv(
                until_us=until_us,
                ports=len(self._ports),
                vls=len(self.network.virtual_links),
            ),
        )
        self.simulator.run(until_us)
        peaks = {
            pid: port.peak_backlog_bits for pid, port in self._ports.items()
        }
        if _LOG.isEnabledFor(10):  # DEBUG: one high-water line per queue
            for pid in sorted(peaks):
                _LOG.debug(
                    "queue high-water %s",
                    kv(port="->".join(pid), peak_backlog_bits=peaks[pid]),
                )
        paths = self.tracer.stats()
        worst_us = max((stats.max_us for stats in paths.values()), default=0.0)
        _LOG.info(
            "run finish %s",
            kv(
                events=self.simulator.processed_events,
                paths=len(paths),
                worst_observed_us=worst_us,
                peak_backlog_bits=max(peaks.values(), default=0.0),
            ),
        )
        return SimulationResult(
            duration_us=until_us,
            paths=paths,
            peak_backlog_bits=peaks,
        )
