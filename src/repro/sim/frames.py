"""Simulated Ethernet frames."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Frame"]


@dataclass(frozen=True)
class Frame:
    """One Ethernet frame of a Virtual Link in flight.

    Multicast duplication creates several :class:`Frame` objects sharing
    ``vl_name`` / ``sequence`` / ``release_time`` but heading to
    different destinations; each copy is traced independently, matching
    the per-path accounting of the analyses.
    """

    vl_name: str
    sequence: int
    size_bits: float
    release_time_us: float

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bits}")
        if self.release_time_us < 0:
            raise ValueError(f"release time must be >= 0, got {self.release_time_us}")
