"""BAG regulators: per-VL traffic sources.

An AFDX end system shapes every VL it emits so that two consecutive
frames are separated by at least the BAG.  The regulator schedules the
corresponding release processes:

* ``periodic`` emission releases a frame exactly every BAG — the VL's
  contract saturated, the most adversarial admissible behaviour;
* ``sporadic`` emission adds random extra idle time between frames,
  modelling functions that undershoot their envelope.

Frame sizes are either pinned at ``s_max`` (worst case) or drawn
uniformly from ``[s_min, s_max]``.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.network_sim import NetworkSimulation

__all__ = ["schedule_vl_traffic"]


def schedule_vl_traffic(
    simulation: NetworkSimulation,
    vl_name: str,
    horizon_us: float,
    offset_us: float = 0.0,
    periodic: bool = True,
    max_size: bool = True,
    rng: Optional[random.Random] = None,
) -> int:
    """Pre-schedule all releases of one VL up to ``horizon_us``.

    Returns the number of frames scheduled.  ``rng`` is required when
    ``periodic`` is False or ``max_size`` is False.
    """
    if offset_us < 0:
        raise ValueError(f"offset must be >= 0, got {offset_us}")
    if (not periodic or not max_size) and rng is None:
        raise ValueError("random emission modes require an rng")
    vl = simulation.network.vl(vl_name)
    bag = vl.bag_us
    count = 0
    time = offset_us
    while time < horizon_us:
        if max_size:
            size = vl.s_max_bits
        else:
            assert rng is not None
            size = float(rng.uniform(vl.s_min_bits, vl.s_max_bits))
        simulation.release_frame(vl_name, time_us=time, size_bits=size)
        count += 1
        if periodic:
            time += bag
        else:
            assert rng is not None
            time += bag * (1.0 + rng.expovariate(2.0))
    return count
