"""Simulated FIFO / static-priority output ports.

Each :class:`SimOutputPort` mirrors the AFDX switch architecture of the
paper's Sec. II-A: no input buffering, one buffer per output port,
frames clocked onto the link at the link rate, one at a time,
non-preemptively.  The default is a single FIFO (the paper's model);
passing a ``priority_of`` extractor turns the port into a two-level
non-preemptive static-priority queue (FIFO within each level) — the
ARINC-664 option analysed by :mod:`repro.netcalc.priority`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.frames import Frame

__all__ = ["SimOutputPort"]

#: Callback invoked when a frame's last bit leaves the port:
#: ``(frame, completion_time_us)``.
DeliveryCallback = Callable[[Frame, float], None]


class SimOutputPort:
    """A FIFO (or static-priority) queue served at link rate.

    Parameters
    ----------
    simulator:
        The event engine driving this port.
    rate_bits_per_us:
        Link transmission rate.
    on_delivered:
        Called at the instant the frame's transmission completes (the
        frame is then entirely received by the downstream node — AFDX
        switches are store-and-forward).
    priority_of:
        Optional map from frame to scheduling class (higher serves
        first, non-preemptively).  ``None`` (default) is plain FIFO.
    """

    def __init__(
        self,
        simulator: Simulator,
        rate_bits_per_us: float,
        on_delivered: DeliveryCallback,
        priority_of: Optional[Callable[[Frame], int]] = None,
    ):
        if rate_bits_per_us <= 0:
            raise ValueError(f"port rate must be positive, got {rate_bits_per_us}")
        self._sim = simulator
        self._rate = rate_bits_per_us
        self._on_delivered = on_delivered
        self._priority_of = priority_of
        self._queues: Dict[int, Deque[Frame]] = {}
        self._transmitting: Optional[Frame] = None
        self._transmission_started = 0.0
        self._peak_backlog_bits = 0.0
        self._busy_bits = 0.0
        self._arrived_bits = 0.0

    # ------------------------------------------------------------------

    @property
    def backlog_bits(self) -> float:
        """Bits currently buffered, fluid convention.

        Arrived minus served bits, with the frame on the wire counted
        pro rata — the convention of the Network Calculus backlog bound
        this quantity is validated against.
        """
        served = self._busy_bits
        if self._transmitting is not None:
            served += (self._sim.now - self._transmission_started) * self._rate
        return max(0.0, self._arrived_bits - served)

    @property
    def peak_backlog_bits(self) -> float:
        """Largest backlog observed so far (buffer-dimensioning witness)."""
        return self._peak_backlog_bits

    @property
    def transmitted_bits(self) -> float:
        """Total bits fully transmitted so far."""
        return self._busy_bits

    def utilization(self) -> float:
        """Fraction of elapsed time the port spent transmitting."""
        if self._sim.now <= 0:
            return 0.0
        return self._busy_bits / self._rate / self._sim.now

    # ------------------------------------------------------------------

    def enqueue(self, frame: Frame) -> None:
        """Accept a frame into the buffer; start transmitting if idle."""
        level = 0 if self._priority_of is None else self._priority_of(frame)
        self._queues.setdefault(level, deque()).append(frame)
        self._arrived_bits += frame.size_bits
        self._peak_backlog_bits = max(self._peak_backlog_bits, self.backlog_bits)
        if self._transmitting is None:
            self._start_next()

    def _pop_next(self) -> Frame:
        level = max(lvl for lvl, queue in self._queues.items() if queue)
        return self._queues[level].popleft()

    def _start_next(self) -> None:
        frame = self._pop_next()
        self._transmitting = frame
        self._transmission_started = self._sim.now
        duration = frame.size_bits / self._rate
        self._sim.schedule_in(duration, self._finish)

    def _finish(self) -> None:
        frame = self._transmitting
        assert frame is not None, "transmission completed on an idle port"
        self._transmitting = None
        self._busy_bits += frame.size_bits
        self._on_delivered(frame, self._sim.now)
        if any(self._queues.values()):
            self._start_next()
