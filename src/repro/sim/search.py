"""Pessimism evaluation: how far are the bounds from reachable delays?

Worst-case bounds are safe by construction; the open question for a
certification team is their *pessimism*.  Following the methodology of
the companion work (Charara, Scharbarg, Ermont & Fraboul, ECRTS 2006:
exact worst cases are intractable, but simulation provides reachable
lower bounds), this module drives the frame-level simulator through a
portfolio of scenarios — the synchronized saturated release plus seeded
randomized variants — and reports, per VL path, the largest *observed*
delay against the analytic bound.

``observed / bound`` is then a lower bound on the bound's tightness:
1.0 means the analytic bound is exact (attained); small values flag
paths whose bound may be very conservative (or whose worst case needs a
cleverer scenario).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.network.topology import Network
from repro.sim.scenarios import TrafficScenario, simulate

__all__ = ["PathTightness", "TightnessReport", "evaluate_tightness"]

FlowPathKey = Tuple[str, int]


@dataclass(frozen=True)
class PathTightness:
    """Observed-vs-bound figures for one VL path."""

    vl_name: str
    path_index: int
    bound_us: float
    observed_max_us: float
    scenario: str
    """Label of the scenario that produced the largest observed delay."""

    @property
    def coverage(self) -> float:
        """``observed / bound`` — 1.0 when the bound is attained."""
        return self.observed_max_us / self.bound_us


@dataclass
class TightnessReport:
    """Aggregate tightness over every VL path."""

    paths: Dict[FlowPathKey, PathTightness]
    n_scenarios: int

    @property
    def mean_coverage(self) -> float:
        """Average observed/bound over all paths."""
        values = [p.coverage for p in self.paths.values()]
        return math.fsum(values) / len(values)

    @property
    def min_coverage(self) -> float:
        """The least-covered path's observed/bound ratio."""
        return min(p.coverage for p in self.paths.values())

    def attained(self, tolerance: float = 1e-6) -> List[PathTightness]:
        """Paths whose analytic bound is reached exactly by simulation."""
        return [
            p
            for p in self.paths.values()
            if p.observed_max_us >= p.bound_us - tolerance
        ]

    def violations(self, tolerance: float = 1e-6) -> List[PathTightness]:
        """Paths observed ABOVE their bound — must be empty for a sound
        analysis; non-empty output is how this library demonstrated the
        'paper' serialization credit's optimism."""
        return [
            p
            for p in self.paths.values()
            if p.observed_max_us > p.bound_us + tolerance
        ]


def evaluate_tightness(
    network: Network,
    bounds: Mapping[FlowPathKey, float],
    duration_ms: float = 100.0,
    random_seeds: int = 5,
) -> TightnessReport:
    """Run the scenario portfolio and compare against ``bounds``.

    Parameters
    ----------
    bounds:
        ``(vl_name, path_index) -> bound_us`` — typically the combined
        analysis (or a single method's result to evaluate it alone).
    duration_ms:
        Horizon of each scenario run.
    random_seeds:
        Number of randomized-offset scenarios on top of the
        synchronized one.
    """
    scenarios = [("synchronized", TrafficScenario(duration_ms=duration_ms))]
    for seed in range(random_seeds):
        scenarios.append(
            (
                f"random-offsets-{seed}",
                TrafficScenario(
                    duration_ms=duration_ms, synchronized=False, seed=seed
                ),
            )
        )

    best: Dict[FlowPathKey, Tuple[float, str]] = {}
    for label, scenario in scenarios:
        observed = simulate(network, scenario)
        for key, stats in observed.paths.items():
            current = best.get(key)
            if current is None or stats.max_us > current[0]:
                best[key] = (stats.max_us, label)

    missing = set(bounds) - set(best)
    if missing:
        raise ValueError(f"no frames observed for paths: {sorted(missing)[:5]}")

    paths = {
        key: PathTightness(
            vl_name=key[0],
            path_index=key[1],
            bound_us=bounds[key],
            observed_max_us=best[key][0],
            scenario=best[key][1],
        )
        for key in bounds
    }
    return TightnessReport(paths=paths, n_scenarios=len(scenarios))
