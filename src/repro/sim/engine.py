"""Minimal deterministic discrete-event engine.

A binary-heap event queue of ``(time, sequence, action)`` entries.  The
monotonically increasing sequence number makes simultaneous events fire
in scheduling order, so a given scenario always replays identically —
a requirement for the property-based tests that compare simulation runs
against analytic bounds.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["Simulator"]

Action = Callable[[], None]


class Simulator:
    """Event loop with a virtual clock in microseconds.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; each
        :meth:`run` then records the ``sim.run`` timer and the
        ``sim.events_processed`` / ``sim.events_scheduled`` counters.
        The per-event loop itself is untouched — bookkeeping happens
        once per :meth:`run` call, so instrumentation costs nothing
        measurable.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._queue: List[Tuple[float, int, Action]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._metrics = metrics

    @property
    def now(self) -> float:
        """Current virtual time (us)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, time: float, action: Action) -> None:
        """Schedule ``action`` to run at virtual time ``time``.

        Scheduling in the past raises — it would silently reorder
        causality.
        """
        if time < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule at {time} (now is {self._now}): time went backwards"
            )
        heapq.heappush(self._queue, (time, self._sequence, action))
        self._sequence += 1

    def schedule_in(self, delay: float, action: Action) -> None:
        """Schedule ``action`` ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, action)

    def run(self, until: float) -> None:
        """Execute events in order until the clock passes ``until``.

        Events scheduled exactly at ``until`` are still executed.
        """
        if self._metrics is None:
            self._run(until)
            return
        processed_before = self._processed
        with self._metrics.timer("sim.run"):
            self._run(until)
        self._metrics.counter("sim.events_processed", self._processed - processed_before)
        self._metrics.gauge("sim.events_scheduled", self._sequence)
        self._metrics.gauge("sim.virtual_time_us", self._now)

    def _run(self, until: float) -> None:
        while self._queue and self._queue[0][0] <= until + 1e-9:
            time, _seq, action = heapq.heappop(self._queue)
            self._now = max(self._now, time)
            self._processed += 1
            action()
        self._now = max(self._now, until)
