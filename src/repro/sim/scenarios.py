"""Canned traffic scenarios and the top-level :func:`simulate` driver."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.network.topology import Network
from repro.sim.network_sim import NetworkSimulation
from repro.sim.regulator import schedule_vl_traffic
from repro.sim.tracer import SimulationResult

__all__ = ["TrafficScenario", "simulate"]


@dataclass(frozen=True)
class TrafficScenario:
    """How every VL behaves during a run.

    Attributes
    ----------
    duration_ms:
        Simulated horizon.
    synchronized:
        When True all VLs release their first frame at t = 0 — the
        simultaneous-arrival pattern the worst-case analyses reason
        about, and empirically the source of the largest observed
        delays.  When False each VL gets a random offset within its
        BAG.
    periodic:
        Saturate the BAG (True) or emit sporadically (False).
    max_size:
        Pin frames at ``s_max`` (True) or draw sizes from the allowed
        range (False).
    seed:
        Drives every random choice; same scenario -> same run.
    """

    duration_ms: float = 100.0
    synchronized: bool = True
    periodic: bool = True
    max_size: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_ms}")


def simulate(
    network: Network,
    scenario: TrafficScenario = TrafficScenario(),
    keep_samples: int = 0,
    simulation: Optional[NetworkSimulation] = None,
    metrics=None,
) -> SimulationResult:
    """Run one scenario on a configuration and return observed delays.

    The returned maxima are *lower* witnesses for the worst case: every
    analytic bound must dominate them (asserted across the test suite).
    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) makes
    the default-constructed engine record event counts and run time.
    """
    if simulation is None:
        simulation = NetworkSimulation(network, keep_samples=keep_samples, metrics=metrics)
    rng = random.Random(scenario.seed)
    horizon = scenario.duration_ms * 1000.0
    needs_rng = not scenario.periodic or not scenario.max_size
    for vl_name in sorted(network.virtual_links):
        offset = 0.0
        if not scenario.synchronized:
            offset = rng.uniform(0.0, network.vl(vl_name).bag_us)
        schedule_vl_traffic(
            simulation,
            vl_name,
            horizon_us=horizon,
            offset_us=offset,
            periodic=scenario.periodic,
            max_size=scenario.max_size,
            rng=rng if (needs_rng or not scenario.synchronized) else None,
        )
    # drain: run past the horizon long enough for in-flight frames to land
    drain = max(network.vl(v).bag_us for v in network.virtual_links) * 4 if network.virtual_links else 0
    return simulation.run(horizon + drain)
