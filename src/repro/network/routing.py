"""Static route computation helpers.

Real AFDX routes are engineered offline and frozen into the switch
configuration tables; this module provides the equivalent offline step
for programmatically built networks: deterministic shortest-path routing
over the physical topology (BFS with lexicographic tie-breaking, so a
given topology always yields the same routes), plus multicast-tree
construction that keeps the shared prefix maximal.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidTopologyError, UnknownNodeError
from repro.network.topology import Network

__all__ = ["shortest_path", "route_virtual_link", "reachable_end_systems"]


def shortest_path(network: Network, source: str, destination: str) -> Tuple[str, ...]:
    """Deterministic shortest node path between two nodes.

    Breadth-first search; among equal-length routes the lexicographically
    smallest predecessor wins, making routing reproducible for the
    seeded industrial-configuration generator.

    Raises
    ------
    InvalidTopologyError
        When no route exists.
    """
    network.node(source)
    network.node(destination)
    if source == destination:
        return (source,)
    parent: Dict[str, Optional[str]] = {source: None}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbor in sorted(network.neighbors(current)):
            if neighbor not in parent:
                parent[neighbor] = current
                if neighbor == destination:
                    path: List[str] = [destination]
                    while parent[path[-1]] is not None:
                        path.append(parent[path[-1]])  # type: ignore[index]
                    return tuple(reversed(path))
                # frames never transit through an end system
                if network.node(neighbor).is_switch:
                    frontier.append(neighbor)
    raise InvalidTopologyError(f"no route from {source!r} to {destination!r}")


def route_virtual_link(
    network: Network, source: str, destinations: Sequence[str]
) -> Tuple[Tuple[str, ...], ...]:
    """Compute one shortest path per destination for a (multicast) VL.

    Each path is the plain shortest path from the source; because the
    BFS is deterministic, paths towards different destinations share
    their common prefix automatically, giving a valid multicast tree.
    """
    if not destinations:
        raise UnknownNodeError("a VL needs at least one destination")
    return tuple(shortest_path(network, source, dest) for dest in destinations)


def reachable_end_systems(network: Network, source: str) -> Tuple[str, ...]:
    """End systems reachable from ``source`` (excluding itself), sorted."""
    out = []
    for es in network.end_systems():
        if es.name == source:
            continue
        try:
            shortest_path(network, source, es.name)
        except InvalidTopologyError:
            continue
        out.append(es.name)
    return tuple(out)
