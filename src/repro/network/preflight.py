"""``ConfigVerifier``: static preflight checks for network configurations.

The paper's bounds (both Network Calculus and Trajectory) are only
meaningful on a *well-formed* input: a feed-forward VL routing whose
every output port is stable.  This module verifies those preconditions
— plus the ARINC 664 admission rules — **before** any analysis runs,
turning what would surface as a deep exception (a non-converging
sweep, a ``ZeroDivisionError`` in a service curve) into a one-line
diagnostic with a stable rule id:

========  ========  ============================================================
id        severity  checked precondition
========  ========  ============================================================
CFG101    error     feed-forward routing (no cycle in the output-port graph)
CFG102    error     per-port stability ``sum(s_max / BAG) < C``
CFG103    warning   port utilization above the recommended margin
CFG104    error     BAG is a power of two in the 1..128 ms ARINC range
CFG105    error     frame sizes: ``s_min <= s_max`` within 64..1518 bytes
CFG106    error     route connectivity (every consecutive hop is a real link)
CFG107    error     route shape (no repeated node/port inside one path)
CFG108    error     multicast paths form a tree (fork once, never re-join)
CFG109    error     every end system wired to exactly one switch
CFG110    info      per-port utilization table
CFG111    error     duplicate VL names / duplicate paths within a VL
========  ========  ============================================================

Used by ``afdx lint CONFIG.json`` and, opt-in via ``--preflight``, by
``analyze`` / ``batch-sweep`` / ``whatif``.  The verifier never
mutates the network and never changes computed bounds — enabling the
preflight on a clean configuration is bit-identical to not enabling
it (``tests/lint/test_preflight.py``).

It operates in two stages so malformed documents still get structured
diagnostics: stage 1 checks the raw JSON document (frame sizes, BAGs,
route hops) without constructing model objects — a config the
:class:`~repro.network.virtual_link.VirtualLink` constructor would
reject still yields its rule id here; stage 2 builds the
:class:`~repro.network.topology.Network` and runs the graph-level
checks (cycle, stability, multicast trees).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, Severity
from repro.network.port import PortId
from repro.network.port_graph import port_successors
from repro.network.topology import Network
from repro.network.virtual_link import (
    ETHERNET_MAX_FRAME_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    STANDARD_BAGS_MS,
)

__all__ = [
    "CONFIG_RULES",
    "ConfigReport",
    "ConfigVerifier",
    "find_port_cycle",
    "verify_network",
    "verify_config_dict",
]


@dataclass(frozen=True)
class ConfigRule:
    """Catalogue entry of one configuration rule."""

    rule_id: str
    severity: Severity
    summary: str
    precondition: str  # the theory clause the rule protects (docs/LINT.md)


CONFIG_RULES: List[ConfigRule] = [
    ConfigRule(
        "CFG101", Severity.ERROR,
        "VL routing must be feed-forward (acyclic output-port graph)",
        "Both analyses require a feed-forward network: NC propagates "
        "bursts in topological port order, the Trajectory fixed point "
        "needs well-founded Smax prefixes (paper Sec. II; Bondorf et "
        "al. on the feed-forward precondition).",
    ),
    ConfigRule(
        "CFG102", Severity.ERROR,
        "every output port must be stable: sum(s_max/BAG) < C",
        "With aggregate long-term rate >= link rate the busy period "
        "and backlog are unbounded — no finite worst-case delay "
        "exists (stability precondition of both methods).",
    ),
    ConfigRule(
        "CFG103", Severity.WARNING,
        "port utilization above the recommended margin",
        "Certification practice keeps link load well below saturation "
        "(the paper's industrial configuration stays under ~15%); "
        "bounds near utilization 1 are finite but astronomically "
        "pessimistic.",
    ),
    ConfigRule(
        "CFG104", Severity.ERROR,
        "BAG must be a power of two between 1 and 128 ms",
        "ARINC 664 Part 7 admission rule; the paper's configurations "
        "use harmonic BAGs in exactly this range.",
    ),
    ConfigRule(
        "CFG105", Severity.ERROR,
        "frame sizes must satisfy 64 <= s_min <= s_max <= 1518 bytes",
        "Ethernet frame bounds policed at every switch entry (paper "
        "Sec. III-A-2); s_min > s_max would make the Trajectory "
        "competitor offsets Smax - Smin negative.",
    ),
    ConfigRule(
        "CFG106", Severity.ERROR,
        "every consecutive route hop must be a physical link",
        "A disconnected route has no output-port sequence: neither "
        "analysis can map the VL onto queues.",
    ),
    ConfigRule(
        "CFG107", Severity.ERROR,
        "a route must not repeat a node",
        "A repeated node is a routing loop inside one path — frames "
        "would revisit a queue, violating the feed-forward model.",
    ),
    ConfigRule(
        "CFG108", Severity.ERROR,
        "multicast paths of one VL must form a tree",
        "Frames duplicate only where paths fork; a re-join would "
        "deliver two copies through one port and break the grouping "
        "and serialization arguments (unique prefix per node).",
    ),
    ConfigRule(
        "CFG109", Severity.ERROR,
        "every end system connects to exactly one switch port",
        "ARINC 664 wiring rule; the source ES shaper model (one "
        "regulated output port per ES) depends on it.",
    ),
    ConfigRule(
        "CFG110", Severity.INFO,
        "per-port utilization table",
        "Informational: the load the stability margin is judged on.",
    ),
    ConfigRule(
        "CFG111", Severity.ERROR,
        "VL names and per-VL paths must be unique",
        "Duplicate names would silently merge two traffic contracts.",
    ),
]

CONFIG_RULES_BY_ID: Dict[str, ConfigRule] = {r.rule_id: r for r in CONFIG_RULES}

#: Utilization above which CFG103 (warning) fires.
DEFAULT_WARN_UTILIZATION = 0.75


@dataclass
class ConfigReport:
    """Outcome of a preflight verification of one configuration."""

    source: str
    findings: List[Finding] = field(default_factory=list)
    port_utilization: Dict[PortId, float] = field(default_factory=dict)
    built: bool = False  # stage 2 ran (the document was constructible)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def stability_only(self) -> bool:
        """True when every error is a stability (CFG102) violation.

        Drives the exit-code split: pure stability failures exit 4
        (unstable network), anything structural exits 3 (config error).
        """
        errors = self.errors
        return bool(errors) and all(f.rule_id == "CFG102" for f in errors)

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "built": self.built,
            "findings": [f.to_dict() for f in self.findings],
            "port_utilization": {
                f"{a}->{b}": round(util, 6)
                for (a, b), util in sorted(self.port_utilization.items())
            },
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": sum(
                    1 for f in self.findings if f.severity is Severity.INFO
                ),
            },
        }


def find_port_cycle(network: Network) -> Optional[List[PortId]]:
    """One concrete cycle of the output-port graph, or None.

    Iterative DFS with an explicit stack; neighbors are visited in
    sorted order so the reported cycle is deterministic.
    """
    succ = {pid: sorted(targets) for pid, targets in port_successors(network).items()}
    WHITE, GREY, BLACK = 0, 1, 2
    color = {pid: WHITE for pid in succ}
    parent: Dict[PortId, Optional[PortId]] = {}
    for root in sorted(succ):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[PortId, int]] = [(root, 0)]
        color[root] = GREY
        parent[root] = None
        while stack:
            node, idx = stack[-1]
            if idx < len(succ[node]):
                stack[-1] = (node, idx + 1)
                child = succ[node][idx]
                if color[child] == GREY:
                    # found: walk parents from node back to child
                    cycle = [node]
                    cursor = node
                    while cursor != child:
                        cursor = parent[cursor]
                        cycle.append(cursor)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if color[child] == WHITE:
                    color[child] = GREY
                    parent[child] = node
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return None


def _fmt_port(pid: PortId) -> str:
    return f"{pid[0]}->{pid[1]}"


class ConfigVerifier:
    """Static verifier for one configuration document or network.

    Parameters
    ----------
    max_utilization:
        Stability threshold for CFG102 (default 1.0 — the theoretical
        limit; admission control may verify against a stricter value).
    warn_utilization:
        CFG103 fires above this (default 0.75).
    utilization_table:
        Emit the CFG110 info entries (default True for ``afdx lint``;
        the preflight path disables them).
    """

    def __init__(
        self,
        max_utilization: float = 1.0,
        warn_utilization: float = DEFAULT_WARN_UTILIZATION,
        utilization_table: bool = True,
    ) -> None:
        if not 0 < max_utilization <= 1.0:
            raise ValueError(
                f"max_utilization must be in (0, 1], got {max_utilization}"
            )
        self.max_utilization = max_utilization
        self.warn_utilization = warn_utilization
        self.utilization_table = utilization_table

    # -- public entry points -------------------------------------------

    def verify_network(self, network: Network, source: str = "<network>") -> ConfigReport:
        """Stage-2 checks on an already-built :class:`Network`."""
        report = ConfigReport(source=source, built=True)
        self._check_wiring(network, report)
        self._check_vl_contracts(network, report)
        self._check_feed_forward(network, report)
        self._check_stability(network, report)
        report.findings.sort(key=lambda f: f.sort_key)
        return report

    def verify_dict(self, document: Dict[str, Any], source: str = "<dict>") -> ConfigReport:
        """Stage-1 raw-document checks, then stage 2 when constructible.

        Never raises on malformed content: structural problems become
        findings.  (A document that is not even a JSON object raises
        ``ConfigurationError`` like the loader would.)
        """
        if not isinstance(document, dict):
            raise ConfigurationError("configuration document must be a JSON object")
        report = ConfigReport(source=source)
        self._raw_checks(document, report)
        if not report.errors:
            from repro.network.serialization import network_from_dict

            try:
                network = network_from_dict(document)
            except ConfigurationError as exc:
                report.findings.append(
                    self._finding("CFG106", source, f"configuration rejected: {exc}")
                )
            else:
                built = self.verify_network(network, source=source)
                report.built = True
                report.findings.extend(built.findings)
                report.port_utilization = built.port_utilization
        report.findings.sort(key=lambda f: f.sort_key)
        return report

    # -- helpers --------------------------------------------------------

    def _finding(self, rule_id: str, source: str, message: str) -> Finding:
        rule = CONFIG_RULES_BY_ID[rule_id]
        return Finding(
            rule_id=rule_id,
            severity=rule.severity,
            path=source,
            line=0,
            column=0,
            message=message,
        )

    # -- stage 1: raw document -----------------------------------------

    def _raw_checks(self, document: Dict[str, Any], report: ConfigReport) -> None:
        source = report.source
        vls = document.get("virtual_links", [])
        if not isinstance(vls, list):
            report.findings.append(
                self._finding("CFG106", source, "'virtual_links' must be a list")
            )
            return
        links = document.get("links", [])
        link_set = set()
        if isinstance(links, list):
            for link in links:
                if isinstance(link, dict) and "a" in link and "b" in link:
                    link_set.add(frozenset((str(link["a"]), str(link["b"]))))
        seen_names: set = set()
        for vl in vls:
            if not isinstance(vl, dict):
                report.findings.append(
                    self._finding("CFG106", source, "virtual link entry is not an object")
                )
                continue
            name = str(vl.get("name", "?"))
            if name in seen_names:
                report.findings.append(
                    self._finding("CFG111", source, f"duplicate VL name {name!r}")
                )
            seen_names.add(name)
            self._raw_check_bag(vl, name, report)
            self._raw_check_sizes(vl, name, report)
            self._raw_check_paths(vl, name, link_set, report)

    def _raw_check_bag(self, vl: Dict[str, Any], name: str, report: ConfigReport) -> None:
        bag = vl.get("bag_ms")
        if not isinstance(bag, (int, float)) or isinstance(bag, bool):
            report.findings.append(
                self._finding("CFG104", report.source, f"VL {name!r}: BAG {bag!r} is not a number")
            )
            return
        if float(bag) not in [float(b) for b in STANDARD_BAGS_MS]:
            report.findings.append(
                self._finding(
                    "CFG104",
                    report.source,
                    f"VL {name!r}: BAG {bag} ms is not an ARINC 664 value "
                    f"(power of two in {STANDARD_BAGS_MS[0]}..{STANDARD_BAGS_MS[-1]} ms)",
                )
            )

    def _raw_check_sizes(self, vl: Dict[str, Any], name: str, report: ConfigReport) -> None:
        source = report.source
        s_max = vl.get("s_max_bytes")
        s_min = vl.get("s_min_bytes", ETHERNET_MIN_FRAME_BYTES)
        for label, value in (("s_max_bytes", s_max), ("s_min_bytes", s_min)):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                report.findings.append(
                    self._finding(
                        "CFG105", source, f"VL {name!r}: {label} {value!r} is not a number"
                    )
                )
                return
        if s_min > s_max:
            report.findings.append(
                self._finding(
                    "CFG105",
                    source,
                    f"VL {name!r}: s_min {s_min} B exceeds s_max {s_max} B",
                )
            )
        if s_min < ETHERNET_MIN_FRAME_BYTES:
            report.findings.append(
                self._finding(
                    "CFG105",
                    source,
                    f"VL {name!r}: s_min {s_min} B is below the Ethernet minimum "
                    f"{ETHERNET_MIN_FRAME_BYTES} B",
                )
            )
        if s_max > ETHERNET_MAX_FRAME_BYTES:
            report.findings.append(
                self._finding(
                    "CFG105",
                    source,
                    f"VL {name!r}: s_max {s_max} B exceeds the Ethernet maximum "
                    f"{ETHERNET_MAX_FRAME_BYTES} B",
                )
            )

    def _raw_check_paths(
        self,
        vl: Dict[str, Any],
        name: str,
        link_set: set,
        report: ConfigReport,
    ) -> None:
        source = report.source
        paths = vl.get("paths", [])
        if not isinstance(paths, list) or not paths:
            report.findings.append(
                self._finding("CFG106", source, f"VL {name!r}: no paths defined")
            )
            return
        seen_paths = set()
        for path in paths:
            if not isinstance(path, list) or len(path) < 2:
                report.findings.append(
                    self._finding(
                        "CFG106",
                        source,
                        f"VL {name!r}: path {path!r} must list source and destination",
                    )
                )
                continue
            hops = tuple(str(h) for h in path)
            if hops in seen_paths:
                report.findings.append(
                    self._finding("CFG111", source, f"VL {name!r}: duplicate path {list(hops)}")
                )
            seen_paths.add(hops)
            if len(set(hops)) != len(hops):
                report.findings.append(
                    self._finding(
                        "CFG107",
                        source,
                        f"VL {name!r}: path {list(hops)} repeats a node "
                        "(routing loop within the path)",
                    )
                )
            for a, b in zip(hops, hops[1:]):
                if link_set and frozenset((a, b)) not in link_set:
                    report.findings.append(
                        self._finding(
                            "CFG106",
                            source,
                            f"VL {name!r}: route hop {a} -> {b} is not a "
                            "physical link (disconnected route)",
                        )
                    )

    # -- stage 2: built network ----------------------------------------

    def _check_wiring(self, network: Network, report: ConfigReport) -> None:
        for es in network.end_systems():
            degree = len(network.neighbors(es.name))
            if degree != 1:
                report.findings.append(
                    self._finding(
                        "CFG109",
                        report.source,
                        f"end system {es.name!r} has {degree} links; "
                        "ARINC 664 requires exactly one",
                    )
                )

    def _check_vl_contracts(self, network: Network, report: ConfigReport) -> None:
        from repro.network.validation import _multicast_paths_form_tree

        for name in sorted(network.virtual_links):
            vl = network.virtual_links[name]
            if float(vl.bag_ms) not in [float(b) for b in STANDARD_BAGS_MS]:
                report.findings.append(
                    self._finding(
                        "CFG104",
                        report.source,
                        f"VL {name!r}: BAG {vl.bag_ms} ms is not an ARINC 664 value "
                        f"(power of two in {STANDARD_BAGS_MS[0]}..{STANDARD_BAGS_MS[-1]} ms)",
                    )
                )
            if vl.s_min_bytes < ETHERNET_MIN_FRAME_BYTES:
                report.findings.append(
                    self._finding(
                        "CFG105",
                        report.source,
                        f"VL {name!r}: s_min {vl.s_min_bytes} B is below the "
                        f"Ethernet minimum {ETHERNET_MIN_FRAME_BYTES} B",
                    )
                )
            if vl.s_max_bytes > ETHERNET_MAX_FRAME_BYTES:
                report.findings.append(
                    self._finding(
                        "CFG105",
                        report.source,
                        f"VL {name!r}: s_max {vl.s_max_bytes} B exceeds the "
                        f"Ethernet maximum {ETHERNET_MAX_FRAME_BYTES} B",
                    )
                )
            if not _multicast_paths_form_tree(vl.paths):
                report.findings.append(
                    self._finding(
                        "CFG108",
                        report.source,
                        f"VL {name!r}: multicast paths re-join after forking; "
                        "they must form a tree rooted at the source",
                    )
                )

    def _check_feed_forward(self, network: Network, report: ConfigReport) -> None:
        cycle = find_port_cycle(network)
        if cycle is not None:
            report.findings.append(
                self._finding(
                    "CFG101",
                    report.source,
                    "VL routing is not feed-forward; output-port cycle: "
                    + " -> ".join(_fmt_port(p) for p in cycle),
                )
            )

    def _check_stability(self, network: Network, report: ConfigReport) -> None:
        for port_id in network.used_ports():
            util = network.port_utilization(port_id)
            report.port_utilization[port_id] = util
            if util >= self.max_utilization:
                report.findings.append(
                    self._finding(
                        "CFG102",
                        report.source,
                        f"output port {_fmt_port(port_id)} is unstable: "
                        f"utilization {util:.4f} >= {self.max_utilization:.4f} "
                        "(sum(s_max/BAG) must stay below the link rate)",
                    )
                )
            elif util > self.warn_utilization:
                report.findings.append(
                    self._finding(
                        "CFG103",
                        report.source,
                        f"output port {_fmt_port(port_id)} utilization "
                        f"{util:.4f} exceeds the recommended margin "
                        f"{self.warn_utilization:.2f}",
                    )
                )
            if self.utilization_table:
                report.findings.append(
                    self._finding(
                        "CFG110",
                        report.source,
                        f"port {_fmt_port(port_id)} utilization {util:.4f} "
                        f"({len(network.vls_at_port(port_id))} VLs)",
                    )
                )


def verify_network(network: Network, source: str = "<network>", **kwargs) -> ConfigReport:
    """Convenience wrapper: verify an already-built network."""
    return ConfigVerifier(**kwargs).verify_network(network, source=source)


def verify_config_dict(document: Dict[str, Any], source: str = "<dict>", **kwargs) -> ConfigReport:
    """Convenience wrapper: verify a raw configuration dictionary."""
    return ConfigVerifier(**kwargs).verify_dict(document, source=source)
