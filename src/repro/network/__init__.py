"""AFDX (ARINC 664 part 7) network model.

The model mirrors the entities of the paper's Section II-A:

* :class:`EndSystem` / :class:`Switch` — the nodes.  End systems are the
  network's only traffic sources and sinks; switches store-and-forward
  through FIFO output buffers after a bounded *technological latency*.
* physical full-duplex links (switch-switch or switch-ES), registered on
  the :class:`Network`;
* :class:`OutputPort` — the unit of contention: one FIFO queue per
  directed link, served at the link rate.  Worst-case analyses operate
  on sequences of output ports;
* :class:`VirtualLink` — the ARINC-664 traffic contract: a statically
  routed, mono-transmitter, possibly multicast flow with a Bandwidth
  Allocation Gap (BAG) and bounded frame sizes;
* :class:`Network` — the container tying everything together, with
  validation (:mod:`repro.network.validation`), static shortest-path
  routing helpers (:mod:`repro.network.routing`) and JSON persistence
  (:mod:`repro.network.serialization`).
"""

from repro.network.node import EndSystem, Node, Switch
from repro.network.port import OutputPort, PortId
from repro.network.virtual_link import VirtualLink
from repro.network.topology import Network
from repro.network.builder import NetworkBuilder
from repro.network.redundancy import RedundantBound, combine_redundant, duplicate_network
from repro.network.serialization import network_from_dict, network_from_json, network_to_dict, network_to_json

__all__ = [
    "Node",
    "EndSystem",
    "Switch",
    "OutputPort",
    "PortId",
    "VirtualLink",
    "Network",
    "NetworkBuilder",
    "RedundantBound",
    "duplicate_network",
    "combine_redundant",
    "network_to_dict",
    "network_from_dict",
    "network_to_json",
    "network_from_json",
]
