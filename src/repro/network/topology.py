"""The :class:`Network` container: nodes, links, ports, Virtual Links.

A :class:`Network` holds the physical topology (nodes and full-duplex
links) and the static flow configuration (Virtual Links).  It derives
the objects the analyses operate on: :class:`~repro.network.port.OutputPort`
instances, per-port flow sets, and per-flow output-port sequences.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro import units
from repro.errors import (
    DuplicateNameError,
    InvalidTopologyError,
    InvalidVirtualLinkError,
    UnknownNodeError,
)
from repro.network.node import EndSystem, Node, Switch
from repro.network.port import OutputPort, PortId
from repro.network.virtual_link import VirtualLink

__all__ = ["Network", "FlowPath"]

#: A concrete unicast trajectory: ``(vl_name, path_index)``.
FlowPath = Tuple[str, int]


class Network:
    """An AFDX network: topology plus Virtual Link configuration.

    Parameters
    ----------
    rate_bits_per_us:
        Default transmission rate of every link (100 bits/us = 100 Mb/s,
        the rate used throughout the paper).  Individual links may
        override it via :meth:`add_link`.
    name:
        Optional human-readable configuration name.
    """

    def __init__(self, rate_bits_per_us: float = units.MBPS_100, name: str = "afdx"):
        if rate_bits_per_us <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bits_per_us}")
        self.name = name
        self.default_rate = float(rate_bits_per_us)
        self._nodes: Dict[str, Node] = {}
        # undirected physical links; key is the sorted name pair
        self._links: Dict[Tuple[str, str], float] = {}
        self._adjacency: Dict[str, Set[str]] = {}
        self._vls: Dict[str, VirtualLink] = {}
        self._port_flows_cache: Optional[Dict[PortId, FrozenSet[str]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register a node; raises on duplicate names."""
        if node.name in self._nodes:
            raise DuplicateNameError(f"node {node.name!r} is already defined")
        self._nodes[node.name] = node
        self._adjacency[node.name] = set()
        self._invalidate()
        return node

    def add_end_system(self, name: str, technological_latency_us: float = 0.0) -> EndSystem:
        """Create and register an end system."""
        node = EndSystem(name=name, technological_latency_us=technological_latency_us)
        self.add_node(node)
        return node

    def add_switch(self, name: str, technological_latency_us: Optional[float] = None) -> Switch:
        """Create and register a switch (default 16 us fabric latency)."""
        if technological_latency_us is None:
            node = Switch(name=name)
        else:
            node = Switch(name=name, technological_latency_us=technological_latency_us)
        self.add_node(node)
        return node

    def add_link(self, a: str, b: str, rate_bits_per_us: Optional[float] = None) -> None:
        """Wire a full-duplex link between two registered nodes.

        ARINC-664 wiring rules enforced here:

        * no self links, no parallel links;
        * an end system has exactly one link (checked fully in
          :meth:`validate`; here we reject a *second* link eagerly);
        * two end systems cannot be wired to each other.
        """
        for name in (a, b):
            if name not in self._nodes:
                raise UnknownNodeError(f"cannot link unknown node {name!r}")
        if a == b:
            raise InvalidTopologyError(f"self-link on node {a!r}")
        key = (min(a, b), max(a, b))
        if key in self._links:
            raise InvalidTopologyError(f"link {a!r} <-> {b!r} already exists")
        node_a, node_b = self._nodes[a], self._nodes[b]
        if node_a.is_end_system and node_b.is_end_system:
            raise InvalidTopologyError(
                f"end systems {a!r} and {b!r} cannot be wired directly: "
                "each ES connects to exactly one switch port"
            )
        for node in (node_a, node_b):
            if node.is_end_system and self._adjacency[node.name]:
                raise InvalidTopologyError(
                    f"end system {node.name!r} already has a link; "
                    "an ES connects to exactly one switch port"
                )
        rate = self.default_rate if rate_bits_per_us is None else float(rate_bits_per_us)
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        self._links[key] = rate
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._invalidate()

    def add_virtual_link(self, vl: VirtualLink) -> VirtualLink:
        """Register a Virtual Link, checking it against the topology."""
        if vl.name in self._vls:
            raise DuplicateNameError(f"virtual link {vl.name!r} is already defined")
        self._check_vl_against_topology(vl)
        self._vls[vl.name] = vl
        self._invalidate()
        return vl

    def replace_virtual_link(self, vl: VirtualLink) -> VirtualLink:
        """Swap an existing VL for a modified copy (parameter sweeps)."""
        if vl.name not in self._vls:
            raise UnknownNodeError(f"virtual link {vl.name!r} is not defined")
        self._check_vl_against_topology(vl)
        self._vls[vl.name] = vl
        self._invalidate()
        return vl

    def _check_vl_against_topology(self, vl: VirtualLink) -> None:
        source = self._nodes.get(vl.source)
        if source is None:
            raise UnknownNodeError(f"VL {vl.name}: unknown source node {vl.source!r}")
        if not source.is_end_system:
            raise InvalidVirtualLinkError(
                f"VL {vl.name}: source {vl.source!r} is not an end system "
                "(mono-transmitter assumption)"
            )
        for path in vl.paths:
            for hop in path:
                if hop not in self._nodes:
                    raise UnknownNodeError(f"VL {vl.name}: unknown node {hop!r} in path {path}")
            dest = self._nodes[path[-1]]
            if not dest.is_end_system:
                raise InvalidVirtualLinkError(
                    f"VL {vl.name}: destination {path[-1]!r} is not an end system"
                )
            for mid in path[1:-1]:
                if not self._nodes[mid].is_switch:
                    raise InvalidVirtualLinkError(
                        f"VL {vl.name}: intermediate node {mid!r} in path {path} "
                        "is not a switch"
                    )
            for a, b in zip(path, path[1:]):
                if not self.has_link(a, b):
                    raise InvalidVirtualLinkError(
                        f"VL {vl.name}: path {path} uses non-existent link {a!r} <-> {b!r}"
                    )

    def _invalidate(self) -> None:
        self._port_flows_cache = None

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Dict[str, Node]:
        """All registered nodes by name (do not mutate)."""
        return self._nodes

    @property
    def virtual_links(self) -> Dict[str, VirtualLink]:
        """All registered VLs by name (do not mutate)."""
        return self._vls

    def node(self, name: str) -> Node:
        """Look up a node, raising :class:`UnknownNodeError` if missing."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(f"unknown node {name!r}") from None

    def vl(self, name: str) -> VirtualLink:
        """Look up a VL by name."""
        try:
            return self._vls[name]
        except KeyError:
            raise UnknownNodeError(f"unknown virtual link {name!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        """True when a physical link joins nodes ``a`` and ``b``."""
        return (min(a, b), max(a, b)) in self._links

    def link_rate(self, a: str, b: str) -> float:
        """Rate of the physical link between ``a`` and ``b``."""
        try:
            return self._links[(min(a, b), max(a, b))]
        except KeyError:
            raise UnknownNodeError(f"no link between {a!r} and {b!r}") from None

    def neighbors(self, name: str) -> FrozenSet[str]:
        """Nodes physically linked to ``name``."""
        self.node(name)
        return frozenset(self._adjacency[name])

    def links(self) -> List[Tuple[str, str, float]]:
        """All physical links as ``(a, b, rate)`` triples (sorted)."""
        return [(a, b, rate) for (a, b), rate in sorted(self._links.items())]

    def end_systems(self) -> List[EndSystem]:
        """All end systems, sorted by name."""
        return sorted(
            (n for n in self._nodes.values() if n.is_end_system), key=lambda n: n.name
        )

    def switches(self) -> List[Switch]:
        """All switches, sorted by name."""
        return sorted((n for n in self._nodes.values() if n.is_switch), key=lambda n: n.name)

    # ------------------------------------------------------------------
    # Port-level view (what the analyses consume)
    # ------------------------------------------------------------------

    def output_port(self, owner: str, target: str) -> OutputPort:
        """The output port of ``owner`` feeding the link towards ``target``."""
        rate = self.link_rate(owner, target)
        return OutputPort(
            owner=owner,
            target=target,
            rate_bits_per_us=rate,
            latency_us=self.node(owner).technological_latency_us,
        )

    def port_path(self, vl_name: str, path_index: int = 0) -> Tuple[PortId, ...]:
        """Sequence of output ports visited by one path of a VL.

        For the paper's v1 on the Fig. 2 configuration
        (``e1 -> S1 -> S3 -> e6``) this is
        ``(e1->S1, S1->S3, S3->e6)``: the ES output port followed by one
        switch output port per crossed switch.
        """
        vl = self.vl(vl_name)
        try:
            path = vl.paths[path_index]
        except IndexError:
            raise InvalidVirtualLinkError(
                f"VL {vl_name} has {len(vl.paths)} paths; index {path_index} is out of range"
            ) from None
        return tuple((a, b) for a, b in zip(path, path[1:]))

    def flow_paths(self) -> List[Tuple[str, int, Tuple[str, ...]]]:
        """All unicast trajectories: ``(vl_name, path_index, node_path)``.

        These are the "VL paths" of the paper's statistics (Table I
        counts >6000 of them for ~1000 multicast VLs).
        """
        out: List[Tuple[str, int, Tuple[str, ...]]] = []
        for name in sorted(self._vls):
            for idx, path in enumerate(self._vls[name].paths):
                out.append((name, idx, path))
        return out

    def vls_at_port(self, port_id: PortId) -> FrozenSet[str]:
        """Names of the VLs whose frames cross the given output port.

        A multicast VL is counted once even when several of its paths
        share the port: the frame is only duplicated where paths fork,
        so upstream of the fork there is a single physical frame.
        """
        return self._port_flows().get(port_id, frozenset())

    def used_ports(self) -> List[PortId]:
        """Output ports crossed by at least one VL, sorted."""
        return sorted(self._port_flows().keys())

    def _port_flows(self) -> Dict[PortId, FrozenSet[str]]:
        if self._port_flows_cache is None:
            acc: Dict[PortId, Set[str]] = {}
            for name, vl in self._vls.items():
                for path in vl.paths:
                    for a, b in zip(path, path[1:]):
                        acc.setdefault((a, b), set()).add(name)
            self._port_flows_cache = {pid: frozenset(s) for pid, s in acc.items()}
        return self._port_flows_cache

    def upstream_port(self, vl_name: str, port_id: PortId) -> Optional[PortId]:
        """The port a VL's frames traverse immediately before ``port_id``.

        Returns ``None`` when ``port_id`` is the VL's source (ES output)
        port.  This identifies the *input link* through which the VL
        enters the node owning ``port_id`` — the grouping key of the
        serialization technique in both analyses.  Well-defined because
        multicast paths form a tree (unique prefix per node).
        """
        vl = self.vl(vl_name)
        owner = port_id[0]
        if owner == vl.source:
            return None
        for path in vl.paths:
            for a, b in zip(path, path[1:]):
                if (a, b) == port_id:
                    idx = path.index(owner)
                    return (path[idx - 1], owner)
        raise InvalidVirtualLinkError(
            f"VL {vl_name} does not cross port {port_id[0]}->{port_id[1]}"
        )

    def port_utilization(self, port_id: PortId) -> float:
        """Long-term utilization of a port: ``sum(s_max / BAG) / rate``.

        Summed in sorted-name order: float addition is not associative,
        and set iteration order varies with insertion history and hash
        seed — canonical order keeps the value bit-identical for
        set-equal networks (the incremental cache's contract).
        """
        rate = self.link_rate(*port_id)
        demand = math.fsum(
            self._vls[v].rate_bits_per_us for v in sorted(self.vls_at_port(port_id))
        )
        return demand / rate

    def max_utilization(self) -> float:
        """Highest port utilization over the network (0.0 when no VLs)."""
        ports = self.used_ports()
        if not ports:
            return 0.0
        return max(self.port_utilization(pid) for pid in ports)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def copy(self) -> "Network":
        """Deep-enough copy: nodes/links/VLs are immutable, so sharing is safe."""
        dup = Network(rate_bits_per_us=self.default_rate, name=self.name)
        dup._nodes = dict(self._nodes)
        dup._links = dict(self._links)
        dup._adjacency = {k: set(v) for k, v in self._adjacency.items()}
        dup._vls = dict(self._vls)
        return dup

    def __repr__(self) -> str:
        n_paths = sum(len(vl.paths) for vl in self._vls.values())
        return (
            f"Network({self.name!r}: {len(self.end_systems())} end systems, "
            f"{len(self.switches())} switches, {len(self._links)} links, "
            f"{len(self._vls)} VLs / {n_paths} paths)"
        )
