"""Fluent construction helper for network configurations.

:class:`NetworkBuilder` removes the boilerplate of building
configurations in code (tests, examples, generators)::

    net = (
        NetworkBuilder("demo")
        .switches("S1", "S2")
        .end_systems("e1", "e2", "e3")
        .link("e1", "S1").link("e2", "S1").link("e3", "S2").link("S1", "S2")
        .virtual_link("v1", source="e1", destinations=["e3"],
                      bag_ms=4, s_max_bytes=500)
        .build()
    )

Routes are computed automatically with deterministic shortest-path
routing unless explicit paths are given.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro import units
from repro.network.routing import route_virtual_link
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.network.virtual_link import VirtualLink

__all__ = ["NetworkBuilder"]


class NetworkBuilder:
    """Incrementally assemble a :class:`~repro.network.Network`."""

    def __init__(
        self,
        name: str = "afdx",
        rate_bits_per_us: float = units.MBPS_100,
        switch_latency_us: float = 16.0,
    ):
        self._network = Network(rate_bits_per_us=rate_bits_per_us, name=name)
        self._switch_latency = switch_latency_us

    def end_systems(self, *names: str) -> "NetworkBuilder":
        """Register one or more end systems."""
        for name in names:
            self._network.add_end_system(name)
        return self

    def switches(self, *names: str) -> "NetworkBuilder":
        """Register one or more switches (builder-level default latency)."""
        for name in names:
            self._network.add_switch(name, technological_latency_us=self._switch_latency)
        return self

    def link(self, a: str, b: str, rate_bits_per_us: Optional[float] = None) -> "NetworkBuilder":
        """Wire a full-duplex link."""
        self._network.add_link(a, b, rate_bits_per_us=rate_bits_per_us)
        return self

    def links(self, pairs: Iterable[Tuple[str, str]]) -> "NetworkBuilder":
        """Wire several links at once."""
        for a, b in pairs:
            self.link(a, b)
        return self

    def virtual_link(
        self,
        name: str,
        source: str,
        destinations: Sequence[str],
        bag_ms: float,
        s_max_bytes: float,
        s_min_bytes: float = 64,
        priority: int = 0,
        paths: Optional[Sequence[Sequence[str]]] = None,
    ) -> "NetworkBuilder":
        """Register a VL; routes are auto-computed when ``paths`` is None."""
        if paths is None:
            routed = route_virtual_link(self._network, source, destinations)
        else:
            routed = tuple(tuple(p) for p in paths)
        self._network.add_virtual_link(
            VirtualLink(
                name=name,
                source=source,
                paths=routed,
                bag_ms=bag_ms,
                s_max_bytes=s_max_bytes,
                s_min_bytes=s_min_bytes,
                priority=priority,
            )
        )
        return self

    def build(self, validate: bool = True) -> Network:
        """Return the assembled network, validated by default."""
        if validate:
            check_network(self._network)
        return self._network
