"""Virtual Links — the ARINC 664 traffic contract.

A Virtual Link (VL) is a statically defined, logically unidirectional
connection from one source end system to one or more destination end
systems.  Its admission contract is:

* **BAG** (Bandwidth Allocation Gap) — minimum time between two
  consecutive frames of the VL at the network ingress, enforced by the
  source ES shaper; ARINC 664 restricts it to a power of two between
  1 ms and 128 ms, which the paper's industrial configuration follows
  ("BAG values are harmonic between 1 ms and 128 ms");
* **s_min / s_max** — minimum / maximum Ethernet frame size in bytes
  (64..1518 B), policed at every switch entry port.

The VL contract is exactly the leaky bucket ``(s_max, s_max / BAG)``
used by the Network Calculus analysis, and the sporadic task
``(C = s_max / R, T = BAG)`` used by the Trajectory analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple

from repro import units
from repro.errors import InvalidVirtualLinkError

__all__ = [
    "VirtualLink",
    "ETHERNET_MIN_FRAME_BYTES",
    "ETHERNET_MAX_FRAME_BYTES",
    "STANDARD_BAGS_MS",
]

#: Minimal / maximal Ethernet frame sizes (paper Sec. III-A-2).
ETHERNET_MIN_FRAME_BYTES = 64
ETHERNET_MAX_FRAME_BYTES = 1518

#: ARINC-664 harmonic BAG values, in milliseconds.
STANDARD_BAGS_MS = (1, 2, 4, 8, 16, 32, 64, 128)

Path = Tuple[str, ...]


@dataclass(frozen=True)
class VirtualLink:
    """A statically routed, mono-transmitter, possibly multicast flow.

    Parameters
    ----------
    name:
        Unique VL identifier.
    source:
        Name of the source end system (the only allowed emitter).
    paths:
        One node-name sequence per destination, each starting at
        ``source`` and ending at a destination end system.  Multicast
        VLs list several paths that share a common prefix and fork
        inside the network (frames are physically duplicated at the
        forking switches).
    bag_ms:
        Bandwidth Allocation Gap in milliseconds.
    s_max_bytes / s_min_bytes:
        Frame size bounds in bytes.
    priority:
        Output-port scheduling class: 0 = low (default), 1 = high.
        ARINC 664 switches support two statically configured priority
        levels per VL; the DATE 2010 paper studies the pure-FIFO case
        (all VLs at one level), which remains the default.  The
        static-priority extension (:mod:`repro.netcalc.priority`)
        follows the line of work the same group published on SPQ AFDX.
    strict_bag:
        When True (default) the BAG must be one of
        :data:`STANDARD_BAGS_MS`; parameter sweeps (paper Figs. 7-9)
        disable this to explore arbitrary values.
    """

    name: str
    source: str
    paths: Tuple[Path, ...]
    bag_ms: float
    s_max_bytes: float
    s_min_bytes: float = ETHERNET_MIN_FRAME_BYTES
    priority: int = 0
    strict_bag: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidVirtualLinkError("VL name must be a non-empty string")
        if not self.source:
            raise InvalidVirtualLinkError(f"VL {self.name}: source must be set")
        if self.bag_ms <= 0:
            raise InvalidVirtualLinkError(f"VL {self.name}: BAG must be positive, got {self.bag_ms}")
        if self.strict_bag and self.bag_ms not in STANDARD_BAGS_MS:
            raise InvalidVirtualLinkError(
                f"VL {self.name}: BAG {self.bag_ms} ms is not an ARINC-664 value "
                f"{STANDARD_BAGS_MS}"
            )
        if self.s_max_bytes <= 0:
            raise InvalidVirtualLinkError(
                f"VL {self.name}: s_max must be positive, got {self.s_max_bytes}"
            )
        if not 0 < self.s_min_bytes <= self.s_max_bytes:
            raise InvalidVirtualLinkError(
                f"VL {self.name}: need 0 < s_min <= s_max, got "
                f"s_min={self.s_min_bytes}, s_max={self.s_max_bytes}"
            )
        if self.priority not in (0, 1):
            raise InvalidVirtualLinkError(
                f"VL {self.name}: priority must be 0 (low) or 1 (high), "
                f"got {self.priority}"
            )
        norm_paths = tuple(tuple(p) for p in self.paths)
        object.__setattr__(self, "paths", norm_paths)
        if not norm_paths:
            raise InvalidVirtualLinkError(f"VL {self.name}: at least one path is required")
        seen_paths = set()
        for path in norm_paths:
            if len(path) < 2:
                raise InvalidVirtualLinkError(
                    f"VL {self.name}: path {path} must contain source and destination"
                )
            if path[0] != self.source:
                raise InvalidVirtualLinkError(
                    f"VL {self.name}: path {path} does not start at source {self.source}"
                )
            if len(set(path)) != len(path):
                raise InvalidVirtualLinkError(f"VL {self.name}: path {path} repeats a node")
            if path in seen_paths:
                raise InvalidVirtualLinkError(f"VL {self.name}: duplicate path {path}")
            seen_paths.add(path)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def bag_us(self) -> float:
        """BAG in microseconds (the analysis-side period ``T``)."""
        return units.ms_to_us(self.bag_ms)

    @property
    def s_max_bits(self) -> float:
        """Maximum frame size in bits (the ingress burst ``b``)."""
        return units.bytes_to_bits(self.s_max_bytes)

    @property
    def s_min_bits(self) -> float:
        """Minimum frame size in bits."""
        return units.bytes_to_bits(self.s_min_bytes)

    @property
    def rate_bits_per_us(self) -> float:
        """Long-term contracted rate ``s_max / BAG`` in bits/us."""
        return self.s_max_bits / self.bag_us

    def c_max_us(self, link_rate_bits_per_us: float) -> float:
        """Max transmission time of one frame at the given link rate."""
        return self.s_max_bits / link_rate_bits_per_us

    def c_min_us(self, link_rate_bits_per_us: float) -> float:
        """Min transmission time of one frame at the given link rate."""
        return self.s_min_bits / link_rate_bits_per_us

    @property
    def destinations(self) -> Tuple[str, ...]:
        """Destination end systems, one per path, in path order."""
        return tuple(path[-1] for path in self.paths)

    @property
    def is_multicast(self) -> bool:
        """True when the VL has more than one destination."""
        return len(self.paths) > 1

    # ------------------------------------------------------------------
    # Functional updates (used heavily by the parameter sweeps)
    # ------------------------------------------------------------------

    def with_bag_ms(self, bag_ms: float) -> "VirtualLink":
        """Copy of this VL with a different BAG (sweeps of Figs. 8-9)."""
        return replace(self, bag_ms=bag_ms, strict_bag=False)

    def with_s_max_bytes(self, s_max_bytes: float) -> "VirtualLink":
        """Copy with a different ``s_max`` (sweeps of Figs. 7 and 9)."""
        s_min = min(self.s_min_bytes, s_max_bytes)
        return replace(self, s_max_bytes=s_max_bytes, s_min_bytes=s_min)

    def with_paths(self, paths: Sequence[Path]) -> "VirtualLink":
        """Copy with re-computed routing."""
        return replace(self, paths=tuple(tuple(p) for p in paths))

    def with_priority(self, priority: int) -> "VirtualLink":
        """Copy scheduled at a different priority level."""
        return replace(self, priority=priority)
