"""Output ports — the unit of contention in an AFDX network.

A full-duplex link between nodes ``a`` and ``b`` carries two independent
directed channels.  Each directed channel is fed by exactly one FIFO
buffer in its upstream node: the **output port** ``(a -> b)``.  Since
links are full duplex there are no collisions (paper Sec. I); all
queueing happens in output ports, which is why both worst-case analyses
are formulated over sequences of output ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["PortId", "OutputPort"]

#: An output port is identified by ``(owner_node_name, next_node_name)``.
PortId = Tuple[str, str]


@dataclass(frozen=True)
class OutputPort:
    """One directed FIFO-served channel of a full-duplex link.

    Attributes
    ----------
    owner:
        Name of the node whose buffer this is (the transmitter).
    target:
        Name of the downstream node.
    rate_bits_per_us:
        Link transmission rate (100 bits/us for 100 Mb/s AFDX).
    latency_us:
        Worst-case technological latency of the *owner* node — the dead
        time a frame spends between arriving at the owner and becoming
        ready in this FIFO.
    """

    owner: str
    target: str
    rate_bits_per_us: float
    latency_us: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bits_per_us <= 0:
            raise ValueError(f"port rate must be positive, got {self.rate_bits_per_us}")
        if self.latency_us < 0:
            raise ValueError(f"port latency must be >= 0, got {self.latency_us}")

    @property
    def port_id(self) -> PortId:
        """The ``(owner, target)`` identifier of this port."""
        return (self.owner, self.target)

    def transmission_time_us(self, frame_bits: float) -> float:
        """Time to clock a frame of ``frame_bits`` onto the link."""
        return frame_bits / self.rate_bits_per_us

    def __str__(self) -> str:
        return f"{self.owner}->{self.target}"
