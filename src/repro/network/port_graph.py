"""Precedence graph over output ports and its topological order.

Both worst-case analyses require the *port graph* — the directed graph
whose vertices are the used output ports, with an edge ``p -> q``
whenever some VL path visits ``q`` immediately after ``p`` — to be
acyclic:

* the Network Calculus propagation processes ports in topological
  order, so every upstream burst is known before a port is analyzed;
* the Trajectory fixed point needs well-founded ``Smax`` prefixes.

ARINC-664 configurations are engineered feed-forward; a cycle raises
:class:`repro.errors.CyclicRoutingError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import CyclicRoutingError
from repro.network.port import PortId
from repro.network.topology import Network

__all__ = ["port_successors", "topological_port_order", "port_levels"]


def port_successors(network: Network) -> Dict[PortId, Set[PortId]]:
    """Adjacency of the port graph: ``p -> set of immediate successors``.

    Every used port appears as a key, including sink ports with no
    successors.
    """
    succ: Dict[PortId, Set[PortId]] = {pid: set() for pid in network.used_ports()}
    for _vl, _idx, path in network.flow_paths():
        ports = [(a, b) for a, b in zip(path, path[1:])]
        for p, q in zip(ports, ports[1:]):
            succ[p].add(q)
    return succ


def topological_port_order(network: Network) -> List[PortId]:
    """Used ports in dependency order (Kahn's algorithm).

    Ties are broken by sorted port id so the order — and therefore every
    analysis result — is deterministic for a given configuration.

    Raises
    ------
    CyclicRoutingError
        When the VL routing induces a cycle among output ports.
    """
    succ = port_successors(network)
    indegree: Dict[PortId, int] = {pid: 0 for pid in succ}
    for targets in succ.values():
        for q in targets:
            indegree[q] += 1
    ready = sorted(pid for pid, deg in indegree.items() if deg == 0)
    order: List[PortId] = []
    while ready:
        current = ready.pop(0)
        order.append(current)
        inserted = False
        for q in sorted(succ[current]):
            indegree[q] -= 1
            if indegree[q] == 0:
                ready.append(q)
                inserted = True
        if inserted:
            ready.sort()
    if len(order) != len(succ):
        remaining = sorted(set(succ) - set(order))
        raise CyclicRoutingError(
            f"VL routing induces a cycle among output ports; involved ports: "
            f"{', '.join(f'{a}->{b}' for a, b in remaining[:8])}"
        )
    return order


def port_levels(network: Network) -> List[List[PortId]]:
    """Used ports grouped by longest-path depth in the port graph.

    Level 0 holds the source ES ports; level ``k`` holds ports whose
    deepest upstream chain has length ``k``.  Every port's predecessors
    live in strictly earlier levels, so all ports of one level can be
    analyzed concurrently once the earlier levels are done — the
    wavefront the batch engine fans across worker processes.  Levels
    and the ports inside them are sorted, hence deterministic.

    Raises
    ------
    CyclicRoutingError
        When the VL routing induces a cycle among output ports (via
        :func:`topological_port_order`).
    """
    order = topological_port_order(network)
    succ = port_successors(network)
    depth: Dict[PortId, int] = {pid: 0 for pid in order}
    for pid in order:
        for q in succ[pid]:
            if depth[pid] + 1 > depth[q]:
                depth[q] = depth[pid] + 1
    levels: Dict[int, List[PortId]] = {}
    for pid in order:
        levels.setdefault(depth[pid], []).append(pid)
    return [sorted(levels[k]) for k in sorted(levels)]
