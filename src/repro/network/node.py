"""Network nodes: end systems and switches.

AFDX distinguishes exactly two node kinds:

* **end systems** (ES) — avionics computers; each is connected to
  exactly one switch port and is the sole emitter of the Virtual Links
  it sources (the *mono-transmitter* assumption);
* **switches** — store-and-forward elements with no input buffering and
  one FIFO buffer per output port, traversed in a bounded
  *technological latency* (16 us for the switches the paper considers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Node", "EndSystem", "Switch", "DEFAULT_SWITCH_LATENCY_US"]

#: Technological latency of the AFDX switches used in the paper (Sec. II-B).
DEFAULT_SWITCH_LATENCY_US = 16.0


@dataclass(frozen=True)
class Node:
    """Base class for network nodes.

    Attributes
    ----------
    name:
        Unique identifier within a :class:`repro.network.Network`.
    technological_latency_us:
        Fixed worst-case latency a frame incurs inside this node before
        reaching the output FIFO (0 for end systems by convention — the
        ES shaping delay is modelled by the analysis itself).
    """

    name: str
    technological_latency_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be a non-empty string")
        if self.technological_latency_us < 0:
            raise ValueError(
                f"technological latency must be >= 0, got {self.technological_latency_us}"
            )

    @property
    def is_end_system(self) -> bool:
        """True for end systems (traffic sources/sinks)."""
        return isinstance(self, EndSystem)

    @property
    def is_switch(self) -> bool:
        """True for switches."""
        return isinstance(self, Switch)


@dataclass(frozen=True)
class EndSystem(Node):
    """An avionics end system (source/sink of Virtual Links)."""

    technological_latency_us: float = 0.0


@dataclass(frozen=True)
class Switch(Node):
    """An AFDX switch (FIFO output buffering, bounded fabric latency)."""

    technological_latency_us: float = field(default=DEFAULT_SWITCH_LATENCY_US)
