"""Whole-configuration validation (AFDX admission-control style checks).

:func:`validate_network` performs the global checks that cannot be done
incrementally while a :class:`~repro.network.Network` is being built:

* every end system is wired to exactly one switch;
* every VL path is loop-free and consistent with the wiring (already
  enforced per-VL at registration, revalidated here);
* multicast paths of one VL form a tree (they may only diverge once per
  node — after two paths separate they never re-join);
* every used output port is *stable*: its long-term utilization
  ``sum(s_max / BAG) / R`` does not exceed a configurable bound
  (1.0 for plain feasibility; certification practice keeps margin).

The function returns a :class:`ValidationReport`; :func:`check_network`
raises instead, for use at analysis entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, UnstableNetworkError
from repro.network.port import PortId
from repro.network.topology import Network

__all__ = ["ValidationReport", "validate_network", "check_network"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_network`.

    Attributes
    ----------
    errors:
        Human-readable descriptions of hard violations (empty when the
        configuration is acceptable).
    warnings:
        Non-fatal observations (e.g. utilization above the recommended
        margin but below 1).
    port_utilization:
        Long-term utilization of every used output port.
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    port_utilization: Dict[PortId, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no hard violation was found."""
        return not self.errors


def _multicast_paths_form_tree(paths: Tuple[Tuple[str, ...], ...]) -> bool:
    """Check that the paths of one VL only fork (never re-join).

    Equivalent tree condition: for every node appearing in several
    paths, the path *prefix* up to that node is identical in all of
    them — a frame reaches any given node along a single route.
    """
    prefix_by_node: Dict[str, Tuple[str, ...]] = {}
    for path in paths:
        for idx, node in enumerate(path):
            prefix = path[: idx + 1]
            if node in prefix_by_node:
                if prefix_by_node[node] != prefix:
                    return False
            else:
                prefix_by_node[node] = prefix
    return True


def validate_network(
    network: Network,
    max_utilization: float = 1.0,
    warn_utilization: float = 0.75,
) -> ValidationReport:
    """Run all global configuration checks and collect the findings."""
    report = ValidationReport()

    for es in network.end_systems():
        degree = len(network.neighbors(es.name))
        if degree == 0:
            report.warnings.append(f"end system {es.name!r} is not wired to any switch")
        elif degree > 1:
            report.errors.append(
                f"end system {es.name!r} has {degree} links; ARINC 664 allows exactly one"
            )

    for name, vl in network.virtual_links.items():
        if not _multicast_paths_form_tree(vl.paths):
            report.errors.append(
                f"VL {name!r}: multicast paths re-join after forking; "
                "they must form a tree rooted at the source"
            )

    for port_id in network.used_ports():
        util = network.port_utilization(port_id)
        report.port_utilization[port_id] = util
        if util > max_utilization:
            report.errors.append(
                f"output port {port_id[0]}->{port_id[1]} is overloaded: "
                f"utilization {util:.3f} > {max_utilization:.3f}"
            )
        elif util > warn_utilization:
            report.warnings.append(
                f"output port {port_id[0]}->{port_id[1]} utilization {util:.3f} "
                f"exceeds the recommended margin {warn_utilization:.3f}"
            )

    return report


def check_network(network: Network, max_utilization: float = 1.0) -> ValidationReport:
    """Validate and raise on the first hard violation.

    Raises
    ------
    UnstableNetworkError
        When some port's utilization exceeds ``max_utilization``.
    ConfigurationError
        For any other hard violation.
    """
    report = validate_network(network, max_utilization=max_utilization)
    if report.ok:
        return report
    overload = [e for e in report.errors if "overloaded" in e]
    if overload:
        raise UnstableNetworkError("; ".join(overload))
    raise ConfigurationError("; ".join(report.errors))
