"""ARINC-664 dual-network redundancy.

The paper's industrial configuration contains *"two redundant AFDX
sub-networks"*: every frame is transmitted simultaneously on networks A
and B (through independent switch fabrics), and the receiving end
system's Redundancy Management (RM) delivers the first valid copy and
discards the second within a skew window.

This module builds the network-B twin of a configuration (same end
systems and Virtual Links, duplicated switches and links) and combines
per-network worst-case results into the three bounds the integration
engineer needs:

* ``first_copy_us`` — worst case of the *delivered* (first) copy:
  ``min`` of the two per-network bounds (sound because whichever copy
  arrives first is no later than either network's worst case);
* ``any_copy_us`` — worst case assuming one network may be lost:
  ``max`` of the two bounds (the certification figure);
* ``skew_us`` — largest possible arrival gap between the two copies,
  used to size the RM window:
  ``max(bound_A - floor_B, bound_B - floor_A)`` where ``floor_X`` is
  the uncontended store-and-forward minimum on network X.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.network.node import EndSystem, Switch
from repro.network.topology import Network
from repro.network.virtual_link import VirtualLink

__all__ = ["RedundantBound", "duplicate_network", "combine_redundant"]

FlowPathKey = Tuple[str, int]


def _rename(path: Tuple[str, ...], suffix: str) -> Tuple[str, ...]:
    """Suffix the switch hops of a path, keeping the end systems."""
    return (path[0], *(f"{hop}{suffix}" for hop in path[1:-1]), path[-1])


def duplicate_network(network: Network, suffix: str = "_B") -> Network:
    """Build the redundant twin: same ES and VLs, duplicated fabric.

    Every switch ``S`` becomes ``S<suffix>``; end systems keep their
    names (a real ES has one port per network); every VL is re-routed
    over the renamed switches with identical hop sequences.
    """
    twin = Network(rate_bits_per_us=network.default_rate, name=f"{network.name}{suffix}")
    for name in sorted(network.nodes):
        node = network.nodes[name]
        if node.is_switch:
            twin.add_node(
                Switch(
                    name=f"{name}{suffix}",
                    technological_latency_us=node.technological_latency_us,
                )
            )
        else:
            twin.add_node(
                EndSystem(
                    name=name,
                    technological_latency_us=node.technological_latency_us,
                )
            )
    for a, b, rate in network.links():
        node_a = network.nodes[a]
        node_b = network.nodes[b]
        twin_a = f"{a}{suffix}" if node_a.is_switch else a
        twin_b = f"{b}{suffix}" if node_b.is_switch else b
        twin.add_link(twin_a, twin_b, rate_bits_per_us=rate)
    for name in sorted(network.virtual_links):
        vl = network.virtual_links[name]
        twin.add_virtual_link(
            VirtualLink(
                name=vl.name,
                source=vl.source,
                paths=tuple(_rename(p, suffix) for p in vl.paths),
                bag_ms=vl.bag_ms,
                s_max_bytes=vl.s_max_bytes,
                s_min_bytes=vl.s_min_bytes,
                priority=vl.priority,
            )
        )
    return twin


@dataclass(frozen=True)
class RedundantBound:
    """Worst-case figures of one VL path over the redundant pair."""

    vl_name: str
    path_index: int
    bound_a_us: float
    bound_b_us: float
    floor_a_us: float
    floor_b_us: float

    @property
    def first_copy_us(self) -> float:
        """Worst case of the copy RM actually delivers."""
        return min(self.bound_a_us, self.bound_b_us)

    @property
    def any_copy_us(self) -> float:
        """Worst case tolerating the loss of either network."""
        return max(self.bound_a_us, self.bound_b_us)

    @property
    def skew_us(self) -> float:
        """Largest arrival gap between the two copies (RM window)."""
        return max(
            self.bound_a_us - self.floor_b_us,
            self.bound_b_us - self.floor_a_us,
        )


def _path_floor_us(network: Network, vl_name: str, path_index: int) -> float:
    """Uncontended store-and-forward minimum of one path."""
    vl = network.vl(vl_name)
    ports = network.port_path(vl_name, path_index)
    terms = []
    for pid in ports:
        terms.append(vl.s_min_bits / network.link_rate(*pid))
        terms.append(network.node(pid[0]).technological_latency_us)
    return math.fsum(terms)


def combine_redundant(
    network_a: Network,
    network_b: Network,
    bounds_a: Dict[FlowPathKey, float],
    bounds_b: Dict[FlowPathKey, float],
) -> Dict[FlowPathKey, RedundantBound]:
    """Merge per-network bounds into redundancy figures per VL path.

    ``bounds_a`` / ``bounds_b`` map ``(vl_name, path_index)`` to the
    per-network worst-case bound (from any of the analyses; the
    combined per-path best is the natural choice).
    """
    if set(bounds_a) != set(bounds_b):
        raise ValueError("the two networks cover different VL paths")
    merged: Dict[FlowPathKey, RedundantBound] = {}
    for key in sorted(bounds_a):
        vl_name, path_index = key
        merged[key] = RedundantBound(
            vl_name=vl_name,
            path_index=path_index,
            bound_a_us=bounds_a[key],
            bound_b_us=bounds_b[key],
            floor_a_us=_path_floor_us(network_a, vl_name, path_index),
            floor_b_us=_path_floor_us(network_b, vl_name, path_index),
        )
    return merged
