"""JSON persistence for network configurations.

The on-disk format is a single JSON document::

    {
      "name": "fig2",
      "rate_mbps": 100.0,
      "nodes": [
        {"name": "e1", "kind": "end_system", "latency_us": 0.0},
        {"name": "S1", "kind": "switch", "latency_us": 16.0}
      ],
      "links": [{"a": "e1", "b": "S1", "rate_mbps": 100.0}],
      "virtual_links": [
        {"name": "v1", "source": "e1", "bag_ms": 4.0,
         "s_max_bytes": 500, "s_min_bytes": 64,
         "paths": [["e1", "S1", "S3", "e6"]]}
      ]
    }

Frame sizes are bytes and BAGs milliseconds — the units of the ARINC-664
configuration tables — converted internally per :mod:`repro.units`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro import units
from repro.errors import ConfigurationError
from repro.network.node import EndSystem, Switch
from repro.network.topology import Network
from repro.network.virtual_link import VirtualLink

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "network_to_json",
    "network_from_json",
]


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialize a network to a JSON-compatible dictionary."""
    nodes = []
    for name in sorted(network.nodes):
        node = network.nodes[name]
        nodes.append(
            {
                "name": node.name,
                "kind": "end_system" if node.is_end_system else "switch",
                "latency_us": node.technological_latency_us,
            }
        )
    links = [
        {"a": a, "b": b, "rate_mbps": units.bits_per_us_to_mbps(rate)}
        for a, b, rate in network.links()
    ]
    vls = []
    for name in sorted(network.virtual_links):
        vl = network.virtual_links[name]
        entry = {
            "name": vl.name,
            "source": vl.source,
            "bag_ms": vl.bag_ms,
            "s_max_bytes": vl.s_max_bytes,
            "s_min_bytes": vl.s_min_bytes,
            "paths": [list(p) for p in vl.paths],
        }
        if vl.priority:
            entry["priority"] = vl.priority
        vls.append(entry)
    return {
        "name": network.name,
        "rate_mbps": units.bits_per_us_to_mbps(network.default_rate),
        "nodes": nodes,
        "links": links,
        "virtual_links": vls,
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a network from :func:`network_to_dict` output."""
    try:
        network = Network(
            rate_bits_per_us=units.mbps_to_bits_per_us(data.get("rate_mbps", 100.0)),
            name=data.get("name", "afdx"),
        )
        for node in data["nodes"]:
            kind = node["kind"]
            if kind == "end_system":
                network.add_node(
                    EndSystem(
                        name=node["name"],
                        technological_latency_us=node.get("latency_us", 0.0),
                    )
                )
            elif kind == "switch":
                network.add_node(
                    Switch(
                        name=node["name"],
                        technological_latency_us=node.get("latency_us", 16.0),
                    )
                )
            else:
                raise ConfigurationError(f"unknown node kind {kind!r}")
        for link in data.get("links", []):
            rate = link.get("rate_mbps")
            network.add_link(
                link["a"],
                link["b"],
                rate_bits_per_us=None if rate is None else units.mbps_to_bits_per_us(rate),
            )
        for vl in data.get("virtual_links", []):
            network.add_virtual_link(
                VirtualLink(
                    name=vl["name"],
                    source=vl["source"],
                    paths=tuple(tuple(p) for p in vl["paths"]),
                    bag_ms=vl["bag_ms"],
                    s_max_bytes=vl["s_max_bytes"],
                    s_min_bytes=vl.get("s_min_bytes", 64),
                    priority=vl.get("priority", 0),
                )
            )
    except KeyError as exc:
        raise ConfigurationError(f"missing required field {exc.args[0]!r}") from exc
    return network


def network_to_json(network: Network, path: Union[str, Path]) -> None:
    """Write a network configuration to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2) + "\n")


def network_from_json(path: Union[str, Path]) -> Network:
    """Load a network configuration from a JSON file.

    Raises :class:`ConfigurationError` for an unreadable file or
    malformed JSON, so the CLI maps both to its configuration exit
    code instead of leaking a traceback.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read configuration {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed JSON in {path}: {exc}") from exc
    return network_from_dict(data)
