"""Experiment drivers regenerating every table and figure of the paper.

Each module reproduces one artefact of the paper's evaluation:

========  ==========================================================
``table1``  Table I — benefit statistics on the industrial config
``fig3_4``  Sec. II-B worked scenario — enhanced vs plain Trajectory
``fig5``    Fig. 5 — mean Trajectory benefit per BAG value
``fig6``    Fig. 6 — share of paths where WCNC beats Trajectory, per s_max
``fig7``    Fig. 7 — bounds for v1 as its s_max sweeps 100..1500 B
``fig8``    Fig. 8 — bounds for v1 as its BAG sweeps 1..128 ms
``fig9``    Fig. 9 — (WCNC - Trajectory) surface over (BAG, s_max)
``optimism``  (beyond the paper) serialization-credit soundness check
========  ==========================================================

Every driver returns an :class:`~repro.experiments.runner.ExperimentResult`
whose ``render()`` prints the same rows/series the paper reports;
``benchmarks/`` wraps each one in a pytest-benchmark target, and the CLI
exposes them as ``afdx experiment <id>``.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_experiment,
)
from repro.experiments.table1 import run_table1
from repro.experiments.fig3_4 import run_fig3_4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.optimism import run_optimism

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "get_experiment",
    "run_experiment",
    "run_table1",
    "run_fig3_4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_optimism",
]
