"""The serialization-optimism finding (beyond the paper).

Cross-checking every bound against the frame-level simulator, this
reproduction found that the literal per-group reading of the paper's
serialization enhancement can undershoot the true worst case — a result
consistent with the later literature on the FIFO trajectory approach
(Kemayo et al.).  This driver packages the finding as a reproducible
experiment: on the two-source funnel configuration it reports, for the
worst flow, the bound of each serialization mode against the largest
delay actually *observed* in simulation.

Expected output: the ``safe`` bound equals the observed worst case
(456 us — the plain analysis is exact here) while the ``paper`` credit
claims less than what the simulator achieves.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, register
from repro.network.builder import NetworkBuilder
from repro.sim.scenarios import TrafficScenario, simulate
from repro.trajectory.analyzer import analyze_trajectory

__all__ = ["optimism_network", "run_optimism"]


def optimism_network():
    """Two source ES with five identical VLs each, one switch, one sink."""
    builder = NetworkBuilder("optimism").switches("SW").end_systems("a", "b", "d")
    builder.link("a", "SW").link("b", "SW").link("SW", "d")
    for index in range(5):
        for source in ("a", "b"):
            builder.virtual_link(
                f"v{source}{index}",
                source=source,
                destinations=["d"],
                bag_ms=4,
                s_max_bytes=500,
                s_min_bytes=500,
            )
    return builder.build()


@register("optimism")
def run_optimism(duration_ms: float = 40.0) -> ExperimentResult:
    """Demonstrate the historical serialization credit's optimism."""
    network = optimism_network()
    observed = simulate(network, TrafficScenario(duration_ms=duration_ms))
    worst = observed.worst_observed()
    key = (worst.vl_name, worst.path_index)

    result = ExperimentResult(
        experiment_id="optimism",
        title="serialization credit soundness check (finding beyond the paper)",
        headers=("mode", "bound (us)", "observed max (us)", "verdict"),
    )
    for mode in ("paper", "windowed", "safe"):
        bound = analyze_trajectory(network, serialization=mode).paths[key].total_us
        verdict = "VIOLATED" if worst.max_us > bound + 1e-6 else "holds"
        result.rows.append((mode, bound, worst.max_us, verdict))
    result.notes = [
        f"worst observed flow: {worst.vl_name} "
        f"(synchronized saturated scenario, {duration_ms:g} ms)",
        "the per-group 'paper' credit undershoots the reachable worst case; "
        "the plain 'safe' analysis is exact on this configuration",
    ]
    return result
