"""Shared experiment plumbing: results, registry, caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence

from repro.configs.industrial import IndustrialConfigSpec, industrial_network
from repro.core.combined import build_comparison
from repro.core.results import AnalysisResult
from repro.netcalc.analyzer import analyze_network_calculus
from repro.network.topology import Network
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import MetricsRegistry
from repro.trajectory.analyzer import analyze_trajectory

_LOG = get_logger("experiments")

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "register",
    "get_experiment",
    "run_experiment",
    "industrial_config",
    "industrial_comparison",
]


@dataclass
class ExperimentResult:
    """Tabular outcome of one experiment.

    Attributes
    ----------
    experiment_id:
        Paper artefact id (``table1``, ``fig5``...).
    title:
        Human-readable description.
    headers / rows:
        The table the paper prints (rows of strings or numbers).
    notes:
        Free-form observations (population sizes, caveats).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_csv(self) -> str:
        """The table as CSV (headers first; notes as ``#`` comments)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        for note in self.notes:
            buffer.write(f"# {note}\n")
        return buffer.getvalue()

    def render(self) -> str:
        """Format as an aligned text table."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.2f}"
            return str(cell)

        table = [list(map(fmt, self.headers))]
        table.extend([list(map(fmt, row)) for row in self.rows])
        widths = [max(len(row[c]) for row in table) for c in range(len(table[0]))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for idx, row in enumerate(table):
            lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
            if idx == 0:
                lines.append("  ".join("-" * widths[c] for c in range(len(widths))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


#: Registry of experiment drivers, keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding a driver to :data:`EXPERIMENTS`."""

    def wrap(func: Callable[..., ExperimentResult]):
        EXPERIMENTS[experiment_id] = func
        return func

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a driver; raises ``KeyError`` with the known ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def run_experiment(
    experiment_id: str, metrics: Optional[MetricsRegistry] = None, **kwargs
) -> ExperimentResult:
    """Run one experiment by id.

    ``metrics`` (optional) records the ``experiment.<id>`` wall-time
    timer and a ``experiment.rows`` gauge; the run is also logged on
    the ``repro.experiments`` logger.
    """
    driver = get_experiment(experiment_id)
    if metrics is None:
        metrics = MetricsRegistry(enabled=False)
    _LOG.info("experiment start %s", kv(id=experiment_id))
    with metrics.timer(f"experiment.{experiment_id}"):
        result = driver(**kwargs)
    metrics.gauge("experiment.rows", len(result.rows))
    _LOG.info("experiment done %s", kv(id=experiment_id, rows=len(result.rows)))
    return result


@lru_cache(maxsize=4)
def industrial_config(spec: IndustrialConfigSpec = IndustrialConfigSpec()) -> Network:
    """The (cached) synthetic industrial configuration."""
    return industrial_network(spec)


@lru_cache(maxsize=4)
def industrial_comparison(
    spec: IndustrialConfigSpec = IndustrialConfigSpec(), jobs: int = 1
) -> AnalysisResult:
    """Both analyses on the industrial configuration (cached).

    Several experiments (Table I, Figs. 5 and 6) aggregate the same
    per-path bounds, so the expensive run happens once per spec.
    ``jobs > 1`` fans the run across the batch engine's worker pool
    (:mod:`repro.batch`); the bounds are bit-identical for any ``jobs``
    value, so the cache key including ``jobs`` only ever duplicates
    work, never changes results.
    """
    network = industrial_config(spec)
    if jobs != 1:
        from repro.batch import BatchAnalyzer  # deferred: avoid an import cycle

        batch = BatchAnalyzer(network, jobs=jobs, grouping=True, serialization=True)
        return batch.combined()
    nc = analyze_network_calculus(network, grouping=True)
    trajectory = analyze_trajectory(network, serialization=True)
    return build_comparison(nc, trajectory)
