"""Fig. 7 — effect of v1's ``s_max`` on its end-to-end delay bounds.

Sweep ``s_max`` of v1 over 100..1500 B on the Fig. 2 sample
configuration (all other VLs at 500 B / 4 ms) and report both bounds.
Paper shape: the Trajectory bound is slightly tighter as long as v1's
frames are at least as large as everybody else's (>= 500 B); the two
slopes intersect around the other VLs' frame size; below it, the
Network Calculus bound keeps shrinking while the Trajectory bound pays
the "frame counted twice" term at the *largest met frame* size, so the
gap grows as ``s_max`` decreases.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult, register
from repro.experiments.sweeps import DEFAULT_S_MAX_SWEEP_BYTES, bounds_for_v1

__all__ = ["run_fig7"]


@register("fig7")
def run_fig7(
    s_max_values: Sequence[float] = DEFAULT_S_MAX_SWEEP_BYTES,
) -> ExperimentResult:
    """Bounds for v1 as its ``s_max`` sweeps the Ethernet frame range."""
    result = ExperimentResult(
        experiment_id="fig7",
        title="effect of s_max variation of v1 on end-to-end delay bounds",
        headers=("s_max (B)", "Trajectory (us)", "WCNC (us)", "WCNC - Traj (us)"),
    )
    crossover = None
    previous_sign = None
    for s_max in s_max_values:
        nc, trajectory = bounds_for_v1(s_max_bytes=s_max)
        diff = nc - trajectory
        sign = diff >= 0
        if previous_sign is not None and sign != previous_sign and crossover is None:
            crossover = s_max
        previous_sign = sign
        result.rows.append((s_max, trajectory, nc, diff))
    result.notes = [
        "paper shape: crossover near the other VLs' 500 B frame size; "
        "WCNC tighter below, Trajectory tighter above",
    ]
    if crossover is not None:
        result.notes.append(f"measured crossover between {crossover - 100:.0f} and {crossover:.0f} B")
    return result
