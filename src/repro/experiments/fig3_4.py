"""Figs. 3-4 — the worked Trajectory scenario on the sample configuration.

Sec. II-B computes the worst-case delay of v1 on the Fig. 2 network
with the plain Trajectory approach (Fig. 3) and with the serialization
enhancement (Fig. 4).  The plain scenario lets the frames of v3 and v4
hit S3 simultaneously although they share the S2->S3 link — impossible;
serializing them recovers exactly one maximal frame time (40 us at the
configuration's 500 B / 100 Mb/s).

This driver reports both bounds for every VL of the sample
configuration plus the per-path serialization gain, and checks the
40 us Fig. 3 -> Fig. 4 delta on v1.
"""

from __future__ import annotations

from repro.configs.fig2 import fig2_network
from repro.experiments.runner import ExperimentResult, register
from repro.trajectory.analyzer import analyze_trajectory

__all__ = ["run_fig3_4"]


@register("fig3_4")
def run_fig3_4() -> ExperimentResult:
    """Plain vs serialization-enhanced Trajectory bounds on Fig. 2."""
    network = fig2_network()
    plain = analyze_trajectory(network, serialization=False)
    enhanced = analyze_trajectory(network, serialization=True)

    result = ExperimentResult(
        experiment_id="fig3_4",
        title="worked Trajectory scenario (plain vs serialization-enhanced)",
        headers=("VL", "plain (Fig.3) us", "enhanced (Fig.4) us", "gain us"),
    )
    for key in sorted(plain.paths):
        p = plain.paths[key].total_us
        e = enhanced.paths[key].total_us
        result.rows.append((key[0], p, e, p - e))

    v1_gain = plain.bound_us("v1") - enhanced.bound_us("v1")
    frame_time = network.vl("v1").c_max_us(network.default_rate)
    result.notes = [
        f"v1 gain = {v1_gain:.1f} us; one maximal frame time = {frame_time:.1f} us "
        "(the paper's Fig.3 -> Fig.4 improvement)",
    ]
    return result
