"""Fig. 5 — mean Trajectory benefit per BAG value.

The paper plots, for every BAG value of the industrial configuration
(harmonic, 1..128 ms), the average benefit of the Trajectory approach
over Network Calculus across the VL paths with that BAG, and observes
that the benefit globally increases when the BAG decreases (short-BAG
VLs load the network more, and the Trajectory approach tolerates load
better).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.configs.industrial import IndustrialConfigSpec
from repro.experiments.runner import ExperimentResult, industrial_comparison, industrial_config, register

__all__ = ["run_fig5"]


@register("fig5")
def run_fig5(
    spec: Optional[IndustrialConfigSpec] = None, jobs: int = 1
) -> ExperimentResult:
    """Mean Trajectory-over-WCNC benefit for each BAG value."""
    spec = spec if spec is not None else IndustrialConfigSpec()
    network = industrial_config(spec)
    comparison = industrial_comparison(spec, jobs=jobs)

    buckets = {}
    for path in comparison.paths.values():
        bag = network.vl(path.vl_name).bag_ms
        buckets.setdefault(bag, []).append(path.benefit_trajectory_pct)

    result = ExperimentResult(
        experiment_id="fig5",
        title="mean Trajectory benefit over WCNC per BAG value",
        headers=("BAG (ms)", "mean benefit (%)", "n paths"),
    )
    for bag in sorted(buckets):
        values = buckets[bag]
        result.rows.append((bag, math.fsum(values) / len(values), len(values)))
    result.notes = [
        "paper shape: benefit increases as the BAG decreases "
        "(~9% at 128 ms up to ~14% at the shortest BAGs)",
    ]
    return result
