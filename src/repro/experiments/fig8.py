"""Fig. 8 — effect of v1's BAG on its end-to-end delay bounds.

Sweep the BAG of v1 over 1..128 ms on the Fig. 2 sample configuration
and report both bounds.  Paper shape: the Trajectory bound is *flat*
(the studied VL's own BAG plays no role once its own frames cannot
interfere with themselves), while the Network Calculus bound grows as
the BAG shrinks — the service-curve propagation inflates downstream
bursts by the long-term rate ``s_max / BAG``.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult, register
from repro.experiments.sweeps import DEFAULT_BAG_SWEEP_MS, bounds_for_v1

__all__ = ["run_fig8"]


@register("fig8")
def run_fig8(bag_values: Sequence[float] = DEFAULT_BAG_SWEEP_MS) -> ExperimentResult:
    """Bounds for v1 as its BAG sweeps the harmonic 1..128 ms range."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="effect of BAG variation of v1 on end-to-end delay bounds",
        headers=("BAG (ms)", "Trajectory (us)", "WCNC (us)", "WCNC - Traj (us)"),
    )
    for bag in bag_values:
        nc, trajectory = bounds_for_v1(bag_ms=bag)
        result.rows.append((bag, trajectory, nc, nc - trajectory))
    trajectories = {row[1] for row in result.rows}
    result.notes = [
        "paper shape: Trajectory flat in BAG, WCNC decreasing as BAG grows",
        f"Trajectory bound spread across the sweep: "
        f"{max(trajectories) - min(trajectories):.3f} us (paper: exactly flat)",
    ]
    return result
