"""Fig. 6 — share of VL paths where WCNC beats the Trajectory approach.

The paper bins the industrial configuration's VL paths by ``s_max`` and
plots the percentage of paths, per bin, for which the Network Calculus
bound is at least as tight as the Trajectory bound.  Observed shape:
the Trajectory approach always wins for ``s_max >= ~900 B``, and the
WCNC share grows as ``s_max`` shrinks — small frames suffer from the
Trajectory approach's "frame counted twice" term, which is bounded by
the *largest* frame met at each node (Sec. III-B-1).
"""

from __future__ import annotations

from typing import Optional

from repro.configs.industrial import IndustrialConfigSpec
from repro.experiments.runner import ExperimentResult, industrial_comparison, industrial_config, register

__all__ = ["run_fig6"]

_BIN_BYTES = 150


@register("fig6")
def run_fig6(
    spec: Optional[IndustrialConfigSpec] = None,
    bin_bytes: int = _BIN_BYTES,
    jobs: int = 1,
) -> ExperimentResult:
    """Percentage of paths per s_max bin where WCNC is at least as tight."""
    spec = spec if spec is not None else IndustrialConfigSpec()
    network = industrial_config(spec)
    comparison = industrial_comparison(spec, jobs=jobs)

    wins = {}
    totals = {}
    for path in comparison.paths.values():
        s_max = network.vl(path.vl_name).s_max_bytes
        bucket = int(s_max // bin_bytes) * bin_bytes
        totals[bucket] = totals.get(bucket, 0) + 1
        if path.benefit_trajectory_pct <= 0:
            wins[bucket] = wins.get(bucket, 0) + 1

    result = ExperimentResult(
        experiment_id="fig6",
        title="share of VL paths where WCNC outperforms the Trajectory approach",
        headers=("s_max bin (B)", "WCNC wins (%)", "n paths"),
    )
    for bucket in sorted(totals):
        share = 100.0 * wins.get(bucket, 0) / totals[bucket]
        result.rows.append((f"{bucket}-{bucket + bin_bytes - 1}", share, totals[bucket]))
    result.notes = [
        "paper shape: WCNC share decreases with s_max and reaches 0 above ~900 B",
    ]
    return result
