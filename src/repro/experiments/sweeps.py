"""Shared machinery for the Fig. 2 parameter sweeps (Figs. 7-9).

Each sweep perturbs VL v1 of the paper's sample configuration and
recomputes both end-to-end bounds; the other four VLs keep the default
BAG 4 ms / s_max 500 B.
"""

from __future__ import annotations

from typing import Tuple

from repro.configs.fig2 import fig2_network
from repro.netcalc.analyzer import analyze_network_calculus
from repro.trajectory.analyzer import analyze_trajectory

__all__ = ["DEFAULT_S_MAX_SWEEP_BYTES", "DEFAULT_BAG_SWEEP_MS", "bounds_for_v1"]

#: s_max values of the Fig. 7 sweep (paper: 100..1500 B).
DEFAULT_S_MAX_SWEEP_BYTES: Tuple[float, ...] = tuple(range(100, 1501, 100))

#: BAG values of the Fig. 8 sweep (paper: 1..128 ms, harmonic).
DEFAULT_BAG_SWEEP_MS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


def bounds_for_v1(
    s_max_bytes: float = 500.0, bag_ms: float = 4.0
) -> Tuple[float, float]:
    """(WCNC, Trajectory) end-to-end bounds for v1 with modified contract.

    Rebuilds the Fig. 2 configuration, replaces v1's BAG / ``s_max``
    and runs both analyses with their paper-default options.
    """
    network = fig2_network()
    v1 = network.vl("v1").with_bag_ms(bag_ms).with_s_max_bytes(s_max_bytes)
    network.replace_virtual_link(v1)
    nc = analyze_network_calculus(network, grouping=True).bound_us("v1")
    trajectory = analyze_trajectory(network, serialization=True).bound_us("v1")
    return nc, trajectory
