"""Table I — end-to-end delay bound comparison on the industrial network.

Paper values (proprietary Airbus configuration):

===========  ================  =========
             Trajectory/WCNC   Best/WCNC
Mean         10.46 %           10.77 %
Maximum      24.00 %           24.00 %
Minimum      -8.9 %            0 %
===========  ================  =========

with the Trajectory approach strictly tighter on ~91.5 % of VL paths.
This driver reproduces the same three rows on the synthetic industrial
configuration; expected shapes — positive mean around ten percent,
negative minimum for the Trajectory column, exactly 0 for the Best
column, Trajectory winning the large majority of paths.
"""

from __future__ import annotations

from typing import Optional

from repro.configs.industrial import IndustrialConfigSpec
from repro.core.comparison import summarize
from repro.experiments.runner import ExperimentResult, industrial_comparison, register

__all__ = ["run_table1"]


@register("table1")
def run_table1(
    spec: Optional[IndustrialConfigSpec] = None, jobs: int = 1
) -> ExperimentResult:
    """Reproduce Table I on the synthetic industrial configuration."""
    spec = spec if spec is not None else IndustrialConfigSpec()
    comparison = industrial_comparison(spec, jobs=jobs)
    stats = summarize(comparison.paths.values())
    result = ExperimentResult(
        experiment_id="table1",
        title="end-to-end delay bound comparison on the industrial network",
        headers=("", "Trajectory/WCNC", "Best/WCNC"),
    )
    result.rows = [
        ("Mean", f"{stats.mean_benefit_trajectory_pct:.2f}%", f"{stats.mean_benefit_best_pct:.2f}%"),
        ("Maximum", f"{stats.max_benefit_trajectory_pct:.2f}%", f"{stats.max_benefit_best_pct:.2f}%"),
        ("Minimum", f"{stats.min_benefit_trajectory_pct:.2f}%", f"{stats.min_benefit_best_pct:.2f}%"),
    ]
    result.notes = [
        f"{stats.n_paths} VL paths analyzed "
        f"(paper: >6000 paths, ~1000 VLs)",
        f"Trajectory strictly tighter on {stats.trajectory_wins_share * 100:.1f}% "
        "of paths (paper: ~91.5%)",
        "paper reference values: mean 10.46%/10.77%, max 24%/24%, min -8.9%/0%",
    ]
    return result
