"""Fig. 9 — combined influence of BAG and ``s_max`` on v1's bounds.

The paper's 3-D surface plots, for every (BAG, s_max) combination of
v1 on the Fig. 2 sample configuration, the difference in microseconds
between the Network Calculus and the Trajectory upper bounds — positive
where the Trajectory bound is tighter, negative where Network Calculus
wins.  Expected sign structure: negative only for small ``s_max``
(where the counted-twice term dominates), increasingly positive for
large frames and short BAGs.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult, register
from repro.experiments.sweeps import DEFAULT_BAG_SWEEP_MS, bounds_for_v1

__all__ = ["run_fig9"]

_DEFAULT_S_MAX_GRID = (100.0, 300.0, 500.0, 700.0, 900.0, 1100.0, 1300.0, 1500.0)


@register("fig9")
def run_fig9(
    bag_values: Sequence[float] = DEFAULT_BAG_SWEEP_MS,
    s_max_values: Sequence[float] = _DEFAULT_S_MAX_GRID,
) -> ExperimentResult:
    """(WCNC - Trajectory) in us over the (BAG, s_max) grid for v1."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="WCNC - Trajectory bound difference (us) over (BAG, s_max) for v1",
        headers=("BAG (ms) \\ s_max (B)", *(f"{s:.0f}" for s in s_max_values)),
    )
    negatives = 0
    for bag in bag_values:
        row = [f"{bag:g}"]
        for s_max in s_max_values:
            nc, trajectory = bounds_for_v1(s_max_bytes=s_max, bag_ms=bag)
            diff = nc - trajectory
            negatives += diff < 0
            row.append(round(diff, 1))
        result.rows.append(tuple(row))
    result.notes = [
        "positive cells: Trajectory tighter; negative cells: WCNC tighter",
        f"{negatives} negative cells, expected only at small s_max "
        "(paper: same sign structure)",
    ]
    return result
