"""Unit conventions and conversion helpers.

Everything inside the library uses a single, integer-friendly unit system:

* **time** — microseconds (``float``; all AFDX quantities of interest —
  16 us latencies, 40 us frame times, millisecond BAGs — are exactly
  representable).
* **data** — bits.
* **rate** — bits per microsecond.  The canonical AFDX link rate of
  100 Mb/s is exactly ``100.0`` bits/us, which keeps hand calculations
  readable.

Public configuration surfaces (JSON files, constructors of
:class:`repro.network.VirtualLink`) accept the units people actually use
for AFDX — bytes for frame sizes, milliseconds for BAGs — and convert
through the helpers below.
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "US_PER_MS",
    "US_PER_S",
    "MBPS_100",
    "bytes_to_bits",
    "bits_to_bytes",
    "ms_to_us",
    "us_to_ms",
    "mbps_to_bits_per_us",
    "bits_per_us_to_mbps",
    "transmission_time_us",
]

BITS_PER_BYTE = 8
US_PER_MS = 1000.0
US_PER_S = 1_000_000.0

#: Canonical AFDX link rate (100 Mb/s) expressed in bits per microsecond.
MBPS_100 = 100.0


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to bits."""
    return nbytes * BITS_PER_BYTE


def bits_to_bytes(nbits: float) -> float:
    """Convert a bit count to bytes."""
    return nbits / BITS_PER_BYTE


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * US_PER_MS


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / US_PER_MS


def mbps_to_bits_per_us(mbps: float) -> float:
    """Convert megabits per second to bits per microsecond.

    1 Mb/s = 10**6 bits / 10**6 us = exactly 1 bit/us, so this is the
    identity — it exists to make call sites self-documenting.
    """
    return float(mbps)


def bits_per_us_to_mbps(rate: float) -> float:
    """Convert bits per microsecond back to megabits per second."""
    return float(rate)


def transmission_time_us(frame_bits: float, rate_bits_per_us: float) -> float:
    """Time to clock ``frame_bits`` onto a link of the given rate.

    >>> transmission_time_us(4000, 100.0)   # 500 B at 100 Mb/s
    40.0
    """
    if rate_bits_per_us <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bits_per_us}")
    return frame_bits / rate_bits_per_us
