"""Content-addressed dependency fingerprints for cached bounds.

A cached bound is only reusable when *every* input that influenced it
is bit-identical — otherwise "cache hit" would silently change the
analysis.  Fingerprints therefore canonicalize the exact inputs of each
cacheable computation into a SHA-256 digest:

* floats are encoded with :meth:`float.hex` (lossless round-trip), so
  two values collide only when they are the same IEEE-754 double;
* iteration orders are made explicit (sorted VL names, topological
  port order), because the analyzers' floating-point sums depend on
  operand order;
* per-port Network Calculus fingerprints are *Merkle-style*: a port's
  digest folds in the digests of every upstream port its flows arrive
  through, so a change anywhere upstream changes the digest of the
  whole downstream closure — exactly the dirty region the incremental
  engine must recompute.

Digests are stable across processes and ``PYTHONHASHSEED`` values
(nothing here uses Python's randomized ``hash``), which is what lets
``--cache-dir`` share bounds between runs; see
``tests/configs/test_industrial.py`` for the generator-side guarantee.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.port import PortId
from repro.network.port_graph import topological_port_order
from repro.network.topology import Network

__all__ = [
    "stable_digest",
    "pack_floats",
    "vl_fingerprint",
    "network_fingerprint",
    "upstream_port_map",
    "netcalc_port_fingerprints",
]


def stable_digest(*parts: object) -> str:
    """SHA-256 over a canonical encoding of ``parts`` (hex digest).

    Floats are encoded via :meth:`float.hex`; nested tuples/lists
    recurse; everything else uses ``repr``.  The part boundaries are
    delimited so ``("ab", "c")`` and ``("a", "bc")`` differ.
    """
    hasher = hashlib.sha256()
    _fold(hasher, parts)
    return hasher.hexdigest()


def _fold(hasher, value: object) -> None:
    if isinstance(value, float):
        hasher.update(value.hex().encode())
    elif isinstance(value, (tuple, list)):
        hasher.update(b"(")
        for item in value:
            _fold(hasher, item)
            hasher.update(b",")
        hasher.update(b")")
    elif isinstance(value, str):
        hasher.update(b"s")
        hasher.update(value.encode())
    else:
        hasher.update(repr(value).encode())
    hasher.update(b"|")


def pack_floats(values: Sequence[float]) -> bytes:
    """Lossless binary encoding of a float sequence (one C call).

    Used for the per-sweep ``Smax`` slices of the Trajectory walk
    cache, where hashing must stay far cheaper than the walk itself.
    """
    return struct.pack(f"<{len(values)}d", *values)


def vl_fingerprint(vl) -> str:
    """Digest of one Virtual Link's complete traffic contract + routing."""
    return stable_digest(
        "vl",
        vl.name,
        vl.source,
        float(vl.bag_ms),
        float(vl.s_max_bytes),
        float(vl.s_min_bytes),
        int(vl.priority),
        tuple(vl.paths),
    )


def network_fingerprint(network: Network) -> str:
    """Digest of a whole configuration (topology + every VL contract).

    Two networks with equal fingerprints produce bit-identical results
    under every analyzer in this package — the identity used by run
    manifests and the determinism tests.
    """
    nodes = tuple(
        (name, network.nodes[name].is_end_system,
         float(network.nodes[name].technological_latency_us))
        for name in sorted(network.nodes)
    )
    links = tuple((a, b, float(rate)) for a, b, rate in network.links())
    vls = tuple(vl_fingerprint(network.vl(name)) for name in sorted(network.virtual_links))
    return stable_digest("network", float(network.default_rate), nodes, links, vls)


def upstream_port_map(network: Network) -> Dict[Tuple[str, PortId], Optional[PortId]]:
    """``(vl, port) -> upstream port`` for every port of every VL tree.

    One pass over ``flow_paths()`` — unlike
    :meth:`Network.upstream_port`, which rescans the VL's paths per
    query and is too slow to call once per (port, flow) incidence.
    """
    upstream: Dict[Tuple[str, PortId], Optional[PortId]] = {}
    for vl_name, _idx, path in network.flow_paths():
        ports = [(a, b) for a, b in zip(path, path[1:])]
        previous: Optional[PortId] = None
        for pid in ports:
            upstream[(vl_name, pid)] = previous
            previous = pid
    return upstream


def netcalc_port_fingerprints(
    network: Network,
    grouping: bool,
    frame_overhead_bits: float,
    order: Optional[Iterable[PortId]] = None,
) -> Dict[PortId, str]:
    """Merkle dependency digest of every used output port.

    A port's digest determines, bit for bit, everything its
    :meth:`~repro.netcalc.analyzer.NetworkCalculusAnalyzer.analyze_port`
    call can observe: the port's own rate/latency, the analyzer options,
    and — per crossing flow, in the sorted-name order the aggregation
    sums in — the flow's contract, its arrival link (the grouping key)
    and the digest of the upstream port that shaped its entering bucket.
    The upstream digest recursively covers the upstream delays the
    bucket was inflated by, so equal digests imply equal entering
    buckets and therefore an equal :class:`PortAnalysis`.
    """
    if order is None:
        order = topological_port_order(network)
    upstream = upstream_port_map(network)
    contracts = {
        name: vl_fingerprint(network.vl(name)) for name in network.virtual_links
    }
    digests: Dict[PortId, str] = {}
    for pid in order:
        port = network.output_port(*pid)
        flow_parts: List[object] = []
        for name in sorted(network.vls_at_port(pid)):
            up = upstream[(name, pid)]
            flow_parts.append(
                (name, contracts[name], up, digests[up] if up is not None else "ingress")
            )
        digests[pid] = stable_digest(
            "ncport",
            pid,
            float(port.rate_bits_per_us),
            float(port.latency_us),
            bool(grouping),
            float(frame_overhead_bits),
            tuple(flow_parts),
        )
    return digests
