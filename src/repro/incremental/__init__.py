"""Incremental re-analysis: dirty-set propagation + persistent bound cache.

Public API:

* :class:`~repro.incremental.delta.DeltaAnalyzer` — apply edits to a
  configuration and recompute only the affected region;
* :mod:`~repro.incremental.edits` — the edit model and the
  ``afdx whatif`` edit-script parser;
* :class:`~repro.incremental.cache.BoundCache` — the content-addressed
  LRU + disk cache shared by ``incremental=True`` analyzers;
* :mod:`~repro.incremental.fingerprint` — the dependency digests.

``delta`` imports the analyzers, which themselves lazily use this
package's cache — so ``DeltaAnalyzer`` & friends are exported via
PEP 562 lazy attributes to keep the import graph acyclic.
"""

from repro.incremental.cache import BoundCache, default_cache
from repro.incremental.edits import (
    AddVL,
    Edit,
    EditImpact,
    RemoveVL,
    ResizeVL,
    RetimeVL,
    RerouteVL,
    apply_edits,
    load_edit_script,
    parse_edit_script,
)
from repro.incremental.fingerprint import (
    netcalc_port_fingerprints,
    network_fingerprint,
    stable_digest,
    vl_fingerprint,
)

__all__ = [
    "AddVL",
    "BoundCache",
    "BoundChange",
    "DeltaAnalyzer",
    "DeltaResult",
    "Edit",
    "EditImpact",
    "RemoveVL",
    "ResizeVL",
    "RetimeVL",
    "RerouteVL",
    "apply_edits",
    "default_cache",
    "dirty_closure",
    "dirty_vls",
    "load_edit_script",
    "netcalc_port_fingerprints",
    "network_fingerprint",
    "parse_edit_script",
    "stable_digest",
    "vl_fingerprint",
]

_DELTA_NAMES = {
    "DeltaAnalyzer",
    "DeltaResult",
    "BoundChange",
    "dirty_closure",
    "dirty_vls",
}


def __getattr__(name: str):
    if name in _DELTA_NAMES:
        from repro.incremental import delta

        return getattr(delta, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
