"""The edit model of the incremental engine.

An :class:`Edit` is one admission-control operation on a configuration:
add / remove / retime (BAG) / resize (frame size) / re-route a Virtual
Link.  Edits are *pure*: :func:`apply_edits` returns a fresh
:class:`~repro.network.topology.Network` (the input is never mutated)
together with the :class:`EditImpact` — the set of output ports whose
analysis inputs the batch of edits touched directly.  The incremental
engine grows that seed into the downstream dirty closure
(:func:`repro.incremental.delta.dirty_closure`) and recomputes only
inside it.

Edit scripts — the ``afdx whatif`` input — are JSON documents::

    {"edits": [
      {"op": "retime",  "vl": "vl0001", "bag_ms": 8},
      {"op": "resize",  "vl": "vl0002", "s_max_bytes": 300},
      {"op": "reroute", "vl": "vl0003", "paths": [["e1", "S1", "e2"]]},
      {"op": "remove",  "vl": "vl0004"},
      {"op": "add",     "vl": {"name": "vl2001", "source": "e1",
                               "bag_ms": 16, "s_max_bytes": 200,
                               "paths": [["e1", "S1", "e2"]]}}
    ]}

Malformed scripts raise :class:`~repro.errors.ConfigurationError`, which
the CLI maps to its configuration exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, UnknownNodeError
from repro.network.port import PortId
from repro.network.topology import Network
from repro.network.virtual_link import VirtualLink

__all__ = [
    "Edit",
    "AddVL",
    "RemoveVL",
    "RetimeVL",
    "ResizeVL",
    "RerouteVL",
    "EditImpact",
    "apply_edits",
    "parse_edit_script",
    "load_edit_script",
]


@dataclass(frozen=True)
class AddVL:
    """Admit a new Virtual Link."""

    vl: VirtualLink

    def describe(self) -> str:
        return f"add {self.vl.name}"


@dataclass(frozen=True)
class RemoveVL:
    """Withdraw a Virtual Link."""

    name: str

    def describe(self) -> str:
        return f"remove {self.name}"


@dataclass(frozen=True)
class RetimeVL:
    """Change a VL's BAG (the admission loop's main repair move)."""

    name: str
    bag_ms: float

    def describe(self) -> str:
        return f"retime {self.name} bag={self.bag_ms}ms"


@dataclass(frozen=True)
class ResizeVL:
    """Change a VL's maximum frame size."""

    name: str
    s_max_bytes: float

    def describe(self) -> str:
        return f"resize {self.name} s_max={self.s_max_bytes}B"


@dataclass(frozen=True)
class RerouteVL:
    """Replace a VL's multicast routing."""

    name: str
    paths: Tuple[Tuple[str, ...], ...]

    def describe(self) -> str:
        return f"reroute {self.name} ({len(self.paths)} paths)"


Edit = Union[AddVL, RemoveVL, RetimeVL, ResizeVL, RerouteVL]


@dataclass(frozen=True)
class EditImpact:
    """What a batch of edits touched directly.

    Attributes
    ----------
    changed_vls:
        Names of VLs added, removed or modified.
    dirty_ports:
        Output ports whose flow membership or some crossing VL's
        contract changed — the seed of the downstream dirty closure.
        Ports of *removed* paths are included only while still used in
        the edited network (an unused port has no analysis to redo).
    """

    changed_vls: FrozenSet[str]
    dirty_ports: FrozenSet[PortId]


def _path_ports(paths: Sequence[Sequence[str]]) -> FrozenSet[PortId]:
    ports = set()
    for path in paths:
        ports.update(zip(path, path[1:]))
    return frozenset(ports)


def apply_edits(network: Network, edits: Sequence[Edit]) -> Tuple[Network, EditImpact]:
    """Apply a batch of edits to a copy of ``network``.

    Raises
    ------
    ConfigurationError
        On contradictory edits (removing an unknown VL, adding a
        duplicate name, editing a VL removed earlier in the batch) —
        wrapped so the CLI reports them as configuration errors.
    """
    edited = network.copy()
    changed: set = set()
    dirty: set = set()
    for edit in edits:
        try:
            dirty |= _apply_one(edited, edit, changed)
        except (UnknownNodeError, ConfigurationError) as exc:
            raise ConfigurationError(f"edit '{edit.describe()}': {exc}") from exc
    # only ports that still carry traffic have an analysis to redo
    used = set(edited.used_ports())
    return edited, EditImpact(
        changed_vls=frozenset(changed), dirty_ports=frozenset(dirty & used)
    )


def _apply_one(network: Network, edit: Edit, changed: set) -> set:
    if isinstance(edit, AddVL):
        network.add_virtual_link(edit.vl)
        changed.add(edit.vl.name)
        return set(_path_ports(edit.vl.paths))
    if isinstance(edit, RemoveVL):
        vl = network.vl(edit.name)
        del network.virtual_links[edit.name]
        network._invalidate()
        changed.add(edit.name)
        return set(_path_ports(vl.paths))
    if isinstance(edit, RetimeVL):
        vl = network.vl(edit.name)
        network.replace_virtual_link(vl.with_bag_ms(edit.bag_ms))
        changed.add(edit.name)
        return set(_path_ports(vl.paths))
    if isinstance(edit, ResizeVL):
        vl = network.vl(edit.name)
        network.replace_virtual_link(vl.with_s_max_bytes(edit.s_max_bytes))
        changed.add(edit.name)
        return set(_path_ports(vl.paths))
    if isinstance(edit, RerouteVL):
        vl = network.vl(edit.name)
        network.replace_virtual_link(vl.with_paths(edit.paths))
        changed.add(edit.name)
        return set(_path_ports(vl.paths)) | set(_path_ports(edit.paths))
    raise ConfigurationError(f"unknown edit type {type(edit).__name__}")


# ----------------------------------------------------------------------
# Edit scripts (the `afdx whatif` input)
# ----------------------------------------------------------------------


def parse_edit_script(data: Dict[str, object]) -> List[Edit]:
    """Parse a decoded edit-script document into edit objects."""
    raw = data.get("edits")
    if not isinstance(raw, list):
        raise ConfigurationError("edit script must contain an 'edits' array")
    edits: List[Edit] = []
    for index, entry in enumerate(raw):
        try:
            edits.append(_parse_entry(entry))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"edit #{index + 1} is malformed: {exc}") from exc
    return edits


def _parse_entry(entry: Dict[str, object]) -> Edit:
    op = entry["op"]
    if op == "add":
        spec = entry["vl"]
        return AddVL(
            VirtualLink(
                name=spec["name"],
                source=spec["source"],
                paths=tuple(tuple(p) for p in spec["paths"]),
                bag_ms=spec["bag_ms"],
                s_max_bytes=spec["s_max_bytes"],
                s_min_bytes=spec.get("s_min_bytes", 64),
                priority=spec.get("priority", 0),
            )
        )
    if op == "remove":
        return RemoveVL(name=entry["vl"])
    if op == "retime":
        return RetimeVL(name=entry["vl"], bag_ms=float(entry["bag_ms"]))
    if op == "resize":
        return ResizeVL(name=entry["vl"], s_max_bytes=float(entry["s_max_bytes"]))
    if op == "reroute":
        return RerouteVL(
            name=entry["vl"], paths=tuple(tuple(p) for p in entry["paths"])
        )
    raise ValueError(f"unknown op {op!r}")


def load_edit_script(path: Union[str, Path]) -> List[Edit]:
    """Read and parse an edit-script JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read edit script {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed JSON in {path}: {exc}") from exc
    return parse_edit_script(data)
