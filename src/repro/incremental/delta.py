"""The incremental re-analysis engine (``DeltaAnalyzer``).

Interactive admission control edits a configuration one Virtual Link at
a time and needs fresh worst-case bounds after every edit.  A cold
combined run recomputes *every* port and *every* trajectory walk; almost
all of that work is identical to the previous run.  The engine avoids
it in two coordinated ways:

**Dirty-set propagation.**  An edit directly touches the output ports
on the edited VL's old and new paths (:class:`~repro.incremental.edits.
EditImpact`).  Because static AFDX routing is feed-forward, the set of
ports whose analysis *can* change is the downstream closure of that
seed over :func:`~repro.network.port_graph.port_successors`
(:func:`dirty_closure`); every port outside it sees bit-identical
inputs.  The VLs whose trajectory walks can change are exactly those
crossing a dirty port (:func:`dirty_vls`).

**Content-addressed reuse.**  Rather than trusting the closure blindly,
every per-port Network Calculus analysis and every per-VL trajectory
walk is keyed by a fingerprint of its exact inputs
(:mod:`repro.incremental.fingerprint`) in a shared
:class:`~repro.incremental.cache.BoundCache`.  Clean ports/VLs hit the
cache (their fingerprints are unchanged — the Merkle construction makes
this the *same* statement as "outside the dirty closure"); dirty ones
miss and are recomputed.  The closure is still computed explicitly: its
size is the engine's primary observability signal (``dirty_ports`` /
``dirty_vls`` in the run manifest) and the cache-correctness tests
cross-check misses against it.

**Soundness of the trajectory reseeding.**  The descending ``Smax``
fixed point may only restart from a valid upper bound.  The engine
satisfies this by *memoized replay*: the incremental run executes the
identical sweep/tighten sequence as a cold run — the NC seed is a valid
upper bound, and every subsequent state is reached by the same sound
tightening steps — but each sweep's per-VL walks are served from the
cache whenever their inputs (structure + the exact ``Smax`` slice the
walk reads) are unchanged.  Untouched VLs therefore hit on every sweep
(their slices evolve identically to the previous run), while dirty VLs
recompute.  Replay makes the equivalence *exact*: incremental bounds
are bit-identical to a cold analysis, which ``scripts/check.sh``
enforces on randomized edit sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.incremental.cache import BoundCache
from repro.incremental.edits import Edit, EditImpact, apply_edits
from repro.netcalc.analyzer import NetworkCalculusAnalyzer
from repro.netcalc.results import NetworkCalculusResult
from repro.network.port import PortId
from repro.network.port_graph import port_successors
from repro.network.topology import FlowPath, Network
from repro.obs.logging import get_logger, kv
from repro.trajectory.analyzer import TrajectoryAnalyzer
from repro.trajectory.results import TrajectoryResult

__all__ = [
    "DeltaAnalyzer",
    "DeltaResult",
    "BoundChange",
    "dirty_closure",
    "dirty_vls",
]

_LOG = get_logger("incremental")


def dirty_closure(network: Network, seeds: Iterable[PortId]) -> FrozenSet[PortId]:
    """Downstream closure of the seed ports over the port graph.

    Feed-forward routing means an edit at port ``p`` can only alter the
    entering buckets / arrival offsets of ports reachable from ``p`` —
    this closure is the complete set of ports whose analysis inputs may
    differ from the previous run.
    """
    successors = port_successors(network)
    seen = set(seeds)
    stack = list(seen)
    while stack:
        port = stack.pop()
        for nxt in successors.get(port, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(seen)


def dirty_vls(network: Network, closure: Iterable[PortId]) -> FrozenSet[str]:
    """VLs whose trajectory walk intersects the dirty closure.

    A VL's walk reads state only at the ports of its own tree (its
    competitors' ``Smax`` values *at those ports*), so a VL crossing no
    dirty port is untouched: its competitor set, ``Smax`` seed and
    meeting structure are all bit-identical to the previous run.
    """
    out: set = set()
    for port in closure:
        out.update(network.vls_at_port(port))
    return frozenset(out)


@dataclass(frozen=True)
class BoundChange:
    """Before/after end-to-end bounds of one VL path (``None`` = absent)."""

    flow: FlowPath
    nc_before_us: Optional[float]
    nc_after_us: Optional[float]
    trajectory_before_us: Optional[float]
    trajectory_after_us: Optional[float]

    @property
    def kind(self) -> str:
        if self.nc_before_us is None and self.trajectory_before_us is None:
            return "added"
        if self.nc_after_us is None and self.trajectory_after_us is None:
            return "removed"
        return "changed"


@dataclass
class DeltaResult:
    """Outcome of one (incremental) analysis round."""

    network: Network
    netcalc: NetworkCalculusResult
    trajectory: TrajectoryResult
    impact: Optional[EditImpact] = None
    dirty_ports: FrozenSet[PortId] = frozenset()
    dirty_vl_names: FrozenSet[str] = frozenset()
    changed: Dict[FlowPath, BoundChange] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)


class DeltaAnalyzer:
    """Re-analyzes a configuration across a stream of edits.

    Parameters mirror the sequential analyzers (bit-identical results
    are part of the contract); ``cache`` / ``cache_dir`` configure the
    shared :class:`BoundCache` (a fresh in-memory cache by default).

    Usage::

        engine = DeltaAnalyzer(network, cache_dir="~/.afdx-cache")
        engine.analyze_base()          # cold run, warms the cache
        delta = engine.apply(edits)    # incremental re-analysis
        for change in delta.changed.values(): ...

    ``apply`` chains: each call edits the network produced by the
    previous one, exactly like the admission-control repair loop.
    """

    def __init__(
        self,
        network: Network,
        cache: Optional[BoundCache] = None,
        cache_dir=None,
        grouping: bool = True,
        frame_overhead_bytes: float = 0.0,
        serialization=True,
        refine_smax: bool = True,
        max_refinements: int = 8,
        collect_stats: bool = False,
        progress=None,
        explain: bool = False,
        trajectory_kernel: Optional[str] = None,
    ) -> None:
        if cache is None:
            cache = BoundCache(cache_dir=cache_dir)
        elif cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.cache = cache
        self.grouping = grouping
        self.frame_overhead_bytes = frame_overhead_bytes
        self.serialization = serialization
        self.refine_smax = refine_smax
        self.max_refinements = max_refinements
        self.explain = explain
        self.trajectory_kernel = trajectory_kernel
        self.collect_stats = collect_stats
        self.progress = progress
        self._network = network
        self._last: Optional[DeltaResult] = None

    @property
    def network(self) -> Network:
        """The current configuration (after all applied edits)."""
        return self._network

    @property
    def last_result(self) -> Optional[DeltaResult]:
        return self._last

    # ------------------------------------------------------------------

    def analyze_base(self) -> DeltaResult:
        """Analyze the current configuration (cold on a fresh cache).

        Idempotent; the first :meth:`apply` runs it implicitly so that
        "changed bounds" always have a baseline to diff against.
        """
        if self._last is None:
            counters_before = self.cache.stats()
            netcalc, trajectory = self._run(self._network)
            self._last = DeltaResult(
                network=self._network,
                netcalc=netcalc,
                trajectory=trajectory,
                stats=self._round_stats(
                    self._network, counters_before, dirty_ports=None, dirty=None
                ),
            )
        return self._last

    def apply(self, edits: Sequence[Edit]) -> DeltaResult:
        """Apply edits to the current network and re-analyze incrementally."""
        previous = self.analyze_base()
        edited, impact = apply_edits(self._network, edits)
        closure = dirty_closure(edited, impact.dirty_ports)
        touched = dirty_vls(edited, closure) | impact.changed_vls

        counters_before = self.cache.stats()
        netcalc, trajectory = self._run(edited)
        result = DeltaResult(
            network=edited,
            netcalc=netcalc,
            trajectory=trajectory,
            impact=impact,
            dirty_ports=closure,
            dirty_vl_names=touched,
            changed=self._diff(previous, netcalc, trajectory),
            stats=self._round_stats(edited, counters_before, closure, touched),
        )
        _LOG.debug(
            "delta applied %s",
            kv(
                edits=len(edits),
                dirty_ports=len(closure),
                dirty_vls=len(touched),
                changed_paths=len(result.changed),
            ),
        )
        self._network = edited
        self._last = result
        return result

    # ------------------------------------------------------------------

    def _run(self, network: Network) -> Tuple[NetworkCalculusResult, TrajectoryResult]:
        netcalc = NetworkCalculusAnalyzer(
            network,
            grouping=self.grouping,
            frame_overhead_bytes=self.frame_overhead_bytes,
            collect_stats=self.collect_stats,
            progress=self.progress,
            incremental=True,
            cache=self.cache,
            explain=self.explain,
        ).analyze()
        trajectory = TrajectoryAnalyzer(
            network,
            serialization=self.serialization,
            refine_smax=self.refine_smax,
            max_refinements=self.max_refinements,
            collect_stats=self.collect_stats,
            progress=self.progress,
            incremental=True,
            cache=self.cache,
            explain=self.explain,
            kernel=self.trajectory_kernel,
        ).analyze()
        return netcalc, trajectory

    @staticmethod
    def _diff(
        previous: DeltaResult,
        netcalc: NetworkCalculusResult,
        trajectory: TrajectoryResult,
    ) -> Dict[FlowPath, BoundChange]:
        """Paths whose bounds changed, appeared or disappeared (exact compare)."""
        changed: Dict[FlowPath, BoundChange] = {}
        keys = set(previous.netcalc.paths) | set(netcalc.paths)
        for key in sorted(keys):
            nc_before = (
                previous.netcalc.paths[key].total_us
                if key in previous.netcalc.paths
                else None
            )
            nc_after = netcalc.paths[key].total_us if key in netcalc.paths else None
            tr_before = (
                previous.trajectory.paths[key].total_us
                if key in previous.trajectory.paths
                else None
            )
            tr_after = (
                trajectory.paths[key].total_us if key in trajectory.paths else None
            )
            if nc_before != nc_after or tr_before != tr_after:
                changed[key] = BoundChange(
                    flow=key,
                    nc_before_us=nc_before,
                    nc_after_us=nc_after,
                    trajectory_before_us=tr_before,
                    trajectory_after_us=tr_after,
                )
        return changed

    def _round_stats(
        self,
        network: Network,
        counters_before: Dict[str, int],
        dirty_ports: Optional[FrozenSet[PortId]],
        dirty: Optional[FrozenSet[str]],
    ) -> Dict[str, object]:
        after = self.cache.stats()
        stats: Dict[str, object] = {
            "n_ports": len(network.used_ports()),
            "n_vls": len(network.virtual_links),
            "cache": {
                name: after[name] - counters_before.get(name, 0) for name in after
            },
            "cache_totals": after,
            "cache_entries": len(self.cache),
        }
        if dirty_ports is not None:
            stats["n_dirty_ports"] = len(dirty_ports)
        if dirty is not None:
            stats["n_dirty_vls"] = len(dirty)
        return stats
