"""The persistent bound cache: in-memory LRU plus optional disk layer.

A :class:`BoundCache` maps content-addressed fingerprints
(:mod:`repro.incremental.fingerprint`) to previously computed analysis
values, namespaced by what they are:

* ``"nc.port"`` — a :class:`~repro.netcalc.results.PortAnalysis`;
* ``"traj.walk"`` — one VL's per-(VL, port) prefix bounds from a
  single fixed-point sweep;
* ``"nc.result"`` / ``"traj.result"`` — a whole analysis keyed by the
  network fingerprint, so re-analyzing a configuration the cache has
  already seen (an identical what-if re-query, a warm ``--cache-dir``)
  costs one fingerprint plus one lookup;
* ``"traj.cost"`` — the deterministic sections of the trajectory's
  :class:`~repro.obs.costmodel.CostLedger`, stored next to
  ``"traj.result"`` so a warm hit reports the same work counters as
  the cold run that produced it;
* ``"traj.node"`` — one meeting-tree node's batch fold
  ``(bases, negated bases, events)``, keyed by the node's chained
  structural fingerprint plus its sweep-varying floats — the finest
  granularity, which is what lets *structurally identical subproblems*
  hit across different configurations of a corpus (and across worker
  processes, through the disk layer).

Cached results are stored without their ``stats`` snapshot (counters
are run-specific observability, not bounds) and returned as shallow
copies so callers can attach fresh stats without mutating the cache.

Because a fingerprint covers *every* input of the cached computation
bit for bit, a hit is exactly equivalent to recomputation — the
incremental engine's equivalence gate (``scripts/check.sh``) asserts
this on randomized edit sequences.

The in-memory layer is a plain LRU (``OrderedDict``); the optional
disk layer (``cache_dir``) persists entries as one JSON file per
fingerprint so independent processes — ``afdx whatif`` invocations,
``afdx batch-sweep`` workers, a warm CI run — share bounds.  Floats
survive the JSON round trip exactly (``repr`` is shortest-round-trip
in Python 3), which the disk tests assert.  Writes go through a
temp-file + ``os.replace`` so concurrent writers can only ever publish
complete entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.netcalc.results import NetworkCalculusResult, PathBound, PortAnalysis
from repro.obs.costmodel import CostLedger
from repro.trajectory.results import TrajectoryPathBound, TrajectoryResult

__all__ = ["BoundCache", "default_cache"]

#: Default in-memory entry capacity.  Entries are small (a dataclass or
#: a handful of them), so this bounds memory at tens of MB worst case.
DEFAULT_MAX_ENTRIES = 65536


class BoundCache:
    """Content-addressed store for per-port and per-walk bounds.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (least recently used entries are
        evicted first; the disk layer, when configured, keeps them).
    cache_dir:
        Optional directory for cross-process persistence.  Created on
        first write.  Safe to share between concurrent processes.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        cache_dir: Optional[os.PathLike] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "disk_hits": 0,
            "evictions": 0,
            "invalidations": 0,
            "stores": 0,
        }

    # ------------------------------------------------------------------

    def get(self, namespace: str, fingerprint: str) -> Optional[object]:
        """The cached value, or None.  Disk entries are promoted to memory."""
        key = (namespace, fingerprint)
        try:
            value = self._entries[key]
        except KeyError:
            pass
        else:
            self._entries.move_to_end(key)
            self._counters["hits"] += 1
            return value
        value = self._disk_get(namespace, fingerprint)
        if value is not None:
            self._counters["hits"] += 1
            self._counters["disk_hits"] += 1
            self._remember(key, value)
            return value
        self._counters["misses"] += 1
        return None

    def put(self, namespace: str, fingerprint: str, value: object) -> None:
        """Store a freshly computed value (memory, then disk if configured)."""
        self._counters["stores"] += 1
        self._remember((namespace, fingerprint), value)
        if self.cache_dir is not None:
            self._disk_put(namespace, fingerprint, value)

    def invalidate(self, namespace: str, fingerprint: str) -> bool:
        """Drop one entry from memory and disk; True when it existed.

        Content-addressed entries never go *stale* (a changed input
        changes the fingerprint), so this exists for operational
        hygiene — e.g. evicting entries produced by a code revision
        whose results should no longer be trusted.
        """
        key = (namespace, fingerprint)
        existed = self._entries.pop(key, None) is not None
        path = self._entry_path(namespace, fingerprint)
        if path is not None and path.exists():
            try:
                path.unlink()
                existed = True
            except OSError:
                pass
        if existed:
            self._counters["invalidations"] += 1
        return existed

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits / misses / evictions / invalidations..."""
        return dict(self._counters)

    @property
    def hit_rate(self) -> float:
        total = self._counters["hits"] + self._counters["misses"]
        return self._counters["hits"] / total if total else 0.0

    # ------------------------------------------------------------------
    # In-memory LRU
    # ------------------------------------------------------------------

    def _remember(self, key: Tuple[str, str], value: object) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._counters["evictions"] += 1

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------

    def _entry_path(self, namespace: str, fingerprint: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        # two-level fan-out keeps directories small on big sweeps
        return self.cache_dir / namespace / fingerprint[:2] / f"{fingerprint}.json"

    def _disk_get(self, namespace: str, fingerprint: str) -> Optional[object]:
        path = self._entry_path(namespace, fingerprint)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # torn or corrupt entry: treat as a miss
        try:
            return _decode(payload)
        except (KeyError, TypeError, ValueError):
            return None
    def _disk_put(self, namespace: str, fingerprint: str, value: object) -> None:
        path = self._entry_path(namespace, fingerprint)
        assert path is not None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(_encode(value), handle)
            os.replace(tmp, path)
        except OSError:
            pass  # persistence is best-effort; memory layer already has it


# ----------------------------------------------------------------------
# JSON codec for the cacheable value types
# ----------------------------------------------------------------------


def _encode_port_analysis(value: PortAnalysis) -> Dict[str, object]:
    return {
        "port_id": list(value.port_id),
        "delay_us": value.delay_us,
        "backlog_bits": value.backlog_bits,
        "utilization": value.utilization,
        "n_flows": value.n_flows,
        "n_groups": value.n_groups,
    }


def _decode_port_analysis(entry: Dict[str, object]) -> PortAnalysis:
    return PortAnalysis(
        port_id=tuple(entry["port_id"]),
        delay_us=entry["delay_us"],
        backlog_bits=entry["backlog_bits"],
        utilization=entry["utilization"],
        n_flows=entry["n_flows"],
        n_groups=entry["n_groups"],
    )


def _encode_trajectory_bound(bound: TrajectoryPathBound) -> Dict[str, object]:
    return {
        "vl_name": bound.vl_name,
        "path_index": bound.path_index,
        "node_path": list(bound.node_path),
        "port_ids": [list(p) for p in bound.port_ids],
        "total_us": bound.total_us,
        "critical_instant_us": bound.critical_instant_us,
        "busy_period_us": bound.busy_period_us,
        "workload_us": bound.workload_us,
        "transition_us": bound.transition_us,
        "latency_us": bound.latency_us,
        "serialization_gain_us": bound.serialization_gain_us,
        "n_competitors": bound.n_competitors,
        "n_candidates": bound.n_candidates,
    }


def _decode_trajectory_bound(entry: Dict[str, object]) -> TrajectoryPathBound:
    return TrajectoryPathBound(
        vl_name=entry["vl_name"],
        path_index=entry["path_index"],
        node_path=tuple(entry["node_path"]),
        port_ids=tuple(tuple(p) for p in entry["port_ids"]),
        total_us=entry["total_us"],
        critical_instant_us=entry["critical_instant_us"],
        busy_period_us=entry["busy_period_us"],
        workload_us=entry["workload_us"],
        transition_us=entry["transition_us"],
        latency_us=entry["latency_us"],
        serialization_gain_us=entry["serialization_gain_us"],
        n_competitors=entry["n_competitors"],
        n_candidates=entry["n_candidates"],
    )


def _encode(value: object) -> Dict[str, object]:
    if isinstance(value, PortAnalysis):
        return {"kind": "port_analysis", **_encode_port_analysis(value)}
    if isinstance(value, NetworkCalculusResult):
        return {
            "kind": "nc_result",
            "grouping": value.grouping,
            "ports": [_encode_port_analysis(p) for _, p in sorted(value.ports.items())],
            "paths": [
                {
                    "vl_name": b.vl_name,
                    "path_index": b.path_index,
                    "node_path": list(b.node_path),
                    "port_ids": [list(p) for p in b.port_ids],
                    "per_port_delay_us": list(b.per_port_delay_us),
                    "total_us": b.total_us,
                }
                for _, b in sorted(value.paths.items())
            ],
        }
    if isinstance(value, TrajectoryResult):
        return {
            "kind": "traj_result",
            "serialization": value.serialization,
            "refinement_iterations": value.refinement_iterations,
            "paths": [
                _encode_trajectory_bound(b) for _, b in sorted(value.paths.items())
            ],
        }
    if isinstance(value, dict) and all(
        isinstance(v, TrajectoryPathBound) for v in value.values()
    ):
        return {
            "kind": "walk_bounds",
            "entries": [
                {"key_port": list(port), **_encode_trajectory_bound(bound)}
                for (_vl, port), bound in value.items()
            ],
        }
    if isinstance(value, CostLedger):
        return {"kind": "cost_ledger", "cost": value.to_dict()}
    if (
        isinstance(value, tuple)
        and len(value) == 3
        and all(isinstance(part, tuple) for part in value)
    ):
        # a "traj.node" batch fold: (bases, negated bases, events)
        folded, folded_negs, batch_events = value
        return {
            "kind": "node_fold",
            "folded": list(folded),
            "folded_negs": list(folded_negs),
            "events": [[t, c] for t, c in batch_events],
        }
    raise TypeError(f"BoundCache cannot persist values of type {type(value)!r}")


def _decode(payload: Dict[str, object]) -> object:
    kind = payload["kind"]
    if kind == "port_analysis":
        return _decode_port_analysis(payload)
    if kind == "nc_result":
        result = NetworkCalculusResult(grouping=payload["grouping"])
        for entry in payload["ports"]:
            analysis = _decode_port_analysis(entry)
            result.ports[analysis.port_id] = analysis
        for entry in payload["paths"]:
            bound = PathBound(
                vl_name=entry["vl_name"],
                path_index=entry["path_index"],
                node_path=tuple(entry["node_path"]),
                port_ids=tuple(tuple(p) for p in entry["port_ids"]),
                per_port_delay_us=tuple(entry["per_port_delay_us"]),
                total_us=entry["total_us"],
            )
            result.paths[(bound.vl_name, bound.path_index)] = bound
        return result
    if kind == "traj_result":
        result = TrajectoryResult(
            serialization=payload["serialization"],
            refinement_iterations=payload["refinement_iterations"],
        )
        for entry in payload["paths"]:
            bound = _decode_trajectory_bound(entry)
            result.paths[(bound.vl_name, bound.path_index)] = bound
        return result
    if kind == "walk_bounds":
        out = {}
        for entry in payload["entries"]:
            bound = _decode_trajectory_bound(entry)
            out[(bound.vl_name, tuple(entry["key_port"]))] = bound
        return out
    if kind == "cost_ledger":
        return CostLedger.from_dict(payload["cost"])
    if kind == "node_fold":
        # rebuild the exact tuple shape the fast kernel replays from
        # its in-memory fold cache (events are (time, C) float pairs)
        return (
            tuple(payload["folded"]),
            tuple(payload["folded_negs"]),
            tuple((pair[0], pair[1]) for pair in payload["events"]),
        )
    raise ValueError(f"unknown cache entry kind {kind!r}")


_DEFAULT: Optional[BoundCache] = None


def default_cache() -> BoundCache:
    """The process-wide cache behind ``incremental=True`` analyzers."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BoundCache()
    return _DEFAULT
