"""Ready-made AFDX configurations.

* :func:`fig2_network` — the paper's Figure 2 sample configuration,
  used by the worked Trajectory scenario (Figs. 3-4) and by every
  parameter-influence study (Figs. 7-9);
* :func:`fig1_network` — a reconstruction of the paper's Figure 1
  illustrative configuration (five switches, multicast VL);
* :func:`industrial_network` — a seeded synthetic generator standing in
  for the proprietary industrial configuration of Sec. II-C (~1000 VLs,
  >6000 paths, 8-switch sub-network, >100 end systems);
* :func:`random_network` — small random configurations for fuzz /
  property testing.
"""

from repro.configs.fig1 import fig1_network
from repro.configs.fig2 import FIG2_BAG_MS, FIG2_S_MAX_BYTES, fig2_network
from repro.configs.industrial import IndustrialConfigSpec, industrial_network
from repro.configs.random_topology import random_network

__all__ = [
    "fig1_network",
    "fig2_network",
    "FIG2_BAG_MS",
    "FIG2_S_MAX_BYTES",
    "industrial_network",
    "IndustrialConfigSpec",
    "random_network",
]
