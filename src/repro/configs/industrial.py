"""Synthetic industrial-scale AFDX configuration.

The paper's evaluation (Sec. II-C) runs on a proprietary Airbus
configuration: *"nearby 1000 virtual links corresponding to more than
6000 paths ... more than one hundred end systems and two redundant AFDX
sub-networks, each composed of eight switches"*.  That configuration is
not public, so this generator produces a seeded synthetic stand-in with
the same published structure (see DESIGN.md, "Substitution note"):

* one sub-network of eight switches (the two real sub-networks are
  redundant copies carrying the same VLs, so analysing one is
  representative), arranged as a partial mesh: switches ``S1 .. S8``
  with a physical link between every pair at index distance <= 3
  (18 inter-switch links);
* **monotone hash-spread routing**: a flow towards a higher-indexed
  switch only ever hops to higher-indexed switches (and symmetrically
  downwards), taking strides of 2-3 chosen by a per-(VL, node) hash.
  Monotone switch sequences make the output-port graph acyclic *by
  construction* (an increasing chain cannot loop), the hash spreads
  load over all 36 directed inter-switch ports, and stride <= 3 over 8
  switches bounds paths at 4 crossed switches — the path lengths of
  the paper's configuration.  Per-(VL, node) (rather than per-path)
  stride choice makes every multicast VL's paths share prefixes, i.e.
  form a tree;
* ~100 end systems spread over the switches;
* ~1000 multicast VLs averaging >6 destinations (>6000 paths), with
  harmonic BAGs in 1..128 ms and Ethernet frame sizes in 64..1518 B,
  drawn from distributions skewed the way avionics traffic is (many
  small, frequent samples; few large, slow file-style transfers);
* automatic admission-control repair: while any output port exceeds the
  utilization target, the highest-rate VL crossing the worst port gets
  its BAG doubled (then its frames shrunk) until the configuration is
  schedulable — mirroring how a real configuration is iterated.

Everything is driven by one :class:`random.Random` seed, so a given
:class:`IndustrialConfigSpec` always yields byte-identical
configurations.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.network.builder import NetworkBuilder
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.network.virtual_link import VirtualLink

__all__ = ["IndustrialConfigSpec", "industrial_network"]

#: (BAG in ms, sampling weight) — skewed towards the slower classes, as
#: published AFDX traffic breakdowns are.
_BAG_WEIGHTS: Tuple[Tuple[float, int], ...] = (
    (1, 1),
    (2, 2),
    (4, 4),
    (8, 8),
    (16, 14),
    (32, 20),
    (64, 26),
    (128, 25),
)

#: (s_max range in bytes, sampling weight) — mostly short periodic
#: samples, a tail of large frames (paper Fig. 6 spans 64..1518 B).
_SIZE_WEIGHTS: Tuple[Tuple[Tuple[int, int], int], ...] = (
    ((64, 150), 45),
    ((151, 300), 30),
    ((301, 600), 12),
    ((601, 900), 6),
    ((901, 1200), 4),
    ((1201, 1518), 3),
)

#: (destination count, weight) — mean above 6, reproducing the paper's
#: ">6000 paths for ~1000 VLs" fan-out.
_FANOUT_WEIGHTS: Tuple[Tuple[int, int], ...] = (
    (1, 10),
    (2, 10),
    (4, 15),
    (6, 20),
    (8, 20),
    (10, 15),
    (12, 10),
)

_N_SWITCHES = 8
_MAX_STRIDE = 3


@dataclass(frozen=True)
class IndustrialConfigSpec:
    """Parameters of the synthetic industrial configuration.

    The defaults reproduce the published scale; tests and quick demos
    shrink ``n_virtual_links`` / ``end_systems_per_switch``.
    """

    seed: int = 2010  # the paper's publication year, for the record
    n_virtual_links: int = 1000
    end_systems_per_switch: int = 13
    #: Real avionics networks are engineered far below saturation
    #: (published AFDX link loads are well under 15%); the traffic
    #: distributions above land just under this naturally, so the
    #: repair loop barely fires and BAG / frame-size statistics stay
    #: unbiased for the per-parameter studies (Figs. 5 and 6).
    utilization_target: float = 0.15
    switch_latency_us: float = 16.0
    name: str = "industrial"


def _weighted_choice(rng: random.Random, table: Sequence[Tuple[object, int]]) -> object:
    # repro-lint: allow[REPRO101] integer spec-table weights; exact in floats
    total = sum(weight for _, weight in table)
    pick = rng.uniform(0, total)
    acc = 0.0
    for value, weight in table:
        # repro-lint: allow[REPRO102] cumulative-weight scan in the fixed spec-table order
        acc += weight
        if pick <= acc:
            return value
    return table[-1][0]


def _build_topology(spec: IndustrialConfigSpec) -> Tuple[Network, List[str]]:
    """Partial-mesh sub-network: S1..S8, links at index distance <= 3."""
    builder = NetworkBuilder(name=spec.name, switch_latency_us=spec.switch_latency_us)
    switches = [f"S{i + 1}" for i in range(_N_SWITCHES)]
    builder.switches(*switches)
    for i in range(_N_SWITCHES):
        for j in range(i + 1, min(i + _MAX_STRIDE, _N_SWITCHES - 1) + 1):
            builder.link(switches[i], switches[j])

    end_systems: List[str] = []
    counter = 1
    for switch in switches:
        for _ in range(spec.end_systems_per_switch):
            name = f"es{counter:03d}"
            builder.end_systems(name)
            builder.link(name, switch)
            end_systems.append(name)
            counter += 1
    return builder.build(validate=False), end_systems


def _stride(vl_name: str, position: int, direction: int) -> int:
    """Deterministic per-(VL, switch, direction) stride in {2, 3}.

    Depending only on the VL and the current switch (not on the
    destination) keeps multicast paths prefix-consistent — they form a
    tree, forking only where destinations force different clamps.
    """
    digest = zlib.crc32(f"{vl_name}|{position}|{direction}".encode())
    return 2 + digest % 2


def _switch_route(vl_name: str, source_pos: int, dest_pos: int) -> List[int]:
    """Monotone switch-index route from source to destination switch."""
    route = [source_pos]
    current = source_pos
    direction = 1 if dest_pos >= source_pos else -1
    while current != dest_pos:
        remaining = abs(dest_pos - current)
        if remaining <= _MAX_STRIDE:
            step = remaining  # direct link available: take it (paper: <= 4 switches)
        else:
            step = _stride(vl_name, current, direction)
        current += direction * step
        route.append(current)
    return route


def _route_paths(
    vl_name: str,
    source: str,
    destinations: Sequence[str],
    attachment: dict,
) -> Tuple[Tuple[str, ...], ...]:
    """One node path per destination, through the monotone switch routes."""
    paths = []
    for dest in destinations:
        switch_route = _switch_route(vl_name, attachment[source], attachment[dest])
        nodes = (source, *(f"S{pos + 1}" for pos in switch_route), dest)
        paths.append(nodes)
    return tuple(paths)


def _draw_virtual_links(
    end_systems: List[str], attachment: dict, spec: IndustrialConfigSpec
) -> List[VirtualLink]:
    rng = random.Random(spec.seed)
    vls: List[VirtualLink] = []
    for index in range(spec.n_virtual_links):
        name = f"vl{index + 1:04d}"
        source = rng.choice(end_systems)
        fanout = int(_weighted_choice(rng, _FANOUT_WEIGHTS))
        candidates = [es for es in end_systems if es != source]
        destinations = sorted(rng.sample(candidates, min(fanout, len(candidates))))
        bag_ms = float(_weighted_choice(rng, _BAG_WEIGHTS))
        lo, hi = _weighted_choice(rng, _SIZE_WEIGHTS)
        s_max = float(rng.randint(lo, hi))
        vls.append(
            VirtualLink(
                name=name,
                source=source,
                paths=_route_paths(name, source, destinations, attachment),
                bag_ms=bag_ms,
                s_max_bytes=s_max,
                s_min_bytes=min(64.0, s_max),
            )
        )
    return vls


def _repair_overload(network: Network, spec: IndustrialConfigSpec) -> int:
    """Double BAGs / shrink frames until every port meets the target.

    Returns the number of repair operations applied.  Deterministic:
    always fixes the currently worst port, always slows its
    highest-rate VL first.
    """
    repairs = 0
    while True:
        ports = network.used_ports()
        worst = max(ports, key=lambda pid: network.port_utilization(pid))
        if network.port_utilization(worst) <= spec.utilization_target:
            return repairs
        members = sorted(
            network.vls_at_port(worst),
            key=lambda name: (-network.vl(name).rate_bits_per_us, name),
        )
        victim = network.vl(members[0])
        if victim.bag_ms < 128:
            network.replace_virtual_link(victim.with_bag_ms(victim.bag_ms * 2))
        elif victim.s_max_bytes > 128:
            network.replace_virtual_link(
                victim.with_s_max_bytes(max(64.0, victim.s_max_bytes / 2))
            )
        else:
            raise AssertionError(
                "repair loop stuck: minimal-rate VL still overloads a port "
                "(spec asks for more traffic than the topology can carry)"
            )
        repairs += 1


def industrial_network(spec: IndustrialConfigSpec = IndustrialConfigSpec()) -> Network:
    """Generate the seeded synthetic industrial configuration."""
    network, end_systems = _build_topology(spec)
    attachment = {}
    for es in end_systems:
        switch = next(iter(network.neighbors(es)))
        attachment[es] = int(switch[1:]) - 1
    for vl in _draw_virtual_links(end_systems, attachment, spec):
        network.add_virtual_link(vl)
    _repair_overload(network, spec)
    check_network(network)
    return network
