"""Small random configurations for fuzz and property-based testing.

:func:`random_network` draws a random switch tree, attaches end systems
and routes a handful of random (possibly multicast) VLs, then repairs
overload by doubling BAGs.  Tree switch topologies plus unique
tree-path routing guarantee a feed-forward port graph, so every
generated configuration is analyzable by construction — which is what
the hypothesis-based invariant tests need.
"""

from __future__ import annotations

import random
from typing import List

from repro.network.builder import NetworkBuilder
from repro.network.routing import route_virtual_link
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.network.virtual_link import STANDARD_BAGS_MS, VirtualLink

__all__ = ["random_network"]


def random_network(
    seed: int,
    n_switches: int = 3,
    n_end_systems: int = 8,
    n_virtual_links: int = 6,
    max_fanout: int = 3,
    utilization_target: float = 0.85,
) -> Network:
    """Generate a random, valid, analyzable AFDX configuration.

    All randomness comes from ``seed``; identical arguments always give
    identical networks.
    """
    if n_switches < 1:
        raise ValueError("need at least one switch")
    if n_end_systems < 2:
        raise ValueError("need at least two end systems (a source and a sink)")
    rng = random.Random(seed)
    builder = NetworkBuilder(name=f"random-{seed}")

    switches = [f"S{i + 1}" for i in range(n_switches)]
    builder.switches(*switches)
    # random tree over the switches: node i hangs off a random earlier node
    for i in range(1, n_switches):
        builder.link(switches[i], switches[rng.randrange(i)])

    end_systems = [f"e{i + 1}" for i in range(n_end_systems)]
    builder.end_systems(*end_systems)
    for es in end_systems:
        builder.link(es, rng.choice(switches))

    network = builder.build(validate=False)

    vls: List[VirtualLink] = []
    for index in range(n_virtual_links):
        source = rng.choice(end_systems)
        others = [es for es in end_systems if es != source]
        fanout = rng.randint(1, min(max_fanout, len(others)))
        destinations = sorted(rng.sample(others, fanout))
        s_max = float(rng.randint(64, 1518))
        vls.append(
            VirtualLink(
                name=f"v{index + 1}",
                source=source,
                paths=route_virtual_link(network, source, destinations),
                bag_ms=float(rng.choice(STANDARD_BAGS_MS)),
                s_max_bytes=s_max,
                s_min_bytes=float(rng.randint(64, int(s_max))),
            )
        )
    for vl in vls:
        network.add_virtual_link(vl)

    # admission-control repair, as in the industrial generator
    while network.used_ports():
        worst = max(network.used_ports(), key=network.port_utilization)
        if network.port_utilization(worst) <= utilization_target:
            break
        members = sorted(
            network.vls_at_port(worst),
            key=lambda name: (-network.vl(name).rate_bits_per_us, name),
        )
        victim = network.vl(members[0])
        if victim.bag_ms < 128:
            network.replace_virtual_link(victim.with_bag_ms(victim.bag_ms * 2))
        else:
            network.replace_virtual_link(
                victim.with_s_max_bytes(max(64.0, victim.s_max_bytes / 2))
            )

    check_network(network)
    return network
