r"""The paper's Figure 2 sample configuration.

Five emitting end systems (e1..e5), two receiving end systems (e6, e7),
three switches (S1..S3)::

    e1 --\                      /-- e6
          S1 --\               /
    e2 --/      \             /
                 S3 ----------
    e3 --\      /             \
          S2 --/               \-- e7
    e4 --/
    e5 --/

VLs: v1: e1->e6, v2: e2->e6, v3: e3->e6, v4: e4->e6 (all via S3), and
v5: e5->e7.  All VLs are identical: BAG = 4 ms (4000 us) and
``s_max = 4000 bits`` (500 B); the network runs at 100 Mb/s with a
16 us technological latency per switch output port (paper Sec. II-B).

The paper's worked scenario computes the Trajectory worst case of v1 on
this configuration: without serialization, frames of v3 and v4 are
assumed to hit S3 simultaneously (Fig. 3 — impossible, they share the
S2->S3 link); the enhanced analysis (Fig. 4) recovers exactly one frame
time (40 us at these sizes).
"""

from __future__ import annotations

from repro.network.builder import NetworkBuilder
from repro.network.topology import Network

__all__ = ["fig2_network", "FIG2_BAG_MS", "FIG2_S_MAX_BYTES"]

#: BAG of every VL in the sample configuration (4000 us).
FIG2_BAG_MS = 4.0

#: Frame size of every VL (4000 bits = 500 bytes -> C = 40 us at 100 Mb/s).
FIG2_S_MAX_BYTES = 500.0


def fig2_network(
    bag_ms: float = FIG2_BAG_MS, s_max_bytes: float = FIG2_S_MAX_BYTES
) -> Network:
    """Build the Figure 2 sample configuration.

    Parameters let the parameter-influence experiments rebuild the
    network with uniform alternative values; the per-VL sweeps of
    Figs. 7-9 instead use :meth:`Network.replace_virtual_link` on v1.
    """
    builder = (
        NetworkBuilder(name="fig2", switch_latency_us=16.0)
        .switches("S1", "S2", "S3")
        .end_systems("e1", "e2", "e3", "e4", "e5", "e6", "e7")
        .link("e1", "S1")
        .link("e2", "S1")
        .link("e3", "S2")
        .link("e4", "S2")
        .link("e5", "S2")
        .link("S1", "S3")
        .link("S2", "S3")
        .link("S3", "e6")
        .link("S3", "e7")
    )
    sources = {"v1": "e1", "v2": "e2", "v3": "e3", "v4": "e4", "v5": "e5"}
    for name, source in sources.items():
        destination = "e7" if name == "v5" else "e6"
        builder.virtual_link(
            name,
            source=source,
            destinations=[destination],
            bag_ms=bag_ms,
            s_max_bytes=s_max_bytes,
            s_min_bytes=s_max_bytes,  # the paper's flows have fixed-size frames
        )
    return builder.build()
