"""Reconstruction of the paper's Figure 1 illustrative configuration.

Figure 1 shows five interconnected switches (S1..S5), ten end systems
(e1..e10) and ten Virtual Links (v1..v9 plus the unicast vx); the paper
only details two of them: *"vx is a unicast VL with path
{e4, S4, e8}"* (modulo OCR) and *"v6 is a multicast VL with paths
{e1, S1, S2, e7} and {e1, S1, S4, e8}"*.  The published figure is not
fully legible in the archived text, so this module reconstructs a
configuration with the same structure: five switches, ten end systems,
nine unicast VLs of mixed BAG / frame size plus the multicast v6 — it
serves as a mid-size test fixture between the Fig. 2 toy and the
industrial generator.
"""

from __future__ import annotations

from repro.network.builder import NetworkBuilder
from repro.network.topology import Network

__all__ = ["fig1_network"]


def fig1_network() -> Network:
    """Build the five-switch illustrative configuration."""
    builder = (
        NetworkBuilder(name="fig1", switch_latency_us=16.0)
        .switches("S1", "S2", "S3", "S4", "S5")
        .end_systems("e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10")
        # S3 is the backbone hub; S1/S2 aggregate sources, S4/S5 sinks
        .link("S1", "S3")
        .link("S2", "S3")
        .link("S3", "S4")
        .link("S3", "S5")
        .link("S1", "S2")
        .link("e1", "S1")
        .link("e2", "S1")
        .link("e3", "S2")
        .link("e4", "S2")
        .link("e5", "S2")
        .link("e6", "S3")
        .link("e7", "S4")
        .link("e8", "S4")
        .link("e9", "S5")
        .link("e10", "S5")
    )
    # (name, source, destinations, bag_ms, s_max_bytes)
    flows = [
        ("v1", "e1", ["e6"], 4, 500),
        ("v2", "e2", ["e7"], 8, 1000),
        ("v3", "e3", ["e6"], 4, 200),
        ("v4", "e4", ["e9"], 16, 1518),
        ("v5", "e5", ["e10"], 2, 100),
        ("v6", "e1", ["e7", "e8"], 8, 500),  # the paper's multicast example
        ("v7", "e2", ["e8"], 4, 750),
        ("v8", "e1", ["e9"], 32, 300),
        ("v9", "e3", ["e7", "e10"], 16, 640),
        ("vx", "e4", ["e8"], 4, 500),  # the paper's unicast example
    ]
    for name, source, dests, bag_ms, s_max in flows:
        builder.virtual_link(
            name, source=source, destinations=dests, bag_ms=bag_ms, s_max_bytes=s_max
        )
    return builder.build()
