"""Command-line interface: ``afdx`` (or ``python -m repro.cli``).

Subcommands
-----------

``afdx analyze CONFIG.json``
    Compute WCNC / Trajectory / combined bounds for every VL path of a
    configuration file and print them with aggregate statistics.
``afdx validate CONFIG.json``
    Run the ARINC-664 configuration checks and print the report.
``afdx generate {fig1,fig2,industrial,random} -o CONFIG.json``
    Write one of the bundled configurations to disk.
``afdx simulate CONFIG.json``
    Run the frame-level simulator and compare observed delays with the
    analytic bounds.
``afdx experiment {table1,fig3_4,fig5,fig6,fig7,fig8,fig9}``
    Regenerate one of the paper's tables/figures.
``afdx batch-sweep``
    Soundness fuzzing: analyze + simulate many seeded random
    configurations in parallel and report any path whose observed
    delay exceeds a claimed bound (see ``docs/BATCH.md``).
``afdx whatif CONFIG.json EDITS.json``
    Incremental what-if analysis: apply an edit script (add / remove /
    retime / resize / re-route VLs) and re-analyze only the dirty
    region, printing the paths whose bounds changed (see
    ``docs/INCREMENTAL.md``).
``afdx explain CONFIG.json``
    Bound provenance: decompose every path's WCNC and Trajectory bound
    into named additive terms (conservation-checked bit for bit) and
    attribute the per-path gap between the methods to its dominant
    mechanism (see ``docs/OBSERVABILITY.md``).
``afdx lint CONFIG.json [CONFIG.json ...]``
    Static preflight verification: check each configuration against
    the theory preconditions (feed-forward routing, port stability)
    and the ARINC-664 admission rules (BAG, frame sizes, routes,
    multicast trees, ES wiring) without running any analysis.  Every
    finding carries a stable ``CFG1xx`` rule id (see ``docs/LINT.md``);
    errors exit 3.  ``analyze``, ``batch-sweep`` and ``whatif`` accept
    ``--preflight`` to run the same checks before analyzing — a bad
    configuration then fails with a one-line diagnostic (exit 3, or 4
    when only stability is violated) instead of a deep analyzer error,
    and a clean configuration's bounds are bit-identical with or
    without the flag.

``analyze``, ``experiment``, ``batch-sweep`` and ``explain`` accept
``--jobs N`` to fan the analysis across N worker processes
(``repro.batch``); results are bit-identical to the sequential
``--jobs 1`` default.  ``analyze``, ``batch-sweep``, ``whatif`` and
``explain`` accept ``--cache-dir DIR`` to persist the
content-addressed bound cache across invocations.

Observability (every subcommand)
--------------------------------

All subcommands share the observability flag group — registered once
in :func:`_obs_parent` so a new subcommand cannot ship without it
(``tests/test_cli.py`` enforces this over :data:`OBS_FLAG_DESTS`):

``--log-level LEVEL``
    Enable the ``repro`` logger hierarchy on stderr.
``--metrics-json PATH``
    Collect analyzer stats and write a run manifest (see
    ``docs/OBSERVABILITY.md`` for the schema).
``--metrics-prom PATH``
    Write the run's counters/gauges/timers as a Prometheus textfile
    (node-exporter textfile collector format).
``--progress``
    Live per-phase progress on stderr for long industrial runs.
``--profile PATH``
    Dump cProfile stats of the whole command (top cumulative functions
    land in the run manifest).
``--trace PATH``
    Serialize the recorded phase spans as Chrome-trace JSON for
    ``chrome://tracing`` / Perfetto; an existing file at PATH is
    merged under fresh process lanes (cold/warm cache comparisons).

The ``profile`` subcommand is the deterministic complement of
``--profile``: it runs both analyzers with stats collection forced on
and prints hot-spot reports from the cost ledger
(:mod:`repro.obs.costmodel`) instead of wall-clock samples.

Exit codes
----------

0 success · 1 command-level failure (invalid config report, bound
violations) · 2 usage error (argparse) · 3 configuration error
(including cyclic routing and ``lint`` findings of severity error) ·
4 unstable network (no finite bound) · 5 other analysis error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.batch import BatchAnalyzer, SweepSpec, batch_sweep
from repro.configs import (
    IndustrialConfigSpec,
    fig1_network,
    fig2_network,
    industrial_network,
    random_network,
)
from repro.core.combined import analyze_network
from repro.core.comparison import summarize
from repro.core.jitter import jitter_bounds
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    CyclicRoutingError,
    UnstableNetworkError,
)
from repro.experiments import EXPERIMENTS, run_experiment
from repro.netcalc.analyzer import analyze_network_calculus
from repro.network.serialization import network_from_json, network_to_json
from repro.network.validation import validate_network
from repro.obs import configure as configure_logging
from repro.obs import (
    build_manifest,
    network_identity,
    work_summary,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.manifest import bound_summary
from repro.obs.trace import ProgressHook
from repro.sim.scenarios import TrafficScenario, simulate
from repro.trajectory.analyzer import analyze_trajectory
from repro.trajectory.timing import seed_smax_from_netcalc

__all__ = [
    "main",
    "build_parser",
    "OBS_FLAG_DESTS",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_CONFIG_ERROR",
    "EXIT_UNSTABLE",
    "EXIT_ANALYSIS_ERROR",
]

EXIT_OK = 0
EXIT_FAILURE = 1
# argparse itself exits with 2 on usage errors
EXIT_CONFIG_ERROR = 3
EXIT_UNSTABLE = 4
EXIT_ANALYSIS_ERROR = 5

#: argparse dests of the shared observability flag group.  Every
#: subcommand inherits them through :func:`_obs_parent`, and
#: ``tests/test_cli.py`` asserts the invariant over all subparsers.
OBS_FLAG_DESTS = (
    "log_level",
    "metrics_json",
    "metrics_prom",
    "progress",
    "profile",
    "trace",
    "history_dir",
)

#: argparse dests that describe *how* a run executed (worker count,
#: cache placement, kernel choice) rather than *what* it analyzed.
#: They land in the run-history record's volatile ``execution``
#: section, never its deterministic ``options`` core — the core must be
#: byte-stable across ``--jobs`` and cache states.
_EXECUTION_ARGS = frozenset(("jobs", "cache_dir", "no_shm", "trajectory_kernel"))


def _obs_parent() -> argparse.ArgumentParser:
    """The shared observability flag group, as an argparse parent.

    Registered in exactly one place so a new subcommand cannot ship
    without the standard flags: pass ``parents=[_obs_parent()]`` (as
    every ``sub.add_parser`` call in :func:`build_parser` does) and the
    whole group comes along.
    """
    obs = argparse.ArgumentParser(add_help=False)
    group = obs.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="enable repro.* logging on stderr (DEBUG, INFO, WARNING...)",
    )
    group.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="collect run statistics and write a JSON run manifest",
    )
    group.add_argument(
        "--metrics-prom",
        default=None,
        metavar="PATH",
        help="write run metrics as a Prometheus textfile "
        "(node-exporter textfile collector format)",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="print per-phase progress to stderr during long runs",
    )
    group.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="dump cProfile stats to PATH (top cumulative functions are "
        "recorded in the --metrics-json manifest)",
    )
    group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write recorded phase spans as Chrome-trace JSON "
        "(chrome://tracing / Perfetto); an existing trace file is "
        "merged, so warm/cold runs land in one timeline",
    )
    group.add_argument(
        "--history-dir",
        default=None,
        metavar="DIR",
        help="append a run record (config + bounds digests, work "
        "counters, wall time, git rev) to the persistent run history "
        "in DIR (or set AFDX_HISTORY_DIR); query it with 'afdx obs'",
    )
    return obs


def build_parser() -> argparse.ArgumentParser:
    """The ``afdx`` argument parser (exposed for testing)."""
    obs = _obs_parent()

    parser = argparse.ArgumentParser(
        prog="afdx",
        description="Worst-case end-to-end delay analysis of AFDX networks "
        "(Network Calculus + Trajectory approach, DATE 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", parents=[obs], help="compute delay bounds for a configuration"
    )
    analyze.add_argument("config", help="configuration JSON file")
    analyze.add_argument(
        "--no-grouping", action="store_true", help="disable NC grouping"
    )
    analyze.add_argument(
        "--serialization",
        choices=["paper", "windowed", "safe"],
        default="windowed",
        help="Trajectory serialization mode (default: windowed)",
    )
    analyze.add_argument(
        "--trajectory-kernel",
        choices=["fast", "reference"],
        default="fast",
        help="trajectory sweep implementation (bit-identical bounds; "
        "default: fast)",
    )
    analyze.add_argument(
        "--top", type=int, default=0, help="print only the N largest combined bounds"
    )
    analyze.add_argument(
        "--jitter", action="store_true",
        help="also print the per-path jitter bound (bound - uncontended floor)",
    )
    analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = sequential, 0 = all cores); "
        "results are bit-identical for any N",
    )
    analyze.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the content-addressed bound cache in DIR "
        "(bit-identical results, repeat runs reuse cached per-port work)",
    )
    analyze.add_argument(
        "--no-shm", action="store_true",
        help="ship worker state by fork/pickle instead of shared-memory "
        "segments (bit-identical; diagnostic escape hatch)",
    )
    analyze.add_argument(
        "--preflight", action="store_true",
        help="verify the configuration (afdx lint rules) before analyzing; "
        "errors fail with a one-line diagnostic instead of a deep analyzer "
        "error, a clean config's bounds are unchanged",
    )

    profile_cmd = sub.add_parser(
        "profile",
        parents=[obs],
        help="run both analyzers and print deterministic hot-spot reports",
    )
    profile_cmd.add_argument("config", help="configuration JSON file")
    profile_cmd.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="rows per hot-port table (default: 10)",
    )
    profile_cmd.add_argument(
        "--busy-share", type=float, default=5.0, metavar="PCT",
        help="report paths whose busy-period share of the total exceeds "
        "PCT%% (default: 5)",
    )
    profile_cmd.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report rendering (default: text)",
    )
    profile_cmd.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    profile_cmd.add_argument(
        "--no-grouping", action="store_true", help="disable NC grouping"
    )
    profile_cmd.add_argument(
        "--serialization",
        choices=["paper", "windowed", "safe"],
        default="windowed",
        help="Trajectory serialization mode (default: windowed)",
    )
    profile_cmd.add_argument(
        "--trajectory-kernel",
        choices=["fast", "reference"],
        default="fast",
        help="trajectory sweep implementation (bit-identical bounds; "
        "default: fast)",
    )
    profile_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = sequential, 0 = all cores); the "
        "deterministic counter sections are identical for any N",
    )
    profile_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the content-addressed bound cache in DIR "
        "(cache hits appear as explicit ledger entries)",
    )
    profile_cmd.add_argument(
        "--no-shm", action="store_true",
        help="ship worker state by fork/pickle instead of shared-memory "
        "segments (bit-identical; diagnostic escape hatch)",
    )

    validate = sub.add_parser("validate", parents=[obs], help="check a configuration")
    validate.add_argument("config", help="configuration JSON file")

    generate = sub.add_parser(
        "generate", parents=[obs], help="write a bundled configuration"
    )
    generate.add_argument(
        "kind", choices=["fig1", "fig2", "industrial", "random"],
        help="which configuration to generate",
    )
    generate.add_argument("-o", "--output", required=True, help="output JSON path")
    generate.add_argument("--seed", type=int, default=2010, help="generator seed")
    generate.add_argument(
        "--vls", type=int, default=1000, help="VL count (industrial/random)"
    )

    simulate_cmd = sub.add_parser(
        "simulate", parents=[obs], help="simulate a configuration"
    )
    simulate_cmd.add_argument("config", help="configuration JSON file")
    simulate_cmd.add_argument("--duration-ms", type=float, default=100.0)
    simulate_cmd.add_argument("--seed", type=int, default=0)
    simulate_cmd.add_argument(
        "--random-offsets",
        action="store_true",
        help="desynchronize VL first releases (default: synchronized)",
    )

    report = sub.add_parser(
        "report", parents=[obs], help="full certification-style report"
    )
    report.add_argument("config", help="configuration JSON file")
    report.add_argument("-o", "--output", default=None, help="write to a file")
    report.add_argument("--top", type=int, default=10, help="critical paths to detail")

    experiment = sub.add_parser(
        "experiment", parents=[obs], help="regenerate a paper table/figure"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    experiment.add_argument(
        "--vls", type=int, default=None,
        help="override the industrial configuration's VL count (faster runs)",
    )
    experiment.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the artefact as CSV",
    )
    experiment.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the industrial-config experiments "
        "(table1, fig5, fig6); bit-identical for any N",
    )

    sweep = sub.add_parser(
        "batch-sweep", parents=[obs],
        help="fuzz many seeded random configurations for bound soundness",
    )
    sweep.add_argument(
        "--configs", type=int, default=50, metavar="N",
        help="number of seeded random configurations (default 50)",
    )
    sweep.add_argument(
        "--base-seed", type=int, default=0, metavar="SEED",
        help="first topology seed; configs use SEED..SEED+N-1",
    )
    sweep.add_argument("--switches", type=int, default=3, metavar="N")
    sweep.add_argument("--end-systems", type=int, default=6, metavar="N")
    sweep.add_argument("--vls", type=int, default=6, metavar="N")
    sweep.add_argument(
        "--scenarios", type=int, default=2, metavar="N",
        help="traffic scenarios simulated per configuration (default 2)",
    )
    sweep.add_argument(
        "--duration-ms", type=float, default=5.0,
        help="simulated time per scenario in ms (default 5)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = sequential, 0 = all cores)",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="share the content-addressed bound cache across sweeps "
        "(and with the other incremental commands)",
    )
    sweep.add_argument(
        "--preflight", action="store_true",
        help="verify each generated configuration (afdx lint rules) before "
        "analyzing it; rejected configs are recorded as skipped",
    )

    whatif = sub.add_parser(
        "whatif", parents=[obs],
        help="apply an edit script and re-analyze only the dirty region",
    )
    whatif.add_argument("config", help="configuration JSON file")
    whatif.add_argument(
        "edits",
        help='edit-script JSON file ({"edits": [{"op": "retime", ...}, ...]})',
    )
    whatif.add_argument(
        "--no-grouping", action="store_true", help="disable NC grouping"
    )
    whatif.add_argument(
        "--serialization",
        choices=["paper", "windowed", "safe"],
        default="windowed",
        help="Trajectory serialization mode (default: windowed)",
    )
    whatif.add_argument(
        "--trajectory-kernel",
        choices=["fast", "reference"],
        default="fast",
        help="trajectory sweep implementation (bit-identical bounds; "
        "default: fast)",
    )
    whatif.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the bound cache in DIR so repeated what-ifs on the "
        "same base configuration skip the cold run's recomputation",
    )
    whatif.add_argument(
        "--preflight", action="store_true",
        help="verify the base configuration (afdx lint rules) before "
        "the incremental analysis",
    )

    explain = sub.add_parser(
        "explain", parents=[obs],
        help="decompose every bound into additive terms and attribute "
        "the per-path gap between the two methods",
    )
    explain.add_argument("config", help="configuration JSON file")
    explain.add_argument(
        "--vl", default=None, metavar="NAME",
        help="detail only the paths of this VL",
    )
    explain.add_argument(
        "--path", type=int, default=None, metavar="K",
        help="detail only path index K (usually with --vl)",
    )
    explain.add_argument(
        "--format", choices=["text", "json", "html"], default="text",
        help="output format (default: text)",
    )
    explain.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="detail only the N paths with the largest |gap| "
        "(the summary always covers every path)",
    )
    explain.add_argument(
        "--no-grouping", action="store_true", help="disable NC grouping"
    )
    explain.add_argument(
        "--serialization",
        choices=["paper", "windowed", "safe"],
        default="windowed",
        help="Trajectory serialization mode (default: windowed)",
    )
    explain.add_argument(
        "--trajectory-kernel",
        choices=["fast", "reference"],
        default="fast",
        help="trajectory sweep implementation (bit-identical bounds; "
        "default: fast)",
    )
    explain.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = sequential, 0 = all cores); "
        "output is byte-identical for any N",
    )
    explain.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the bound cache in DIR (provenance is always "
        "recomputed, never served stale; output is byte-identical)",
    )
    explain.add_argument(
        "-o", "--output", default=None, help="write the report to a file"
    )

    lint = sub.add_parser(
        "lint", parents=[obs],
        help="statically verify configurations against the theory "
        "preconditions and ARINC-664 admission rules (no analysis run)",
    )
    lint.add_argument(
        "configs", nargs="+", metavar="CONFIG",
        help="configuration JSON file(s)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit 1 when only warnings are found (default: warnings pass)",
    )
    lint.add_argument(
        "--max-utilization", type=float, default=1.0, metavar="U",
        help="stability threshold for CFG102 (default 1.0, the theoretical "
        "limit; admission control may verify a stricter value)",
    )
    lint.add_argument(
        "--no-utilization-table", action="store_true",
        help="suppress the CFG110 per-port utilization info entries",
    )

    obs_cmd = sub.add_parser(
        "obs", parents=[obs],
        help="query the persistent run history "
        "(--history-dir / AFDX_HISTORY_DIR)",
    )
    obs_cmd.add_argument(
        "action", choices=["list", "show", "diff", "drift"],
        help="list recent runs; show full records; diff two runs' "
        "bounds digests and work counters; drift-scan for bounds "
        "changes at fixed config digests across git revs",
    )
    obs_cmd.add_argument(
        "run_ids", nargs="*", metavar="RUN_ID",
        help="run ids (unique prefixes accepted): show takes one or "
        "more, diff exactly two",
    )
    obs_cmd.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="newest N records for list (default 20, 0 = all)",
    )
    obs_cmd.add_argument(
        "--command", default=None, metavar="CMD", dest="filter_command",
        help="only consider records of this subcommand",
    )
    obs_cmd.add_argument(
        "--config-digest", default=None, metavar="HEX",
        help="only consider records whose configuration digest starts "
        "with HEX",
    )
    obs_cmd.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    obs_cmd.add_argument(
        "--strict", action="store_true",
        help="drift: also exit 1 on more-work counter trends "
        "(advisory by default)",
    )

    return parser


def _print_progress(phase: str, done: int, total: int) -> None:
    """Default ``--progress`` sink: one updating line per phase on stderr."""
    end = "\n" if done >= total else ""
    print(f"\r{phase}: {done}/{total}", end=end, file=sys.stderr, flush=True)


class _RunContext:
    """Per-invocation observability state shared with the subcommands.

    Collects the command-level metrics registry, the progress hook and
    the manifest sections (``config`` / ``analyzers`` / ``bounds``)
    the dispatched command fills in; :func:`main` assembles and writes
    the manifest after the command returns.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.obs.history import resolve_history_dir

        self.metrics_path: Optional[str] = getattr(args, "metrics_json", None)
        self.prom_path: Optional[str] = getattr(args, "metrics_prom", None)
        self.trace_path: Optional[str] = getattr(args, "trace", None)
        #: run-history target (flag > AFDX_HISTORY_DIR > off); queries
        #: (``afdx obs``) read it but never record themselves
        self.history_dir = resolve_history_dir(
            getattr(args, "history_dir", None)
        )
        self.record_history = (
            self.history_dir is not None and args.command != "obs"
        )
        # a recorded run needs the same stats the manifest needs (work
        # counters, config identity), so recording implies collection
        self.collect = (
            self.metrics_path is not None
            or self.prom_path is not None
            or self.trace_path is not None
            or self.record_history
        )
        self.metrics = MetricsRegistry(enabled=self.collect)
        self.progress = (
            ProgressHook(_print_progress) if getattr(args, "progress", False) else None
        )
        self.config: Optional[Dict[str, object]] = None
        self.analyzers: Dict[str, Dict[str, object]] = {}
        self.bounds: Optional[Dict[str, object]] = None
        self.config_digest: Optional[str] = None
        self.bounds_digest: Optional[str] = None
        self.fleet: Optional[Dict[str, object]] = None

    def set_config(self, network, source: Optional[str] = None) -> None:
        """Record the configuration identity for the manifest."""
        if not self.collect:
            return
        self.config = network_identity(network)
        if source is not None:
            self.config["source"] = str(source)
        if self.record_history:
            from repro.incremental.fingerprint import network_fingerprint

            self.config_digest = network_fingerprint(network)

    def record_bounds(self, nc_result, trajectory_result) -> None:
        """Capture the lossless per-path bounds digest for the history.

        Best-effort: a result shape without the ``paths`` maps simply
        leaves the record digest-less (it still carries work counters).
        """
        if not self.record_history:
            return
        from repro.obs.history import analysis_bounds_digest

        try:
            self.bounds_digest = analysis_bounds_digest(
                nc_result, trajectory_result
            )
        except (AttributeError, KeyError, TypeError):
            self.bounds_digest = None


#: argparse attributes that are not analyzer/command options.
#: Derived from OBS_FLAG_DESTS so a flag added to the shared group is
#: automatically excluded from the manifest's ``options`` section.
_NON_OPTION_ARGS = frozenset(("command",) + OBS_FLAG_DESTS)


def _manifest_options(args: argparse.Namespace) -> Dict[str, object]:
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in _NON_OPTION_ARGS
    }


def _history_options(args: argparse.Namespace) -> Dict[str, object]:
    """Manifest options minus execution shape.

    The run-history record splits a deterministic core from a volatile
    shell; ``jobs``/``cache_dir``/``no_shm``/``trajectory_kernel`` only
    change *how* bounds are computed, never their bytes, so they live
    in the record's ``execution`` section instead of here.
    """
    return {
        key: value
        for key, value in _manifest_options(args).items()
        if key not in _EXECUTION_ARGS
    }


def _history_execution(args: argparse.Namespace) -> Dict[str, object]:
    return {
        key: vars(args)[key]
        for key in sorted(_EXECUTION_ARGS)
        if key in vars(args)
    }


def _run_preflight(network, source: str, ctx: _RunContext) -> None:
    """Verify ``network`` before analysis (the ``--preflight`` flag).

    Warnings go to stderr; errors abort with the first finding as a
    one-line diagnostic — :func:`main` maps it to exit 4 when only
    stability (CFG102) is violated, exit 3 for anything structural.
    A clean configuration passes through untouched: the verifier never
    mutates the network, so computed bounds are bit-identical with or
    without the preflight (``tests/lint/test_preflight.py``).
    """
    from repro.network.preflight import ConfigVerifier

    report = ConfigVerifier(utilization_table=False).verify_network(
        network, source=source
    )
    if ctx.collect:
        ctx.metrics.gauge("preflight.errors", len(report.errors))
        ctx.metrics.gauge("preflight.warnings", len(report.warnings))
    for finding in report.warnings:
        print(f"afdx: preflight: {finding.render()}", file=sys.stderr)
    if not report.ok:
        first = report.errors[0]
        if report.stability_only:
            raise UnstableNetworkError(f"preflight {first.rule_id}: {first.message}")
        raise ConfigurationError(f"preflight {first.rule_id}: {first.message}")


def _cmd_analyze(args: argparse.Namespace, ctx: _RunContext) -> int:
    network = network_from_json(args.config)
    ctx.set_config(network, source=args.config)
    if args.preflight:
        _run_preflight(network, args.config, ctx)
    batch = BatchAnalyzer(
        network,
        jobs=args.jobs,
        grouping=not args.no_grouping,
        serialization=args.serialization,
        collect_stats=ctx.collect,
        progress=ctx.progress,
        cache_dir=args.cache_dir,
        trajectory_kernel=args.trajectory_kernel,
        use_shm=not args.no_shm,
    )
    nc = batch.network_calculus()
    # with workers, reuse the NC result as the trajectory's Smax seed
    # (the sequential path recomputes the identical grouped-NC seed)
    seed = (
        seed_smax_from_netcalc(network, nc)
        if batch.jobs > 1 and not args.no_grouping
        else None
    )
    trajectory = batch.trajectory(smax_seed=seed)
    ctx.record_bounds(nc, trajectory)
    result = analyze_network(network, nc_result=nc, trajectory_result=trajectory)
    result.stats = summarize(result.paths.values())
    if ctx.collect:
        ctx.analyzers = {"network_calculus": nc.stats, "trajectory": trajectory.stats}
        ctx.bounds = bound_summary(result)
    jitters = jitter_bounds(network, result) if args.jitter else None
    paths = result.path_list()
    paths.sort(key=lambda p: -p.best_us)
    if args.top:
        paths = paths[: args.top]
    header = f"{'VL path':<24}{'WCNC (us)':>12}{'Traj (us)':>12}{'best (us)':>12}"
    if jitters is not None:
        header += f"{'jitter (us)':>13}"
    print(header)
    for path in paths:
        line = (
            f"{path.flow:<24}{path.network_calculus_us:>12.1f}"
            f"{path.trajectory_us:>12.1f}{path.best_us:>12.1f}"
        )
        if jitters is not None:
            line += f"{jitters[(path.vl_name, path.path_index)].jitter_us:>13.1f}"
        print(line)
    print()
    print(result.stats.as_table())
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace, ctx: _RunContext) -> int:
    """``afdx profile``: deterministic hot-spot reports for one config.

    Stats collection is forced on — the profile *is* the stats
    consumer — independent of the ``--metrics-json`` / ``--trace``
    flags, which additionally persist what was collected.
    """
    from pathlib import Path

    from repro.obs import build_profile_report, render_profile_report

    network = network_from_json(args.config)
    ctx.set_config(network, source=args.config)
    batch = BatchAnalyzer(
        network,
        jobs=args.jobs,
        grouping=not args.no_grouping,
        serialization=args.serialization,
        collect_stats=True,
        progress=ctx.progress,
        cache_dir=args.cache_dir,
        trajectory_kernel=args.trajectory_kernel,
        use_shm=not args.no_shm,
    )
    nc = batch.network_calculus()
    seed = (
        seed_smax_from_netcalc(network, nc)
        if batch.jobs > 1 and not args.no_grouping
        else None
    )
    trajectory = batch.trajectory(smax_seed=seed)
    ctx.record_bounds(nc, trajectory)
    ctx.analyzers = {"network_calculus": nc.stats, "trajectory": trajectory.stats}
    if ctx.collect:
        result = analyze_network(
            network, nc_result=nc, trajectory_result=trajectory
        )
        ctx.bounds = bound_summary(result)
    report = build_profile_report(
        nc,
        trajectory,
        top=args.top,
        busy_share_pct=args.busy_share,
        config=network_identity(network),
    )
    if args.format == "json":
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        text = render_profile_report(report)
    if args.output is not None:
        Path(args.output).write_text(text + "\n")
        print(f"(profile report written to {args.output})", file=sys.stderr)
    else:
        print(text)
    return EXIT_OK


def _cmd_validate(args: argparse.Namespace, ctx: _RunContext) -> int:
    network = network_from_json(args.config)
    ctx.set_config(network, source=args.config)
    report = validate_network(network)
    for error in report.errors:
        print(f"ERROR: {error}")
    for warning in report.warnings:
        print(f"warning: {warning}")
    worst = max(report.port_utilization.values(), default=0.0)
    print(
        f"{network!r}: {'OK' if report.ok else 'INVALID'} "
        f"(max port utilization {worst:.3f})"
    )
    return EXIT_OK if report.ok else EXIT_FAILURE


def _cmd_generate(args: argparse.Namespace, ctx: _RunContext) -> int:
    if args.kind == "fig1":
        network = fig1_network()
    elif args.kind == "fig2":
        network = fig2_network()
    elif args.kind == "industrial":
        network = industrial_network(
            IndustrialConfigSpec(seed=args.seed, n_virtual_links=args.vls)
        )
    else:
        network = random_network(args.seed, n_virtual_links=min(args.vls, 50))
    ctx.set_config(network)
    network_to_json(network, args.output)
    print(f"wrote {network!r} to {args.output}")
    return EXIT_OK


def _cmd_simulate(args: argparse.Namespace, ctx: _RunContext) -> int:
    network = network_from_json(args.config)
    ctx.set_config(network, source=args.config)
    nc = analyze_network_calculus(
        network, collect_stats=ctx.collect, progress=ctx.progress
    )
    trajectory = analyze_trajectory(
        network, serialization="safe", collect_stats=ctx.collect, progress=ctx.progress
    )
    ctx.record_bounds(nc, trajectory)
    if ctx.collect:
        ctx.analyzers = {"network_calculus": nc.stats, "trajectory": trajectory.stats}
    scenario = TrafficScenario(
        duration_ms=args.duration_ms,
        synchronized=not args.random_offsets,
        seed=args.seed,
    )
    observed = simulate(network, scenario, metrics=ctx.metrics)
    print(
        f"{'VL path':<24}{'observed max':>14}{'Traj(safe)':>12}{'WCNC':>12}{'margin':>10}"
    )
    violations = 0
    for key in sorted(observed.paths):
        stats = observed.paths[key]
        bound = min(trajectory.paths[key].total_us, nc.paths[key].total_us)
        margin = bound - stats.max_us
        violations += margin < -1e-6
        print(
            f"{key[0] + '[' + str(key[1]) + ']':<24}{stats.max_us:>14.1f}"
            f"{trajectory.paths[key].total_us:>12.1f}"
            f"{nc.paths[key].total_us:>12.1f}{margin:>10.1f}"
        )
    print(f"\n{observed.duration_us / 1000:.0f} ms simulated, {violations} bound violations")
    return EXIT_FAILURE if violations else EXIT_OK


def _cmd_experiment(args: argparse.Namespace, ctx: _RunContext) -> int:
    kwargs = {}
    if args.vls is not None and args.id in ("table1", "fig5", "fig6"):
        kwargs["spec"] = IndustrialConfigSpec(n_virtual_links=args.vls)
    if args.jobs != 1 and args.id in ("table1", "fig5", "fig6"):
        kwargs["jobs"] = args.jobs
    result = run_experiment(args.id, metrics=ctx.metrics, **kwargs)
    print(result.render())
    if args.csv:
        from pathlib import Path

        Path(args.csv).write_text(result.to_csv())
        print(f"(csv written to {args.csv})")
    return EXIT_OK


def _cmd_batch_sweep(args: argparse.Namespace, ctx: _RunContext) -> int:
    spec = SweepSpec(
        configs=args.configs,
        base_seed=args.base_seed,
        n_switches=args.switches,
        n_end_systems=args.end_systems,
        n_virtual_links=args.vls,
        scenarios_per_config=args.scenarios,
        duration_ms=args.duration_ms,
        cache_dir=args.cache_dir,
        preflight=args.preflight,
    )
    if ctx.record_history:
        # the sweep's identity is its seeded spec; cache_dir is
        # execution shape (bit-identical results either way) and must
        # not split drift groups
        import dataclasses
        import hashlib

        identity = dataclasses.replace(spec, cache_dir=None)
        ctx.config_digest = hashlib.sha256(repr(identity).encode()).hexdigest()
    report = batch_sweep(
        spec, jobs=args.jobs, collect_stats=ctx.collect, progress=ctx.progress
    )
    print(report.render())
    if ctx.collect and report.stats is not None:
        ctx.analyzers = {"batch_sweep": report.stats}
    if isinstance(report.stats, dict):
        ctx.fleet = report.stats.get("fleet")
    return EXIT_FAILURE if report.violations else EXIT_OK


def _fmt_bound(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}"


def _cmd_whatif(args: argparse.Namespace, ctx: _RunContext) -> int:
    from repro.incremental import DeltaAnalyzer
    from repro.incremental.edits import load_edit_script

    network = network_from_json(args.config)
    ctx.set_config(network, source=args.config)
    if args.preflight:
        _run_preflight(network, args.config, ctx)
    edits = load_edit_script(args.edits)
    if ctx.config_digest is not None:
        # a whatif run's identity is (base config, edit script): fold
        # the edit bytes into the digest so two whatifs with different
        # edits never land in the same drift group
        import hashlib
        from pathlib import Path as _Path

        digest = hashlib.sha256(ctx.config_digest.encode())
        digest.update(_Path(args.edits).read_bytes())
        ctx.config_digest = digest.hexdigest()
    engine = DeltaAnalyzer(
        network,
        cache_dir=args.cache_dir,
        grouping=not args.no_grouping,
        serialization=args.serialization,
        collect_stats=ctx.collect,
        progress=ctx.progress,
        trajectory_kernel=args.trajectory_kernel,
    )
    engine.analyze_base()
    delta = engine.apply(edits)
    ctx.record_bounds(delta.netcalc, delta.trajectory)
    stats = delta.stats
    print(
        f"whatif: {len(edits)} edit(s), "
        f"dirty {stats['n_dirty_ports']}/{stats['n_ports']} ports, "
        f"{stats['n_dirty_vls']}/{stats['n_vls']} VLs, "
        f"{len(delta.changed)} path bound(s) changed"
    )
    if delta.changed:
        print(
            f"{'VL path':<24}{'kind':<9}"
            f"{'WCNC (us)':>24}{'Traj (us)':>24}"
        )
        for key, change in delta.changed.items():
            flow = f"{key[0]}[{key[1]}]"
            nc = f"{_fmt_bound(change.nc_before_us)} -> {_fmt_bound(change.nc_after_us)}"
            tr = (
                f"{_fmt_bound(change.trajectory_before_us)} -> "
                f"{_fmt_bound(change.trajectory_after_us)}"
            )
            print(f"{flow:<24}{change.kind:<9}{nc:>24}{tr:>24}")
    if ctx.collect:
        ctx.analyzers = {
            "network_calculus": delta.netcalc.stats,
            "trajectory": delta.trajectory.stats,
        }
        ctx.metrics.gauge("whatif.dirty_ports", stats["n_dirty_ports"])
        ctx.metrics.gauge("whatif.dirty_vls", stats["n_dirty_vls"])
        ctx.metrics.gauge("whatif.changed_paths", len(delta.changed))
        ctx.metrics.gauge("whatif.cache_entries", stats["cache_entries"])
        for name, value in stats["cache"].items():
            ctx.metrics.counter(f"whatif.cache_{name}", value)
    return EXIT_OK


def _cmd_explain(args: argparse.Namespace, ctx: _RunContext) -> int:
    from pathlib import Path

    from repro.explain import explain_network, render_explanation

    network = network_from_json(args.config)
    ctx.set_config(network, source=args.config)
    explanation = explain_network(
        network,
        grouping=not args.no_grouping,
        serialization=args.serialization,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        collect_stats=ctx.collect,
        progress=ctx.progress,
        trajectory_kernel=args.trajectory_kernel,
    )
    ctx.record_bounds(explanation.netcalc, explanation.trajectory)
    text = render_explanation(
        explanation,
        fmt=args.format,
        vl=args.vl,
        path=args.path,
        top=args.top,
    )
    if args.output:
        Path(args.output).write_text(text)
        print(f"explanation written to {args.output}")
    else:
        print(text, end="")
    summary = explanation.summary
    if ctx.collect:
        ctx.analyzers = {
            "network_calculus": explanation.netcalc.stats,
            "trajectory": explanation.trajectory.stats,
        }
        ctx.bounds = bound_summary(explanation.comparison)
        ctx.metrics.gauge("explain.paths", summary.n_paths)
        ctx.metrics.gauge("explain.nc_wins", summary.nc_wins)
        ctx.metrics.gauge("explain.trajectory_wins", summary.trajectory_wins)
        ctx.metrics.gauge("explain.ties", summary.ties)
        ctx.metrics.gauge(
            "explain.conservation_failures", summary.conservation_failures
        )
        ctx.metrics.gauge(
            "explain.max_abs_residual_us", summary.max_abs_residual_us
        )
    return EXIT_OK if summary.conservation_failures == 0 else EXIT_FAILURE


def _cmd_lint(args: argparse.Namespace, ctx: _RunContext) -> int:
    import json
    from pathlib import Path

    from repro.network.preflight import ConfigVerifier

    verifier = ConfigVerifier(
        max_utilization=args.max_utilization,
        utilization_table=not args.no_utilization_table,
    )
    reports = []
    unreadable: List[str] = []
    for config in args.configs:
        try:
            document = json.loads(Path(config).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            unreadable.append(f"{config}: {exc}")
            continue
        if not isinstance(document, dict):
            unreadable.append(f"{config}: configuration must be a JSON object")
            continue
        reports.append(verifier.verify_dict(document, source=config))

    n_errors = sum(len(r.errors) for r in reports) + len(unreadable)
    n_warnings = sum(len(r.warnings) for r in reports)
    if ctx.collect:
        ctx.metrics.gauge("lint.configs", len(args.configs))
        ctx.metrics.gauge("lint.errors", n_errors)
        ctx.metrics.gauge("lint.warnings", n_warnings)

    if args.format == "json":
        payload = {
            "configs": [r.to_dict() for r in reports],
            "unreadable": unreadable,
            "summary": {
                "configs": len(args.configs),
                "errors": n_errors,
                "warnings": n_warnings,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for message in unreadable:
            print(f"ERROR: {message}")
        for report in reports:
            for finding in report.findings:
                print(finding.render())
            status = "OK" if report.ok else "INVALID"
            worst = max(report.port_utilization.values(), default=0.0)
            print(
                f"{report.source}: {status} "
                f"({len(report.errors)} error(s), {len(report.warnings)} "
                f"warning(s), max port utilization {worst:.3f})"
            )
    if n_errors:
        return EXIT_CONFIG_ERROR
    if n_warnings and args.strict:
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_report(args: argparse.Namespace, ctx: _RunContext) -> int:
    from pathlib import Path

    from repro.core.reporting import certification_report
    from repro.core.comparison import compare_methods

    network = network_from_json(args.config)
    ctx.set_config(network, source=args.config)
    nc = analyze_network_calculus(
        network, collect_stats=ctx.collect, progress=ctx.progress
    )
    result = compare_methods(network)
    text = certification_report(network, result, nc_result=nc, top_paths=args.top)
    if args.output:
        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text, end="")
    return EXIT_OK


def _resolve_run(history, run_id: str):
    """One history record by (prefix of) run id, or an error message."""
    try:
        record = history.get(run_id)
    except ValueError as exc:
        return None, str(exc)
    if record is None:
        return None, f"no run {run_id!r} in history"
    return record, None


def _cmd_obs(args: argparse.Namespace, ctx: _RunContext) -> int:
    """``afdx obs``: query the persistent run history."""
    from repro.obs.history import (
        RunHistory,
        diff_runs,
        drift_report,
        render_drift_report,
        render_run,
        render_run_diff,
        render_run_line,
    )

    if ctx.history_dir is None:
        print(
            "afdx: error: no run history directory "
            "(pass --history-dir DIR or set AFDX_HISTORY_DIR)",
            file=sys.stderr,
        )
        return EXIT_CONFIG_ERROR
    history = RunHistory(ctx.history_dir)
    records = history.records()
    if args.filter_command:
        records = [
            r for r in records if r.get("command") == args.filter_command
        ]
    if args.config_digest:
        records = [
            r
            for r in records
            if str(r.get("config_digest", "")).startswith(args.config_digest)
        ]

    if args.action == "list":
        shown = records[-args.limit :] if args.limit > 0 else records
        if args.format == "json":
            print(json.dumps(shown, indent=2, sort_keys=True))
        else:
            for record in shown:
                print(render_run_line(record))
            print(
                f"{len(shown)} of {len(records)} record(s) "
                f"in {ctx.history_dir}"
            )
        return EXIT_OK

    if args.action == "show":
        if not args.run_ids:
            print(
                "afdx: error: obs show needs at least one RUN_ID",
                file=sys.stderr,
            )
            return EXIT_CONFIG_ERROR
        resolved = []
        for run_id in args.run_ids:
            record, problem = _resolve_run(history, run_id)
            if problem is not None:
                print(f"afdx: error: {problem}", file=sys.stderr)
                return EXIT_FAILURE
            resolved.append(record)
        if args.format == "json":
            payload = resolved[0] if len(resolved) == 1 else resolved
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for record in resolved:
                print(render_run(record))
        return EXIT_OK

    if args.action == "diff":
        if len(args.run_ids) != 2:
            print(
                "afdx: error: obs diff needs exactly two RUN_IDs",
                file=sys.stderr,
            )
            return EXIT_CONFIG_ERROR
        pair = []
        for run_id in args.run_ids:
            record, problem = _resolve_run(history, run_id)
            if problem is not None:
                print(f"afdx: error: {problem}", file=sys.stderr)
                return EXIT_FAILURE
            pair.append(record)
        diff = diff_runs(pair[0], pair[1])
        if args.format == "json":
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(render_run_diff(diff))
        return EXIT_OK

    # drift: the soundness tripwire — bounds digests at a fixed config
    # digest must be identical across git revs, jobs and cache states
    report = drift_report(records)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_drift_report(report))
    if report["drifts"]:
        return EXIT_FAILURE
    if args.strict and report["more_work"]:
        return EXIT_FAILURE
    return EXIT_OK


_COMMANDS = {
    "analyze": _cmd_analyze,
    "profile": _cmd_profile,
    "validate": _cmd_validate,
    "generate": _cmd_generate,
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "experiment": _cmd_experiment,
    "batch-sweep": _cmd_batch_sweep,
    "whatif": _cmd_whatif,
    "explain": _cmd_explain,
    "lint": _cmd_lint,
    "obs": _cmd_obs,
}


def _dump_profile(profiler, path: str) -> Dict[str, object]:
    """Write cProfile stats to ``path``; return the manifest summary."""
    import pstats

    profiler.dump_stats(path)
    stats = pstats.Stats(profiler)
    entries = []
    for (filename, line, func), (_, ncalls, tottime, cumtime, _) in stats.stats.items():
        entries.append((cumtime, tottime, ncalls, f"{filename}:{line}({func})"))
    entries.sort(key=lambda entry: (-entry[0], entry[3]))
    return {
        "stats_path": str(path),
        "total_calls": int(stats.total_calls),
        "total_time_s": round(stats.total_tt, 6),
        "top_cumulative": [
            {
                "function": name,
                "ncalls": int(ncalls),
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
            for cumtime, tottime, ncalls, name in entries[:25]
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``afdx`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            parser.error(str(exc))
    ctx = _RunContext(args)
    status, error, code = "ok", None, EXIT_OK
    profile_path = getattr(args, "profile", None)
    profile_summary: Optional[Dict[str, object]] = None
    try:
        with ctx.metrics.timer("cli.total"):
            if profile_path is not None:
                import cProfile

                profiler = cProfile.Profile()
                profiler.enable()
                try:
                    code = _COMMANDS[args.command](args, ctx)
                finally:
                    profiler.disable()
                    profile_summary = _dump_profile(profiler, profile_path)
                    print(f"(profile written to {profile_path})", file=sys.stderr)
            else:
                code = _COMMANDS[args.command](args, ctx)
    except ConfigurationError as exc:
        status, error, code = "error", str(exc), EXIT_CONFIG_ERROR
    except CyclicRoutingError as exc:
        # cyclic routing is a property of the configuration, not an
        # analysis failure: exit like any other configuration error
        status, error, code = "error", str(exc), EXIT_CONFIG_ERROR
    except UnstableNetworkError as exc:
        status, error, code = "error", str(exc), EXIT_UNSTABLE
    except AnalysisError as exc:
        status, error, code = "error", str(exc), EXIT_ANALYSIS_ERROR
    if error is not None:
        print(f"afdx: error: {error}", file=sys.stderr)
    if ctx.metrics_path is not None:
        manifest = build_manifest(
            command=args.command,
            options=_manifest_options(args),
            config=ctx.config,
            analyzers=ctx.analyzers,
            bounds=ctx.bounds,
            metrics=ctx.metrics.to_dict(),
            status=status,
            error=error,
            profile=profile_summary,
        )
        try:
            write_manifest(manifest, ctx.metrics_path)
        except OSError as exc:
            print(f"afdx: error: cannot write manifest: {exc}", file=sys.stderr)
            return code if code != EXIT_OK else EXIT_FAILURE
        print(f"(run manifest written to {ctx.metrics_path})", file=sys.stderr)
    if ctx.prom_path is not None:
        from repro.obs import registry_samples, write_prometheus

        samples = registry_samples(
            ctx.metrics.to_dict(), labels={"command": args.command}
        )
        for name, stats in sorted(ctx.analyzers.items()):
            if stats:
                samples.extend(
                    registry_samples(
                        stats,
                        labels={"command": args.command, "analyzer": name},
                    )
                )
        try:
            write_prometheus(ctx.prom_path, samples)
        except OSError as exc:
            print(
                f"afdx: error: cannot write prometheus file: {exc}",
                file=sys.stderr,
            )
            return code if code != EXIT_OK else EXIT_FAILURE
        print(
            f"(prometheus metrics written to {ctx.prom_path})", file=sys.stderr
        )
    if ctx.trace_path is not None:
        from pathlib import Path

        from repro.obs import (
            build_chrome_trace,
            load_chrome_trace,
            merge_chrome_trace,
            write_chrome_trace,
        )

        try:
            target = Path(ctx.trace_path)
            base = load_chrome_trace(target) if target.exists() else None
            run_index = (
                len(base.get("otherData", {}).get("runs", [])) + 1
                if base is not None
                else 1
            )
            doc = build_chrome_trace(
                ctx.analyzers, label=f"run{run_index}:{args.command}"
            )
            if base is not None:
                doc = merge_chrome_trace(base, doc)
            write_chrome_trace(target, doc)
        except (OSError, ValueError) as exc:
            print(f"afdx: error: cannot write trace: {exc}", file=sys.stderr)
            return code if code != EXIT_OK else EXIT_FAILURE
        print(f"(trace written to {ctx.trace_path})", file=sys.stderr)
    if ctx.record_history:
        from repro.obs.history import (
            RunHistory,
            build_run_record,
            cache_summary,
            git_revision,
        )

        timers = ctx.metrics.to_dict().get("timers", {})
        total = timers.get("cli.total", {})
        execution = _history_execution(args)
        if ctx.fleet is not None:
            execution["fleet"] = ctx.fleet
        record = build_run_record(
            command=args.command,
            status=status,
            config=ctx.config,
            config_digest=ctx.config_digest,
            bounds_digest=ctx.bounds_digest,
            work=work_summary(ctx.analyzers),
            cache=cache_summary(ctx.analyzers),
            execution=execution,
            options=_history_options(args),
            wall_ms=float(total.get("total_ms", 0.0)),
            error=error,
            git_rev=git_revision(),
        )
        try:
            history = RunHistory(ctx.history_dir)
            history.append(record)
        except (OSError, ValueError) as exc:
            print(
                f"afdx: error: cannot record run history: {exc}",
                file=sys.stderr,
            )
            return code if code != EXIT_OK else EXIT_FAILURE
        print(
            f"(run {record['run_id']} recorded in history at "
            f"{ctx.history_dir})",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
