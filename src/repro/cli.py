"""Command-line interface: ``afdx`` (or ``python -m repro.cli``).

Subcommands
-----------

``afdx analyze CONFIG.json``
    Compute WCNC / Trajectory / combined bounds for every VL path of a
    configuration file and print them with aggregate statistics.
``afdx validate CONFIG.json``
    Run the ARINC-664 configuration checks and print the report.
``afdx generate {fig1,fig2,industrial,random} -o CONFIG.json``
    Write one of the bundled configurations to disk.
``afdx simulate CONFIG.json``
    Run the frame-level simulator and compare observed delays with the
    analytic bounds.
``afdx experiment {table1,fig3_4,fig5,fig6,fig7,fig8,fig9}``
    Regenerate one of the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.configs import (
    IndustrialConfigSpec,
    fig1_network,
    fig2_network,
    industrial_network,
    random_network,
)
from repro.core.comparison import compare_methods
from repro.core.jitter import jitter_bounds
from repro.experiments import EXPERIMENTS, run_experiment
from repro.netcalc.analyzer import analyze_network_calculus
from repro.network.serialization import network_from_json, network_to_json
from repro.network.validation import validate_network
from repro.sim.scenarios import TrafficScenario, simulate
from repro.trajectory.analyzer import analyze_trajectory

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``afdx`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="afdx",
        description="Worst-case end-to-end delay analysis of AFDX networks "
        "(Network Calculus + Trajectory approach, DATE 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="compute delay bounds for a configuration")
    analyze.add_argument("config", help="configuration JSON file")
    analyze.add_argument(
        "--no-grouping", action="store_true", help="disable NC grouping"
    )
    analyze.add_argument(
        "--serialization",
        choices=["paper", "windowed", "safe"],
        default="windowed",
        help="Trajectory serialization mode (default: windowed)",
    )
    analyze.add_argument(
        "--top", type=int, default=0, help="print only the N largest combined bounds"
    )
    analyze.add_argument(
        "--jitter", action="store_true",
        help="also print the per-path jitter bound (bound - uncontended floor)",
    )

    validate = sub.add_parser("validate", help="check a configuration")
    validate.add_argument("config", help="configuration JSON file")

    generate = sub.add_parser("generate", help="write a bundled configuration")
    generate.add_argument(
        "kind", choices=["fig1", "fig2", "industrial", "random"],
        help="which configuration to generate",
    )
    generate.add_argument("-o", "--output", required=True, help="output JSON path")
    generate.add_argument("--seed", type=int, default=2010, help="generator seed")
    generate.add_argument(
        "--vls", type=int, default=1000, help="VL count (industrial/random)"
    )

    simulate_cmd = sub.add_parser("simulate", help="simulate a configuration")
    simulate_cmd.add_argument("config", help="configuration JSON file")
    simulate_cmd.add_argument("--duration-ms", type=float, default=100.0)
    simulate_cmd.add_argument("--seed", type=int, default=0)
    simulate_cmd.add_argument(
        "--random-offsets",
        action="store_true",
        help="desynchronize VL first releases (default: synchronized)",
    )

    report = sub.add_parser("report", help="full certification-style report")
    report.add_argument("config", help="configuration JSON file")
    report.add_argument("-o", "--output", default=None, help="write to a file")
    report.add_argument("--top", type=int, default=10, help="critical paths to detail")

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    experiment.add_argument(
        "--vls", type=int, default=None,
        help="override the industrial configuration's VL count (faster runs)",
    )
    experiment.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the artefact as CSV",
    )

    return parser


def _cmd_analyze(args: argparse.Namespace) -> int:
    network = network_from_json(args.config)
    result = compare_methods(
        network,
        grouping=not args.no_grouping,
        serialization=args.serialization,
    )
    jitters = jitter_bounds(network, result) if args.jitter else None
    paths = result.path_list()
    paths.sort(key=lambda p: -p.best_us)
    if args.top:
        paths = paths[: args.top]
    header = f"{'VL path':<24}{'WCNC (us)':>12}{'Traj (us)':>12}{'best (us)':>12}"
    if jitters is not None:
        header += f"{'jitter (us)':>13}"
    print(header)
    for path in paths:
        line = (
            f"{path.flow:<24}{path.network_calculus_us:>12.1f}"
            f"{path.trajectory_us:>12.1f}{path.best_us:>12.1f}"
        )
        if jitters is not None:
            line += f"{jitters[(path.vl_name, path.path_index)].jitter_us:>13.1f}"
        print(line)
    print()
    print(result.stats.as_table())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    network = network_from_json(args.config)
    report = validate_network(network)
    for error in report.errors:
        print(f"ERROR: {error}")
    for warning in report.warnings:
        print(f"warning: {warning}")
    worst = max(report.port_utilization.values(), default=0.0)
    print(
        f"{network!r}: {'OK' if report.ok else 'INVALID'} "
        f"(max port utilization {worst:.3f})"
    )
    return 0 if report.ok else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "fig1":
        network = fig1_network()
    elif args.kind == "fig2":
        network = fig2_network()
    elif args.kind == "industrial":
        network = industrial_network(
            IndustrialConfigSpec(seed=args.seed, n_virtual_links=args.vls)
        )
    else:
        network = random_network(args.seed, n_virtual_links=min(args.vls, 50))
    network_to_json(network, args.output)
    print(f"wrote {network!r} to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = network_from_json(args.config)
    nc = analyze_network_calculus(network)
    trajectory = analyze_trajectory(network, serialization="safe")
    scenario = TrafficScenario(
        duration_ms=args.duration_ms,
        synchronized=not args.random_offsets,
        seed=args.seed,
    )
    observed = simulate(network, scenario)
    print(
        f"{'VL path':<24}{'observed max':>14}{'Traj(safe)':>12}{'WCNC':>12}{'margin':>10}"
    )
    violations = 0
    for key in sorted(observed.paths):
        stats = observed.paths[key]
        bound = min(trajectory.paths[key].total_us, nc.paths[key].total_us)
        margin = bound - stats.max_us
        violations += margin < -1e-6
        print(
            f"{key[0] + '[' + str(key[1]) + ']':<24}{stats.max_us:>14.1f}"
            f"{trajectory.paths[key].total_us:>12.1f}"
            f"{nc.paths[key].total_us:>12.1f}{margin:>10.1f}"
        )
    print(f"\n{observed.duration_us / 1000:.0f} ms simulated, {violations} bound violations")
    return 1 if violations else 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.vls is not None and args.id in ("table1", "fig5", "fig6"):
        kwargs["spec"] = IndustrialConfigSpec(n_virtual_links=args.vls)
    result = run_experiment(args.id, **kwargs)
    print(result.render())
    if args.csv:
        from pathlib import Path

        Path(args.csv).write_text(result.to_csv())
        print(f"(csv written to {args.csv})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.reporting import certification_report
    from repro.netcalc.analyzer import analyze_network_calculus as _nc

    network = network_from_json(args.config)
    nc = _nc(network)
    result = compare_methods(network)
    text = certification_report(network, result, nc_result=nc, top_paths=args.top)
    if args.output:
        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text, end="")
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "validate": _cmd_validate,
    "generate": _cmd_generate,
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``afdx`` console script."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
