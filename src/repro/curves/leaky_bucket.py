"""Leaky-bucket (affine, token-bucket) arrival curves.

An ARINC-664 Virtual Link is admitted into the network under the traffic
contract ``alpha(t) = s_max + (s_max / BAG) * t``: at most one maximal
frame instantaneously, then at most one frame per BAG.  The
:class:`LeakyBucket` dataclass is the analysis-side image of that
contract; bursts grow as the flow crosses ports (see
:mod:`repro.netcalc.analyzer`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.curves.piecewise import PiecewiseCurve

__all__ = ["LeakyBucket"]


@dataclass(frozen=True)
class LeakyBucket:
    """The affine arrival curve ``burst + rate * t``.

    Attributes
    ----------
    rate:
        Long-term rate in bits per microsecond (``s_max / BAG`` at the
        network ingress).
    burst:
        Instantaneous burst in bits (``s_max`` at the network ingress).
    """

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"leaky-bucket rate must be >= 0, got {self.rate}")
        if self.burst < 0:
            raise ValueError(f"leaky-bucket burst must be >= 0, got {self.burst}")

    def curve(self) -> PiecewiseCurve:
        """This bucket as a general piecewise-linear curve."""
        return PiecewiseCurve.affine(self.rate, self.burst)

    def __call__(self, t: float) -> float:
        """Evaluate ``burst + rate * t``."""
        if t < 0:
            raise ValueError(f"arrival curves are defined on [0, +inf), got t={t}")
        return self.burst + self.rate * t

    def __add__(self, other: "LeakyBucket") -> "LeakyBucket":
        """Aggregate of two independent flows (bursts and rates add)."""
        if not isinstance(other, LeakyBucket):
            return NotImplemented
        return LeakyBucket(rate=self.rate + other.rate, burst=self.burst + other.burst)

    def delayed(self, delay: float) -> "LeakyBucket":
        """Arrival curve after a stage with delay bound ``delay``.

        A flow that is ``(rate, burst)``-constrained at the input of a
        system whose delay is at most ``delay`` is
        ``(rate, burst + rate * delay)``-constrained at its output
        (Le Boudec & Thiran, Thm. 1.4.3 specialised to affine curves).
        This burst inflation is the mechanism by which smaller BAGs
        (larger rates) propagate into larger downstream Network Calculus
        bounds — the effect visible in the paper's Fig. 8.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return replace(self, burst=self.burst + self.rate * delay)
