"""Piecewise-linear curve representation.

A :class:`PiecewiseCurve` is a wide-sense increasing function
``f : [0, +inf) -> [0, +inf)`` described by a finite list of breakpoints
``(x_k, y_k)`` (with ``x_0 = 0``) joined by straight segments, plus a
``final_slope`` that extends the curve beyond the last breakpoint.

The value *at* ``x = 0`` is ``y_0``: for arrival curves this encodes the
usual right-continuous convention ``alpha(0+) = burst``.  Nothing in the
delay/backlog computations depends on the value at exactly 0, so this
convention is harmless and keeps evaluation total.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["PiecewiseCurve"]

_EPS = 1e-9


def _dedupe(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Drop consecutive duplicate x values (keeping the later y)."""
    out: List[Tuple[float, float]] = []
    for x, y in points:
        if out and abs(out[-1][0] - x) <= _EPS:
            out[-1] = (out[-1][0], y)
        else:
            out.append((float(x), float(y)))
    return out


class PiecewiseCurve:
    """A wide-sense increasing piecewise-linear curve on ``[0, +inf)``.

    Parameters
    ----------
    breakpoints:
        Iterable of ``(x, y)`` pairs with strictly increasing ``x`` and
        ``x[0] == 0``.
    final_slope:
        Slope of the curve after the last breakpoint (``>= 0``).

    Instances are immutable; operations return new curves.
    """

    __slots__ = ("_points", "_final_slope", "_knots_cache")

    def __init__(self, breakpoints: Iterable[Tuple[float, float]], final_slope: float):
        points = _dedupe(list(breakpoints))
        if not points:
            raise ValueError("a curve needs at least one breakpoint")
        if abs(points[0][0]) > _EPS:
            raise ValueError(f"first breakpoint must be at x=0, got x={points[0][0]}")
        points[0] = (0.0, points[0][1])
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x1 <= x0:
                raise ValueError(f"breakpoint x values must increase: {x0} -> {x1}")
            if y1 < y0 - _EPS:
                raise ValueError(f"curve must be non-decreasing: f({x0})={y0} > f({x1})={y1}")
        if final_slope < -_EPS:
            raise ValueError(f"final slope must be non-negative, got {final_slope}")
        self._points: Tuple[Tuple[float, float], ...] = tuple(points)
        self._final_slope = max(0.0, float(final_slope))
        self._knots_cache: "Tuple[float, ...] | None" = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def affine(cls, rate: float, burst: float) -> "PiecewiseCurve":
        """The affine (token-bucket) curve ``burst + rate * t``."""
        return cls([(0.0, burst)], rate)

    @classmethod
    def rate_latency(cls, rate: float, latency: float) -> "PiecewiseCurve":
        """The rate-latency service curve ``rate * (t - latency)+``."""
        if latency > 0:
            return cls([(0.0, 0.0), (latency, 0.0)], rate)
        return cls([(0.0, 0.0)], rate)

    @classmethod
    def zero(cls) -> "PiecewiseCurve":
        """The identically-zero curve."""
        return cls([(0.0, 0.0)], 0.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def breakpoints(self) -> Tuple[Tuple[float, float], ...]:
        """The ``(x, y)`` breakpoints, first at ``x = 0``."""
        return self._points

    @property
    def final_slope(self) -> float:
        """Slope beyond the last breakpoint (the long-term rate)."""
        return self._final_slope

    @property
    def burst(self) -> float:
        """Value at ``0+`` (the burst of an arrival curve)."""
        return self._points[0][1]

    def __call__(self, x: float) -> float:
        """Evaluate the curve at ``x`` (``x`` may exceed all breakpoints)."""
        if x < 0:
            raise ValueError(f"curves are defined on [0, +inf), got x={x}")
        points = self._points
        last_x, last_y = points[-1]
        if x >= last_x:
            return last_y + self._final_slope * (x - last_x)
        lo, hi = 0, len(points) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if points[mid][0] <= x:
                lo = mid
            else:
                hi = mid
        x0, y0 = points[lo]
        x1, y1 = points[hi]
        return y0 + (y1 - y0) * (x - x0) / (x1 - x0)

    def slopes(self) -> List[float]:
        """Per-segment slopes, left to right, ending with ``final_slope``."""
        out: List[float] = []
        for (x0, y0), (x1, y1) in zip(self._points, self._points[1:]):
            out.append((y1 - y0) / (x1 - x0))
        out.append(self._final_slope)
        return out

    def is_concave(self) -> bool:
        """True when segment slopes are non-increasing (arrival-curve shape)."""
        s = self.slopes()
        return all(a >= b - _EPS for a, b in zip(s, s[1:]))

    def is_convex(self) -> bool:
        """True when segment slopes are non-decreasing (service-curve shape)."""
        s = self.slopes()
        return all(a <= b + _EPS for a, b in zip(s, s[1:]))

    def max_slope(self) -> float:
        """Largest segment slope."""
        return max(self.slopes())

    def inverse(self, y: float) -> float:
        """Smallest ``x`` with ``f(x) >= y`` (pseudo-inverse).

        Raises :class:`ValueError` when ``y`` is never reached (flat tail
        below ``y``).
        """
        if y <= self._points[0][1]:
            return 0.0
        for (x0, y0), (x1, y1) in zip(self._points, self._points[1:]):
            if y <= y1 + _EPS:
                if y1 == y0:
                    return x1
                return x0 + (x1 - x0) * (y - y0) / (y1 - y0)
        last_x, last_y = self._points[-1]
        if self._final_slope <= _EPS:
            raise ValueError(f"curve never reaches y={y} (flat tail at {last_y})")
        return last_x + (y - last_y) / self._final_slope

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------

    def knots(self) -> Tuple[float, ...]:
        """The breakpoint x values — ascending by construction, cached.

        Curves are immutable, so the min-plus operations
        (:mod:`repro.curves.operations`) treat this as a pre-sorted
        knot list and take linear merges instead of re-sorting set
        unions on every operation.
        """
        if self._knots_cache is None:
            self._knots_cache = tuple(x for x, _ in self._points)
        return self._knots_cache

    def _knots(self) -> List[float]:
        return list(self.knots())

    def equals(self, other: "PiecewiseCurve", tol: float = 1e-6) -> bool:
        """Pointwise equality (checked on the union of breakpoints)."""
        xs = sorted(set(self._knots()) | set(other._knots()))
        horizon = (xs[-1] if xs else 0.0) + 1.0
        xs.append(horizon)
        return all(abs(self(x) - other(x)) <= tol for x in xs) and abs(
            self._final_slope - other._final_slope
        ) <= tol

    def dominates(self, other: "PiecewiseCurve", tol: float = 1e-6) -> bool:
        """True when ``self(x) >= other(x)`` for all ``x``."""
        xs = sorted(set(self._knots()) | set(other._knots()))
        if any(self(x) < other(x) - tol for x in xs):
            return False
        return self._final_slope >= other._final_slope - tol

    def __repr__(self) -> str:
        pts = ", ".join(f"({x:g}, {y:g})" for x, y in self._points)
        return f"PiecewiseCurve([{pts}], final_slope={self._final_slope:g})"
