"""Min-plus (network calculus) curve algebra.

This package implements the small fragment of min-plus calculus needed
for deterministic AFDX delay analysis:

* :class:`PiecewiseCurve` — wide-sense increasing piecewise-linear
  curves, the common representation for arrival and service curves;
* :class:`LeakyBucket` — affine arrival curves ``b + r t`` (ARINC-664
  traffic contracts: burst ``s_max``, rate ``s_max / BAG``);
* :class:`RateLatency` — service curves ``R (t - T)+`` (output port at
  link rate ``R`` with technological latency ``T``);
* the operations of :mod:`repro.curves.operations` — sum, pointwise
  minimum, min-plus convolution of service curves, deconvolution,
  horizontal deviation (delay bound) and vertical deviation (backlog
  bound).

All times are microseconds and all data quantities bits, per
:mod:`repro.units`.
"""

from repro.curves.piecewise import PiecewiseCurve
from repro.curves.leaky_bucket import LeakyBucket
from repro.curves.rate_latency import RateLatency
from repro.curves.operations import (
    add_curves,
    deconvolve,
    horizontal_deviation,
    min_curves,
    sum_curves,
    vertical_deviation,
)

__all__ = [
    "PiecewiseCurve",
    "LeakyBucket",
    "RateLatency",
    "add_curves",
    "sum_curves",
    "min_curves",
    "horizontal_deviation",
    "vertical_deviation",
    "deconvolve",
]
