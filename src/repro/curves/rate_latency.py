"""Rate-latency service curves.

An AFDX output port stores frames in a FIFO buffer and clocks them onto
a full-duplex link at rate ``R`` after a bounded technological latency
``T`` (switching fabric traversal, 16 us on the switches considered by
the paper).  Such a port offers the service curve
``beta(t) = R * (t - T)+`` to the aggregate of the flows it serves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.piecewise import PiecewiseCurve

__all__ = ["RateLatency"]


@dataclass(frozen=True)
class RateLatency:
    """The service curve ``rate * (t - latency)+``.

    Attributes
    ----------
    rate:
        Guaranteed service rate in bits per microsecond (the link rate
        for an AFDX output port).
    latency:
        Worst-case dead time in microseconds before service starts.
    """

    rate: float
    latency: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.rate}")
        if self.latency < 0:
            raise ValueError(f"service latency must be >= 0, got {self.latency}")

    def curve(self) -> PiecewiseCurve:
        """This service curve as a general piecewise-linear curve."""
        return PiecewiseCurve.rate_latency(self.rate, self.latency)

    def __call__(self, t: float) -> float:
        """Evaluate ``rate * (t - latency)+``."""
        if t < 0:
            raise ValueError(f"service curves are defined on [0, +inf), got t={t}")
        return self.rate * max(0.0, t - self.latency)

    def convolve(self, other: "RateLatency") -> "RateLatency":
        """Min-plus convolution: the service curve of two ports in series.

        ``beta_{R1,T1} (x) beta_{R2,T2} = beta_{min(R1,R2), T1+T2}``
        (Le Boudec & Thiran, Ch. 1).  Used by the "pay bursts only once"
        end-to-end variant and exercised by the test suite.
        """
        return RateLatency(rate=min(self.rate, other.rate), latency=self.latency + other.latency)
