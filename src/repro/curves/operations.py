"""Min-plus operations on piecewise-linear curves.

These are the handful of network-calculus operations the AFDX analysis
needs (Le Boudec & Thiran, *Network Calculus*, LNCS 2050):

* :func:`add_curves` / :func:`sum_curves` — aggregation of independent
  flows;
* :func:`min_curves` — pointwise minimum, used by the *grouping*
  technique to cap a group of flows sharing an input link by that
  link's shaping curve;
* :func:`horizontal_deviation` — the FIFO delay bound
  ``h(alpha, beta)``;
* :func:`vertical_deviation` — the backlog (buffer) bound
  ``v(alpha, beta)``;
* :func:`deconvolve` — the output arrival curve
  ``alpha (/) beta`` for a concave ``alpha`` and rate-latency ``beta``.

Unbounded results (long-term arrival rate above the service rate) are
reported as ``math.inf``; callers translate that into
:class:`repro.errors.UnstableNetworkError` with port context.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.curves.piecewise import PiecewiseCurve
from repro.curves.rate_latency import RateLatency

__all__ = [
    "add_curves",
    "sum_curves",
    "min_curves",
    "horizontal_deviation",
    "vertical_deviation",
    "deconvolve",
]

_EPS = 1e-9


def _merge_knots(a, b) -> List[float]:
    """Sorted union of two ascending knot lists (linear merge).

    Exact duplicates collapse to one entry, matching
    ``sorted(set(a) | set(b))`` bit for bit — the inputs are already
    strictly ascending (curve breakpoints by construction, crossings by
    the segment sweep of :func:`_segment_crossings`), so a linear merge
    replaces the hash + re-sort on the aggregation hot path.
    """
    out: List[float] = []
    i = j = 0
    n_a, n_b = len(a), len(b)
    while i < n_a or j < n_b:
        if j >= n_b or (i < n_a and a[i] < b[j]):
            x = a[i]
            i += 1
        elif i >= n_a or b[j] < a[i]:
            x = b[j]
            j += 1
        else:  # equal: keep one
            x = a[i]
            i += 1
            j += 1
        if not out or x != out[-1]:
            out.append(x)
    return out


def add_curves(f: PiecewiseCurve, g: PiecewiseCurve) -> PiecewiseCurve:
    """Pointwise sum of two curves (aggregate of independent flows)."""
    xs = _merge_knots(f.knots(), g.knots())
    points = [(x, f(x) + g(x)) for x in xs]
    return PiecewiseCurve(points, f.final_slope + g.final_slope)


def sum_curves(curves: Iterable[PiecewiseCurve]) -> PiecewiseCurve:
    """Pointwise sum of any number of curves (zero curve when empty)."""
    total = PiecewiseCurve.zero()
    for c in curves:
        total = add_curves(total, c)
    return total


def _segment_crossings(f: PiecewiseCurve, g: PiecewiseCurve, xs: List[float]) -> List[float]:
    """x values (inside or beyond ``xs``) where ``f - g`` changes sign."""
    crossings: List[float] = []
    for x0, x1 in zip(xs, xs[1:]):
        d0 = f(x0) - g(x0)
        d1 = f(x1) - g(x1)
        if (d0 > _EPS and d1 < -_EPS) or (d0 < -_EPS and d1 > _EPS):
            # both linear on [x0, x1] since xs contains every breakpoint
            t = d0 / (d0 - d1)
            crossings.append(x0 + t * (x1 - x0))
    # possible final crossing beyond the last knot
    last = xs[-1]
    d_last = f(last) - g(last)
    slope_diff = f.final_slope - g.final_slope
    if abs(slope_diff) > _EPS:
        t = -d_last / slope_diff
        if t > _EPS:
            crossings.append(last + t)
    return crossings


def _concave_envelope(points: List[tuple], tail_slope: float) -> List[tuple]:
    """Upper concave hull of sampled points (Andrew monotone chain).

    When the true curve is known to be concave, sampled breakpoints can
    still violate slope monotonicity by floating-point noise: a
    crossing computed by :func:`_segment_crossings` may land within
    ~1e-6 of an existing knot, and the micro-segment between them gets
    a garbage slope (tiny Δy / tiny Δx).  A point participating in a
    slope *increase* lies below the chord of its neighbours, so popping
    it restores concavity while moving the curve by at most the noise
    amplitude.
    """
    hull: List[tuple] = []
    for x, y in points:
        while len(hull) >= 2:
            (x0, y0), (x1, y1) = hull[-2], hull[-1]
            if (y1 - y0) * (x - x1) < (y - y1) * (x1 - x0):  # slope increases at x1
                hull.pop()
            else:
                break
        hull.append((x, y))
    # the tail slope must not exceed the last segment's slope either
    while len(hull) >= 2:
        (x0, y0), (x1, y1) = hull[-2], hull[-1]
        if tail_slope * (x1 - x0) > (y1 - y0):
            hull.pop()
        else:
            break
    return hull


def min_curves(f: PiecewiseCurve, g: PiecewiseCurve) -> PiecewiseCurve:
    """Pointwise minimum of two curves.

    The minimum of two concave curves is concave; this implements the
    grouping technique's ``min(sum of flows, link shaping curve)``.
    For concave inputs the result is snapped to its upper concave hull,
    which discards breakpoints that only exist as floating-point noise
    (see :func:`_concave_envelope`).
    """
    xs = _merge_knots(f.knots(), g.knots())
    xs = _merge_knots(xs, _segment_crossings(f, g, xs))
    points = [(x, min(f(x), g(x))) for x in xs]
    # which curve is lower at infinity decides the final slope
    if f.final_slope < g.final_slope - _EPS:
        tail_slope = f.final_slope
    elif g.final_slope < f.final_slope - _EPS:
        tail_slope = g.final_slope
    else:
        tail_slope = min(f.final_slope, g.final_slope)
    if f.is_concave() and g.is_concave():
        points = _concave_envelope(points, tail_slope)
    return PiecewiseCurve(points, tail_slope)


def _upper_inverse(curve: PiecewiseCurve, y: float) -> float:
    """Largest ``x`` with ``curve(x) <= y`` (right pseudo-inverse).

    For the horizontal deviation the supremum over a segment of arrival
    times is approached at the *right* edge of the service curve's
    level set — e.g. ``sup{x: beta_{R,T}(x) <= 0} = T``, not 0.  Returns
    ``math.inf`` when the curve stays at or below ``y`` forever.
    """
    points = curve.breakpoints
    last_x, last_y = points[-1]
    if y >= last_y - _EPS:
        if curve.final_slope > _EPS:
            return last_x + max(0.0, y - last_y) / curve.final_slope
        return math.inf
    segments = list(zip(points, points[1:]))
    for (x0, y0), (x1, y1) in reversed(segments):
        if y0 <= y + _EPS:
            if y1 - y0 <= _EPS:
                return x1
            return x0 + (min(y, y1) - y0) * (x1 - x0) / (y1 - y0)
    return 0.0


def horizontal_deviation(alpha: PiecewiseCurve, beta: PiecewiseCurve) -> float:
    """Maximum horizontal distance ``h(alpha, beta)``.

    For a FIFO system offering service curve ``beta`` to an aggregate
    with arrival curve ``alpha``, ``h`` bounds the delay of every bit —
    hence of every flow of the aggregate (Le Boudec & Thiran, Thm 1.4.2
    plus the FIFO-aggregate argument used for AFDX certification).

    Returns ``math.inf`` when the arrival rate exceeds the long-term
    service rate.
    """
    if alpha.final_slope > beta.final_slope + _EPS:
        return math.inf
    if alpha.final_slope <= _EPS and alpha(alpha.breakpoints[-1][0]) <= _EPS:
        return 0.0  # no traffic at all: nothing is ever delayed

    candidates = [x for x, _ in alpha.breakpoints]
    # points where alpha reaches a service-curve breakpoint level
    for _, y in beta.breakpoints:
        try:
            candidates.append(alpha.inverse(y))
        except ValueError:
            pass
    horizon = max(
        [x for x, _ in alpha.breakpoints] + [x for x, _ in beta.breakpoints]
    ) + 1.0
    candidates.append(horizon)

    best = 0.0
    for t in candidates:
        if t < 0:
            continue
        crossing = _upper_inverse(beta, alpha(t))
        if math.isinf(crossing):
            return math.inf
        best = max(best, crossing - t)
    return best


def vertical_deviation(alpha: PiecewiseCurve, beta: PiecewiseCurve) -> float:
    """Maximum vertical distance ``v(alpha, beta)`` — the backlog bound.

    Used for switch output-buffer dimensioning (the paper notes the
    certification analysis also scales switch memory with these bounds).
    Returns ``math.inf`` for unstable ports.
    """
    if alpha.final_slope > beta.final_slope + _EPS:
        return math.inf
    xs = _merge_knots(alpha.knots(), beta.knots())
    best = 0.0
    for x in xs:
        best = max(best, alpha(x) - beta(x))
    return best


def deconvolve(alpha: PiecewiseCurve, beta: RateLatency) -> PiecewiseCurve:
    """Min-plus deconvolution ``alpha (/) beta`` for concave ``alpha``.

    The result constrains the *output* of a port with service
    ``beta_{R,T}`` fed by an ``alpha``-constrained aggregate.  For a
    concave ``alpha`` the closed form is::

        (alpha (/) beta)(t) = alpha(t + T)                  for t >= s* - T
                              alpha(s*) - R (s* - T - t)    for t <  s* - T

    where ``s*`` is the abscissa after which all slopes of ``alpha``
    drop to at most ``R``.

    Raises
    ------
    ValueError
        If ``alpha`` is not concave or its long-term rate exceeds the
        service rate (no finite output curve exists).
    """
    if not alpha.is_concave():
        raise ValueError("deconvolve() requires a concave arrival curve")
    rate, latency = beta.rate, beta.latency
    if alpha.final_slope > rate + _EPS:
        raise ValueError(
            f"arrival rate {alpha.final_slope} exceeds service rate {rate}; "
            "the output is unbounded"
        )

    # s* = end of the last segment whose slope exceeds the service rate
    s_star = 0.0
    slopes = alpha.slopes()
    xs = [x for x, _ in alpha.breakpoints]
    for idx, slope in enumerate(slopes[:-1]):
        if slope > rate + _EPS:
            s_star = xs[idx + 1]

    points: List[tuple]
    knee = max(0.0, s_star - latency)
    if knee > _EPS:
        start_value = alpha(s_star) - rate * (s_star - latency)
        points = [(0.0, start_value), (knee, alpha(s_star))]
    else:
        points = [(0.0, alpha(latency))]
    for x in xs:
        t = x - latency
        if t > knee + _EPS:
            points.append((t, alpha(x)))
    return PiecewiseCurve(points, alpha.final_slope)
