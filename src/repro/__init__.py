"""Worst-case end-to-end delay analysis of AFDX avionics networks.

Reproduction of *"Worst-case end-to-end delay analysis of an avionics
AFDX network"* (H. Bauer, J.-L. Scharbarg, C. Fraboul — DATE 2010).

The library provides:

* an ARINC-664 network model (:mod:`repro.network`);
* a Network Calculus analyzer with the grouping technique
  (:mod:`repro.netcalc`);
* a Trajectory-approach analyzer with input-link serialization
  (:mod:`repro.trajectory`);
* the combined per-path best-of-both bound and comparison statistics
  (:mod:`repro.core`);
* a frame-level discrete-event simulator for bound validation
  (:mod:`repro.sim`);
* the paper's configurations plus an industrial-scale synthetic
  generator (:mod:`repro.configs`);
* experiment drivers regenerating every table and figure of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro.configs import fig2_network
    from repro.core import analyze_network

    result = analyze_network(fig2_network())
    for path in result.paths:
        print(path.flow, path.network_calculus_us, path.trajectory_us, path.best_us)
"""

from repro.network import (
    EndSystem,
    Network,
    NetworkBuilder,
    OutputPort,
    Switch,
    VirtualLink,
    network_from_json,
    network_to_json,
)
from repro.core import analyze_network, compare_methods

__version__ = "1.0.0"

__all__ = [
    "EndSystem",
    "Switch",
    "Network",
    "NetworkBuilder",
    "OutputPort",
    "VirtualLink",
    "network_from_json",
    "network_to_json",
    "analyze_network",
    "compare_methods",
    "__version__",
]
