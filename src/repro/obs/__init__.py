"""Observability: structured logging, metrics, tracing, run manifests.

The package is the measurement substrate for both analyzers and the
simulator.  Everything is opt-in and zero-overhead when disabled:

* :mod:`repro.obs.logging` — the ``repro``-namespaced logger hierarchy
  and a :func:`~repro.obs.logging.configure` helper;
* :mod:`repro.obs.metrics` — counters, gauges and nestable
  monotonic-clock timers, exportable to a JSON dict;
* :mod:`repro.obs.trace` — span-based phase tracing plus the
  :class:`~repro.obs.trace.ProgressHook` callback for long runs;
* :mod:`repro.obs.instrument` — the bundle the analyzers thread
  through their hot paths (``collect_stats=True`` turns it on);
* :mod:`repro.obs.manifest` — run-manifest assembly, validation
  against the documented schema, and JSON persistence;
* :mod:`repro.obs.prometheus` — textfile-collector exposition of
  metrics snapshots (the CLI's ``--metrics-prom``);
* :mod:`repro.obs.provenance` — bit-exact additive bound
  decompositions (the substrate of :mod:`repro.explain`);
* :mod:`repro.obs.costmodel` — deterministic work counters (the
  :class:`~repro.obs.costmodel.CostLedger` attached to ``.stats``);
* :mod:`repro.obs.tracefile` — Chrome-trace / Perfetto export of
  recorded spans (the CLI's ``--trace``);
* :mod:`repro.obs.hotspots` — the ``afdx profile`` hot-spot reports;
* :mod:`repro.obs.history` — the persistent append-only run-history
  store (``--history-dir`` / ``AFDX_HISTORY_DIR``) and the
  ``afdx obs`` diff/drift queries over it;
* :mod:`repro.obs.telemetry` — live fleet telemetry: worker heartbeat
  events folded into the upgraded ``--progress`` view.
"""

from repro.obs.costmodel import (
    COST_SCHEMA_VERSION,
    CostLedger,
    deterministic_section,
    netcalc_cost_ledger,
    port_label,
    record_trajectory_sweep,
    trajectory_result_work,
    work_summary,
)
from repro.obs.hotspots import (
    PROFILE_SCHEMA_VERSION,
    build_profile_report,
    render_profile_report,
)
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    RunHistory,
    analysis_bounds_digest,
    build_run_record,
    cache_summary,
    deterministic_view,
    diff_runs,
    drift_report,
    git_revision,
    resolve_history_dir,
    validate_run_record,
)
from repro.obs.instrument import OFF, Instrumentation
from repro.obs.logging import (
    configure,
    get_logger,
    lane_prefix,
    set_worker_lane,
    worker_lane,
)
from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    network_identity,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, TimerStats
from repro.obs.prometheus import (
    pool_samples,
    registry_samples,
    render_prometheus,
    write_prometheus,
)
from repro.obs.telemetry import FleetView, TelemetryDrain, fleet_drain
from repro.obs.trace import NULL_TRACER, ProgressHook, Span, Tracer
from repro.obs.tracefile import (
    build_chrome_trace,
    load_chrome_trace,
    merge_chrome_trace,
    strip_wall_fields,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "COST_SCHEMA_VERSION",
    "CostLedger",
    "deterministic_section",
    "netcalc_cost_ledger",
    "port_label",
    "record_trajectory_sweep",
    "trajectory_result_work",
    "work_summary",
    "PROFILE_SCHEMA_VERSION",
    "build_profile_report",
    "render_profile_report",
    "build_chrome_trace",
    "load_chrome_trace",
    "merge_chrome_trace",
    "strip_wall_fields",
    "validate_chrome_trace",
    "write_chrome_trace",
    "configure",
    "get_logger",
    "MetricsRegistry",
    "TimerStats",
    "NULL_REGISTRY",
    "Tracer",
    "Span",
    "NULL_TRACER",
    "ProgressHook",
    "Instrumentation",
    "OFF",
    "MANIFEST_VERSION",
    "build_manifest",
    "network_identity",
    "validate_manifest",
    "write_manifest",
    "registry_samples",
    "render_prometheus",
    "write_prometheus",
    "pool_samples",
    "HISTORY_SCHEMA_VERSION",
    "RunHistory",
    "analysis_bounds_digest",
    "build_run_record",
    "cache_summary",
    "deterministic_view",
    "diff_runs",
    "drift_report",
    "git_revision",
    "resolve_history_dir",
    "validate_run_record",
    "lane_prefix",
    "set_worker_lane",
    "worker_lane",
    "FleetView",
    "TelemetryDrain",
    "fleet_drain",
]
