"""Hot-spot reports for ``afdx profile``.

Turns the two analyzers' cost ledgers (:mod:`repro.obs.costmodel`)
and the trajectory path bounds into the three reports the ROADMAP's
perf work needs to aim at:

* **top-K ports by candidate evaluations** — where the trajectory
  fixed point actually burns its work (plus the NC flow-fold view);
* **sweep convergence cost curve** — work per sweep, so "one fewer
  sweep" and "cheaper sweeps" show up as different shapes;
* **hot paths** — paths whose busy-period bound exceeds a share
  threshold of the total, the candidates for path-local memoization;
* **worker lanes** — per-phase busy/idle fractions of each worker
  process under ``--jobs N`` (from the same ``workers`` span attribute
  the Chrome-trace export draws its lanes from), with stragglers
  called out — the "why didn't it scale" report.

The report separates ``deterministic`` (byte-identical across
``PYTHONHASHSEED`` / ``--jobs`` / cache states — compared exactly by
``scripts/profile_smoke.py``) from ``cache``, ``workers`` and ``wall``
(informational, legitimately run-dependent).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.obs.costmodel import CostLedger

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "build_profile_report",
    "render_profile_report",
    "worker_lane_summary",
]

PROFILE_SCHEMA_VERSION = 1


def _ledger_from_stats(stats: Optional[Mapping[str, object]]) -> CostLedger:
    cost = (stats or {}).get("cost")
    if isinstance(cost, Mapping):
        return CostLedger.from_dict(cost)
    return CostLedger("")


def _wall_ms(stats: Optional[Mapping[str, object]]) -> float:
    """Total root-span wall time of one analyzer's stats export."""
    spans = (stats or {}).get("spans", [])
    return round(math.fsum(float(span["duration_ms"]) for span in spans), 3)


#: a lane whose busy time exceeds the lane mean by this factor is a
#: straggler: it alone stretches the phase while its siblings idle
_STRAGGLER_FACTOR = 1.25


def worker_lane_summary(
    stats: Optional[Mapping[str, object]]
) -> List[Dict[str, object]]:
    """Per-phase worker-lane utilization from one stats export.

    Walks the span tree for ``workers`` attributes (per-worker busy
    milliseconds, the same data the Chrome-trace export renders as
    ``worker-N`` lanes) and derives, per parallel phase: each lane's
    busy fraction of the phase wall time, the aggregate utilization,
    and the straggler lanes (busy > ``_STRAGGLER_FACTOR`` x the lane
    mean) that bound the phase's critical path.  Wall-clock derived,
    so the section is informational — never part of the byte-identity
    contract.
    """
    phases: List[Dict[str, object]] = []

    def visit(span: Mapping[str, object]) -> None:
        attrs = span.get("attrs") or {}
        lanes = attrs.get("workers")
        if isinstance(lanes, (list, tuple)) and lanes:
            busy_ms = [float(value) for value in lanes]
            wall_ms = float(span["duration_ms"])
            capacity_ms = wall_ms * len(busy_ms)
            mean_ms = math.fsum(busy_ms) / len(busy_ms)
            entry: Dict[str, object] = {
                "phase": str(span["name"]),
                "lanes": len(busy_ms),
                "wall_ms": round(wall_ms, 3),
                "utilization": (
                    round(min(1.0, math.fsum(busy_ms) / capacity_ms), 4)
                    if capacity_ms > 0.0
                    else 0.0
                ),
                "lane_busy_frac": [
                    round(min(1.0, value / wall_ms), 4) if wall_ms > 0.0 else 0.0
                    for value in busy_ms
                ],
                "stragglers": [
                    index
                    for index, value in enumerate(busy_ms)
                    if len(busy_ms) > 1 and value > _STRAGGLER_FACTOR * mean_ms
                ],
            }
            for extra in ("start_method", "pool_reused", "shm_tables"):
                if extra in attrs:
                    entry[extra] = attrs[extra]
            phases.append(entry)
        for child in span.get("children", ()):
            visit(child)

    for span in (stats or {}).get("spans", []):
        visit(span)
    return phases


def build_profile_report(
    nc_result,
    trajectory_result,
    top: int = 10,
    busy_share_pct: float = 5.0,
    config: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the ``afdx profile`` report from two analyzed results.

    Both results must carry ``stats`` with a ``cost`` ledger
    (``collect_stats=True`` runs).  ``config`` is an optional identity
    block (:func:`repro.obs.manifest.network_identity`).
    """
    nc_ledger = _ledger_from_stats(nc_result.stats)
    traj_ledger = _ledger_from_stats(trajectory_result.stats)

    hot_ports = [
        {"port": label, **counters}
        for label, counters in traj_ledger.hot_ports("candidate_evaluations", top)
    ]
    nc_hot_ports = [
        {"port": label, **counters}
        for label, counters in nc_ledger.hot_ports("flow_folds", top)
    ]

    busy_total = math.fsum(
        bound.busy_period_us for _key, bound in sorted(trajectory_result.paths.items())
    )
    hot_paths: List[Dict[str, object]] = []
    for (vl_name, path_index), bound in sorted(trajectory_result.paths.items()):
        share = 100.0 * bound.busy_period_us / busy_total if busy_total > 0.0 else 0.0
        if share > busy_share_pct:
            hot_paths.append(
                {
                    "path": f"{vl_name}[{path_index}]",
                    "busy_period_us": round(bound.busy_period_us, 3),
                    "share_pct": round(share, 4),
                }
            )
    hot_paths.sort(key=lambda entry: (-entry["share_pct"], entry["path"]))

    report: Dict[str, object] = {
        "profile_schema": PROFILE_SCHEMA_VERSION,
        "deterministic": {
            "work": {
                "network_calculus": dict(sorted(nc_ledger.work.items())),
                "trajectory": dict(sorted(traj_ledger.work.items())),
            },
            "hot_ports": hot_ports,
            "nc_hot_ports": nc_hot_ports,
            "sweep_cost_curve": [dict(entry) for entry in traj_ledger.sweeps],
            "hot_paths": hot_paths,
            "busy_share_threshold_pct": busy_share_pct,
            "top": top,
        },
        "cache": {
            "network_calculus": deterministic_complement(nc_ledger),
            "trajectory": deterministic_complement(traj_ledger),
        },
        "workers": (
            worker_lane_summary(nc_result.stats)
            + worker_lane_summary(trajectory_result.stats)
        ),
        "wall": {
            "network_calculus_ms": _wall_ms(nc_result.stats),
            "trajectory_ms": _wall_ms(trajectory_result.stats),
        },
    }
    if config is not None:
        report["config"] = dict(config)
    return report


def deterministic_complement(ledger: CostLedger) -> Dict[str, Dict[str, int]]:
    """The cache section — exactly what ``deterministic_section`` drops."""
    return dict(ledger.to_dict()["cache"])


def _fmt_counters(counters: Mapping[str, int]) -> str:
    return " ".join(f"{name}={counters[name]}" for name in sorted(counters))


def render_profile_report(report: Mapping[str, object]) -> str:
    """The text rendering of :func:`build_profile_report` output."""
    det = report["deterministic"]
    lines: List[str] = []
    config = report.get("config")
    if config:
        identity = " ".join(
            f"{key}={config[key]}" for key in sorted(config) if key != "source"
        )
        lines.append(f"config: {identity}")
    lines.append("deterministic work counters:")
    for analyzer in sorted(det["work"]):
        lines.append(f"  {analyzer}: {_fmt_counters(det['work'][analyzer])}")
    lines.append("")
    lines.append(f"top {det['top']} ports by candidate evaluations (trajectory):")
    if det["hot_ports"]:
        for entry in det["hot_ports"]:
            counters = {k: v for k, v in entry.items() if k != "port"}
            lines.append(f"  {entry['port']:<28}{_fmt_counters(counters)}")
    else:
        lines.append("  (none)")
    lines.append(f"top {det['top']} ports by flow folds (network calculus):")
    if det["nc_hot_ports"]:
        for entry in det["nc_hot_ports"]:
            counters = {k: v for k, v in entry.items() if k != "port"}
            lines.append(f"  {entry['port']:<28}{_fmt_counters(counters)}")
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("sweep convergence cost curve:")
    if det["sweep_cost_curve"]:
        for entry in det["sweep_cost_curve"]:
            counters = {k: v for k, v in entry.items() if k != "sweep"}
            lines.append(f"  sweep {entry['sweep']}: {_fmt_counters(counters)}")
    else:
        lines.append("  (no sweep data — trajectory served from cache)")
    lines.append("")
    threshold = det["busy_share_threshold_pct"]
    lines.append(f"paths with busy-period share > {threshold}%:")
    if det["hot_paths"]:
        for entry in det["hot_paths"]:
            lines.append(
                f"  {entry['path']:<24}busy_period_us={entry['busy_period_us']}"
                f" share={entry['share_pct']}%"
            )
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("cache (run-dependent, excluded from determinism checks):")
    for analyzer in sorted(report["cache"]):
        tallies = report["cache"][analyzer]
        if tallies:
            rendered = " ".join(
                f"{name}={tallies[name]['hits']}/{tallies[name]['hits'] + tallies[name]['misses']}"
                for name in sorted(tallies)
            )
            lines.append(f"  {analyzer}: {rendered} (hits/lookups)")
        else:
            lines.append(f"  {analyzer}: (no caches active)")
    workers = report.get("workers") or []
    if workers:
        lines.append("worker lanes (wall-clock, informational):")
        for entry in workers:
            fracs = " ".join(
                f"w{index}={frac:.0%}"
                for index, frac in enumerate(entry["lane_busy_frac"])
            )
            line = (
                f"  {entry['phase']}: {entry['lanes']} lanes, "
                f"utilization={entry['utilization']:.0%} [{fracs}]"
            )
            if entry["stragglers"]:
                lagging = ", ".join(f"w{index}" for index in entry["stragglers"])
                line += f" stragglers: {lagging}"
            lines.append(line)
    wall = report["wall"]
    lines.append(
        "wall time (informational): "
        + " ".join(f"{key}={wall[key]}" for key in sorted(wall))
    )
    return "\n".join(lines)
