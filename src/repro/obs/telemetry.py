"""Live fleet telemetry: worker heartbeats rendered as one status line.

The batch engine's ``--progress`` view used to be coordinator-only: a
``pool.map`` call blocks until a whole chunk wave completes, so a
200-config corpus sweep was a black box between waves.  This module
closes the loop — workers push small structured events (dicts) through
the pool's telemetry queue (:func:`repro.batch.pool.worker_emit`), a
:class:`TelemetryDrain` thread on the coordinator consumes them *while
the map call blocks*, and a :class:`FleetView` folds them into a live
one-line view: configs/sec throughput, ETA, cache hit rate, and
per-worker lane tallies (the same ``w100+`` lanes the Chrome-trace
export and the log prefix use).

Event grammar (deliberately loose — a dict with a ``kind``):

``{"kind": "config", "lane": 101, "n": 1, "cache_hits": 3, ...}``
    One or more configurations finished on a lane; optional cache
    tallies fold into the aggregate hit rate.
``{"kind": "heartbeat", "lane": 101, "at": "SW1.out3"}``
    A worker announcing what it is chewing on — surfaces stragglers
    (the lane's marker goes stale while other lanes advance).

Everything here is *volatile shell* in the run-history sense: the
:meth:`FleetView.snapshot` lands in ``report.stats["fleet"]`` and the
history record's ``execution`` section, never in the deterministic
core — bounds are finished long before any of this is looked at.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["FleetView", "TelemetryDrain", "STOP_EVENT_KIND", "fleet_drain"]

#: ``kind`` of the sentinel the coordinator enqueues to stop a drain.
STOP_EVENT_KIND = "__stop__"


class FleetView:
    """Aggregates worker events into a live single-line fleet view.

    Parameters
    ----------
    total:
        Expected unit count (configurations) — drives the ETA.
    stream:
        Where the live line goes (default ``sys.stderr``).  Pass an
        :class:`io.StringIO` in tests; pass ``None`` explicitly for
        stderr.
    min_interval_s:
        Render rate limit; events always aggregate, the line only
        redraws this often (matches ``ProgressHook``'s throttling).
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        total: int,
        stream=None,
        min_interval_s: float = 0.2,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.total = max(0, int(total))
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._started = clock()
        self._last_render: Optional[float] = None
        self.done = 0
        self.events = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: configurations completed per worker lane (lane id -> count)
        self.lanes: Dict[int, int] = {}
        #: last heartbeat marker per lane (what the worker is chewing on)
        self.current: Dict[int, str] = {}
        self.renders = 0

    # -- event folding -------------------------------------------------

    def handle(self, event: Dict[str, object]) -> None:
        """Fold one worker event in and (rate-limited) redraw the line."""
        if not isinstance(event, dict):
            return
        self.events += 1
        kind = event.get("kind")
        lane = event.get("lane")
        lane = int(lane) if isinstance(lane, int) and lane >= 0 else None
        if kind == "config":
            n = int(event.get("n", 1))
            self.done += n
            if lane is not None:
                self.lanes[lane] = self.lanes.get(lane, 0) + n
                self.current.pop(lane, None)
            self.cache_hits += int(event.get("cache_hits", 0))
            self.cache_misses += int(event.get("cache_misses", 0))
        elif kind == "heartbeat" and lane is not None:
            at = event.get("at")
            if at is not None:
                self.current[lane] = str(at)
        self.render()

    # -- derived rates -------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return max(0.0, self._clock() - self._started)

    @property
    def throughput(self) -> float:
        """Configurations per second since the view started."""
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def eta_s(self) -> Optional[float]:
        """Seconds to completion at the current rate (None before data)."""
        rate = self.throughput
        if rate <= 0 or self.total <= 0:
            return None
        return max(0.0, (self.total - self.done) / rate)

    @property
    def cache_hit_rate(self) -> Optional[float]:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None

    # -- rendering -----------------------------------------------------

    def render_line(self) -> str:
        """The current fleet status line (no carriage return)."""
        parts = [f"fleet {self.done}/{self.total} cfg"]
        parts.append(f"{self.throughput:.1f} cfg/s")
        eta = self.eta_s
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        hit_rate = self.cache_hit_rate
        if hit_rate is not None:
            parts.append(f"cache {hit_rate * 100:.0f}%")
        if self.lanes:
            lanes = " ".join(
                f"w{lane}:{self.lanes[lane]}" for lane in sorted(self.lanes)
            )
            parts.append(lanes)
        stragglers = sorted(set(self.current) - set(self.lanes))
        if stragglers:
            parts.append(
                "at " + " ".join(
                    f"w{lane}={self.current[lane]}" for lane in stragglers
                )
            )
        return " | ".join(parts)

    def render(self, force: bool = False) -> None:
        now = self._clock()
        if (
            not force
            and self._last_render is not None
            and now - self._last_render < self.min_interval_s
        ):
            return
        self._last_render = now
        self.renders += 1
        print(f"\r{self.render_line()}", end="", file=self.stream, flush=True)

    def close(self) -> None:
        """Final forced render plus the newline that releases the line."""
        self.render(force=True)
        print(file=self.stream, flush=True)

    # -- persistence ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Summary dict for ``report.stats['fleet']`` / run history."""
        hit_rate = self.cache_hit_rate
        return {
            "events": self.events,
            "configs_done": self.done,
            "configs_total": self.total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (
                round(hit_rate, 4) if hit_rate is not None else None
            ),
            "lanes": {
                str(lane): self.lanes[lane] for lane in sorted(self.lanes)
            },
            "throughput_cfg_s": round(self.throughput, 3),
        }


class TelemetryDrain:
    """Daemon thread pumping a pool telemetry queue into a handler.

    The coordinator starts a drain *before* the blocking ``pool.map``
    call and stops it after — events emitted mid-wave reach the
    :class:`FleetView` (or any callable) live.  :meth:`stop` enqueues a
    sentinel (:data:`STOP_EVENT_KIND`) so the blocking ``get`` wakes
    deterministically; events already queued ahead of the sentinel are
    still delivered.
    """

    def __init__(
        self, queue, handler: Callable[[Dict[str, object]], None]
    ) -> None:
        self.queue = queue
        self.handler = handler
        self.events = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-drain", daemon=True
        )

    def start(self) -> "TelemetryDrain":
        self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            try:
                event = self.queue.get()
            except (OSError, EOFError):
                break
            if (
                isinstance(event, dict)
                and event.get("kind") == STOP_EVENT_KIND
            ):
                break
            self.events += 1
            try:
                self.handler(event)
            except Exception:  # a bad render must not kill the drain
                continue

    def stop(self, timeout: float = 5.0) -> None:
        """Unblock and join the drain thread (idempotent)."""
        if not self._thread.is_alive():
            return
        try:
            self.queue.put({"kind": STOP_EVENT_KIND})
        except (OSError, ValueError):
            pass
        self._thread.join(timeout)

    def __enter__(self) -> "TelemetryDrain":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def fleet_drain(pool, progress, total: int):
    """A started ``(FleetView, TelemetryDrain)`` pair for one fan-out.

    The live view activates only when both halves exist: the pool has
    a telemetry queue (created with ``telemetry=True``, or a borrowed
    warm pool whose owner opened one) *and* the caller asked for
    progress.  Returns ``(None, None)`` otherwise, so call sites stay
    one-liners.  The caller must ``drain.stop()`` and ``view.close()``
    when the map completes.
    """
    queue = getattr(pool, "telemetry_queue", None)
    if queue is None or progress is None:
        return None, None
    view = FleetView(total)
    drain = TelemetryDrain(queue, view.handle).start()
    return view, drain
