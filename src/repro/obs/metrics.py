"""Lightweight in-process metrics: counters, gauges, timers.

A :class:`MetricsRegistry` is a plain accumulator — no background
threads, no sampling — designed so instrumented hot paths cost one
attribute check when collection is disabled.  Timers use the monotonic
:func:`time.perf_counter` clock and nest freely (each ``with`` block
records independently, including re-entrant use of the same name).

The registry serializes to a JSON-compatible dict via
:meth:`MetricsRegistry.to_dict`, which is what run manifests and
``BENCH_obs.json`` embed.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["TimerStats", "MetricsRegistry", "NULL_REGISTRY"]


class TimerStats:
    """Accumulated observations of one named timer."""

    __slots__ = ("count", "total_ms", "min_ms", "max_ms")

    def __init__(self) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = math.inf
        self.max_ms = 0.0

    def record(self, elapsed_ms: float) -> None:
        """Fold one observation (milliseconds) into the statistics."""
        self.count += 1
        self.total_ms += elapsed_ms
        self.min_ms = min(self.min_ms, elapsed_ms)
        self.max_ms = max(self.max_ms, elapsed_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "min_ms": round(self.min_ms, 3) if self.count else 0.0,
            "max_ms": round(self.max_ms, 3),
        }


class MetricsRegistry:
    """Counters, gauges and timers under dotted names.

    Parameters
    ----------
    enabled:
        When False every recording method returns immediately and
        :meth:`to_dict` reports empty maps — the shared
        :data:`NULL_REGISTRY` instance is safe to pass everywhere.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_timers")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the counter ``name``."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        if not self.enabled:
            return
        self._gauges[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block on the monotonic clock.

        Nestable and re-entrant: each block records one observation on
        ``name`` regardless of what runs (or times) inside it.
        """
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.record(elapsed_ms)

    # ------------------------------------------------------------------

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        """Latest value of a gauge (0 if never set)."""
        return self._gauges.get(name, 0)

    def timer_stats(self, name: str) -> TimerStats:
        """Accumulated timer statistics (empty if never observed)."""
        return self._timers.get(name, TimerStats())

    def clear(self) -> None:
        """Drop every recorded value (the enabled flag is kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot of everything recorded so far."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "timers": {
                name: stats.to_dict() for name, stats in sorted(self._timers.items())
            },
        }


#: Shared always-disabled registry: record calls are no-ops.
NULL_REGISTRY = MetricsRegistry(enabled=False)
