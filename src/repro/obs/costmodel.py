"""Deterministic cost attribution: the :class:`CostLedger`.

Wall-clock timers answer "how long did it take *here, today*"; they
cannot gate a speedup PR, because the same algorithm jitters across
machines and runs.  The cost ledger instead counts the analysis's own
work units — candidate evaluations, competitor folds, curve-knot
operations — *derived from the result structures themselves*
(:class:`~repro.trajectory.results.TrajectoryPathBound` carries
``n_candidates`` / ``n_competitors`` per tree port,
:class:`~repro.netcalc.results.PortAnalysis` carries ``n_flows`` /
``n_groups``).  Because the bounds are bit-identical across
``PYTHONHASHSEED``, ``--jobs N`` and cold/warm caches, so are the
counters: "did the algorithm do less work" becomes an exact equality
check (``scripts/bench_gate.py``), not a ±30% wall-time judgement.

The ledger has four sections:

``work``
    Global integer totals (``candidate_evaluations``,
    ``competitor_folds``, ``flow_folds``, ``curve_knot_operations``,
    ``sweeps``, ``paths_bound``, ...).
``ports``
    The same counters attributed per output port (``"src->dst"``
    labels) — the substrate of ``afdx profile``'s hot-port report.
``sweeps``
    The trajectory fixed point's per-sweep cost curve.
``cache``
    Hit/miss tallies per cache namespace, **including an explicit
    entry when a whole result is served from cache** — cache effects
    are visible, never silently absent.  This section legitimately
    differs between cold and warm runs, so
    :func:`deterministic_section` excludes it.
``runtime``
    Execution-shape counters (shared-memory segments created, warm-pool
    reuse, payload epochs) — facts about *how* the run executed, not
    about the algorithm's work, so they differ across ``--jobs`` and
    pool states and are excluded from :func:`deterministic_section`
    alongside ``cache``.

Everything here is integers and dict bookkeeping: no clocks, no float
accumulation, no hash-order iteration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "COST_SCHEMA_VERSION",
    "NONDETERMINISTIC_SECTIONS",
    "CostLedger",
    "port_label",
    "record_trajectory_sweep",
    "netcalc_cost_ledger",
    "trajectory_result_work",
    "deterministic_section",
    "work_summary",
]

#: Bumped whenever the ledger's JSON shape changes incompatibly.
COST_SCHEMA_VERSION = 1


def port_label(port_id: Sequence[str]) -> str:
    """A stable ``"src->dst"`` label for a ``(node, node)`` port id."""
    return "->".join(str(part) for part in port_id)


class CostLedger:
    """Per-analyzer deterministic work counters (see module docstring)."""

    __slots__ = ("analyzer", "work", "ports", "sweeps", "cache", "runtime")

    def __init__(self, analyzer: str) -> None:
        self.analyzer = analyzer
        self.work: Dict[str, int] = {}
        self.ports: Dict[str, Dict[str, int]] = {}
        self.sweeps: List[Dict[str, int]] = []
        self.cache: Dict[str, Dict[str, int]] = {}
        self.runtime: Dict[str, int] = {}

    # -- recording -----------------------------------------------------

    def add_work(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the global counter ``name``."""
        self.work[name] = self.work.get(name, 0) + int(amount)

    def add_port_work(self, label: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` of port ``label``."""
        counters = self.ports.setdefault(label, {})
        counters[name] = counters.get(name, 0) + int(amount)

    def add_sweep(self, **counters: int) -> None:
        """Append one entry to the per-sweep cost curve."""
        entry = {"sweep": len(self.sweeps) + 1}
        for name in sorted(counters):
            entry[name] = int(counters[name])
        self.sweeps.append(entry)

    def record_cache(self, name: str, hits: int, misses: int) -> None:
        """Record one cache namespace's hit/miss tally (accumulating)."""
        slot = self.cache.setdefault(name, {"hits": 0, "misses": 0})
        slot["hits"] += int(hits)
        slot["misses"] += int(misses)

    def record_runtime(self, name: str, amount: int = 1) -> None:
        """Add to an execution-shape counter (non-deterministic section)."""
        self.runtime[name] = self.runtime.get(name, 0) + int(amount)

    # -- reading -------------------------------------------------------

    def hot_ports(
        self, counter: str, top: int = 10
    ) -> List[Tuple[str, Dict[str, int]]]:
        """The ``top`` ports by ``counter``, largest first (label ties
        broken lexicographically so the ranking is reproducible)."""
        ranked = sorted(
            self.ports.items(), key=lambda item: (-item[1].get(counter, 0), item[0])
        )
        return [(label, dict(counters)) for label, counters in ranked[: max(top, 0)]]

    def to_dict(self) -> Dict[str, object]:
        """The JSON form (all sections, keys sorted — stable bytes)."""
        return {
            "cost_schema": COST_SCHEMA_VERSION,
            "analyzer": self.analyzer,
            "work": {name: self.work[name] for name in sorted(self.work)},
            "ports": {
                label: {k: counters[k] for k in sorted(counters)}
                for label, counters in sorted(self.ports.items())
            },
            "sweeps": [dict(entry) for entry in self.sweeps],
            "cache": {
                name: dict(self.cache[name]) for name in sorted(self.cache)
            },
            "runtime": {
                name: self.runtime[name] for name in sorted(self.runtime)
            },
        }

    def snapshot(self) -> "CostLedger":
        """An independent copy with *empty* cache and runtime sections.

        The bound cache's memory layer stores objects by reference, so
        the ledger persisted alongside a result must not alias the live
        one (later ``record_cache`` calls would leak into the cached
        copy) and must not bake in the recording run's cache tallies or
        execution shape (a warm run records its own).
        """
        copy = CostLedger(self.analyzer)
        copy.work = dict(self.work)
        copy.ports = {label: dict(c) for label, c in self.ports.items()}
        copy.sweeps = [dict(entry) for entry in self.sweeps]
        return copy

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CostLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        ledger = cls(str(payload.get("analyzer", "")))
        for name, value in dict(payload.get("work", {})).items():
            ledger.work[str(name)] = int(value)
        for label, counters in dict(payload.get("ports", {})).items():
            ledger.ports[str(label)] = {
                str(k): int(v) for k, v in dict(counters).items()
            }
        for entry in list(payload.get("sweeps", [])):
            ledger.sweeps.append({str(k): int(v) for k, v in dict(entry).items()})
        for name, tally in dict(payload.get("cache", {})).items():
            ledger.cache[str(name)] = {
                "hits": int(dict(tally).get("hits", 0)),
                "misses": int(dict(tally).get("misses", 0)),
            }
        for name, value in dict(payload.get("runtime", {})).items():
            ledger.runtime[str(name)] = int(value)
        return ledger


def record_trajectory_sweep(
    ledger: CostLedger,
    bounds: Mapping[Tuple[str, Sequence[str]], object],
    smax_updates: int = 0,
) -> None:
    """Fold one trajectory sweep's prefix bounds into the ledger.

    ``bounds`` is the sweep's ``(vl_name, port) -> TrajectoryPathBound``
    map (sequential ``_sweep()`` output, or the coordinator's merged
    chunk bounds under ``--jobs N`` — identical content either way,
    which is what makes the ledger jobs-invariant).
    """
    candidates = 0
    competitors = 0
    for (_vl_name, port), bound in sorted(bounds.items()):
        candidates += bound.n_candidates
        competitors += bound.n_competitors
        label = port_label(port)
        ledger.add_port_work(label, "candidate_evaluations", bound.n_candidates)
        ledger.add_port_work(label, "competitor_folds", bound.n_competitors)
    ledger.add_work("sweeps", 1)
    ledger.add_work("tree_ports_visited", len(bounds))
    ledger.add_work("candidate_evaluations", candidates)
    ledger.add_work("competitor_folds", competitors)
    ledger.add_sweep(
        candidate_evaluations=candidates,
        competitor_folds=competitors,
        tree_ports_visited=len(bounds),
        smax_updates=smax_updates,
    )


def netcalc_cost_ledger(result) -> CostLedger:
    """The Network Calculus ledger, derived from a finished result.

    Purely a function of the :class:`NetworkCalculusResult` — which is
    bit-identical across jobs, hash seeds and cache states — so the
    ledger needs no in-loop instrumentation and is automatically exact
    even for cache-served results.  Per port: one *flow fold* per flow
    aggregated into the port's arrival curve, and ``n_groups + 1``
    *curve-knot operations* (one concave segment per input-link group
    plus the service-curve intersection).
    """
    ledger = CostLedger("network_calculus")
    flow_folds = 0
    knot_ops = 0
    for port_id, analysis in sorted(result.ports.items()):
        label = port_label(port_id)
        port_knots = analysis.n_groups + 1
        ledger.add_port_work(label, "flow_folds", analysis.n_flows)
        ledger.add_port_work(label, "curve_knot_operations", port_knots)
        flow_folds += analysis.n_flows
        knot_ops += port_knots
    ledger.add_work("ports_analyzed", len(result.ports))
    ledger.add_work("flow_folds", flow_folds)
    ledger.add_work("curve_knot_operations", knot_ops)
    ledger.add_work("paths_bound", len(result.paths))
    return ledger


def trajectory_result_work(result) -> Dict[str, int]:
    """Deterministic work totals derivable from a finished trajectory
    result alone (no in-loop instrumentation required).

    The per-sweep / per-tree-port attribution needs the live sweep
    bounds, but the final path bounds still carry each path's
    last-port candidate and competitor counts — enough for the
    benchmark scripts to embed an exact "did the algorithm do less
    work" signature without rerunning instrumented.
    """
    candidates = 0
    competitors = 0
    for _key, bound in sorted(result.paths.items()):
        candidates += bound.n_candidates
        competitors += bound.n_competitors
    return {
        "sweeps": int(result.refinement_iterations),
        "paths_bound": len(result.paths),
        "path_candidate_evaluations": candidates,
        "path_competitor_folds": competitors,
    }


#: ledger sections that legitimately differ across runs of one input
NONDETERMINISTIC_SECTIONS = ("cache", "runtime")


def deterministic_section(cost: Mapping[str, object]) -> Dict[str, object]:
    """A ledger dict minus its ``cache`` and ``runtime`` sections.

    What remains is the byte-identity contract: equal across
    ``PYTHONHASHSEED`` values, ``--jobs``, pool states, and cold vs
    warm caches.
    """
    return {
        key: value
        for key, value in cost.items()
        if key not in NONDETERMINISTIC_SECTIONS
    }


def work_summary(
    analyzers: Mapping[str, Optional[Mapping[str, object]]]
) -> Dict[str, Dict[str, int]]:
    """Per-analyzer ``work`` totals from a ``stats`` dict collection.

    The compact form benchmark records embed (``BENCH_*.json``) and
    ``scripts/bench_gate.py`` compares exactly.
    """
    summary: Dict[str, Dict[str, int]] = {}
    for name in sorted(analyzers):
        stats = analyzers[name]
        if not stats:
            continue
        cost = stats.get("cost")
        if isinstance(cost, Mapping):
            work = cost.get("work")
            if isinstance(work, Mapping):
                summary[name] = {str(k): int(work[k]) for k in sorted(work)}
    return summary
