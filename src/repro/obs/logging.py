"""The ``repro`` logger hierarchy.

Every module logs under a child of the ``repro`` root logger
(``repro.netcalc``, ``repro.trajectory``, ``repro.sim``,
``repro.experiments``, ``repro.cli``), so one :func:`configure` call —
or any standard :mod:`logging` setup done by an embedding application —
controls the whole library.  The library itself never installs handlers
at import time; until :func:`configure` runs, records propagate to
whatever the application configured (or are swallowed by the default
last-resort handler).

Messages follow a light ``event key=value`` structure, built with
:func:`kv`, so grep / awk post-processing stays trivial::

    logger.info("sweep done %s", kv(sweep=2, changed=17, max_delta_us=3.1))
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure", "kv"]

ROOT_LOGGER_NAME = "repro"

#: Format used by :func:`configure`: time, level, logger, message.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DATE_FORMAT = "%H:%M:%S"

#: Marker attached to handlers installed by :func:`configure`, so
#: repeated calls replace them instead of stacking duplicates.
_HANDLER_MARKER = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("netcalc")`` returns the ``repro.netcalc`` logger;
    the empty string returns the ``repro`` root itself.  Names already
    prefixed with ``repro`` (e.g. ``__name__`` inside this package)
    are used as-is.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(
    level: Union[int, str] = "INFO", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install a stderr handler on the ``repro`` root logger.

    Idempotent: a handler previously installed by this function is
    replaced, so calling with a new level or stream reconfigures
    instead of duplicating output.  Returns the root library logger.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    setattr(handler, _HANDLER_MARKER, True)
    root.addHandler(handler)
    root.setLevel(level)
    # analysis logs are diagnostics, not application events
    root.propagate = False
    return root


def kv(**fields: object) -> str:
    """Render keyword fields as a stable ``key=value`` string.

    Floats are shortened to 3 decimals; everything else uses ``repr``
    only when it contains whitespace.
    """
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.3f}"
        else:
            text = str(value)
            if any(ch.isspace() for ch in text):
                text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)
