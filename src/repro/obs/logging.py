"""The ``repro`` logger hierarchy.

Every module logs under a child of the ``repro`` root logger
(``repro.netcalc``, ``repro.trajectory``, ``repro.sim``,
``repro.experiments``, ``repro.cli``), so one :func:`configure` call —
or any standard :mod:`logging` setup done by an embedding application —
controls the whole library.  The library itself never installs handlers
at import time; until :func:`configure` runs, records propagate to
whatever the application configured (or are swallowed by the default
last-resort handler).

Messages follow a light ``event key=value`` structure, built with
:func:`kv`, so grep / awk post-processing stays trivial::

    logger.info("sweep done %s", kv(sweep=2, changed=17, max_delta_us=3.1))
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

__all__ = [
    "ROOT_LOGGER_NAME",
    "get_logger",
    "configure",
    "kv",
    "lane_prefix",
    "set_worker_lane",
    "worker_lane",
]

ROOT_LOGGER_NAME = "repro"

#: Format used by :func:`configure`: time, level, logger, message.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DATE_FORMAT = "%H:%M:%S"

#: Marker attached to handlers installed by :func:`configure`, so
#: repeated calls replace them instead of stacking duplicates.
_HANDLER_MARKER = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("netcalc")`` returns the ``repro.netcalc`` logger;
    the empty string returns the ``repro`` root itself.  Names already
    prefixed with ``repro`` (e.g. ``__name__`` inside this package)
    are used as-is.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(
    level: Union[int, str] = "INFO", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install a stderr handler on the ``repro`` root logger.

    Idempotent: a handler previously installed by this function is
    replaced, so calling with a new level or stream reconfigures
    instead of duplicating output.  Returns the root library logger.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    setattr(handler, _HANDLER_MARKER, True)
    root.addHandler(handler)
    root.setLevel(level)
    # analysis logs are diagnostics, not application events
    root.propagate = False
    return root


#: Worker lane id of *this process* (None on the coordinator).  Set by
#: the pool initializer; matches the synthetic Chrome-trace worker tids
#: (``repro.obs.tracefile``, base 100), so a ``[w101]`` stderr line and
#: the tid-101 trace lane are the same worker.
_WORKER_LANE: Optional[int] = None

#: The record factory active before the first lane install, so a lane
#: reset (or re-install) never stacks wrappers.
_BASE_RECORD_FACTORY = None


def lane_prefix(lane: int) -> str:
    """The stable textual form of a worker-lane id: ``[w<lane>]``."""
    return f"[w{int(lane)}]"


def worker_lane() -> Optional[int]:
    """This process's worker-lane id (None on the coordinator)."""
    return _WORKER_LANE


def set_worker_lane(lane: Optional[int]) -> None:
    """Tag every ``repro.*`` log record of this process with a lane id.

    Called by the worker-pool initializer in each pool process: from
    then on every record logged under the ``repro`` hierarchy carries a
    ``[w<lane>]`` message prefix, so interleaved stderr from ``--jobs
    N`` runs is attributable to a worker — and joinable with the
    Chrome-trace worker lanes, which use the same numbering.  Installed
    via :func:`logging.setLogRecordFactory` (record creation), so it
    works whether the worker inherited a configured handler (fork) or
    merely propagates records (spawn).  ``None`` uninstalls.
    """
    global _WORKER_LANE, _BASE_RECORD_FACTORY
    _WORKER_LANE = lane
    if _BASE_RECORD_FACTORY is None:
        _BASE_RECORD_FACTORY = logging.getLogRecordFactory()
    base = _BASE_RECORD_FACTORY
    if lane is None:
        logging.setLogRecordFactory(base)
        return
    prefix = lane_prefix(lane)

    def factory(*args, **kwargs):
        record = base(*args, **kwargs)
        in_hierarchy = record.name == ROOT_LOGGER_NAME or record.name.startswith(
            ROOT_LOGGER_NAME + "."
        )
        if in_hierarchy and isinstance(record.msg, str):
            record.msg = f"{prefix} {record.msg}"
        return record

    logging.setLogRecordFactory(factory)


def kv(**fields: object) -> str:
    """Render keyword fields as a stable ``key=value`` string.

    Floats are shortened to 3 decimals; everything else uses ``repr``
    only when it contains whitespace.
    """
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.3f}"
        else:
            text = str(value)
            if any(ch.isspace() for ch in text):
                text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)
