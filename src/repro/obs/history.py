"""Persistent run history: the fleet observatory's append-only store.

Every per-run artefact this repo ships (manifests, Prometheus
textfiles, Chrome traces, ``BENCH_*.json`` records) is write-once and
fire-and-forget: nothing correlates runs across time, git revisions or
cache states.  This module is the missing layer — a directory of
append-only JSONL *segments* plus a rebuildable ``index.json``, written
to by every CLI command (``--history-dir DIR`` or the
``AFDX_HISTORY_DIR`` environment variable) and by the bench scripts,
and queried by ``afdx obs list/show/diff/drift``.

Record anatomy (schema :data:`HISTORY_SCHEMA_VERSION`)
------------------------------------------------------

A :func:`build_run_record` record has two halves:

* a **deterministic core** — command, configuration identity and
  digest, the bounds digest, the cost-ledger ``work`` signature and
  the recorded options.  :func:`deterministic_view` extracts it, and
  the contract is byte-stability: the core of two runs of the same
  configuration is identical across ``PYTHONHASHSEED``, ``--jobs N``
  and cache states (the same invariant the analyzers guarantee for
  the bounds themselves);
* a **volatile shell** — ``run_id``, ``recorded_at`` timestamp,
  ``git_rev``, wall times, cache tallies, execution shape (jobs, shm,
  warm-pool reuse, fleet telemetry summary).  Provenance, legitimately
  different per run, and excluded from the deterministic view.

The split is what makes *drift detection* sound: at a fixed
``config_digest`` the ``bounds_digest`` must never change — across
time, git revisions, worker counts or cache states.  A change is a
soundness tripwire (:func:`drift_report`), generalizing
``scripts/bench_gate.py``'s committed baselines into continuous
telemetry.  Work-counter growth at a fixed config digest is reported
the same way the bench gate reports ``more-work``: a real algorithmic
change, flagged for review.

Storage contract
----------------

* appends are **atomic**: one newline-terminated JSON document written
  with a single ``O_APPEND`` write, so concurrent writers (workers of
  one fleet, parallel CI shards sharing a directory) interleave whole
  records, never torn ones;
* segments rotate at :data:`SEGMENT_RECORDS` records so no file grows
  without bound; segment names sort chronologically;
* ``index.json`` is a cache, rewritten atomically (temp file +
  ``os.replace``) after each append; readers fall back to scanning the
  segments when it is missing or stale, so a crashed writer can never
  wedge the store.
"""

from __future__ import annotations

import json
import os
import struct
import subprocess
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import hashlib

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "SEGMENT_RECORDS",
    "ENV_HISTORY_DIR",
    "ENV_GIT_REV",
    "RunHistory",
    "analysis_bounds_digest",
    "build_run_record",
    "cache_summary",
    "deterministic_view",
    "diff_runs",
    "drift_report",
    "git_revision",
    "render_drift_report",
    "render_run",
    "render_run_diff",
    "resolve_history_dir",
    "validate_run_record",
]

#: Bumped whenever the record shape changes incompatibly.
HISTORY_SCHEMA_VERSION = 1

#: Records per segment before the store rotates to a fresh file.
SEGMENT_RECORDS = 512

#: Environment fallback for the CLI's ``--history-dir`` flag.
ENV_HISTORY_DIR = "AFDX_HISTORY_DIR"

#: Overrides the recorded git revision (tests and CI shards use it to
#: pin provenance without creating commits).
ENV_GIT_REV = "AFDX_GIT_REV"

#: Top-level record keys excluded from :func:`deterministic_view`
#: (provenance and execution shape, legitimately different per run).
VOLATILE_FIELDS = (
    "run_id",
    "recorded_at",
    "git_rev",
    "wall",
    "cache",
    "execution",
    "error",
)

#: Uniqueness counter folded into run ids (two identical runs recorded
#: in the same second by the same process still get distinct ids).
_RUN_COUNTER = 0


# ----------------------------------------------------------------------
# Provenance helpers
# ----------------------------------------------------------------------


def resolve_history_dir(flag: Optional[str] = None) -> Optional[str]:
    """The history directory: explicit flag > AFDX_HISTORY_DIR > None."""
    if flag:
        return str(flag)
    env = os.environ.get(ENV_HISTORY_DIR, "").strip()
    return env or None


def git_revision(repo: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The short git revision to stamp records with (best-effort).

    ``AFDX_GIT_REV`` wins when set — tests and CI shards use it to
    simulate runs "at different revisions" without creating commits.
    Outside a git checkout the stamp is simply absent.
    """
    env = os.environ.get(ENV_GIT_REV, "").strip()
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo) if repo is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _utc_now() -> str:
    from datetime import datetime, timezone

    # repro-lint: allow[REPRO105] run provenance timestamp (volatile shell), never an analysis input
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def analysis_bounds_digest(nc_result, trajectory_result) -> str:
    """One lossless hash over every path's NC and trajectory bound.

    Same encoding as :class:`repro.batch.corpus.CorpusRecord`: packed
    IEEE-754 doubles over the sorted path keys, so two runs produced
    bit-identical bounds *iff* their digests match.  This is the value
    ``afdx obs drift`` compares at fixed config digests.
    """
    digest = hashlib.sha256()
    for key in sorted(nc_result.paths):
        digest.update(repr(key).encode())
        digest.update(
            struct.pack(
                "<2d",
                nc_result.paths[key].total_us,
                trajectory_result.paths[key].total_us,
            )
        )
    return digest.hexdigest()


def cache_summary(
    analyzers: Mapping[str, Optional[Mapping[str, object]]]
) -> Dict[str, Dict[str, int]]:
    """Per-analyzer flattened cache tallies from a ``stats`` collection.

    The volatile counterpart of :func:`repro.obs.costmodel.work_summary`:
    ``{analyzer: {"<namespace>.hits": h, "<namespace>.misses": m}}``
    pulled from each ledger's (non-deterministic) ``cache`` section.
    """
    summary: Dict[str, Dict[str, int]] = {}
    for name in sorted(analyzers or {}):
        stats = analyzers[name]
        if not isinstance(stats, Mapping):
            continue
        cost = stats.get("cost")
        if not isinstance(cost, Mapping):
            continue
        cache = cost.get("cache")
        if not isinstance(cache, Mapping):
            continue
        flat: Dict[str, int] = {}
        for namespace, tally in sorted(dict(cache).items()):
            tally = dict(tally)
            flat[f"{namespace}.hits"] = int(tally.get("hits", 0))
            flat[f"{namespace}.misses"] = int(tally.get("misses", 0))
        if flat:
            summary[str(name)] = flat
    return summary


# ----------------------------------------------------------------------
# Record assembly / validation
# ----------------------------------------------------------------------


def build_run_record(
    command: str,
    status: str = "ok",
    config: Optional[Mapping[str, object]] = None,
    config_digest: Optional[str] = None,
    bounds_digest: Optional[str] = None,
    work: Optional[Mapping[str, Mapping[str, int]]] = None,
    cache: Optional[Mapping[str, Mapping[str, int]]] = None,
    execution: Optional[Mapping[str, object]] = None,
    options: Optional[Mapping[str, object]] = None,
    wall_ms: Optional[float] = None,
    error: Optional[str] = None,
    git_rev: Optional[str] = None,
    recorded_at: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble one schema-conformant run record (not yet stored).

    ``work`` is the deterministic cost-ledger signature
    (:func:`repro.obs.costmodel.work_summary` shape: analyzer ->
    counter -> int); ``cache`` the per-analyzer hit/miss tallies;
    ``execution`` the run shape (jobs, shm, kernel, fleet summary).
    ``git_rev`` / ``recorded_at`` default to live provenance — tests
    pass explicit values to pin them.
    """
    global _RUN_COUNTER
    recorded = recorded_at if recorded_at is not None else _utc_now()
    rev = git_rev if git_rev is not None else git_revision()
    record: Dict[str, object] = {
        "history_schema": HISTORY_SCHEMA_VERSION,
        "command": str(command),
        "status": str(status),
        "recorded_at": recorded,
    }
    if rev is not None:
        record["git_rev"] = str(rev)
    if config is not None:
        record["config"] = dict(config)
    if config_digest is not None:
        record["config_digest"] = str(config_digest)
    if bounds_digest is not None:
        record["bounds_digest"] = str(bounds_digest)
    if work:
        record["work"] = {
            str(name): {str(k): int(v) for k, v in sorted(dict(counters).items())}
            for name, counters in sorted(dict(work).items())
        }
    if cache:
        record["cache"] = {
            str(name): {str(k): int(v) for k, v in sorted(dict(tally).items())}
            for name, tally in sorted(dict(cache).items())
        }
    if execution:
        record["execution"] = dict(execution)
    if options:
        record["options"] = {
            str(key): options[key] for key in sorted(options)
        }
    if wall_ms is not None:
        record["wall"] = {"total_ms": round(float(wall_ms), 3)}
    if error is not None:
        record["error"] = str(error)
    _RUN_COUNTER += 1
    seed = hashlib.sha256()
    # repro-lint: allow[REPRO502] run_id must be unique per run: salted with time/pid by design
    seed.update(recorded.encode())
    seed.update(str(os.getpid()).encode())
    seed.update(str(_RUN_COUNTER).encode())
    # repro-lint: allow[REPRO502,REPRO503] deterministic_view() strips every volatile field first
    seed.update(
        json.dumps(deterministic_view(record), sort_keys=True).encode()
    )
    compact = recorded.replace("-", "").replace(":", "")
    record["run_id"] = f"{compact}-{seed.hexdigest()[:10]}"
    return record


def deterministic_view(record: Mapping[str, object]) -> Dict[str, object]:
    """The byte-stable core of a record: minus every volatile field.

    What remains — command, config identity/digest, bounds digest,
    ``work`` signature, options — must be byte-identical (canonical
    JSON) for reruns of the same configuration across
    ``PYTHONHASHSEED``, ``--jobs`` and cache states.
    """
    return {
        key: record[key]
        for key in sorted(record)
        if key not in VOLATILE_FIELDS
    }


def _fail(path: str, message: str) -> None:
    raise ValueError(f"invalid run record at {path}: {message}")


def validate_run_record(record: Mapping[str, object]) -> None:
    """Raise :class:`ValueError` unless ``record`` matches the schema."""
    if not isinstance(record, Mapping):
        raise ValueError("run record must be an object")
    version = record.get("history_schema")
    if not isinstance(version, int) or isinstance(version, bool):
        _fail("$.history_schema", "missing or non-integer")
    if version != HISTORY_SCHEMA_VERSION:
        _fail("$.history_schema", f"unsupported version {version}")
    for key in ("command", "status", "recorded_at", "run_id"):
        value = record.get(key)
        if not isinstance(value, str) or not value:
            _fail(f"$.{key}", "missing or empty string")
    if record["status"] not in ("ok", "error"):
        _fail("$.status", f"must be 'ok' or 'error', got {record['status']!r}")
    for key in ("config_digest", "bounds_digest", "git_rev", "error"):
        if key in record and not isinstance(record[key], str):
            _fail(f"$.{key}", "must be a string")
    for key in ("config", "cache", "execution", "options", "wall", "work"):
        if key in record and not isinstance(record[key], Mapping):
            _fail(f"$.{key}", "must be an object")
    for name, counters in dict(record.get("work", {})).items():
        if not isinstance(counters, Mapping):
            _fail(f"$.work.{name}", "must be an object")
        for counter, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                _fail(f"$.work.{name}.{counter}", "must be an integer")


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class RunHistory:
    """Append-only run store under one directory (see module docstring).

    Layout::

        <root>/index.json                  # rebuildable summary cache
        <root>/segments/seg-000001.jsonl   # SEGMENT_RECORDS records max
        <root>/segments/seg-000002.jsonl

    The class is cheap to construct; queries scan the JSONL segments
    (newest segment last, line order preserved within a segment).
    """

    def __init__(
        self,
        root: Union[str, Path],
        segment_records: int = SEGMENT_RECORDS,
    ) -> None:
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.index_path = self.root / "index.json"
        if segment_records < 1:
            raise ValueError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self.segment_records = segment_records

    # -- writing -------------------------------------------------------

    def append(self, record: Mapping[str, object]) -> Dict[str, object]:
        """Validate and atomically append ``record``; returns it.

        The write is a single ``O_APPEND`` ``write(2)`` of one
        newline-terminated canonical-JSON line — concurrent appenders
        interleave whole records.  The index refresh afterwards is
        best-effort (it is a cache; see :meth:`_refresh_index`).
        """
        stored = dict(record)
        validate_run_record(stored)
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        segment = self._active_segment()
        line = json.dumps(stored, sort_keys=True, separators=(",", ":")) + "\n"
        fd = os.open(
            str(segment), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self._refresh_index()
        return stored

    def _segment_name(self, number: int) -> str:
        return f"seg-{number:06d}.jsonl"

    def _active_segment(self) -> Path:
        """The segment the next append lands in (rotating when full)."""
        segments = self.segment_paths()
        if not segments:
            return self.segments_dir / self._segment_name(1)
        last = segments[-1]
        if _count_lines(last) >= self.segment_records:
            number = _segment_number(last) + 1
            return self.segments_dir / self._segment_name(number)
        return last

    def _refresh_index(self) -> None:
        """Rewrite ``index.json`` atomically; failures never propagate.

        The index is a pure cache of the segment files — a reader that
        finds it missing or stale rebuilds its answer from the
        segments, so a torn writer cannot corrupt queries.
        """
        entries = []
        total = 0
        for segment in self.segment_paths():
            records = list(_iter_segment(segment))
            total += len(records)
            entries.append(
                {
                    "segment": segment.name,
                    "records": len(records),
                    "first_run_id": records[0].get("run_id") if records else None,
                    "last_run_id": records[-1].get("run_id") if records else None,
                }
            )
        payload = {
            "history_schema": HISTORY_SCHEMA_VERSION,
            "total_records": total,
            "segments": entries,
        }
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), suffix=".tmp", prefix="index.json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(json.dumps(payload, indent=2) + "\n")
                os.replace(tmp, self.index_path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    # -- reading -------------------------------------------------------

    def segment_paths(self) -> List[Path]:
        """Existing segment files, oldest first (name order)."""
        if not self.segments_dir.is_dir():
            return []
        return sorted(self.segments_dir.glob("seg-*.jsonl"))

    def index(self) -> Dict[str, object]:
        """The index document (loaded, or rebuilt from the segments)."""
        try:
            payload = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            payload = None
        if isinstance(payload, dict) and "segments" in payload:
            return payload
        self._refresh_index()
        try:
            return json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return {
                "history_schema": HISTORY_SCHEMA_VERSION,
                "total_records": len(self.records()),
                "segments": [],
            }

    def records(
        self,
        command: Optional[str] = None,
        config_digest: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """All records in append order, optionally filtered.

        ``limit`` keeps the *newest* N records after filtering (the
        shape ``afdx obs list`` wants).  Lines that fail to parse or
        validate are skipped — a torn foreign write must not take the
        whole store down.
        """
        out: List[Dict[str, object]] = []
        for segment in self.segment_paths():
            for record in _iter_segment(segment):
                if command is not None and record.get("command") != command:
                    continue
                if (
                    config_digest is not None
                    and record.get("config_digest") != config_digest
                ):
                    continue
                out.append(record)
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out

    def get(self, run_id: str) -> Optional[Dict[str, object]]:
        """The record with ``run_id`` (prefix match accepted), or None.

        A unique prefix resolves like an abbreviated git hash; the
        hash part after the timestamp (what ``obs list`` readers will
        naturally copy) also resolves by prefix.  An ambiguous prefix
        raises :class:`ValueError`.
        """

        def _hit(full: str) -> bool:
            if full.startswith(run_id):
                return True
            _stamp, dash, digest = full.partition("-")
            return bool(dash) and digest.startswith(run_id)

        matches = [
            record
            for record in self.records()
            if _hit(str(record.get("run_id", "")))
        ]
        exact = [r for r in matches if r.get("run_id") == run_id]
        if exact:
            return exact[-1]
        if len(matches) > 1:
            ids = ", ".join(sorted(str(r["run_id"]) for r in matches))
            raise ValueError(f"ambiguous run id {run_id!r}: matches {ids}")
        return matches[0] if matches else None


def _segment_number(path: Path) -> int:
    stem = path.stem  # "seg-000001"
    try:
        return int(stem.split("-", 1)[1])
    except (IndexError, ValueError):
        return 0


def _count_lines(path: Path) -> int:
    try:
        with open(path, "rb") as handle:
            return sum(1 for _ in handle)
    except OSError:
        return 0


def _iter_segment(path: Path) -> Iterable[Dict[str, object]]:
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            validate_run_record(record)
        except ValueError:
            continue
        yield record


# ----------------------------------------------------------------------
# Queries: diff and drift
# ----------------------------------------------------------------------


def _flat_work(record: Mapping[str, object]) -> Dict[str, int]:
    """``analyzer.counter -> value`` from a record's work signature."""
    flat: Dict[str, int] = {}
    for analyzer, counters in sorted(dict(record.get("work", {})).items()):
        for counter, value in sorted(dict(counters).items()):
            flat[f"{analyzer}.{counter}"] = int(value)
    return flat


def diff_runs(
    a: Mapping[str, object], b: Mapping[str, object]
) -> Dict[str, object]:
    """Structured comparison of two run records.

    Compares the soundness handle (bounds digests), the configuration
    identity and the deterministic work counters; ``identical_bounds``
    is only meaningful when both records carry a digest.
    """
    digest_a = a.get("bounds_digest")
    digest_b = b.get("bounds_digest")
    work_a = _flat_work(a)
    work_b = _flat_work(b)
    work_delta: Dict[str, Dict[str, int]] = {}
    for counter in sorted(set(work_a) | set(work_b)):
        before = work_a.get(counter, 0)
        after = work_b.get(counter, 0)
        if before != after:
            work_delta[counter] = {
                "a": before,
                "b": after,
                "delta": after - before,
            }
    return {
        "runs": {"a": a.get("run_id"), "b": b.get("run_id")},
        "commands": {"a": a.get("command"), "b": b.get("command")},
        "git_revs": {"a": a.get("git_rev"), "b": b.get("git_rev")},
        "same_config": (
            a.get("config_digest") is not None
            and a.get("config_digest") == b.get("config_digest")
        ),
        "bounds": {
            "a": digest_a,
            "b": digest_b,
            "identical": (
                digest_a is not None and digest_a == digest_b
            ),
        },
        "work_delta": work_delta,
    }


def drift_report(
    records: Iterable[Mapping[str, object]],
    config_digest: Optional[str] = None,
) -> Dict[str, object]:
    """Scan history for soundness drift and work-counter regressions.

    Groups records by ``(config_digest, command)`` — the bounds of one
    configuration under one command must be bit-identical regardless of
    git revision, worker count or cache state.  Two findings classes:

    * **bounds drift** (fatal): more than one distinct ``bounds_digest``
      inside a group — the continuous-telemetry generalization of
      ``bench_gate``'s baseline comparison;
    * **more-work trends** (advisory): a deterministic work counter
      grew between consecutive records of a group *at different git
      revisions* — the algorithm now does more work for the same input
      (``less-work`` is an intentional optimization and stays silent,
      matching the bench gate's asymmetry).
    """
    groups: Dict[Tuple[str, str], List[Mapping[str, object]]] = {}
    scanned = 0
    for record in records:
        scanned += 1
        digest = record.get("config_digest")
        if not isinstance(digest, str):
            continue
        if config_digest is not None and digest != config_digest:
            continue
        key = (digest, str(record.get("command", "")))
        groups.setdefault(key, []).append(record)

    drifts: List[Dict[str, object]] = []
    trends: List[Dict[str, object]] = []
    compared = 0
    for (digest, command), group in sorted(groups.items()):
        with_bounds = [
            r for r in group if isinstance(r.get("bounds_digest"), str)
        ]
        if len(with_bounds) >= 2:
            compared += 1
            seen: Dict[str, Dict[str, object]] = {}
            for record in with_bounds:
                bounds = str(record["bounds_digest"])
                entry = seen.setdefault(
                    bounds, {"bounds_digest": bounds, "runs": [], "git_revs": []}
                )
                entry["runs"].append(record.get("run_id"))
                rev = record.get("git_rev")
                if rev is not None and rev not in entry["git_revs"]:
                    entry["git_revs"].append(rev)
            if len(seen) > 1:
                drifts.append(
                    {
                        "config_digest": digest,
                        "command": command,
                        "n_runs": len(with_bounds),
                        "variants": [seen[k] for k in sorted(seen)],
                    }
                )
        previous: Optional[Mapping[str, object]] = None
        for record in group:
            if previous is not None and record.get("git_rev") != previous.get(
                "git_rev"
            ):
                before = _flat_work(previous)
                after = _flat_work(record)
                for counter in sorted(set(before) & set(after)):
                    if after[counter] > before[counter]:
                        trends.append(
                            {
                                "config_digest": digest,
                                "command": command,
                                "counter": counter,
                                "from_rev": previous.get("git_rev"),
                                "to_rev": record.get("git_rev"),
                                "before": before[counter],
                                "after": after[counter],
                            }
                        )
            if record.get("work"):
                previous = record
    return {
        "scanned": scanned,
        "groups": len(groups),
        "groups_compared": compared,
        "drifts": drifts,
        "more_work": trends,
        "verdict": "drift" if drifts else "clean",
    }


# ----------------------------------------------------------------------
# Rendering (the `afdx obs` text surfaces)
# ----------------------------------------------------------------------


def _short(digest: Optional[object], width: int = 12) -> str:
    return str(digest)[:width] if isinstance(digest, str) else "-"


def render_run_line(record: Mapping[str, object]) -> str:
    """One ``afdx obs list`` row for a record."""
    wall = record.get("wall", {})
    wall_ms = wall.get("total_ms") if isinstance(wall, Mapping) else None
    return (
        f"{record.get('run_id', '-'):<28} "
        f"{record.get('command', '-'):<12} "
        f"{record.get('status', '-'):<6} "
        f"rev={record.get('git_rev', '-') or '-':<12} "
        f"cfg={_short(record.get('config_digest'))} "
        f"bounds={_short(record.get('bounds_digest'))} "
        f"wall={wall_ms if wall_ms is not None else '-'}ms"
    )


def render_run(record: Mapping[str, object]) -> str:
    """The full ``afdx obs show`` body: pretty JSON, keys sorted."""
    return json.dumps(record, indent=2, sort_keys=True)


def render_run_diff(diff: Mapping[str, object]) -> str:
    """Human-readable ``afdx obs diff`` body."""
    runs = diff.get("runs", {})
    bounds = diff.get("bounds", {})
    lines = [
        f"diff {runs.get('a')} -> {runs.get('b')}",
        f"  config: {'same' if diff.get('same_config') else 'DIFFERENT'}",
        f"  bounds: "
        f"{'identical' if bounds.get('identical') else 'DIFFERENT'} "
        f"({_short(bounds.get('a'))} vs {_short(bounds.get('b'))})",
    ]
    work_delta = diff.get("work_delta", {})
    if work_delta:
        lines.append(f"  work counters changed ({len(work_delta)}):")
        for counter in sorted(work_delta):
            entry = work_delta[counter]
            sign = "+" if entry["delta"] > 0 else ""
            lines.append(
                f"    {counter}: {entry['a']} -> {entry['b']} "
                f"({sign}{entry['delta']})"
            )
    else:
        lines.append("  work counters identical")
    return "\n".join(lines)


def render_drift_report(report: Mapping[str, object]) -> str:
    """Human-readable ``afdx obs drift`` body."""
    lines = [
        f"drift: scanned {report.get('scanned', 0)} records, "
        f"{report.get('groups', 0)} (config, command) groups, "
        f"{report.get('groups_compared', 0)} with comparable bounds"
    ]
    for drift in report.get("drifts", []):
        lines.append(
            f"DRIFT config={_short(drift.get('config_digest'))} "
            f"command={drift.get('command')}: "
            f"{len(drift.get('variants', []))} distinct bounds digests "
            f"over {drift.get('n_runs')} runs"
        )
        for variant in drift.get("variants", []):
            revs = ",".join(str(r) for r in variant.get("git_revs", [])) or "-"
            lines.append(
                f"  bounds={_short(variant.get('bounds_digest'))} "
                f"revs={revs} runs={len(variant.get('runs', []))}"
            )
    for trend in report.get("more_work", []):
        lines.append(
            f"more-work config={_short(trend.get('config_digest'))} "
            f"{trend.get('counter')}: {trend.get('before')} -> "
            f"{trend.get('after')} "
            f"({trend.get('from_rev')} -> {trend.get('to_rev')})"
        )
    lines.append(f"verdict: {report.get('verdict', 'clean')}")
    return "\n".join(lines)
