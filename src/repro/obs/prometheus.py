"""Prometheus textfile exposition for metrics snapshots.

Renders one or more :class:`~repro.obs.metrics.MetricsRegistry`
snapshots in the Prometheus text exposition format (version 0.0.4),
suitable for the node-exporter *textfile collector*: point
``--collector.textfile.directory`` at the directory the CLI's
``--metrics-prom PATH`` writes into and every ``afdx`` run's counters
and gauges become scrapeable without running a server.

Conventions
-----------
* every metric name is prefixed ``repro_`` and sanitized to the
  Prometheus grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``, dots become
  underscores);
* counters get the idiomatic ``_total`` suffix; timers expand into
  ``<name>_ms_count`` / ``_ms_sum`` / ``_ms_min`` / ``_ms_max`` gauges;
* samples carrying the same metric name are grouped under a single
  ``# TYPE`` header, as the format requires, and rendered in sorted
  (name, labels) order so output is deterministic;
* label values are escaped per the exposition spec (backslash, double
  quote, newline);
* the file is written atomically (temp file + :func:`os.replace`) so a
  concurrently scraping collector never reads a half-written file.
"""

from __future__ import annotations

import os
import re
import tempfile
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "PrometheusSample",
    "pool_samples",
    "render_prometheus",
    "write_prometheus",
]

_NAME_PREFIX = "repro_"
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: (name, labels, value, type) — the flat unit of exposition.
PrometheusSample = Tuple[str, Tuple[Tuple[str, str], ...], float, str]


def _metric_name(raw: str, suffix: str = "") -> str:
    name = _INVALID_NAME_CHARS.sub("_", raw)
    if name and name[0].isdigit():
        name = "_" + name
    return f"{_NAME_PREFIX}{name}{suffix}"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # repr() round-trips floats exactly; integers print without ".0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer() and abs(value) < 1e15
    ):
        return str(int(value))
    return repr(float(value))


def registry_samples(
    snapshot: Mapping[str, object],
    labels: Optional[Mapping[str, str]] = None,
) -> List[PrometheusSample]:
    """Flatten one ``MetricsRegistry.to_dict()`` snapshot into samples.

    ``labels`` is attached to every sample (e.g. ``{"command":
    "explain"}`` or ``{"analyzer": "netcalc"}``).
    """
    fixed = tuple(sorted((labels or {}).items()))
    samples: List[PrometheusSample] = []
    for name, value in (snapshot.get("counters") or {}).items():
        samples.append((_metric_name(name, "_total"), fixed, float(value), "counter"))
    for name, value in (snapshot.get("gauges") or {}).items():
        samples.append((_metric_name(name), fixed, float(value), "gauge"))
    for name, stats in (snapshot.get("timers") or {}).items():
        for stat_key in ("count", "total_ms", "min_ms", "max_ms"):
            if stat_key not in stats:
                continue
            suffix = {
                "count": "_ms_count",
                "total_ms": "_ms_sum",
                "min_ms": "_ms_min",
                "max_ms": "_ms_max",
            }[stat_key]
            samples.append(
                (_metric_name(name, suffix), fixed, float(stats[stat_key]), "gauge")
            )
    return samples


def pool_samples(
    pool_epoch: int,
    shm_segments: int,
    borrowed: bool,
    labels: Optional[Mapping[str, str]] = None,
) -> List[PrometheusSample]:
    """Gauges describing a worker pool's execution shape.

    ``pool_epoch`` is how many payload swaps the pool has absorbed
    (:attr:`repro.batch.pool.WorkerPool.epochs_served`),
    ``shm_segments`` the live owned shared-memory segment count
    (``len(repro.batch.shm.active_owned())``), and ``borrowed`` whether
    the run reused a caller-owned warm pool instead of creating its
    own.  Until now only the run manifest saw these; exposing them as
    ``repro_pool_*`` gauges makes warm-pool reuse and segment leaks
    scrapeable alongside the run counters.
    """
    fixed = tuple(sorted((labels or {}).items()))
    return [
        (_metric_name("pool.epoch"), fixed, float(int(pool_epoch)), "gauge"),
        (
            _metric_name("pool.shm_segments_active"),
            fixed,
            float(int(shm_segments)),
            "gauge",
        ),
        (_metric_name("pool.borrowed"), fixed, float(bool(borrowed)), "gauge"),
    ]


def render_prometheus(samples: Sequence[PrometheusSample]) -> str:
    """Render samples in the text exposition format, one family per name.

    Raises :class:`ValueError` if the same metric name is declared with
    two different types (the format forbids it).
    """
    families: Dict[str, Tuple[str, List[PrometheusSample]]] = {}
    for sample in samples:
        name, _labels, _value, kind = sample
        family = families.get(name)
        if family is None:
            families[name] = (kind, [sample])
        else:
            if family[0] != kind:
                raise ValueError(
                    f"metric {name!r} declared both as {family[0]} and {kind}"
                )
            family[1].append(sample)
    lines: List[str] = []
    for name in sorted(families):
        kind, members = families[name]
        lines.append(f"# TYPE {name} {kind}")
        for _name, labels, value, _kind in sorted(
            members, key=lambda s: s[1]
        ):
            lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path, samples: Sequence[PrometheusSample]) -> None:
    """Atomically write rendered samples to ``path`` (textfile collector)."""
    text = render_prometheus(samples)
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".prom.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
