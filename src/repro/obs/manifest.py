"""Run manifests: what ran, on what configuration, how long, what came out.

A manifest is the JSON artefact written by ``afdx ... --metrics-json
PATH``.  It records the command and its options, the configuration
identity, each analyzer's collected stats (per-phase spans, counters,
timers, the Trajectory sweep-convergence trace) and a summary of the
resulting bounds — enough to compare two runs of the industrial
configuration without rerunning either.

The schema (version :data:`MANIFEST_VERSION`) is documented in
``docs/OBSERVABILITY.md`` and enforced by :func:`validate_manifest`,
which is hand-rolled so the library keeps zero runtime dependencies.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "MANIFEST_VERSION",
    "network_identity",
    "bound_summary",
    "build_manifest",
    "validate_manifest",
    "write_manifest",
]

MANIFEST_VERSION = 1


def network_identity(network) -> Dict[str, object]:
    """Identity block of a configuration: name and population sizes."""
    return {
        "name": network.name,
        "n_nodes": len(network.nodes),
        "n_links": len(network.links()),
        "n_virtual_links": len(network.virtual_links),
        "n_paths": len(network.flow_paths()),
    }


def bound_summary(result) -> Dict[str, object]:
    """Bound summary of an :class:`~repro.core.results.AnalysisResult`.

    Per-method path counts plus min/mean/max of the per-path bounds —
    the aggregate a certification engineer checks first.
    """
    paths = result.path_list()

    def agg(values: List[float]) -> Dict[str, float]:
        return {
            "min_us": round(min(values), 3),
            "mean_us": round(math.fsum(values) / len(values), 3),
            "max_us": round(max(values), 3),
        }

    summary: Dict[str, object] = {
        "n_paths": len(paths),
        "network_calculus": agg([p.network_calculus_us for p in paths]),
        "trajectory": agg([p.trajectory_us for p in paths]),
        "combined": agg([p.best_us for p in paths]),
    }
    if result.stats is not None:
        summary["mean_benefit_trajectory_pct"] = round(
            result.stats.mean_benefit_trajectory_pct, 3
        )
        summary["trajectory_wins_share"] = round(result.stats.trajectory_wins_share, 4)
    return summary


def build_manifest(
    command: str,
    options: Dict[str, object],
    config: Optional[Dict[str, object]] = None,
    analyzers: Optional[Dict[str, Dict[str, object]]] = None,
    bounds: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, object]] = None,
    status: str = "ok",
    error: Optional[str] = None,
    profile: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a schema-conformant manifest dict.

    ``analyzers`` maps analyzer names (``"network_calculus"``,
    ``"trajectory"``, ``"simulation"``) to their exported ``stats``
    dicts; ``metrics`` is the command-level registry snapshot;
    ``profile`` is the cProfile summary written by ``--profile PATH``
    (stats path, call totals and the top cumulative functions).
    """
    from repro import __version__

    manifest: Dict[str, object] = {
        "manifest_version": MANIFEST_VERSION,
        "generated_by": f"repro {__version__}",
        "command": command,
        "status": status,
        "options": dict(options),
    }
    if error is not None:
        manifest["error"] = error
    if config is not None:
        manifest["config"] = dict(config)
    if analyzers:
        manifest["analyzers"] = {
            name: dict(stats) for name, stats in analyzers.items() if stats is not None
        }
    if bounds is not None:
        manifest["bounds"] = dict(bounds)
    if metrics is not None:
        manifest["metrics"] = dict(metrics)
    if profile is not None:
        manifest["profile"] = dict(profile)
    return manifest


def write_manifest(manifest: Dict[str, object], path: Union[str, Path]) -> Path:
    """Validate and write a manifest as pretty-printed JSON.

    The write is atomic (temp file + ``os.replace``), like the
    Prometheus textfile and trace exports: a dashboard or follow-up
    tool reading the manifest mid-write sees the previous complete
    version, never a truncated one.
    """
    import os
    import tempfile

    validate_manifest(manifest)
    target = Path(path)
    payload = json.dumps(manifest, indent=2, sort_keys=False) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent) or ".", suffix=".tmp", prefix=target.name
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, target)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


# ----------------------------------------------------------------------
# Schema validation (dependency-free)
# ----------------------------------------------------------------------


def _fail(path: str, message: str) -> None:
    raise ValueError(f"invalid manifest at {path}: {message}")


def _require(entry: Dict[str, object], key: str, types, path: str):
    if key not in entry:
        _fail(path, f"missing required key {key!r}")
    value = entry[key]
    if not isinstance(value, types) or isinstance(value, bool):
        _fail(f"{path}.{key}", f"expected {types}, got {type(value).__name__}")
    return value


def _check_stats_block(stats: object, path: str, require_spans: bool = True) -> None:
    if not isinstance(stats, dict):
        _fail(path, "stats block must be an object")
    for section in ("counters", "gauges", "timers"):
        block = _require(stats, section, dict, path)
        for name, value in block.items():
            if section == "timers":
                if not isinstance(value, dict):
                    _fail(f"{path}.timers.{name}", "timer entry must be an object")
                for field in ("count", "total_ms", "mean_ms", "max_ms"):
                    _require(value, field, (int, float), f"{path}.timers.{name}")
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(f"{path}.{section}.{name}", "value must be a number")
    spans = (
        _require(stats, "spans", list, path) if require_spans else stats.get("spans", [])
    )
    if not isinstance(spans, list):
        _fail(f"{path}.spans", "must be a list")
    for index, span in enumerate(spans):
        _check_span(span, f"{path}.spans[{index}]")
    if "sweeps" in stats:
        sweeps = stats["sweeps"]
        if not isinstance(sweeps, list):
            _fail(f"{path}.sweeps", "sweep trace must be a list")
        for index, entry in enumerate(sweeps):
            if not isinstance(entry, dict):
                _fail(f"{path}.sweeps[{index}]", "sweep entry must be an object")
            _require(entry, "sweep", int, f"{path}.sweeps[{index}]")
            _require(entry, "smax_updates", int, f"{path}.sweeps[{index}]")
            _require(entry, "max_delta_us", (int, float), f"{path}.sweeps[{index}]")


def _check_span(span: object, path: str) -> None:
    if not isinstance(span, dict):
        _fail(path, "span must be an object")
    _require(span, "name", str, path)
    _require(span, "start_ms", (int, float), path)
    _require(span, "duration_ms", (int, float), path)
    for index, child in enumerate(span.get("children", [])):
        _check_span(child, f"{path}.children[{index}]")


def _check_bound_agg(agg: object, path: str) -> None:
    if not isinstance(agg, dict):
        _fail(path, "bound aggregate must be an object")
    for field in ("min_us", "mean_us", "max_us"):
        _require(agg, field, (int, float), path)


def validate_manifest(manifest: Dict[str, object]) -> None:
    """Raise :class:`ValueError` unless ``manifest`` matches the schema."""
    if not isinstance(manifest, dict):
        raise ValueError("manifest must be an object")
    version = _require(manifest, "manifest_version", int, "$")
    if version != MANIFEST_VERSION:
        _fail("$.manifest_version", f"unsupported version {version}")
    _require(manifest, "generated_by", str, "$")
    _require(manifest, "command", str, "$")
    status = _require(manifest, "status", str, "$")
    if status not in ("ok", "error"):
        _fail("$.status", f"must be 'ok' or 'error', got {status!r}")
    if status == "error":
        _require(manifest, "error", str, "$")
    _require(manifest, "options", dict, "$")
    if "config" in manifest:
        config = manifest["config"]
        if not isinstance(config, dict):
            _fail("$.config", "must be an object")
        _require(config, "name", str, "$.config")
        for field in ("n_nodes", "n_links", "n_virtual_links", "n_paths"):
            _require(config, field, int, "$.config")
    if "analyzers" in manifest:
        analyzers = manifest["analyzers"]
        if not isinstance(analyzers, dict):
            _fail("$.analyzers", "must be an object")
        for name, stats in analyzers.items():
            _check_stats_block(stats, f"$.analyzers.{name}")
    if "bounds" in manifest:
        bounds = manifest["bounds"]
        if not isinstance(bounds, dict):
            _fail("$.bounds", "must be an object")
        _require(bounds, "n_paths", int, "$.bounds")
        for method in ("network_calculus", "trajectory", "combined"):
            if method in bounds:
                _check_bound_agg(bounds[method], f"$.bounds.{method}")
    if "metrics" in manifest:
        _check_stats_block(manifest["metrics"], "$.metrics", require_spans=False)
    if "profile" in manifest:
        profile = manifest["profile"]
        if not isinstance(profile, dict):
            _fail("$.profile", "must be an object")
        _require(profile, "stats_path", str, "$.profile")
        _require(profile, "total_calls", int, "$.profile")
        _require(profile, "total_time_s", (int, float), "$.profile")
        top = _require(profile, "top_cumulative", list, "$.profile")
        for index, entry in enumerate(top):
            if not isinstance(entry, dict):
                _fail(f"$.profile.top_cumulative[{index}]", "must be an object")
            _require(entry, "function", str, f"$.profile.top_cumulative[{index}]")
            _require(entry, "ncalls", int, f"$.profile.top_cumulative[{index}]")
            for field in ("tottime_s", "cumtime_s"):
                _require(
                    entry, field, (int, float), f"$.profile.top_cumulative[{index}]"
                )
