"""Span-based phase tracing and the progress callback hook.

A :class:`Tracer` records named phases (validation, topological sort,
NC propagation, each Trajectory sweep, per-path maximization...) as a
tree of :class:`Span` objects with monotonic-clock wall time and
arbitrary JSON-compatible attributes (port counts, competitors met,
sweep deltas).  Spans nest through a ``with`` stack; the resulting
tree serializes with :meth:`Tracer.to_list` for run manifests.

:class:`ProgressHook` is the callback side-channel for long industrial
runs: analyzers report ``(phase, done, total)`` and the hook forwards
to a user callable, rate-limited so a ~6000-path sweep does not drown
the terminal.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NULL_TRACER", "ProgressHook"]

ProgressCallback = Callable[[str, int, int], None]


class Span:
    """One traced phase: name, offset/duration, attributes, children."""

    __slots__ = ("name", "start_ms", "duration_ms", "attrs", "children")

    def __init__(self, name: str, start_ms: float) -> None:
        self.name = name
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.attrs:
            entry["attrs"] = dict(self.attrs)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry


class Tracer:
    """Records a tree of :class:`Span` phases against one time origin.

    Disabled tracers (``enabled=False``, or the shared
    :data:`NULL_TRACER`) skip all bookkeeping.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._origin = time.perf_counter()
        self._roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Optional[Span]]:
        """Open a phase; nested ``span`` calls become children."""
        if not self.enabled:
            yield None
            return
        start = time.perf_counter()
        span = Span(name, (start - self._origin) * 1000.0)
        if attrs:
            span.attrs.update(attrs)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self._roots).append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.duration_ms = (time.perf_counter() - start) * 1000.0

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        if self.enabled and self._stack:
            self._stack[-1].attrs.update(attrs)

    def spans(self) -> List[Span]:
        """The completed root spans, in start order."""
        return list(self._roots)

    def to_list(self) -> List[Dict[str, object]]:
        """JSON-compatible tree of every recorded root span."""
        return [span.to_dict() for span in self._roots]


#: Shared always-disabled tracer.
NULL_TRACER = Tracer(enabled=False)


class ProgressHook:
    """Forwards ``(phase, done, total)`` updates to a user callback.

    Parameters
    ----------
    callback:
        ``callable(phase, done, total)`` or None (the hook is then
        falsy and every update is a cheap no-op).
    min_interval_s:
        Wall-clock floor between forwarded updates per phase; the
        final update of a phase (``done == total``) always goes
        through so consumers can close their display.
    """

    __slots__ = ("callback", "min_interval_s", "_last_emit")

    def __init__(
        self,
        callback: Optional[ProgressCallback] = None,
        min_interval_s: float = 0.1,
    ) -> None:
        self.callback = callback
        self.min_interval_s = min_interval_s
        self._last_emit: Dict[str, float] = {}

    def __bool__(self) -> bool:
        return self.callback is not None

    def update(self, phase: str, done: int, total: int) -> None:
        """Report progress of ``phase``; rate-limited per phase."""
        if self.callback is None:
            return
        now = time.perf_counter()
        if done < total:
            last = self._last_emit.get(phase)
            if last is not None and now - last < self.min_interval_s:
                return
        self._last_emit[phase] = now
        self.callback(phase, done, total)
