"""Chrome-trace export of recorded spans (``--trace PATH``).

Serializes :class:`~repro.obs.trace.Span` trees to the Chrome Trace
Event Format — the JSON dialect ``chrome://tracing`` and Perfetto's
https://ui.perfetto.dev load directly:

* each span becomes a ``"ph": "X"`` (complete) event with ``ts`` /
  ``dur`` in microseconds relative to the tracer origin;
* each analyzer gets its own ``pid`` lane, named via ``"ph": "M"``
  (metadata) events, so Network Calculus and Trajectory stack as
  separate processes in the UI;
* ``batch.*`` phase spans carry a ``workers`` attribute (per-worker
  busy milliseconds, pid-agnostic); these unfold into synthetic
  ``worker-N`` thread lanes anchored at the phase start — approximate
  placement, exact totals;
* merging appends a later run (e.g. the warm half of a cold/warm
  pair) under fresh ``pid`` lanes, so one file can hold the whole
  experiment.

Timestamps here are wall time by definition; the deterministic work
counters live in :mod:`repro.obs.costmodel`, never in trace files.
:func:`strip_wall_fields` removes the timing fields, leaving the
structural skeleton that *is* reproducible run-to-run — what the
determinism tests and ``scripts/profile_smoke.py`` compare.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "build_chrome_trace",
    "merge_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "strip_wall_fields",
]

#: tid of the coordinator lane in every process.
_MAIN_TID = 1
#: Synthetic worker lanes start here (coordinator keeps tid 1).
_WORKER_TID_BASE = 100

_VALID_PHASES = frozenset({"X", "M"})


def _span_events(span: Mapping[str, object], pid: int, tid: int) -> List[dict]:
    """One span dict (``Span.to_dict`` shape) to trace events, recursively."""
    attrs = dict(span.get("attrs", {}))
    workers = attrs.pop("workers", None)
    start_us = round(float(span["start_ms"]) * 1000.0, 1)
    dur_us = round(float(span["duration_ms"]) * 1000.0, 1)
    name = str(span["name"])
    event: Dict[str, object] = {
        "name": name,
        "cat": name.split(".", 1)[0],
        "ph": "X",
        "ts": start_us,
        "dur": dur_us,
        "pid": pid,
        "tid": tid,
    }
    if attrs:
        event["args"] = {str(key): attrs[key] for key in sorted(attrs)}
    events = [event]
    if isinstance(workers, (list, tuple)):
        for index, busy_ms in enumerate(workers):
            events.append(
                {
                    "name": f"{name}.worker",
                    "cat": name.split(".", 1)[0],
                    "ph": "X",
                    "ts": start_us,
                    "dur": round(float(busy_ms) * 1000.0, 1),
                    "pid": pid,
                    "tid": _WORKER_TID_BASE + index,
                    "args": {"approximate": "busy time anchored at phase start"},
                }
            )
    for child in span.get("children", []):
        events.extend(_span_events(child, pid, tid))
    return events


def _metadata(pid: int, tid: int, kind: str, label: str) -> dict:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": label},
    }


def build_chrome_trace(
    analyzers: Mapping[str, Optional[Mapping[str, object]]],
    label: str = "afdx",
    pid_base: int = 1,
) -> Dict[str, object]:
    """A trace document from per-analyzer ``stats`` dicts.

    ``analyzers`` maps analyzer names to their ``.stats`` exports (the
    ``spans`` key is read); analyzers without stats are skipped.  Each
    analyzer lands in its own ``pid`` lane named ``label:analyzer``.
    """
    events: List[dict] = []
    pid = pid_base
    for name in sorted(analyzers):
        stats = analyzers[name]
        if not stats:
            continue
        events.append(_metadata(pid, 0, "process_name", f"{label}:{name}"))
        events.append(_metadata(pid, _MAIN_TID, "thread_name", "coordinator"))
        for span in stats.get("spans", []):
            events.extend(_span_events(span, pid, _MAIN_TID))
        pid += 1
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "afdx", "runs": [label]},
    }


def merge_chrome_trace(
    base: Mapping[str, object], extra: Mapping[str, object]
) -> Dict[str, object]:
    """``extra`` appended to ``base`` under fresh ``pid`` lanes."""
    validate_chrome_trace(base)
    validate_chrome_trace(extra)
    events = [dict(event) for event in base["traceEvents"]]
    offset = 0
    for event in events:
        offset = max(offset, int(event["pid"]))
    for event in extra["traceEvents"]:
        shifted = dict(event)
        shifted["pid"] = int(shifted["pid"]) + offset
        events.append(shifted)
    runs: List[str] = []
    for doc in (base, extra):
        other = doc.get("otherData", {})
        runs.extend(other.get("runs", []))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "afdx", "runs": runs},
    }


def validate_chrome_trace(doc: object) -> None:
    """Raise ``ValueError`` unless ``doc`` is a loadable Chrome trace.

    Checks the subset of the Trace Event Format this module emits:
    the JSON-object container with a ``traceEvents`` list of ``"X"``
    (complete, with non-negative ``ts`` / ``dur``) and ``"M"``
    (metadata, with an ``args`` object) events carrying integer
    ``pid`` / ``tid`` and a non-empty ``name``.
    """
    if not isinstance(doc, Mapping):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must carry a 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            raise ValueError(f"{where}: event must be an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: missing event name")
        for key in ("pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{where}: {key} must be an integer")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(f"{where}: {key} must be a number")
                if value < 0:
                    raise ValueError(f"{where}: {key} must be >= 0")
        else:  # "M"
            if not isinstance(event.get("args"), Mapping):
                raise ValueError(f"{where}: metadata event needs an args object")


def write_chrome_trace(
    path: Union[str, Path], doc: Mapping[str, object]
) -> Path:
    """Validate and atomically write ``doc`` as JSON (tmp + replace).

    Atomic for the same reason the Prometheus textfile is: a trace
    viewer (or a concurrent run about to merge) must never see a
    half-written file.
    """
    validate_chrome_trace(doc)
    target = Path(path)
    payload = json.dumps(doc, indent=1, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent) or ".", suffix=".tmp", prefix=target.name
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, target)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def load_chrome_trace(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate a trace document written by this module."""
    try:
        doc = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from None
    validate_chrome_trace(doc)
    return doc


def strip_wall_fields(doc: Mapping[str, object]) -> Dict[str, object]:
    """A copy of ``doc`` minus every wall-time-derived field.

    Drops ``ts`` / ``dur`` and any ``args`` entry whose key ends in
    ``_ms`` (millisecond readings; ``workers`` lanes are already
    rendered from those).  What survives — event names, categories,
    lane structure, deterministic span attributes such as
    ``smax_updates`` — must be byte-identical across reruns of the
    same command, which is exactly what the determinism tests assert.
    """
    events = []
    for event in doc.get("traceEvents", []):
        kept = {
            key: value
            for key, value in event.items()
            if key not in ("ts", "dur")
        }
        args = kept.get("args")
        if isinstance(args, Mapping):
            kept["args"] = {
                key: value
                for key, value in sorted(args.items())
                if not key.endswith("_ms")
            }
        events.append(kept)
    return {"traceEvents": events, "otherData": dict(doc.get("otherData", {}))}
