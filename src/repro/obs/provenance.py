"""Bound provenance: additive decompositions with bit-exact conservation.

A :class:`Decomposition` is an auditable ledger for one analyzed VL
path: the reported end-to-end bound split into named additive terms
(service latencies, burst delays, grouping credits, counted-twice
frames, serialization gains...).  Its contract is the **conservation
invariant**::

    math.fsum(term values) == bound    # bit for bit

which every future performance PR can be gated on: if an optimization
changes a bound by even one ulp, the replayed decomposition stops
summing to it and :meth:`Decomposition.check` raises.

Floating-point addition is not associative, so a naive re-grouping of
an analyzer's accumulations would miss the bound by a few ulps.  The
recorders therefore replay every accumulation through **error-free
transformations** (Knuth's two-sum): each rounding error is captured
and appended to the ledger as an explicit ``fp-residual`` micro-term.
The *real-number* sum of the resulting leaves then equals the computed
bound — a representable float — exactly, and because :func:`math.fsum`
is correctly rounded it reproduces that float bit for bit.  The
invariant is provable, not approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProvenanceError
from repro.network.port import PortId

__all__ = [
    "FP_RESIDUAL",
    "two_sum",
    "ExactAccumulator",
    "closing_residual",
    "Term",
    "Decomposition",
]

#: Label of the rounding-error micro-terms that make ledgers exact.
FP_RESIDUAL = "fp-residual"


def two_sum(a: float, b: float) -> Tuple[float, float]:
    """Error-free transformation of one addition: ``s + e == a + b``.

    ``s`` is the ordinary rounded sum ``fl(a + b)``; ``e`` is the exact
    rounding error, itself representable (Knuth, TAOCP vol. 2, 4.2.2,
    branch-free variant — valid for any two finite doubles).
    """
    s = a + b
    bb = s - a
    return s, (a - (s - bb)) + (b - bb)


class ExactAccumulator:
    """Replay a left-to-right float accumulation, capturing every error.

    After ``add(x_1) ... add(x_n)``, :attr:`value` equals the plain
    sequential sum ``fl(...fl(fl(0 + x_1) + x_2)... + x_n)`` — the same
    float an analyzer's ``total += x`` loop produced — and
    :attr:`residuals` holds the negated rounding errors, so that the
    *real-number* identity ::

        x_1 + ... + x_n + sum(residuals) == value

    is exact.  Appending the residuals to a ledger as ``fp-residual``
    terms is what makes the conservation invariant bit-exact.
    """

    __slots__ = ("value", "residuals")

    def __init__(self, start: float = 0.0) -> None:
        self.value = start
        self.residuals: List[float] = []

    def add(self, x: float) -> float:
        s, err = two_sum(self.value, x)
        self.value = s
        if err != 0.0:
            self.residuals.append(-err)
        return s


def closing_residual(values: Sequence[float], target: float) -> float:
    """The correction ``r`` with ``math.fsum(list(values) + [r]) == target``.

    Used for *informational* breakdowns (e.g. per-competitor workload
    charges) whose parts were computed independently of the parent
    total: the residual absorbs the mismatch so the children of a term
    still sum to it bit-exactly.  Raises :class:`ProvenanceError` if no
    such float exists (non-finite inputs).
    """
    parts = list(values)
    if not math.isfinite(target) or not all(math.isfinite(p) for p in parts):
        raise ProvenanceError(
            f"cannot close residual over non-finite inputs: "
            f"parts {parts!r}, target {target!r}"
        )
    r = -math.fsum(parts + [-target])
    for _ in range(8):
        got = math.fsum(parts + [r])
        if got == target:
            return r
        correction = target - got
        if not math.isfinite(correction) or correction == 0.0:
            break
        r += correction
    raise ProvenanceError(
        f"cannot close residual: parts sum to {math.fsum(parts)!r}, "
        f"target {target!r}"
    )


@dataclass(frozen=True)
class Term:
    """One additive ledger entry of a bound decomposition.

    Attributes
    ----------
    label:
        Term kind (``"service-latency"``, ``"counted-twice"``,
        ``"fp-residual"``...).  The glossary mapping labels to the
        paper's equations lives in ``docs/OBSERVABILITY.md``.
    value_us:
        Signed contribution to the bound, in microseconds (credits and
        gains are negative).
    hop:
        1-based hop along the path the term belongs to, if any.
    port:
        The output port the term was incurred at, if any.
    group:
        Free-form grouping key — the input link of a competitor charge,
        or the accumulation a residual was captured from.
    detail:
        Human-readable annotation (frame counts, rates...).
    children:
        Informational sub-terms; when present they sum to ``value_us``
        bit-exactly (enforced by :meth:`Decomposition.check`).
    """

    label: str
    value_us: float
    hop: Optional[int] = None
    port: Optional[PortId] = None
    group: Optional[str] = None
    detail: Optional[str] = None
    children: Tuple["Term", ...] = ()

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"label": self.label, "value_us": self.value_us}
        if self.hop is not None:
            out["hop"] = self.hop
        if self.port is not None:
            out["port"] = f"{self.port[0]}->{self.port[1]}"
        if self.group is not None:
            out["group"] = self.group
        if self.detail is not None:
            out["detail"] = self.detail
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


@dataclass(frozen=True)
class Decomposition:
    """The complete additive ledger of one path's delay bound.

    ``terms`` are the top-level leaves; their :func:`math.fsum` equals
    ``bound_us`` bit-exactly (:attr:`conserved` / :meth:`check`).
    ``hop_bounds_us`` records the cumulative bound after each hop —
    per-port partial sums for Network Calculus, prefix trajectory
    bounds for the Trajectory approach — which is what the cross-method
    attribution aligns hop by hop.
    """

    method: str
    vl_name: str
    path_index: int
    node_path: Tuple[str, ...]
    bound_us: float
    terms: Tuple[Term, ...]
    hop_bounds_us: Tuple[float, ...] = ()

    def term_sum_us(self) -> float:
        """Correctly-rounded sum of the ledger (equals the bound)."""
        return math.fsum(term.value_us for term in self.terms)

    @property
    def conserved(self) -> bool:
        """Whether ``sum(terms) == bound`` holds bit-exactly."""
        return self.term_sum_us() == self.bound_us

    @property
    def max_abs_residual_us(self) -> float:
        """Largest ``fp-residual`` magnitude anywhere in the ledger."""
        worst = 0.0
        stack = list(self.terms)
        while stack:
            term = stack.pop()
            if term.label == FP_RESIDUAL:
                worst = max(worst, abs(term.value_us))
            stack.extend(term.children)
        return worst

    def total(self, *labels: str) -> float:
        """Correctly-rounded sum of the terms carrying any of ``labels``."""
        wanted = set(labels)
        return math.fsum(
            term.value_us for term in self.terms if term.label in wanted
        )

    def check(self) -> None:
        """Raise :class:`ProvenanceError` on any conservation violation.

        Verifies the top-level invariant and, for every term carrying
        children, that the children sum to their parent bit-exactly.
        """
        got = self.term_sum_us()
        if got != self.bound_us:
            raise ProvenanceError(
                f"{self.method} decomposition of {self.vl_name}[{self.path_index}] "
                f"violates conservation: terms sum to {got!r}, "
                f"bound is {self.bound_us!r}"
            )
        stack = list(self.terms)
        while stack:
            term = stack.pop()
            if term.children:
                child_sum = math.fsum(c.value_us for c in term.children)
                if child_sum != term.value_us:
                    raise ProvenanceError(
                        f"{self.method} decomposition of "
                        f"{self.vl_name}[{self.path_index}]: children of "
                        f"{term.label!r} sum to {child_sum!r}, "
                        f"term is {term.value_us!r}"
                    )
                stack.extend(term.children)

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "vl_name": self.vl_name,
            "path_index": self.path_index,
            "node_path": list(self.node_path),
            "bound_us": self.bound_us,
            "conserved": self.conserved,
            "hop_bounds_us": list(self.hop_bounds_us),
            "terms": [term.to_dict() for term in self.terms],
        }
